"""Repository-level pytest configuration.

Ensures ``src/`` is importable even when the package has not been installed
(e.g. running the test suite in a fresh offline environment), and registers
the shared fixtures defined in ``tests/fixtures.py``.
"""

import sys
from pathlib import Path

SRC = Path(__file__).parent / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

"""Repository-level pytest configuration.

Ensures ``src/`` is importable even when the package has not been installed
(e.g. running the test suite in a fresh offline environment), and registers
the shared fixtures defined in ``tests/fixtures.py``.

With ``REPRO_TSAN=1`` in the environment, the runtime concurrency checker
is installed **before any test module imports the library**, so every lock
the serve/master stacks create is instrumented; a session fixture in
``tests/conftest.py`` asserts the recorded evidence is clean at exit.
"""

import os
import sys
from pathlib import Path

SRC = Path(__file__).parent / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

if os.environ.get("REPRO_TSAN") == "1":
    from repro.analysis import runtime as _tsan_runtime

    _tsan_runtime.install()

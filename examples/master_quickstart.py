"""Distributed search end to end: master -> workers -> durable, exact results.

The full crash story of the master/worker subsystem in one script:

1. start an in-process :class:`repro.master.MasterServer` owning a persistent
   run database, with the ``distributed`` executor (two supervised worker
   subprocesses) applied to every run;
2. submit a small search spec through the socket :class:`repro.master.MasterClient`
   — the same length-prefixed JSON protocol ``python -m repro submit`` uses;
3. optionally SIGKILL one worker mid-run (``--kill-worker``): the watchdog
   restarts it, the lost episode batch is requeued, and the run keeps going;
4. watch the run to completion and verify the distributed result is
   **bit-identical** to a plain serial pipeline run of the same spec.

Run with::

    python examples/master_quickstart.py
    python examples/master_quickstart.py --kill-worker

The script asserts the result hashes match — the CI master/worker smoke runs
it with ``--kill-worker`` as-is.
"""

import argparse
import os
import signal
import tempfile
import time
from pathlib import Path

from repro.api import (
    DatasetSpec,
    ExecutionSpec,
    MuffinPipeline,
    PoolSpec,
    RunSpec,
    SearchSpec,
)
from repro.master import MasterClient, MasterConfig, MasterServer

WORKER_MARK = "repro.master.worker"


def build_spec() -> RunSpec:
    """A small but multi-batch search so a worker kill lands mid-run.

    ``use_fused=False`` routes every head training through the executor —
    the fused ReLU fast path would otherwise train in-process and the
    workers would sit idle.
    """
    return RunSpec(
        name="master-quickstart",
        dataset=DatasetSpec(name="synthetic_isic", num_samples=1500, seed=11, split_seed=2),
        pool=PoolSpec(
            architectures=("MobileNet_V3_Small", "ResNet-18"), epochs=6, batch_size=256, seed=4
        ),
        search=SearchSpec(
            attributes=("age", "site"),
            base_model="MobileNet_V3_Small",
            episodes=20,
            episode_batch=2,
            head_epochs=20,
            seed=0,
        ),
        execution=ExecutionSpec(use_fused=False),
    )


def find_worker_pids() -> list:
    """PIDs of worker subprocesses spawned by this process (Linux /proc scan)."""
    pids = []
    for entry in Path("/proc").iterdir():
        if not entry.name.isdigit():
            continue
        try:
            cmdline = (entry / "cmdline").read_bytes()
            stat = (entry / "stat").read_text()
        except OSError:
            continue
        if WORKER_MARK.encode() not in cmdline:
            continue
        # field 4 of /proc/<pid>/stat (after the parenthesised comm) is the ppid
        ppid = int(stat.rpartition(")")[2].split()[1])
        if ppid == os.getpid():
            pids.append(int(entry.name))
    return pids


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--db", default=None, help="run-database root (default: a temp dir)")
    parser.add_argument(
        "--kill-worker",
        action="store_true",
        help="SIGKILL one worker mid-run to exercise the supervision path",
    )
    args = parser.parse_args()
    db_root = Path(args.db) if args.db else Path(tempfile.mkdtemp(prefix="repro-master-"))
    spec = build_spec()

    # 1. The master: persistent database + scheduler + two supervised workers.
    config = MasterConfig(db_root=db_root, executor="distributed", max_workers=2)
    with MasterServer(config) as server:
        print(f"master listening on {server.host}:{server.port} (db: {db_root})")

        # 2. Submit over the socket protocol, exactly like `python -m repro submit`.
        client = MasterClient(db=db_root)
        rid = client.submit(spec)
        print(f"submitted run {rid} ({spec.name})")

        # 3. Optionally murder a worker once the run is demonstrably mid-search.
        if args.kill_worker:
            deadline = time.monotonic() + 300
            while time.monotonic() < deadline:
                status = client.status(rid)
                if status["journal"]["batches"] >= 2:
                    break
                time.sleep(0.1)
            else:
                raise AssertionError("run never reached batch 2; cannot stage the kill")
            victims = find_worker_pids()
            assert victims, "no worker subprocesses found to kill"
            os.kill(victims[0], signal.SIGKILL)
            print(f"SIGKILLed worker pid {victims[0]} mid-run "
                  f"(journal at {status['journal']['batches']} batches)")

        # 4. Watch to completion.
        last = {"printed": None}

        def on_progress(status) -> None:
            line = (status["status"], status["journal"]["batches"])
            if line != last["printed"]:
                last["printed"] = line
                print(f"  run {rid}: {status['status']} "
                      f"(journal: {status['journal']['batches']} batches)")

        final = client.watch(rid, poll_seconds=0.2, timeout=600, on_progress=on_progress)

    assert final["status"] == "done", f"run ended {final['status']}: {final.get('error')}"
    distributed_hash = final["result_hash"]
    print(f"\ndistributed run finished: result_hash={distributed_hash}")

    # 5. The exactness claim: serial pipeline, same spec, same hash.
    serial = MuffinPipeline(spec, cache_dir=db_root / "reference-cache").run()
    serial_hash = serial.result.result_hash()
    assert distributed_hash == serial_hash, (
        f"distributed result {distributed_hash} != serial result {serial_hash}"
    )
    print(f"serial reference matches bit for bit: result_hash={serial_hash}")
    if args.kill_worker:
        print("worker was SIGKILLed mid-run and the run still finished exactly — "
              "requeue + restart verified")
    print("\ninspect the run database with:")
    print(f"  python -m repro status --db {db_root}")


if __name__ == "__main__":
    main()

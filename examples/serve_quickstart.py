"""Serve a searched Muffin-Net: export -> micro-batched serving -> live stats.

The full deployment loop of the serving subsystem:

1. run (or resume) a declarative pipeline spec — its ``export`` stage bundles
   the finalised Muffin-Net into a deployable artifact;
2. reload the artifact with :func:`repro.zoo.load_fused_model` (the frozen
   backbones are rebuilt from seeds, the head weights restored, the serving
   feature schema bound — predictions are bit-identical to the in-memory
   model);
3. start the micro-batching :class:`repro.serve.InferenceServer` and fire a
   burst of concurrent labelled requests through the in-process
   :class:`repro.serve.ServeClient`;
4. read back the windowed fairness statistics the live monitor computed on
   that traffic;
5. scrape ``GET /metrics`` off the HTTP frontend and check the telemetry
   layer agrees with the server's own counters (request totals, a
   well-formed Prometheus latency histogram).

Run with::

    python examples/serve_quickstart.py
    python examples/serve_quickstart.py --spec examples/specs/smoke.json --cache-dir .ci-cache

The script asserts every response matches the direct forward pass and that
the monitor saw the labelled traffic — the CI serving smoke runs it as-is.
"""

import argparse
import threading
from pathlib import Path
from urllib.request import urlopen

import numpy as np

from repro.api import MuffinPipeline, RunSpec
from repro.obs import METRICS
from repro.serve import InferenceServer, ServeClient, ServeConfig, ServeHTTPServer
from repro.zoo import load_fused_model

DEFAULT_SPEC = Path(__file__).parent / "specs" / "quickstart.json"
REQUESTS = 50
ROWS_PER_REQUEST = 4


def check_metrics_exposition(text: str, expected_requests: int) -> None:
    """Assert the Prometheus exposition is well-formed and counts match."""
    lines = text.splitlines()
    values = {}
    for line in lines:
        if line.startswith("#"):
            continue
        name, value = line.rsplit(" ", 1)
        values[name] = float(value)

    # the request counter equals the requests the burst actually sent
    assert values['repro_serve_requests_total{outcome="ok"}'] == expected_requests

    # the latency histogram is well-formed: HELP/TYPE present, cumulative
    # bucket counts monotone, +Inf bucket equals _count
    assert "# TYPE repro_serve_request_latency_ms histogram" in lines
    assert any(
        line.startswith("# HELP repro_serve_request_latency_ms ") for line in lines
    )
    buckets = [
        (name, count)
        for name, count in values.items()
        if name.startswith("repro_serve_request_latency_ms_bucket")
    ]
    counts = [count for _, count in buckets]
    assert counts == sorted(counts), "bucket counts must be cumulative"
    assert buckets[-1][0].endswith('le="+Inf"}')
    assert counts[-1] == values["repro_serve_request_latency_ms_count"]
    assert values["repro_serve_request_latency_ms_count"] == expected_requests
    assert values["repro_serve_request_latency_ms_sum"] >= 0.0


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--spec", default=str(DEFAULT_SPEC))
    parser.add_argument("--cache-dir", default=None)
    parser.add_argument("--batch-window-ms", type=float, default=20.0)
    args = parser.parse_args()

    # 1. Run (or resume) the pipeline; the export stage bundles the model.
    spec = RunSpec.from_json(args.spec)
    cache_dir = args.cache_dir or MuffinPipeline.default_cache_dir(spec)
    outcome = MuffinPipeline(spec, cache_dir=cache_dir, verbose=True).run()
    artifact_path = outcome.artifact_path
    print(f"\nexported serving artifact: {artifact_path}")

    # 2. Reload it as a standalone model and verify the round trip.
    fused = load_fused_model(artifact_path)
    test = outcome.split.test
    features = fused.schema.features(test)
    direct = fused.predict_features(features)
    assert np.array_equal(direct, outcome.muffin.fused.predict(test)), (
        "artifact round trip must be bit-identical to the in-memory model"
    )
    print(f"round trip verified: {len(direct)} test predictions bit-identical")

    # 3. Serve a concurrent labelled burst through the micro-batcher.
    # Telemetry is off by default; flip it on so /metrics has data.
    METRICS.enable()
    groups = {name: test.group_ids(name) for name in test.attributes.names}
    config = ServeConfig(batch_window_ms=args.batch_window_ms, max_batch=64, log_every=50)
    with InferenceServer(fused, config, verbose=True) as server:
        client = ServeClient(server)
        errors = []
        barrier = threading.Barrier(REQUESTS)

        def fire(i: int) -> None:
            rows = slice(i * ROWS_PER_REQUEST, (i + 1) * ROWS_PER_REQUEST)
            barrier.wait()
            try:
                response = client.predict(
                    features[rows],
                    groups={name: ids[rows] for name, ids in groups.items()},
                    labels=test.labels[rows],
                )
                if not np.array_equal(response.predictions, direct[rows]):
                    raise AssertionError(f"request {i}: batched answer != direct answer")
            except Exception as exc:  # surfaced after the join below
                errors.append(exc)

        threads = [threading.Thread(target=fire, args=(i,)) for i in range(REQUESTS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if errors:
            raise errors[0]

        # 4. Inspect the live statistics.
        stats = server.stats()

        # 5. Scrape GET /metrics off the HTTP frontend and cross-check the
        # telemetry layer against the server's own counters.
        with ServeHTTPServer(server, host="127.0.0.1", port=0) as httpd:
            host, port = httpd.address
            with urlopen(f"http://{host}:{port}/metrics", timeout=10) as response:
                content_type = response.headers.get("Content-Type", "")
                exposition = response.read().decode("utf-8")
        assert content_type.startswith("text/plain"), content_type
        check_metrics_exposition(exposition, expected_requests=REQUESTS)
        print(f"\nGET /metrics: telemetry agrees with {REQUESTS} requests served")

    assert not server.is_running, "server must shut down cleanly"
    assert stats["requests"] == REQUESTS
    assert stats["batches"] < REQUESTS, "concurrent requests must coalesce"
    window = stats["fairness"]["window"]
    assert window["size"] == REQUESTS * ROWS_PER_REQUEST
    assert 0.0 <= window["accuracy"] <= 1.0

    print(
        f"\nserved {stats['requests']} requests ({stats['samples']} samples) in "
        f"{stats['batches']} micro-batches (mean batch {stats['mean_batch_size']})"
    )
    print(f"windowed accuracy over live traffic: {window['accuracy']:.4f}")
    for attribute, value in window["unfairness_score"].items():
        gap = window["accuracy_gap"][attribute]
        print(f"  U({attribute}) = {value:.4f}   accuracy gap = {gap:.4f}")
    print("\nserve this artifact over HTTP with:")
    print(f"  python -m repro serve {artifact_path} --port 8000")


if __name__ == "__main__":
    main()

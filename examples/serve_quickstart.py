"""Serve a searched Muffin-Net: export -> micro-batched serving -> live stats.

The full deployment loop of the serving subsystem:

1. run (or resume) a declarative pipeline spec — its ``export`` stage bundles
   the finalised Muffin-Net into a deployable artifact;
2. reload the artifact with :func:`repro.zoo.load_fused_model` (the frozen
   backbones are rebuilt from seeds, the head weights restored, the serving
   feature schema bound — predictions are bit-identical to the in-memory
   model);
3. start the micro-batching :class:`repro.serve.InferenceServer` and fire a
   burst of concurrent labelled requests through the in-process
   :class:`repro.serve.ServeClient`;
4. read back the windowed fairness statistics the live monitor computed on
   that traffic;
5. scrape ``GET /metrics`` off the HTTP frontend and check the telemetry
   layer agrees with the server's own counters (request totals, a
   well-formed Prometheus latency histogram);
6. demonstrate **admission control**: fill a deliberately tiny bounded
   queue and show the typed, immediate ``ServerOverloaded`` rejection (the
   HTTP frontend maps it to 429 + ``Retry-After``) — then recovery, the
   shed request succeeding on retry once the backlog drains;
7. with ``--chaos``: kill one shard mid-burst under a deterministic
   :class:`repro.serve.FaultPlan` and prove zero accepted requests are
   lost, every answer stays bit-identical, no request outlives its
   deadline, and ``/metrics`` records the supervisor's restart.

Run with::

    python examples/serve_quickstart.py
    python examples/serve_quickstart.py --spec examples/specs/smoke.json --cache-dir .ci-cache
    python examples/serve_quickstart.py --chaos --spec examples/specs/smoke.json --cache-dir .ci-cache

The script asserts every response matches the direct forward pass and that
the monitor saw the labelled traffic — the CI serving smoke runs it as-is,
and the CI chaos smoke runs it with ``--chaos``.
"""

import argparse
import threading
import time
from pathlib import Path
from urllib.request import urlopen

import numpy as np

from repro.api import MuffinPipeline, RunSpec
from repro.obs import METRICS
from repro.serve import (
    FaultPlan,
    InferenceServer,
    ServeClient,
    ServeConfig,
    ServeHTTPServer,
    ServerOverloaded,
)
from repro.zoo import load_fused_model

DEFAULT_SPEC = Path(__file__).parent / "specs" / "quickstart.json"
REQUESTS = 50
ROWS_PER_REQUEST = 4
CHAOS_REQUESTS = 32
CHAOS_DEADLINE_MS = 20_000.0


def check_metrics_exposition(text: str, expected_requests: int) -> None:
    """Assert the Prometheus exposition is well-formed and counts match."""
    lines = text.splitlines()
    values = {}
    for line in lines:
        if line.startswith("#"):
            continue
        name, value = line.rsplit(" ", 1)
        values[name] = float(value)

    # the request counter equals the requests the burst actually sent
    assert values['repro_serve_requests_total{outcome="ok"}'] == expected_requests

    # the latency histogram is well-formed: HELP/TYPE present, cumulative
    # bucket counts monotone, +Inf bucket equals _count
    assert "# TYPE repro_serve_request_latency_ms histogram" in lines
    assert any(
        line.startswith("# HELP repro_serve_request_latency_ms ") for line in lines
    )
    buckets = [
        (name, count)
        for name, count in values.items()
        if name.startswith("repro_serve_request_latency_ms_bucket")
    ]
    counts = [count for _, count in buckets]
    assert counts == sorted(counts), "bucket counts must be cumulative"
    assert buckets[-1][0].endswith('le="+Inf"}')
    assert counts[-1] == values["repro_serve_request_latency_ms_count"]
    assert values["repro_serve_request_latency_ms_count"] == expected_requests
    assert values["repro_serve_request_latency_ms_sum"] >= 0.0


def demo_overload_and_recovery(fused, features) -> None:
    """Admission control: typed immediate rejection, then recovery."""
    server = InferenceServer(
        fused, ServeConfig(batch_window_ms=1.0, max_batch=8, queue_depth=4,
                           log_every=0, retry_after_s=0.5)
    )
    # fill the only queue before the workers start: every slot taken
    sample = features[:1]
    accepted = [server.submit(sample) for _ in range(4)]
    began = time.perf_counter()
    try:
        server.submit(sample)
        raise AssertionError("the 5th request must be shed, not queued")
    except ServerOverloaded as exc:
        shed_ms = (time.perf_counter() - began) * 1000.0
        assert shed_ms < 50.0, f"rejection took {shed_ms:.1f}ms (must be <50ms)"
        print(
            f"\noverload: request shed in {shed_ms:.2f}ms with "
            f"Retry-After {exc.retry_after}s ({exc})"
        )
    server.start()  # capacity comes back: the accepted backlog drains...
    for request in accepted:
        assert request.done.wait(timeout=30) and request.error is None
    retry = server.submit(sample)  # ...and the shed request succeeds on retry
    assert retry.done.wait(timeout=30) and retry.error is None
    server.stop()
    print("recovery: backlog drained and the shed request succeeded on retry")


def demo_chaos_shard_kill(fused, features, direct) -> None:
    """Deterministic mid-burst shard kill: zero losses, visible restart."""
    plan = FaultPlan(
        [{"kind": "crash_shard", "shard": 0, "at_batch": 1}], seed=2023
    )
    config = ServeConfig(
        batch_window_ms=2.0,
        max_batch=8,
        log_every=0,
        num_shards=2,
        queue_depth=64,
        fault_plan=plan,
        restart_backoff_ms=20.0,
        supervise_interval_ms=10.0,
    )
    server = InferenceServer(fused, config, verbose=True)
    pending = [
        server.submit(features[i : i + 1], deadline_ms=CHAOS_DEADLINE_MS)
        for i in range(CHAOS_REQUESTS)
    ]
    burst_start = time.perf_counter()
    server.start()
    for i, request in enumerate(pending):
        # no request may hang past its deadline — wait at most the deadline
        # (plus slack for a loaded runner) before declaring it hung
        assert request.done.wait(timeout=CHAOS_DEADLINE_MS / 1000.0 + 10.0), (
            f"request {i} hung past its deadline"
        )
        assert request.error is None, f"request {i} lost: {request.error!r}"
        assert np.array_equal(request.response.predictions, direct[i : i + 1]), (
            f"request {i}: answer changed after the shard kill"
        )
    elapsed = time.perf_counter() - burst_start
    stats = server.stats()
    assert stats["restarts"] >= 1, "the planned shard kill never fired"
    with ServeHTTPServer(server, host="127.0.0.1", port=0) as httpd:
        host, port = httpd.address
        with urlopen(f"http://{host}:{port}/metrics", timeout=10) as response:
            exposition = response.read().decode("utf-8")
    restart_lines = [
        line
        for line in exposition.splitlines()
        if line.startswith("repro_serve_shard_restarts_total") and not line.startswith("#")
    ]
    assert restart_lines and any(
        float(line.rsplit(" ", 1)[1]) >= 1 for line in restart_lines
    ), "/metrics must show the shard restart counter"
    server.stop()
    print(
        f"\nchaos: shard 0 killed mid-burst; all {CHAOS_REQUESTS} accepted "
        f"requests answered bit-identically in {elapsed * 1000:.0f}ms "
        f"(redispatched={stats['redispatched']}, restarts={stats['restarts']})"
    )
    print(f"  /metrics: {restart_lines[0]}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--spec", default=str(DEFAULT_SPEC))
    parser.add_argument("--cache-dir", default=None)
    parser.add_argument("--batch-window-ms", type=float, default=20.0)
    parser.add_argument(
        "--chaos",
        action="store_true",
        help="kill one shard mid-burst under a deterministic fault plan and "
        "assert zero accepted requests are lost",
    )
    args = parser.parse_args()

    # 1. Run (or resume) the pipeline; the export stage bundles the model.
    spec = RunSpec.from_json(args.spec)
    cache_dir = args.cache_dir or MuffinPipeline.default_cache_dir(spec)
    outcome = MuffinPipeline(spec, cache_dir=cache_dir, verbose=True).run()
    artifact_path = outcome.artifact_path
    print(f"\nexported serving artifact: {artifact_path}")

    # 2. Reload it as a standalone model and verify the round trip.
    fused = load_fused_model(artifact_path)
    test = outcome.split.test
    features = fused.schema.features(test)
    direct = fused.predict_features(features)
    assert np.array_equal(direct, outcome.muffin.fused.predict(test)), (
        "artifact round trip must be bit-identical to the in-memory model"
    )
    print(f"round trip verified: {len(direct)} test predictions bit-identical")

    # 3. Serve a concurrent labelled burst through the micro-batcher.
    # Telemetry is off by default; flip it on so /metrics has data.
    METRICS.enable()
    groups = {name: test.group_ids(name) for name in test.attributes.names}
    config = ServeConfig(batch_window_ms=args.batch_window_ms, max_batch=64, log_every=50)
    with InferenceServer(fused, config, verbose=True) as server:
        client = ServeClient(server)
        errors = []
        barrier = threading.Barrier(REQUESTS)

        def fire(i: int) -> None:
            rows = slice(i * ROWS_PER_REQUEST, (i + 1) * ROWS_PER_REQUEST)
            barrier.wait()
            try:
                response = client.predict(
                    features[rows],
                    groups={name: ids[rows] for name, ids in groups.items()},
                    labels=test.labels[rows],
                )
                if not np.array_equal(response.predictions, direct[rows]):
                    raise AssertionError(f"request {i}: batched answer != direct answer")
            except Exception as exc:  # surfaced after the join below
                errors.append(exc)

        threads = [threading.Thread(target=fire, args=(i,)) for i in range(REQUESTS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if errors:
            raise errors[0]

        # 4. Inspect the live statistics.
        stats = server.stats()

        # 5. Scrape GET /metrics off the HTTP frontend and cross-check the
        # telemetry layer against the server's own counters.
        with ServeHTTPServer(server, host="127.0.0.1", port=0) as httpd:
            host, port = httpd.address
            with urlopen(f"http://{host}:{port}/metrics", timeout=10) as response:
                content_type = response.headers.get("Content-Type", "")
                exposition = response.read().decode("utf-8")
        assert content_type.startswith("text/plain"), content_type
        check_metrics_exposition(exposition, expected_requests=REQUESTS)
        print(f"\nGET /metrics: telemetry agrees with {REQUESTS} requests served")

    assert not server.is_running, "server must shut down cleanly"
    assert stats["requests"] == REQUESTS
    assert stats["batches"] < REQUESTS, "concurrent requests must coalesce"
    window = stats["fairness"]["window"]
    assert window["size"] == REQUESTS * ROWS_PER_REQUEST
    assert 0.0 <= window["accuracy"] <= 1.0

    print(
        f"\nserved {stats['requests']} requests ({stats['samples']} samples) in "
        f"{stats['batches']} micro-batches (mean batch {stats['mean_batch_size']})"
    )
    print(f"windowed accuracy over live traffic: {window['accuracy']:.4f}")
    for attribute, value in window["unfairness_score"].items():
        gap = window["accuracy_gap"][attribute]
        print(f"  U({attribute}) = {value:.4f}   accuracy gap = {gap:.4f}")
    # 6. Admission control: overload is a typed, immediate rejection —
    # and the shed request succeeds on retry once capacity returns.
    demo_overload_and_recovery(fused, features)

    # 7. Chaos: kill a shard mid-burst and prove nothing is lost.
    if args.chaos:
        demo_chaos_shard_kill(fused, features, direct)

    print("\nserve this artifact over HTTP with:")
    print(f"  python -m repro serve {artifact_path} --port 8000")


if __name__ == "__main__":
    main()

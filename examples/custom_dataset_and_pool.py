"""Extending the library: plugin registries + a declarative pipeline run.

The Muffin framework is dataset- and model-agnostic, and every pluggable
component family is a registry.  This example registers

* a custom synthetic dataset ("retinopathy screening") with two sensitive
  attributes (camera type and clinic region) in :data:`repro.api.DATASETS`;
* a custom architecture ("ClinicNet") in the zoo's architecture registry;

and then runs the full pipeline from a :class:`~repro.api.RunSpec` that
names both plugins exactly like built-ins — no imperative wiring.

Run with::

    python examples/custom_dataset_and_pool.py
"""

from repro.api import DATASETS, DatasetSpec, FinalizeSpec, MuffinPipeline, PoolSpec, RunSpec, SearchSpec
from repro.data import AttributeSet, AttributeSpec, sample_dataset
from repro.data.synthetic import SyntheticConfig
from repro.utils import format_table
from repro.zoo import ArchitectureSpec, register_architecture

ATTRIBUTES = ("camera", "region")


@DATASETS.register("retinopathy", overwrite=True)
def build_retinopathy(num_samples: int = 4000, seed: int = 77, **params):
    """A screening dataset where old cameras and rural clinics are unprivileged."""
    camera = AttributeSpec(
        name="camera",
        groups=("modern", "legacy", "handheld"),
        unprivileged=("legacy", "handheld"),
        difficulty={"modern": 0.05, "legacy": 0.45, "handheld": 0.65},
        proportions={"modern": 0.6, "legacy": 0.25, "handheld": 0.15},
    )
    region = AttributeSpec(
        name="region",
        groups=("urban", "suburban", "rural"),
        unprivileged=("rural",),
        difficulty={"urban": 0.05, "suburban": 0.15, "rural": 0.55},
        proportions={"urban": 0.5, "suburban": 0.3, "rural": 0.2},
    )
    attributes = AttributeSet([camera, region])
    config = SyntheticConfig(
        num_samples=num_samples,
        feature_dim=40,
        class_separation=2.8,
        group_shift_scale=3.0,
        group_noise_scale=1.5,
    )
    return sample_dataset(
        name="synthetic-retinopathy",
        num_classes=5,
        attributes=attributes,
        config=config,
        seed=seed,
        class_names=("none", "mild", "moderate", "severe", "proliferative"),
    )


def register_clinicnet() -> str:
    """Register a custom lightweight architecture in the zoo registry."""
    spec = ArchitectureSpec(
        name="ClinicNet",
        family="Custom",
        num_parameters=950_000,
        capacity=44,
        signal_gain=0.98,
        sensitivity={"camera": 0.45, "region": 0.75},
        default_sensitivity=0.5,
    )
    register_architecture(spec, overwrite=True)
    return spec.name


def main() -> None:
    custom_arch = register_clinicnet()

    # Both plugins are now addressable from a declarative spec.
    spec = RunSpec(
        name="custom-retinopathy",
        dataset=DatasetSpec(name="retinopathy", num_samples=4000, seed=77, split_seed=11),
        pool=PoolSpec(
            architectures=(custom_arch, "ResNet-18", "DenseNet121", "MobileNet_V3_Large"),
            epochs=40,
            batch_size=256,
            seed=5,
        ),
        search=SearchSpec(
            attributes=ATTRIBUTES,
            base_model=custom_arch,
            episodes=40,
            episode_batch=5,
            head_epochs=25,
            seed=13,
        ),
        finalize=FinalizeSpec(selection="reward", name="Muffin(ClinicNet)"),
    )
    outcome = MuffinPipeline(spec).run()
    pool, muffin = outcome.pool, outcome.muffin

    landscape = [
        {
            "model": name,
            "accuracy": ev.accuracy,
            "U(camera)": ev.unfairness["camera"],
            "U(region)": ev.unfairness["region"],
        }
        for name, ev in pool.evaluate_all(attributes=ATTRIBUTES).items()
    ]
    print(format_table(landscape, title="Custom dataset: unfairness landscape"))
    print()

    vanilla = pool.evaluate(custom_arch)
    fused_eval = muffin.test_evaluation
    rows = [
        {
            "model": f"{custom_arch} (vanilla)",
            "accuracy": vanilla.accuracy,
            "U(camera)": vanilla.unfairness["camera"],
            "U(region)": vanilla.unfairness["region"],
        },
        {
            "model": muffin.name,
            "accuracy": fused_eval.accuracy,
            "U(camera)": fused_eval.unfairness["camera"],
            "U(region)": fused_eval.unfairness["region"],
        },
    ]
    print(format_table(rows, title="Muffin on the custom dataset"))
    print()
    print(f"Selected body: {muffin.record.candidate.model_names}")
    print(f"Selected head: MLP{list(muffin.record.candidate.hidden_sizes)} "
          f"({muffin.record.candidate.activation})")
    print()
    print("The same run as a portable spec file:")
    print(spec.to_json())


if __name__ == "__main__":
    main()

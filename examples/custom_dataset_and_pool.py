"""Extending the library: a custom dataset, a custom architecture and a
Muffin search over both.

The Muffin framework is dataset- and model-agnostic: anything exposing the
``FairnessDataset`` group structure and the ``ZooModel`` prediction API can
be searched over.  This example builds

* a custom synthetic dataset ("retinopathy screening") with two sensitive
  attributes (camera type and clinic region) and bespoke group difficulty /
  imbalance profiles;
* a custom architecture ("ClinicNet") registered next to the built-in pool;
* a model pool mixing the custom architecture with two built-ins, and a
  Muffin search optimizing both attributes at once.

Run with::

    python examples/custom_dataset_and_pool.py
"""

from repro.core import MuffinSearch, SearchConfig, HeadTrainConfig
from repro.data import AttributeSet, AttributeSpec, sample_dataset, split_dataset
from repro.data.synthetic import SyntheticConfig
from repro.utils import format_table
from repro.zoo import ArchitectureSpec, ModelPool, TrainConfig, register_architecture

ATTRIBUTES = ("camera", "region")


def build_custom_dataset():
    """A screening dataset where old cameras and rural clinics are unprivileged."""
    camera = AttributeSpec(
        name="camera",
        groups=("modern", "legacy", "handheld"),
        unprivileged=("legacy", "handheld"),
        difficulty={"modern": 0.05, "legacy": 0.45, "handheld": 0.65},
        proportions={"modern": 0.6, "legacy": 0.25, "handheld": 0.15},
    )
    region = AttributeSpec(
        name="region",
        groups=("urban", "suburban", "rural"),
        unprivileged=("rural",),
        difficulty={"urban": 0.05, "suburban": 0.15, "rural": 0.55},
        proportions={"urban": 0.5, "suburban": 0.3, "rural": 0.2},
    )
    attributes = AttributeSet([camera, region])
    config = SyntheticConfig(
        num_samples=4000,
        feature_dim=40,
        class_separation=2.8,
        group_shift_scale=3.0,
        group_noise_scale=1.5,
    )
    return sample_dataset(
        name="synthetic-retinopathy",
        num_classes=5,
        attributes=attributes,
        config=config,
        seed=77,
        class_names=("none", "mild", "moderate", "severe", "proliferative"),
    )


def register_clinicnet() -> str:
    """Register a custom lightweight architecture in the zoo registry."""
    spec = ArchitectureSpec(
        name="ClinicNet",
        family="Custom",
        num_parameters=950_000,
        capacity=44,
        signal_gain=0.98,
        sensitivity={"camera": 0.45, "region": 0.75},
        default_sensitivity=0.5,
    )
    register_architecture(spec, overwrite=True)
    return spec.name


def main() -> None:
    dataset = build_custom_dataset()
    split = split_dataset(dataset, seed=11)
    custom_arch = register_clinicnet()

    pool = ModelPool(
        split,
        architecture_names=[custom_arch, "ResNet-18", "DenseNet121", "MobileNet_V3_Large"],
        train_config=TrainConfig(epochs=40, batch_size=256),
        seed=5,
    ).build()

    landscape = [
        {
            "model": name,
            "accuracy": ev.accuracy,
            "U(camera)": ev.unfairness["camera"],
            "U(region)": ev.unfairness["region"],
        }
        for name, ev in pool.evaluate_all(attributes=ATTRIBUTES).items()
    ]
    print(format_table(landscape, title="Custom dataset: unfairness landscape"))
    print()

    search = MuffinSearch(
        pool,
        attributes=list(ATTRIBUTES),
        base_model=custom_arch,
        search_config=SearchConfig(episodes=40, episode_batch=5, seed=13),
        head_config=HeadTrainConfig(epochs=25),
    )
    result = search.run()
    muffin = search.finalize(result, metric="reward", name="Muffin(ClinicNet)")

    vanilla = pool.evaluate(custom_arch)
    fused_eval = muffin.test_evaluation
    rows = [
        {
            "model": f"{custom_arch} (vanilla)",
            "accuracy": vanilla.accuracy,
            "U(camera)": vanilla.unfairness["camera"],
            "U(region)": vanilla.unfairness["region"],
        },
        {
            "model": muffin.name,
            "accuracy": fused_eval.accuracy,
            "U(camera)": fused_eval.unfairness["camera"],
            "U(region)": fused_eval.unfairness["region"],
        },
    ]
    print(format_table(rows, title="Muffin on the custom dataset"))
    print()
    print(f"Selected body: {muffin.record.candidate.model_names}")
    print(f"Selected head: MLP{list(muffin.record.candidate.hidden_sizes)} "
          f"({muffin.record.candidate.activation})")


if __name__ == "__main__":
    main()

"""Regenerate every table and figure of the paper from the command line.

Thin wrapper around :mod:`repro.experiments.runner`.  By default it runs at
the "fast" scale (CI-friendly); pass ``--scale paper`` for the
paper-equivalent configuration, or list specific experiment ids::

    python examples/reproduce_paper.py fig1 table1 --output-dir results/

The structured per-experiment JSON and a combined text report are written to
``--output-dir`` when given.
"""

import sys

from repro.experiments.runner import main

if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))

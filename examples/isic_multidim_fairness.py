"""Full ISIC2019 workflow: observe the problem, show the baselines fail,
then unite models with Muffin.

The script walks through the paper's narrative on the synthetic ISIC2019
stand-in:

1. train the model pool and print the unfairness landscape (Observation 1 /
   Figure 1): gender is fair, age and site are not, and no architecture is
   best on both;
2. apply the single-attribute baselines (Method D = data balancing,
   Method L = fair loss) to one architecture and show the see-saw
   (Observation 2 / Figure 2);
3. run the Muffin search anchored on that architecture and show that the
   fused model improves *both* attributes and the accuracy (Table I row).

Run with::

    python examples/isic_multidim_fairness.py
"""

from repro.baselines import SingleAttributeOptimizer
from repro.core import MuffinSearch, SearchConfig, HeadTrainConfig
from repro.data import SyntheticISIC2019, split_dataset
from repro.fairness import relative_improvement
from repro.utils import format_table
from repro.zoo import ModelPool, TrainConfig

BASE_MODEL = "ShuffleNet_V2_X1_0"
ATTRIBUTES = ("age", "site")


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Dataset, split and model pool
    # ------------------------------------------------------------------
    dataset = SyntheticISIC2019(num_samples=6000, seed=2019)
    split = split_dataset(dataset, seed=1)
    pool = ModelPool(split, train_config=TrainConfig(epochs=40, batch_size=256), seed=0).build()

    landscape = [
        {
            "model": name,
            "accuracy": ev.accuracy,
            "U(age)": ev.unfairness["age"],
            "U(site)": ev.unfairness["site"],
            "U(gender)": ev.unfairness["gender"],
        }
        for name, ev in pool.evaluate_all().items()
    ]
    print(format_table(landscape, title="Observation 1: unfairness exists on multiple attributes"))
    print()

    # ------------------------------------------------------------------
    # 2. Single-attribute baselines on the base model (the see-saw)
    # ------------------------------------------------------------------
    optimizer = SingleAttributeOptimizer(split, train_config=TrainConfig(epochs=40, batch_size=256))
    study = optimizer.run(pool.get(BASE_MODEL), ATTRIBUTES)
    seesaw = study.seesaw_pairs(ATTRIBUTES)
    print(format_table(seesaw, title=f"Observation 2: single-attribute optimization of {BASE_MODEL}"))
    print("(negative delta = fairer; the optimized attribute improves, the other one degrades)")
    print()

    # ------------------------------------------------------------------
    # 3. Muffin search anchored on the base model
    # ------------------------------------------------------------------
    search = MuffinSearch(
        pool,
        attributes=list(ATTRIBUTES),
        base_model=BASE_MODEL,
        search_config=SearchConfig(episodes=60, episode_batch=5, seed=0),
        head_config=HeadTrainConfig(epochs=25),
    )
    result = search.run()
    muffin = search.finalize(result, metric="reward", name=f"Muffin({BASE_MODEL})")

    vanilla = study.vanilla
    fused_eval = muffin.test_evaluation
    table_row = {
        "model": BASE_MODEL,
        "vanilla U(age)": vanilla.unfairness["age"],
        "vanilla U(site)": vanilla.unfairness["site"],
        "vanilla acc": vanilla.accuracy,
        "muffin paired": "+".join(
            name for name in muffin.record.candidate.model_names if name != BASE_MODEL
        ),
        "muffin U(age)": fused_eval.unfairness["age"],
        "age vs vil": relative_improvement(vanilla.unfairness["age"], fused_eval.unfairness["age"]),
        "muffin U(site)": fused_eval.unfairness["site"],
        "site vs vil": relative_improvement(
            vanilla.unfairness["site"], fused_eval.unfairness["site"]
        ),
        "muffin acc": fused_eval.accuracy,
        "acc imp": fused_eval.accuracy - vanilla.accuracy,
    }
    print(format_table([table_row], title="Table I style summary: Muffin unites off-the-shelf models"))
    print()
    print(f"Search explored {len(result)} candidates; best reward {result.best_record().reward:.2f}")


if __name__ == "__main__":
    main()

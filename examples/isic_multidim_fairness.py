"""Full ISIC2019 workflow: observe the problem, show the baselines fail,
then unite models with Muffin.

The script walks through the paper's narrative on the synthetic ISIC2019
stand-in, with the pipeline stages (dataset, split, pool, search, finalize)
declared as one :class:`~repro.api.RunSpec`:

1. train the model pool and print the unfairness landscape (Observation 1 /
   Figure 1): gender is fair, age and site are not, and no architecture is
   best on both;
2. apply the single-attribute baselines (Method D = data balancing,
   Method L = fair loss) to one architecture and show the see-saw
   (Observation 2 / Figure 2);
3. run the Muffin search anchored on that architecture and show that the
   fused model improves *both* attributes and the accuracy (Table I row).

Run with::

    python examples/isic_multidim_fairness.py
"""

from repro.api import DatasetSpec, FinalizeSpec, MuffinPipeline, PoolSpec, RunSpec, SearchSpec
from repro.baselines import SingleAttributeOptimizer
from repro.fairness import relative_improvement
from repro.utils import format_table
from repro.zoo import TrainConfig

BASE_MODEL = "ShuffleNet_V2_X1_0"
ATTRIBUTES = ("age", "site")


def main() -> None:
    # ------------------------------------------------------------------
    # 1. The declared pipeline: dataset, split, pool, search, finalize
    # ------------------------------------------------------------------
    spec = RunSpec(
        name="isic-multidim",
        dataset=DatasetSpec(name="synthetic_isic", num_samples=6000, seed=2019, split_seed=1),
        pool=PoolSpec(epochs=40, batch_size=256, seed=0),
        search=SearchSpec(
            attributes=ATTRIBUTES,
            base_model=BASE_MODEL,
            episodes=60,
            episode_batch=5,
            head_epochs=25,
            seed=0,
        ),
        finalize=FinalizeSpec(selection="reward", name=f"Muffin({BASE_MODEL})"),
    )
    outcome = MuffinPipeline(spec).run()
    pool, result, muffin = outcome.pool, outcome.result, outcome.muffin

    landscape = [
        {
            "model": name,
            "accuracy": ev.accuracy,
            "U(age)": ev.unfairness["age"],
            "U(site)": ev.unfairness["site"],
            "U(gender)": ev.unfairness["gender"],
        }
        for name, ev in pool.evaluate_all().items()
    ]
    print(format_table(landscape, title="Observation 1: unfairness exists on multiple attributes"))
    print()

    # ------------------------------------------------------------------
    # 2. Single-attribute baselines on the base model (the see-saw)
    # ------------------------------------------------------------------
    optimizer = SingleAttributeOptimizer(
        outcome.split, train_config=TrainConfig(epochs=40, batch_size=256)
    )
    study = optimizer.run(pool.get(BASE_MODEL), ATTRIBUTES)
    seesaw = study.seesaw_pairs(ATTRIBUTES)
    print(format_table(seesaw, title=f"Observation 2: single-attribute optimization of {BASE_MODEL}"))
    print("(negative delta = fairer; the optimized attribute improves, the other one degrades)")
    print()

    # ------------------------------------------------------------------
    # 3. The Muffin-Net the pipeline finalised
    # ------------------------------------------------------------------
    vanilla = study.vanilla
    fused_eval = muffin.test_evaluation
    table_row = {
        "model": BASE_MODEL,
        "vanilla U(age)": vanilla.unfairness["age"],
        "vanilla U(site)": vanilla.unfairness["site"],
        "vanilla acc": vanilla.accuracy,
        "muffin paired": "+".join(
            name for name in muffin.record.candidate.model_names if name != BASE_MODEL
        ),
        "muffin U(age)": fused_eval.unfairness["age"],
        "age vs vil": relative_improvement(vanilla.unfairness["age"], fused_eval.unfairness["age"]),
        "muffin U(site)": fused_eval.unfairness["site"],
        "site vs vil": relative_improvement(
            vanilla.unfairness["site"], fused_eval.unfairness["site"]
        ),
        "muffin acc": fused_eval.accuracy,
        "acc imp": fused_eval.accuracy - vanilla.accuracy,
    }
    print(format_table([table_row], title="Table I style summary: Muffin unites off-the-shelf models"))
    print()
    print(f"Search explored {len(result)} candidates; best reward {result.best_record().reward:.2f}")


if __name__ == "__main__":
    main()

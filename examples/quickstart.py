"""Quickstart: run a Muffin pipeline end-to-end from a declarative spec.

This script exercises the highest-level entry point of the library, the
declarative Pipeline API: it loads ``examples/specs/quickstart.json``
(dataset -> split -> pool -> search -> finalize -> report), executes it with
artifact caching — a second run resumes from the cached pool and search —
and prints the paper-style comparison between the vanilla base model and
the discovered Muffin-Net.

Run with::

    python examples/quickstart.py

or, equivalently, straight from the spec file::

    python -m repro run examples/specs/quickstart.json
"""

from pathlib import Path

from repro.api import MuffinPipeline, RunSpec
from repro.fairness import relative_improvement
from repro.utils import format_table

SPEC_PATH = Path(__file__).parent / "specs" / "quickstart.json"


def main() -> None:
    spec = RunSpec.from_json(SPEC_PATH)
    base_model = spec.search.base_model
    pipeline = MuffinPipeline(spec, cache_dir=MuffinPipeline.default_cache_dir(spec))
    outcome = pipeline.run()

    vanilla = outcome.pool.evaluate(base_model, partition="test")
    muffin = outcome.muffin
    fused_eval = muffin.test_evaluation

    rows = [
        {
            "model": f"{base_model} (vanilla)",
            "accuracy": vanilla.accuracy,
            "U(age)": vanilla.unfairness["age"],
            "U(site)": vanilla.unfairness["site"],
        },
        {
            "model": muffin.name,
            "accuracy": fused_eval.accuracy,
            "U(age)": fused_eval.unfairness["age"],
            "U(site)": fused_eval.unfairness["site"],
        },
    ]
    print(format_table(rows, title="Quickstart: vanilla vs Muffin"))
    print()
    for timing in outcome.timings:
        print(f"  {timing.stage:<10} {timing.status:<8} {timing.seconds:8.3f}s")
    print()
    print(f"Muffin body: {muffin.record.candidate.model_names}")
    print(f"Muffin head: MLP{list(muffin.record.candidate.hidden_sizes)} "
          f"({muffin.record.candidate.activation})")
    print(
        "Fairness improvement: "
        f"age {relative_improvement(vanilla.unfairness['age'], fused_eval.unfairness['age']):+.1%}, "
        f"site {relative_improvement(vanilla.unfairness['site'], fused_eval.unfairness['site']):+.1%}, "
        f"accuracy {fused_eval.accuracy - vanilla.accuracy:+.2%}"
    )
    if outcome.resumed_stages:
        print(f"(resumed from cache: {', '.join(outcome.resumed_stages)})")


if __name__ == "__main__":
    main()

"""Quickstart: run a small Muffin search end-to-end in one call.

This script exercises the highest-level entry point of the library,
``repro.quick_muffin_search``: it builds the synthetic ISIC2019 stand-in,
trains the ten-model pool, runs a short reinforcement-learning search
anchored on MobileNet_V3_Small and prints the paper-style comparison
between the vanilla base model and the discovered Muffin-Net.

Run with::

    python examples/quickstart.py
"""

from repro import quick_muffin_search
from repro.fairness import relative_improvement
from repro.utils import format_table


def main() -> None:
    base_model = "MobileNet_V3_Small"
    outcome = quick_muffin_search(base_model=base_model, episodes=40, num_samples=5000, seed=0)

    pool = outcome["pool"]
    muffin = outcome["muffin"]
    vanilla = pool.evaluate(base_model, partition="test")
    fused_eval = muffin.test_evaluation

    rows = [
        {
            "model": f"{base_model} (vanilla)",
            "accuracy": vanilla.accuracy,
            "U(age)": vanilla.unfairness["age"],
            "U(site)": vanilla.unfairness["site"],
        },
        {
            "model": muffin.name,
            "accuracy": fused_eval.accuracy,
            "U(age)": fused_eval.unfairness["age"],
            "U(site)": fused_eval.unfairness["site"],
        },
    ]
    print(format_table(rows, title="Quickstart: vanilla vs Muffin"))
    print()
    print(f"Muffin body: {muffin.record.candidate.model_names}")
    print(f"Muffin head: MLP{list(muffin.record.candidate.hidden_sizes)} "
          f"({muffin.record.candidate.activation})")
    print(
        "Fairness improvement: "
        f"age {relative_improvement(vanilla.unfairness['age'], fused_eval.unfairness['age']):+.1%}, "
        f"site {relative_improvement(vanilla.unfairness['site'], fused_eval.unfairness['site']):+.1%}, "
        f"accuracy {fused_eval.accuracy - vanilla.accuracy:+.2%}"
    )


if __name__ == "__main__":
    main()

"""Fitzpatrick17K validation workflow (Section 4.5 / Figures 7-8).

Declares the Fitzpatrick17K stand-in run as a :class:`~repro.api.RunSpec`
(9 classes; skin-tone and lesion-type attributes; the paper's
ResNet/ShuffleNet/MobileNet pool), executes it through the pipeline, and
then uses the pipeline's search driver for the named Muffin-Nets:

* the Pareto comparison between existing models and the Muffin-Nets
  (Figure 7);
* the per-skin-tone accuracy of Muffin-Balance against ResNet-18
  (Figure 8).

Run with::

    python examples/fitzpatrick_validation.py
"""

from repro.api import DatasetSpec, FinalizeSpec, MuffinPipeline, PoolSpec, RunSpec, SearchSpec
from repro.fairness import group_accuracies
from repro.utils import format_table
from repro.zoo import fitzpatrick_pool_names

ATTRIBUTES = ("skin_tone", "type")


def main() -> None:
    spec = RunSpec(
        name="fitzpatrick-validation",
        dataset=DatasetSpec(
            name="synthetic_fitzpatrick", num_samples=5000, seed=1717, split_seed=2
        ),
        pool=PoolSpec(
            architectures=tuple(fitzpatrick_pool_names()), epochs=40, batch_size=256, seed=3
        ),
        search=SearchSpec(
            attributes=ATTRIBUTES,
            num_paired=2,
            episodes=50,
            episode_batch=5,
            head_epochs=25,
            seed=7,
        ),
        finalize=FinalizeSpec(selection="reward", name="Muffin"),
    )
    pipeline = MuffinPipeline(spec)
    outcome = pipeline.run()
    pool, result, split = outcome.pool, outcome.result, outcome.split

    existing = [
        {
            "model": name,
            "accuracy": ev.accuracy,
            "U(skin_tone)": ev.unfairness["skin_tone"],
            "U(type)": ev.unfairness["type"],
            "overall_U": ev.multi_dimensional_unfairness,
        }
        for name, ev in pool.evaluate_all(attributes=ATTRIBUTES).items()
    ]
    print(format_table(existing, title="Existing models on Fitzpatrick17K (stand-in)"))
    print()

    # The pipeline's search driver exposes the full MuffinSearch API, sharing
    # its cached body outputs with the stages that already ran.
    nets = pipeline.search.named_muffin_nets(result)

    muffin_rows = [
        {
            "model": name,
            "paired": "+".join(net.record.candidate.model_names),
            "accuracy": net.test_evaluation.accuracy,
            "U(skin_tone)": net.test_evaluation.unfairness["skin_tone"],
            "U(type)": net.test_evaluation.unfairness["type"],
            "overall_U": net.test_evaluation.multi_dimensional_unfairness,
        }
        for name, net in nets.items()
    ]
    print(format_table(muffin_rows, title="Muffin-Nets on Fitzpatrick17K (Figure 7)"))
    print()

    # Figure 8: per-skin-tone accuracy of Muffin-Balance vs ResNet-18.
    balance = nets["Muffin-Balance"]
    test = split.test
    spec_attr = test.attributes["skin_tone"]
    ids = test.group_ids("skin_tone")
    resnet = pool.get("ResNet-18").predict(test)
    fused = balance.fused.predict(test)
    resnet_groups = group_accuracies(resnet, test.labels, ids, spec_attr)
    fused_groups = group_accuracies(fused, test.labels, ids, spec_attr)
    per_tone = [
        {"skin_tone": tone, "ResNet-18": resnet_groups[tone], "Muffin-Balance": fused_groups[tone]}
        for tone in spec_attr.groups
    ]
    print(format_table(per_tone, title="Per-skin-tone accuracy (Figure 8)"))


if __name__ == "__main__":
    main()

"""Fitzpatrick17K validation workflow (Section 4.5 / Figures 7-8).

Builds the synthetic Fitzpatrick17K stand-in (9 classes; skin-tone and
lesion-type attributes), trains the ResNet/ShuffleNet/MobileNet pool the
paper uses for this dataset, runs a pool-wide Muffin search and prints:

* the Pareto comparison between existing models and the Muffin-Nets
  (Figure 7);
* the per-skin-tone accuracy of Muffin-Balance against ResNet-18
  (Figure 8).

Run with::

    python examples/fitzpatrick_validation.py
"""

from repro.core import MuffinSearch, SearchConfig, HeadTrainConfig
from repro.data import SyntheticFitzpatrick17K, split_dataset
from repro.fairness import group_accuracies
from repro.utils import format_table
from repro.zoo import ModelPool, TrainConfig, fitzpatrick_pool_names

ATTRIBUTES = ("skin_tone", "type")


def main() -> None:
    dataset = SyntheticFitzpatrick17K(num_samples=5000, seed=1717)
    split = split_dataset(dataset, seed=2)
    pool = ModelPool(
        split,
        architecture_names=fitzpatrick_pool_names(),
        train_config=TrainConfig(epochs=40, batch_size=256),
        seed=3,
    ).build()

    existing = [
        {
            "model": name,
            "accuracy": ev.accuracy,
            "U(skin_tone)": ev.unfairness["skin_tone"],
            "U(type)": ev.unfairness["type"],
            "overall_U": ev.multi_dimensional_unfairness,
        }
        for name, ev in pool.evaluate_all(attributes=ATTRIBUTES).items()
    ]
    print(format_table(existing, title="Existing models on Fitzpatrick17K (stand-in)"))
    print()

    search = MuffinSearch(
        pool,
        attributes=list(ATTRIBUTES),
        num_paired=2,
        search_config=SearchConfig(episodes=50, episode_batch=5, seed=7),
        head_config=HeadTrainConfig(epochs=25),
    )
    result = search.run()
    nets = search.named_muffin_nets(result)

    muffin_rows = [
        {
            "model": name,
            "paired": "+".join(net.record.candidate.model_names),
            "accuracy": net.test_evaluation.accuracy,
            "U(skin_tone)": net.test_evaluation.unfairness["skin_tone"],
            "U(type)": net.test_evaluation.unfairness["type"],
            "overall_U": net.test_evaluation.multi_dimensional_unfairness,
        }
        for name, net in nets.items()
    ]
    print(format_table(muffin_rows, title="Muffin-Nets on Fitzpatrick17K (Figure 7)"))
    print()

    # Figure 8: per-skin-tone accuracy of Muffin-Balance vs ResNet-18.
    balance = nets["Muffin-Balance"]
    test = split.test
    spec = test.attributes["skin_tone"]
    ids = test.group_ids("skin_tone")
    resnet = pool.get("ResNet-18").predict(test)
    fused = balance.fused.predict(test)
    resnet_groups = group_accuracies(resnet, test.labels, ids, spec)
    fused_groups = group_accuracies(fused, test.labels, ids, spec)
    per_tone = [
        {"skin_tone": tone, "ResNet-18": resnet_groups[tone], "Muffin-Balance": fused_groups[tone]}
        for tone in spec.groups
    ]
    print(format_table(per_tone, title="Per-skin-tone accuracy (Figure 8)"))


if __name__ == "__main__":
    main()

"""Benchmark: parallel episode-batch evaluation of the Muffin search.

Episodes inside one controller batch are independent until the REINFORCE
update (Equation 4), so the search evaluates the whole ``episode_batch``
concurrently through a pluggable executor.  This benchmark verifies the two
load-bearing claims of that design:

* a seeded search returns **bit-identical** records on the serial and the
  process executors (parallelism changes wall-clock, never results);
* on a multi-core runner the process executor is measurably faster than
  serial at ``episode_batch >= 4`` (single-core machines skip the speedup
  assertion — there is nothing to parallelise onto);
* the shared-memory task transport ships at least **10x** fewer bytes per
  dispatch than pickling the task arrays would have, and leaves no
  ``/dev/shm`` segment behind after the run.
"""

import glob
import os
import time

import pytest

from repro.core import HeadTrainConfig, MuffinSearch, SearchConfig
from repro.core.sharedmem import SEGMENT_PREFIX
from repro.data import SyntheticISIC2019, split_dataset
from repro.zoo import ModelPool, TrainConfig

EPISODES = 8
EPISODE_BATCH = 8  # the full batch is dispatched at once


@pytest.fixture(scope="module")
def bench_pool() -> ModelPool:
    dataset = SyntheticISIC2019(num_samples=2500, seed=2019)
    split = split_dataset(dataset, seed=1)
    return ModelPool(
        split,
        architecture_names=["MobileNet_V3_Small", "ResNet-18", "DenseNet121"],
        train_config=TrainConfig(epochs=10, batch_size=256, lr=0.1, seed=0),
        seed=0,
    ).build()


def _timed_search(pool: ModelPool, executor: str, rounds: int = 2):
    """Run the same seeded search ``rounds`` times; keep the fastest time.

    Best-of-N guards the wall-clock comparison against scheduler noise on
    small CI runners (the results are identical every round by construction).
    """
    result = None
    best = float("inf")
    for _ in range(rounds):
        search = MuffinSearch(
            pool,
            attributes=["age", "site"],
            base_model="MobileNet_V3_Small",
            search_config=SearchConfig(
                episodes=EPISODES,
                episode_batch=EPISODE_BATCH,
                seed=0,
                executor=executor,
                # memoisation off so both runs train every head: a clean
                # apples-to-apples wall-clock comparison
                memoize=False,
            ),
            # Heavy enough per task (~0.3s) that pool start-up and per-task
            # pickling cannot eclipse the parallel win on a small runner.
            # The fused fast path is pinned off: this benchmark measures the
            # *executor's* ability to parallelise the python-bound autograd
            # loop (the fused kernels have their own benchmark in
            # test_bench_head_training.py, and bypass the executor).
            head_config=HeadTrainConfig(epochs=60, seed=0, use_fused=False),
        )
        start = time.perf_counter()
        result = search.run()
        best = min(best, time.perf_counter() - start)
    return result, best


def test_bench_parallel_episode_batch(bench_pool):
    serial_result, serial_seconds = _timed_search(bench_pool, "serial")
    parallel_result, parallel_seconds = _timed_search(bench_pool, "process")

    # Determinism first: the speedup is worthless if results drift.
    assert [r.reward for r in serial_result.records] == [
        r.reward for r in parallel_result.records
    ]
    assert [r.candidate for r in serial_result.records] == [
        r.candidate for r in parallel_result.records
    ]

    # Transport accounting: the process executor must have shipped
    # shared-memory descriptors, not pickled matrices, and the serial run
    # must not have shipped anything at all.
    serial_stats = serial_result.execution_stats
    assert serial_stats.task_bytes_raw == 0
    assert serial_stats.task_bytes_shipped == 0
    stats = parallel_result.execution_stats
    assert stats.task_bytes_shipped > 0
    transport_saving = stats.task_bytes_raw / max(stats.task_bytes_shipped, 1)
    assert transport_saving >= 10.0, (
        f"shared-memory transport only saved x{transport_saving:.1f} over "
        f"pickling (raw {stats.task_bytes_raw} bytes, shipped "
        f"{stats.task_bytes_shipped} bytes; expected >= 10x)"
    )
    # And the master released every segment when the run shut down.
    leaked = glob.glob(f"/dev/shm/{SEGMENT_PREFIX}*")
    assert leaked == [], f"leaked shared-memory segments: {leaked}"

    speedup = serial_seconds / max(parallel_seconds, 1e-9)
    print(
        f"\n[bench] episode_batch={EPISODE_BATCH}: serial {serial_seconds:.3f}s, "
        f"process {parallel_seconds:.3f}s, speedup x{speedup:.2f} "
        f"({os.cpu_count()} CPUs); transport shipped "
        f"{stats.task_bytes_shipped} bytes vs {stats.task_bytes_raw} raw "
        f"(x{transport_saving:.0f} saved)"
    )

    cpus = os.cpu_count() or 1
    if cpus < 2:
        pytest.skip("single-core runner: results verified identical, no cores to parallelise onto")
    if cpus < 4:
        # On 2-3 cores, fork/pickle overhead can eat most of the win under
        # load; require only that parallelism is not pathologically slower,
        # so a busy runner cannot flake the blocking tier-1 run.
        assert parallel_seconds < serial_seconds * 1.25, (
            f"process executor ({parallel_seconds:.3f}s) pathologically slower than serial "
            f"({serial_seconds:.3f}s) on {cpus} CPUs"
        )
        return
    # A genuinely multi-core runner must see a measured wall-clock win;
    # the 0.9 factor keeps a contended shared runner from flaking the
    # blocking tier-1 run on scheduler noise (ideal here is ~0.25x).
    assert parallel_seconds < serial_seconds * 0.9, (
        f"process executor ({parallel_seconds:.3f}s) not faster than serial "
        f"({serial_seconds:.3f}s) on {cpus} CPUs"
    )

"""Benchmark: Figure 8 — per-skin-tone accuracy of Muffin-Balance.

Paper claims reproduced:

* Muffin-Balance redistributes accuracy across the Fitzpatrick scale in a
  complementary way: some tones gain, some lose a little, the spread
  narrows and overall accuracy is essentially unaffected.
"""

from repro.experiments import render_fig8, run_fig8


def test_bench_fig8_skin_tone_detail(benchmark, context):
    results = benchmark.pedantic(run_fig8, args=(context,), rounds=1, iterations=1)
    print()
    print(render_fig8(results))

    rows = results["rows"]
    claims = results["claims"]
    assert [row["skin_tone"] for row in rows] == [
        "light",
        "white",
        "medium",
        "olive",
        "brown",
        "black",
    ]
    assert claims["groups_improved"] >= 1
    assert claims["muffin_fairer_on_skin_tone"]
    assert claims["muffin_narrows_skin_tone_spread"]
    assert claims["overall_accuracy_unaffected"]

"""Benchmark: Figure 3 — models are complementary on the unprivileged group.

Paper claims reproduced:

* ResNet-18 and the site-optimized DenseNet121 disagree on a substantial
  fraction of unprivileged-site samples (15.93% in the paper);
* an oracle that unites the two models beats both members on the
  unprivileged group — the headroom Muffin's head exploits.
"""

from repro.experiments import render_fig3, run_fig3


def test_bench_fig3_disagreement_decomposition(benchmark, context):
    results = benchmark.pedantic(run_fig3, args=(context,), rounds=1, iterations=1)
    print()
    print(render_fig3(results))

    breakdown = results["breakdown"]
    claims = results["claims"]
    total = breakdown["00"] + breakdown["01"] + breakdown["10"] + breakdown["11"]
    assert abs(total - 1.0) < 1e-9
    # Paper: disagreement = 15.93%; accept a broad band around it.
    assert 0.05 < claims["disagreement_fraction"] < 0.5
    assert claims["oracle_beats_both_members_on_unprivileged"]
    assert claims["oracle_unprivileged_accuracy"] > 0.7

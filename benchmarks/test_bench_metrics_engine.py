"""Benchmark: vectorized batch metric evaluation vs the seed scalar loop.

The seed implementation scored one model on one attribute at a time,
rebuilding a boolean mask per group in Python; the
:class:`~repro.fairness.engine.EvaluationEngine` scores a whole candidate
batch on every attribute in a handful of matmuls against a precomputed
:class:`~repro.data.groups.GroupIndexBank`.  This benchmark verifies the
two load-bearing claims of that design on a multi-candidate ×
multi-attribute workload (the shape of one Muffin search episode batch):

* the engine's output is **bit-identical** to the seed scalar loop on
  every candidate, attribute and group;
* the engine is measurably faster.

Setting ``REPRO_BENCH_IDENTITY_ONLY=1`` (the CI smoke step; the legacy
``METRICS_BENCH_IDENTITY_ONLY`` still works) skips the wall-clock
assertion while keeping the identity check, so constrained or noisy
runners still verify correctness.

A second pass re-runs the engine on the ``numpy-float32`` backend.  On
hard 0/1 predictions its counting GEMMs are exact below 2^24 per partial
sum, so even the reduced-precision engine must stay bit-identical here.
"""

import os
import time

import numpy as np

from repro.bench import identity_only
from repro.data import SyntheticISIC2019
from repro.fairness import EvaluationEngine, FairnessEvaluation

NUM_CANDIDATES = 64
NUM_SAMPLES = 6000
ROUNDS = 3  # best-of-N guards the comparison against scheduler noise


# ----------------------------------------------------------------------
# The seed implementation, reproduced verbatim as the reference.
# ----------------------------------------------------------------------


def _legacy_overall_accuracy(predictions, labels):
    if labels.size == 0:
        return 0.0
    return float((predictions == labels).mean())


def _legacy_group_accuracies(predictions, labels, group_ids, spec):
    overall = _legacy_overall_accuracy(predictions, labels)
    accuracies = {}
    for index, group in enumerate(spec.groups):
        mask = group_ids == index
        if mask.any():
            accuracies[group] = float((predictions[mask] == labels[mask]).mean())
        else:
            accuracies[group] = overall
    return accuracies


def _legacy_evaluate_predictions(predictions, dataset):
    accuracy = _legacy_overall_accuracy(predictions, dataset.labels)
    unfairness, per_group, gaps = {}, {}, {}
    for name in dataset.attributes.names:
        spec = dataset.attributes[name]
        ids = dataset.group_ids(name)
        per_group[name] = _legacy_group_accuracies(predictions, dataset.labels, ids, spec)
        unfairness[name] = float(
            sum(abs(acc - accuracy) for acc in per_group[name].values())
        )
        values = list(per_group[name].values())
        gaps[name] = float(max(values) - min(values))
    return FairnessEvaluation(
        accuracy=accuracy, unfairness=unfairness, group_accuracy=per_group, gaps=gaps
    )


def _candidate_predictions(dataset, num_candidates):
    """Simulated candidate batch: label flips at per-candidate error rates."""
    rng = np.random.default_rng(2023)
    labels = dataset.labels
    stacked = np.empty((num_candidates, len(dataset)), dtype=np.int64)
    for i in range(num_candidates):
        error_rate = 0.05 + 0.3 * (i / max(num_candidates - 1, 1))
        flip = rng.random(len(dataset)) < error_rate
        noise = rng.integers(0, dataset.num_classes, len(dataset))
        stacked[i] = np.where(flip, noise, labels)
    return stacked


def test_bench_metrics_engine_identity_and_speed():
    dataset = SyntheticISIC2019(num_samples=NUM_SAMPLES, seed=2019)
    stacked = _candidate_predictions(dataset, NUM_CANDIDATES)

    # Warm the dataset's group-index bank outside the timed region, exactly
    # as a search warms it on its first episode batch.
    engine = EvaluationEngine.for_dataset(dataset)

    legacy_seconds = float("inf")
    for _ in range(ROUNDS):
        start = time.perf_counter()
        legacy = [_legacy_evaluate_predictions(stacked[i], dataset) for i in range(NUM_CANDIDATES)]
        legacy_seconds = min(legacy_seconds, time.perf_counter() - start)

    engine_seconds = float("inf")
    for _ in range(ROUNDS):
        start = time.perf_counter()
        batch = engine.evaluate(stacked)
        evaluations = batch.evaluations()
        engine_seconds = min(engine_seconds, time.perf_counter() - start)

    # Identity first: the speedup is worthless if a single bit drifts.
    num_attrs = len(dataset.attributes.names)
    for expected, got in zip(legacy, evaluations):
        assert got.accuracy == expected.accuracy
        assert got.unfairness == expected.unfairness
        assert got.group_accuracy == expected.group_accuracy
        assert got.gaps == expected.gaps

    speedup = legacy_seconds / max(engine_seconds, 1e-9)
    print(
        f"\n[bench] {NUM_CANDIDATES} candidates x {num_attrs} attributes x "
        f"{NUM_SAMPLES} samples: scalar loop {legacy_seconds:.4f}s, "
        f"engine {engine_seconds:.4f}s, speedup x{speedup:.1f}"
    )

    if identity_only():
        return  # constrained runner: identity verified, timing skipped
    # The scalar loop allocates one mask per group per candidate; the engine
    # does a few matmuls.  The gap is an order of magnitude on any hardware,
    # so a 0.7 factor cannot flake on a busy runner.
    assert engine_seconds < legacy_seconds * 0.7, (
        f"engine ({engine_seconds:.4f}s) not measurably faster than the seed "
        f"scalar loop ({legacy_seconds:.4f}s)"
    )


def test_bench_metrics_engine_float32_backend_identity():
    """Float32 scoring GEMMs are exact on 0/1 counts — bit-identical output."""
    dataset = SyntheticISIC2019(num_samples=NUM_SAMPLES, seed=2019)
    stacked = _candidate_predictions(dataset, NUM_CANDIDATES)

    reference = EvaluationEngine.for_dataset(dataset).evaluate(stacked).evaluations()

    engine32 = EvaluationEngine.for_dataset(dataset, backend="numpy-float32")
    seconds = float("inf")
    evaluations = []
    for _ in range(ROUNDS):
        start = time.perf_counter()
        evaluations = engine32.evaluate(stacked).evaluations()
        seconds = min(seconds, time.perf_counter() - start)

    for expected, got in zip(reference, evaluations):
        assert got.accuracy == expected.accuracy
        assert got.unfairness == expected.unfairness
        assert got.group_accuracy == expected.group_accuracy
        assert got.gaps == expected.gaps

    print(
        f"\n[bench] float32 engine, {NUM_CANDIDATES} candidates x "
        f"{NUM_SAMPLES} samples: {seconds:.4f}s, bit-identical to float64"
    )

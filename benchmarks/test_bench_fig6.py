"""Benchmark: Figure 6 — per-subgroup detail of Muffin-Site.

Paper claims reproduced:

* the site specialist unites two pool models and improves (or preserves)
  the accuracy of the unprivileged site groups relative to its members;
* the accuracy composition shows Muffin keeping most samples that either
  member classifies correctly (small "recoverable error").
"""

from repro.experiments import render_fig6, run_fig6


def test_bench_fig6_muffin_site_detail(benchmark, context):
    results = benchmark.pedantic(run_fig6, args=(context,), rounds=1, iterations=1)
    print()
    print(render_fig6(results))

    assert len(results["members"]) >= 2
    assert len(results["panels"]["age"]) == 6
    assert len(results["panels"]["site"]) == 9
    assert len(results["composition_rows"]) >= 3

    claims = results["claims"]
    # Most unprivileged site groups are at least as good as the best member.
    assert (
        claims["unprivileged_site_groups_not_worse_than_best_member"]
        >= claims["unprivileged_site_groups_total"] * 0.4
    )
    # The error that an oracle could have recovered stays small.
    assert claims["mean_recoverable_error"] < 0.30

    # Composition fractions are consistent: accuracy + error components = 1.
    for row in results["composition_rows"]:
        parts = [value for key, value in row.items() if key not in ("group", "muffin_accuracy")]
        assert abs(sum(parts) - 1.0) < 1e-6

"""Benchmark: the sharded serving tier under sustained open-loop load,
with and without an injected mid-burst shard kill.

The fault-tolerance claims this benchmark backs:

* under **open-loop** arrival (requests paced by a clock, not by responses
  — the arrival rate does not slow down when the server does) a 2-shard
  pool sustains the offered load with a bounded p99 latency;
* an **injected shard crash** mid-burst (a deterministic ``FaultPlan``, not
  a lucky race) loses *zero accepted requests*: every response stays
  bit-identical to the single-shard reference, the supervisor restarts the
  shard, and the pool's throughput **recovers** — the post-recovery
  half of the run serves at least half the healthy run's rate;
* recovery is fast: the killed slot is back to ``healthy`` within the
  restart backoff plus a supervision sweep, reported as recovery time.

Set ``REPRO_BENCH_IDENTITY_ONLY=1`` to skip the wall-clock/SLO assertions
on heavily shared runners; identity and zero-loss checks always run.
"""

import time

import numpy as np
import pytest

from repro.bench import identity_only
from repro.core import FusedModel
from repro.core.search_space import FusingCandidate
from repro.data import FeatureSchema, SyntheticISIC2019, split_dataset
from repro.serve import (
    FaultEvent,
    FaultPlan,
    InferenceServer,
    ServeConfig,
    ShardState,
)
from repro.zoo import ModelPool, TrainConfig

REQUESTS = 120  # open-loop arrivals per measured run
ARRIVAL_INTERVAL_S = 0.002  # 500 req/s offered load
P99_SLO_MS = 250.0  # generous: CI runners share cores with the shards


@pytest.fixture(scope="module")
def serving_setup():
    dataset = SyntheticISIC2019(num_samples=1500, seed=2019)
    split = split_dataset(dataset, seed=1)
    pool = ModelPool(
        split,
        architecture_names=["MobileNet_V3_Small", "ResNet-18", "DenseNet121"],
        train_config=TrainConfig(epochs=10, batch_size=256, lr=0.1, seed=0),
        seed=0,
    ).build()
    candidate = FusingCandidate(
        model_names=tuple(pool.names), hidden_sizes=(16,), activation="relu"
    )
    fused = FusedModel.from_candidate(candidate, pool.models(), seed=7)
    schema = FeatureSchema.from_dataset(dataset)
    fused.bind_schema(schema)
    features = schema.features(split.test)
    reference = fused.predict_features(features)
    return fused, features, reference


def _make_server(fused, fault_plan=None):
    return InferenceServer(
        fused,
        ServeConfig(
            batch_window_ms=2.0,
            max_batch=32,
            log_every=0,
            num_shards=2,
            queue_depth=256,
            fault_plan=fault_plan,
            restart_backoff_ms=20.0,
            supervise_interval_ms=10.0,
        ),
    )


def _open_loop_run(server, features):
    """Pace REQUESTS single-sample arrivals off the clock; collect latencies.

    Open loop is the honest load model: a slow server does not slow the
    arrival process down, it grows the queue — which is exactly the regime
    admission control and supervision exist for.
    """
    pending = []
    run_start = time.perf_counter()
    for i in range(REQUESTS):
        target = run_start + i * ARRIVAL_INTERVAL_S
        delay = target - time.perf_counter()
        if delay > 0:
            time.sleep(delay)
        pending.append((i, server.submit(features[i : i + 1])))
    for _, request in pending:
        assert request.done.wait(timeout=60)
    elapsed = time.perf_counter() - run_start
    return pending, elapsed


def test_sustained_load_meets_p99_slo(serving_setup):
    """Healthy 2-shard pool under open-loop load: identity + p99 SLO."""
    fused, features, reference = serving_setup
    server = _make_server(fused).start()
    try:
        pending, elapsed = _open_loop_run(server, features)
        latencies = []
        for i, request in pending:
            assert request.error is None, f"request {i}: {request.error!r}"
            np.testing.assert_array_equal(
                request.response.predictions, reference[i : i + 1]
            )
            latencies.append(request.response.latency_ms)
        p99 = float(np.percentile(np.asarray(latencies, dtype=np.float64), 99))
        throughput = REQUESTS / elapsed
        print(
            f"\n[serve-survival] healthy: {throughput:,.0f} req/s, "
            f"p99 {p99:.1f}ms (SLO {P99_SLO_MS:.0f}ms)"
        )
    finally:
        server.stop()
    if identity_only():
        pytest.skip("REPRO_BENCH_IDENTITY_ONLY=1: p99 SLO assertion skipped")
    assert p99 <= P99_SLO_MS, f"p99 {p99:.1f}ms blew the {P99_SLO_MS:.0f}ms SLO"


def test_shard_kill_recovers_with_zero_lost_requests(serving_setup):
    """Kill shard 0 mid-burst: zero losses, bit-identity, bounded recovery."""
    fused, features, reference = serving_setup
    plan = FaultPlan([FaultEvent(kind="crash_shard", shard=0, at_batch=1)])
    server = _make_server(fused, fault_plan=plan).start()
    try:
        pending, elapsed = _open_loop_run(server, features)
        # Zero accepted requests lost, every answer bit-identical.
        for i, request in pending:
            assert request.error is None, f"request {i}: {request.error!r}"
            np.testing.assert_array_equal(
                request.response.predictions, reference[i : i + 1]
            )
        stats = server.stats()
        assert stats["restarts"] >= 1, "the planned crash never fired"
        # Recovery time: from the run's start until the killed slot is
        # healthy again in a fresh generation.
        recover_start = time.perf_counter()
        while True:
            slot0 = server.stats()["shards"][0]
            if slot0["generation"] >= 1 and slot0["state"] == ShardState.HEALTHY:
                break
            if time.perf_counter() - recover_start > 30.0:
                pytest.fail(f"slot 0 never recovered: {slot0}")
            time.sleep(0.01)
        recovery_s = time.perf_counter() - recover_start
        # Post-recovery throughput: the second half of a fresh closed burst
        # must serve at a healthy rate through both shards.
        burst_start = time.perf_counter()
        fresh = [server.submit(features[i : i + 1]) for i in range(REQUESTS)]
        for request in fresh:
            assert request.done.wait(timeout=60)
            assert request.error is None
        burst_elapsed = time.perf_counter() - burst_start
        throughput = REQUESTS / elapsed
        post_throughput = REQUESTS / burst_elapsed
        print(
            f"\n[serve-survival] crash run: {throughput:,.0f} req/s with a "
            f"mid-burst shard kill, redispatched={stats['redispatched']}, "
            f"recovery<= {recovery_s * 1000:.0f}ms, "
            f"post-recovery: {post_throughput:,.0f} req/s"
        )
    finally:
        server.stop()
    if identity_only():
        pytest.skip("REPRO_BENCH_IDENTITY_ONLY=1: recovery-rate assertion skipped")
    assert post_throughput >= 0.5 * throughput, (
        f"post-recovery throughput {post_throughput:,.0f} req/s fell below "
        f"half the crash-run rate {throughput:,.0f} req/s"
    )

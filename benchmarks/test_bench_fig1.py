"""Benchmark: Figure 1 — unfairness landscape of existing architectures.

Paper claims reproduced (shape, not absolute numbers):

* gender unfairness is small for every architecture (< 0.12 in the paper);
* age and site unfairness are several times larger;
* no single architecture is best on both age and site (ResNet-18 vs
  DenseNet121 in the paper; the family-level trade-off here).
"""

from repro.experiments import render_fig1, run_fig1


def test_bench_fig1_unfairness_landscape(benchmark, context):
    results = benchmark.pedantic(run_fig1, args=(context,), rounds=1, iterations=1)
    print()
    print(render_fig1(results))

    rows = results["rows"]
    claims = results["claims"]
    assert len(rows) == 10
    assert claims["gender_is_nearly_fair"]
    assert claims["age_site_much_more_unfair_than_gender"]
    assert claims["no_single_model_wins_both"]
    assert len(claims["pareto_frontier_age_site"]) >= 2
    # Accuracy range comparable to the paper's 76-82%.
    accuracies = [row["accuracy"] for row in rows]
    assert min(accuracies) > 0.6 and max(accuracies) < 0.95

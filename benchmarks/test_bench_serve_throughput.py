"""Benchmark: micro-batched serving vs one-request-at-a-time forward passes.

The serving subsystem's load-bearing claims:

* the exported artifact round trip is **bit-identical** — ``export ->
  load_fused_model -> predict_features`` returns exactly the predictions of
  the in-memory fused model on the same dataset samples;
* coalescing a 64-request burst into micro-batches serves **>= 5x** the
  requests/sec of answering each request with its own forward pass (the
  predicted labels are asserted identical first — batching changes
  throughput, never answers).

Set ``REPRO_BENCH_IDENTITY_ONLY=1`` (the legacy ``SERVE_BENCH_IDENTITY_ONLY``
still works) to skip the wall-clock assertion on heavily shared runners;
the identity checks always run.
"""

import time

import numpy as np
import pytest

from repro.bench import identity_only
from repro.core import FusedModel
from repro.core.search_space import FusingCandidate
from repro.data import FeatureSchema, SyntheticISIC2019, split_dataset
from repro.serve import InferenceServer, ServeConfig
from repro.zoo import ModelPool, TrainConfig, load_fused_model, save_fused_model

BURST = 64  # concurrent single-sample requests in the measured burst
ROUNDS = 3  # best-of-N guards against scheduler noise


@pytest.fixture(scope="module")
def serving_setup():
    dataset = SyntheticISIC2019(num_samples=1500, seed=2019)
    split = split_dataset(dataset, seed=1)
    pool = ModelPool(
        split,
        architecture_names=["MobileNet_V3_Small", "ResNet-18", "DenseNet121"],
        train_config=TrainConfig(epochs=10, batch_size=256, lr=0.1, seed=0),
        seed=0,
    ).build()
    candidate = FusingCandidate(
        model_names=tuple(pool.names), hidden_sizes=(16,), activation="relu"
    )
    fused = FusedModel.from_candidate(candidate, pool.models(), seed=7)
    schema = FeatureSchema.from_dataset(dataset)
    fused.bind_schema(schema)
    features = schema.features(split.test)[:BURST]
    return fused, schema, split, features


def test_artifact_roundtrip_bit_identical(serving_setup, tmp_path_factory):
    """export -> load -> predict_features == in-memory predictions, exactly."""
    fused, schema, split, _ = serving_setup
    path = save_fused_model(
        fused, tmp_path_factory.mktemp("artifact") / "muffin.json", spec_hash="bench"
    )
    loaded = load_fused_model(path)
    for partition in (split.val, split.test):
        features = schema.features(partition)
        np.testing.assert_array_equal(
            loaded.predict_features(features), fused.predict(partition)
        )
        np.testing.assert_array_equal(
            loaded.predict_proba_features(features),
            fused.predict_proba_features(features),
        )


def _sequential_burst(fused, features):
    """One forward pass per request (the no-batching reference server)."""
    start = time.perf_counter()
    predictions = [fused.predict_features(features[i : i + 1]) for i in range(BURST)]
    return time.perf_counter() - start, np.concatenate(predictions)


def _batched_burst(fused, features):
    """The same burst through the micro-batching server."""
    server = InferenceServer(
        fused, ServeConfig(batch_window_ms=20.0, max_batch=BURST, log_every=0)
    )
    start = time.perf_counter()
    pending = [server.submit(features[i : i + 1]) for i in range(BURST)]
    server.start()
    for request in pending:
        assert request.done.wait(timeout=60)
    elapsed = time.perf_counter() - start
    predictions = np.concatenate([request.response.predictions for request in pending])
    batches = server.batches_served
    server.stop()
    return elapsed, predictions, batches


def test_microbatched_burst_is_5x_faster(serving_setup):
    fused, _, _, features = serving_setup
    reference = fused.predict_features(features)

    sequential_time = float("inf")
    batched_time = float("inf")
    for _ in range(ROUNDS):
        elapsed, sequential_predictions = _sequential_burst(fused, features)
        sequential_time = min(sequential_time, elapsed)
        # Identity first: per-request answers equal the one-at-a-time path.
        np.testing.assert_array_equal(sequential_predictions, reference)

        elapsed, batched_predictions, batches = _batched_burst(fused, features)
        batched_time = min(batched_time, elapsed)
        np.testing.assert_array_equal(batched_predictions, reference)
        assert batches < BURST  # the burst actually coalesced

    sequential_rps = BURST / sequential_time
    batched_rps = BURST / batched_time
    speedup = batched_rps / sequential_rps
    print(
        f"\n[serve-throughput] sequential: {sequential_rps:,.0f} req/s, "
        f"micro-batched: {batched_rps:,.0f} req/s, speedup: {speedup:.1f}x"
    )
    if identity_only():
        pytest.skip("REPRO_BENCH_IDENTITY_ONLY=1: wall-clock assertion skipped")
    assert speedup >= 5.0, (
        f"micro-batching delivered only {speedup:.1f}x the sequential "
        f"requests/sec (expected >= 5x)"
    )

"""Benchmark: Figure 7 — validation on Fitzpatrick17K.

Paper claims reproduced:

* on the second dataset (skin tone and lesion type attributes, smaller
  ResNet/ShuffleNet/MobileNet pool) Muffin again pushes the Pareto frontier;
* the best Muffin-Net lowers the overall (summed) unfairness below the best
  existing model without compromising accuracy.
"""

from repro.experiments import render_fig7, run_fig7


def test_bench_fig7_fitzpatrick_validation(benchmark, context):
    results = benchmark.pedantic(run_fig7, args=(context,), rounds=1, iterations=1)
    print()
    print(render_fig7(results))

    claims = results["claims"]
    assert len(results["existing_rows"]) >= 5
    assert len(results["muffin_rows"]) >= 3
    assert claims["muffin_advances_frontier"]
    assert claims["muffin_lowers_overall_unfairness"]
    assert claims["muffin_accuracy_not_compromised"]

"""Benchmark: Figure 2 — single-attribute optimization is a see-saw.

Paper claims reproduced:

* applying method D or L to one attribute frequently increases the
  unfairness of the other attribute (the see-saw);
* a model already fair on an attribute cannot be pushed much further on it
  (the bottleneck), so single-model optimization cannot deliver
  multi-dimensional fairness.
"""

from repro.experiments import render_fig2, run_fig2


def test_bench_fig2_single_attribute_seesaw(benchmark, context):
    results = benchmark.pedantic(run_fig2, args=(context,), rounds=1, iterations=1)
    print()
    print(render_fig2(results))

    claims = results["claims"]
    assert claims["total_cells"] == 12  # 3 models x 2 methods x 2 attributes
    # The see-saw shows up in a substantial fraction of the optimization cells.
    assert claims["seesaw_events"] >= 3
    assert claims["no_method_improves_both"]

    # Every optimization run reduces (or at least does not explode) the
    # unfairness of its own target attribute on average.
    deltas = results["delta_rows"]
    own_deltas = [
        row[f"delta_U({row['optimized_attribute']})"] for row in deltas
    ]
    assert sum(own_deltas) / len(own_deltas) < 0.05

"""Shared fixtures for the benchmark harness.

Each benchmark regenerates one table or figure of the paper through the
experiment harness.  The expensive artefacts (datasets, model pools, Muffin
searches) are cached in a session-scoped :class:`ExperimentContext`, so the
reported times measure the incremental cost of each experiment on top of the
shared substrate — mirroring how the paper's evaluation reuses one trained
model pool across all figures.
"""

import sys
from pathlib import Path

import pytest

SRC = Path(__file__).parent.parent / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro.experiments import ExperimentConfig, ExperimentContext  # noqa: E402


def bench_config() -> ExperimentConfig:
    """Benchmark-scale configuration.

    Reduced from the paper's 500-episode searches so the full harness runs
    in a few minutes, while keeping the datasets large enough for every
    qualitative claim to reproduce.
    """
    return ExperimentConfig(
        isic_samples=6000,
        fitzpatrick_samples=5000,
        zoo_epochs=40,
        search_episodes=64,
        episode_batch=8,
        head_epochs=25,
    )


@pytest.fixture(scope="session")
def context() -> ExperimentContext:
    return ExperimentContext(bench_config())

"""Benchmark: Figure 9 — ablation studies.

Paper claims reproduced:

* (a) training the same fusing structure on the Algorithm-1-weighted proxy
  dataset yields lower unfairness on both attributes than training it on
  the original (uniformly weighted) dataset, at equal accuracy;
* (b) growing the muffin body from 1 to 4 models inflates the parameter
  count far faster than the reward improves — the trade-off that justifies
  pairing two models.
"""

from repro.experiments import render_fig9, run_fig9


def test_bench_fig9_ablations(benchmark, context):
    results = benchmark.pedantic(run_fig9, args=(context,), rounds=1, iterations=1)
    print()
    print(render_fig9(results))

    fig9a = results["fig9a"]
    fig9b = results["fig9b"]

    # (a) weighted proxy dataset helps both attributes and keeps accuracy.
    assert fig9a["claims"]["weighted_improves_age"]
    assert fig9a["claims"]["weighted_improves_site"]
    assert fig9a["claims"]["accuracy_kept"]
    weighted_row = next(r for r in fig9a["rows"] if r["training_data"] == "weighted")
    original_row = next(r for r in fig9a["rows"] if r["training_data"] == "original")
    assert weighted_row["proxy_size"] < original_row["proxy_size"]

    # (b) parameters explode, reward does not.
    assert [row["paired_models"] for row in fig9b["rows"]] == [1, 2, 3, 4]
    assert fig9b["claims"]["parameters_grow_with_paired_models"]
    assert fig9b["claims"]["reward_saturates"]
    assert fig9b["claims"]["parameter_growth_factor"] > 1.25

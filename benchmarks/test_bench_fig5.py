"""Benchmark: Figure 5 — Muffin pushes the ISIC2019 Pareto frontiers.

Paper claims reproduced:

* the Muffin-Nets advance the (U_age, U_site) Pareto frontier of the
  existing architectures;
* Muffin reaches the highest overall accuracy among all evaluated models
  (the paper: the only architecture above 82%).
"""

from repro.experiments import render_fig5, run_fig5


def test_bench_fig5_pareto_frontiers(benchmark, context):
    results = benchmark.pedantic(run_fig5, args=(context,), rounds=1, iterations=1)
    print()
    print(render_fig5(results))

    claims = results["claims"]
    assert len(results["existing_rows"]) == 10
    assert len(results["muffin_rows"]) >= 3
    assert claims["muffin_advances_age_site_frontier"]
    # Muffin at least matches the best existing model's accuracy.
    assert claims["best_muffin_accuracy"] >= claims["best_existing_accuracy"] - 0.01
    # The per-attribute specialists match or beat every existing model on
    # their own attribute (Muffin-Age / Muffin-Sites in the paper).
    assert claims["muffin_best_age_beats_existing"] or claims["muffin_best_site_beats_existing"]

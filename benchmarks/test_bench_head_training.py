"""Benchmark: fused batched head training vs the autograd loop.

The seed implementation trained every muffin head by pushing each minibatch
through the closure-based autograd graph — Python-level overhead per op,
per parameter, per batch, per epoch.  The fused fast path
(:mod:`repro.nn.fused`) hand-derives the forward/backward/update steps and
trains a whole episode batch of candidate heads *simultaneously* on stacked
``(C, in, out)`` parameter blocks.  This benchmark verifies the two
load-bearing claims of that design on a realistic episode batch (the shape
of one controller batch late in a Muffin search, when the controller has
converged on a structure):

* the batched fused trainer returns **bit-identical** final weights and
  loss curves to the per-head autograd loop;
* it is dramatically faster wherever Python overhead (not raw memory
  bandwidth) dominates.

Setting ``REPRO_BENCH_IDENTITY_ONLY=1`` (the CI smoke step; the legacy
``HEAD_BENCH_IDENTITY_ONLY`` still works) skips the wall-clock assertion
while keeping the identity check.  Like the parallel search benchmark, the
speedup tiers degrade on constrained runners: a single-core box only
prints the measured ratio (identity is still asserted), 2-3 cores require
2x, and a genuinely multi-core runner must show the full 5x (threaded BLAS
accelerates the stacked GEMMs while the interpreted autograd loop stays
serial).

A second pass re-runs the fused trainer on the ``numpy-float32`` backend:
its results must *diverge* from float64 (proving the precision switch is
live) while staying inside the backend's documented ``TOLERANCES``
contract (:mod:`repro.core.backend`).
"""

import os
import time

import numpy as np

from repro.bench import identity_only
from repro.core import HeadTrainConfig
from repro.core.backend import assert_backend_close, get_backend
from repro.core.fusing import MuffinHead
from repro.core.trainer import train_head_on_outputs, train_heads_batched

NUM_CANDIDATES = 8  # one episode batch
HIDDEN_SIZES = (16,)
BODY_DIM = 24  # three fused members x eight ISIC classes
NUM_CLASSES = 8
PROXY_SIZE = 2000
EPOCHS = 25
ROUNDS = 3  # best-of-N guards the comparison against scheduler noise


def _workload():
    rng = np.random.default_rng(2023)
    labels = rng.integers(0, NUM_CLASSES, PROXY_SIZE)
    weights = rng.random(PROXY_SIZE) + 0.1
    outputs = [rng.random((PROXY_SIZE, BODY_DIM)) for _ in range(NUM_CANDIDATES)]
    return outputs, labels, weights


def _fresh_heads():
    return [
        MuffinHead(BODY_DIM, NUM_CLASSES, HIDDEN_SIZES, "relu", seed=index)
        for index in range(NUM_CANDIDATES)
    ]


def test_bench_head_training_identity_and_speed():
    outputs, labels, weights = _workload()
    autograd_config = HeadTrainConfig(epochs=EPOCHS, seed=0, use_fused=False)
    fused_config = HeadTrainConfig(epochs=EPOCHS, seed=0, use_fused=True)

    autograd_seconds = float("inf")
    autograd_heads, autograd_results = [], []
    for _ in range(ROUNDS):
        autograd_heads = _fresh_heads()
        start = time.perf_counter()
        autograd_results = [
            train_head_on_outputs(head, matrix, labels, weights, NUM_CLASSES, autograd_config)
            for head, matrix in zip(autograd_heads, outputs)
        ]
        autograd_seconds = min(autograd_seconds, time.perf_counter() - start)

    fused_seconds = float("inf")
    fused_heads, fused_results = [], []
    for _ in range(ROUNDS):
        fused_heads = _fresh_heads()
        start = time.perf_counter()
        fused_results = train_heads_batched(
            fused_heads, outputs, labels, weights, NUM_CLASSES, fused_config
        )
        fused_seconds = min(fused_seconds, time.perf_counter() - start)

    # Identity first: the speedup is worthless if a single bit drifts.
    for ref_head, ref_result, fused_head, fused_result in zip(
        autograd_heads, autograd_results, fused_heads, fused_results
    ):
        assert ref_result.losses == fused_result.losses
        ref_state, fused_state = ref_head.state_dict(), fused_head.state_dict()
        assert set(ref_state) == set(fused_state)
        for key in ref_state:
            assert np.array_equal(ref_state[key], fused_state[key]), key

    speedup = autograd_seconds / max(fused_seconds, 1e-9)
    cpus = os.cpu_count() or 1
    print(
        f"\n[bench] {NUM_CANDIDATES} heads x {EPOCHS} epochs x {PROXY_SIZE} proxy "
        f"samples: autograd loop {autograd_seconds:.3f}s, fused batched "
        f"{fused_seconds:.3f}s, speedup x{speedup:.1f} ({cpus} CPUs)"
    )

    if identity_only():
        return  # constrained runner: identity verified, timing skipped
    if cpus < 2:
        # Single-core containers are memory-bandwidth-bound: both paths push
        # the same element count, so the Python-overhead win shrinks.
        # Identity is verified above; just require the fast path to win.
        assert fused_seconds < autograd_seconds, (
            f"fused trainer ({fused_seconds:.3f}s) slower than the autograd "
            f"loop ({autograd_seconds:.3f}s) on a single-core runner"
        )
        return
    if cpus < 4:
        assert speedup >= 2.0, (
            f"fused trainer only x{speedup:.2f} over the autograd loop on "
            f"{cpus} CPUs (expected >= 2x)"
        )
        return
    assert speedup >= 5.0, (
        f"fused trainer only x{speedup:.2f} over the autograd loop on "
        f"{cpus} CPUs (expected >= 5x)"
    )


#: The ``head_weights`` tolerance is calibrated for ~10-epoch training (see
#: :data:`repro.core.backend.TOLERANCES`): beyond that, minibatch SGD
#: amplifies float32 rounding chaotically in *weight* space while the loss
#: curve (the function-space view) stays in contract.
WEIGHT_CONTRACT_EPOCHS = 10


def _train_fused(backend, epochs):
    outputs, labels, weights = _workload()
    config = HeadTrainConfig(epochs=epochs, seed=0, use_fused=True, backend=backend)
    heads = _fresh_heads()
    start = time.perf_counter()
    results = train_heads_batched(heads, outputs, labels, weights, NUM_CLASSES, config)
    return heads, results, time.perf_counter() - start


def test_bench_head_training_float32_backend_tolerance():
    """The mixed-precision backend diverges, but inside its contract."""
    backend = get_backend("numpy-float32")

    # Full benchmark length: the loss curves must stay in contract.
    ref_heads, ref_results, ref_seconds = _train_fused("numpy-float64", EPOCHS)
    f32_heads, f32_results, f32_seconds = _train_fused("numpy-float32", EPOCHS)
    drifted = False
    for ref_head, ref_result, f32_head, f32_result in zip(
        ref_heads, ref_results, f32_heads, f32_results
    ):
        assert_backend_close(
            backend, "loss_curve", np.asarray(f32_result.losses), np.asarray(ref_result.losses)
        )
        ref_state, f32_state = ref_head.state_dict(), f32_head.state_dict()
        drifted = drifted or any(
            not np.array_equal(f32_state[key], ref_state[key]) for key in ref_state
        )
    # Divergence proves float32 GEMMs actually ran (not silently float64).
    assert drifted, "float32 backend produced bit-identical weights — precision switch dead?"

    # Contract-calibrated length: the trained weights must stay in contract.
    ref_heads, _, _ = _train_fused("numpy-float64", WEIGHT_CONTRACT_EPOCHS)
    f32_heads, _, _ = _train_fused("numpy-float32", WEIGHT_CONTRACT_EPOCHS)
    for ref_head, f32_head in zip(ref_heads, f32_heads):
        ref_state, f32_state = ref_head.state_dict(), f32_head.state_dict()
        for key in ref_state:
            assert_backend_close(
                backend,
                "head_weights",
                f32_state[key].astype(np.float64, copy=False),
                ref_state[key],
            )

    print(
        f"\n[bench] fused batched, {NUM_CANDIDATES} heads x {EPOCHS} epochs: "
        f"float64 {ref_seconds:.3f}s, float32 {f32_seconds:.3f}s "
        f"(x{ref_seconds / max(f32_seconds, 1e-9):.2f}); tolerance contract holds"
    )

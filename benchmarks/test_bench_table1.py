"""Benchmark: Table I — Muffin vs the existing fairness techniques.

Paper claims reproduced (shape, not absolute numbers):

* the single-attribute baselines (D, L) are inconsistent: improving one
  attribute tends to degrade the other, and method L costs accuracy;
* Muffin improves the fairness of *both* attributes for every base
  architecture without losing overall accuracy (paper headline: +26.32%
  age / +20.37% site / +5.58% accuracy for MobileNet_V3_Small);
* the accuracy gain is largest for the small architectures.
"""

from repro.experiments import render_table1, run_table1


def test_bench_table1_main_comparison(benchmark, context):
    results = benchmark.pedantic(run_table1, args=(context,), rounds=1, iterations=1)
    print()
    print(render_table1(results))

    rows = results["rows"]
    claims = results["claims"]
    assert len(rows) == 4

    for row in rows:
        # Muffin never trades one attribute for the other beyond test-split
        # noise (the candidate is selected on the validation split; for
        # already-fair attributes a relative threshold alone would be tighter
        # than the per-group sampling noise of the test set)...
        for attribute in ("age", "site"):
            degradation = row[f"muffin_U({attribute})"] - row[f"vanilla_U({attribute})"]
            tolerance = max(0.04, 0.15 * row[f"vanilla_U({attribute})"])
            assert degradation < tolerance, (row["model"], attribute, degradation)
        # ...does not degrade their combined fairness...
        combined_delta = (
            row["muffin_U(age)"]
            - row["vanilla_U(age)"]
            + row["muffin_U(site)"]
            - row["vanilla_U(site)"]
        )
        assert combined_delta < 0.03, row["model"]
        # ...and keeps the overall accuracy.
        assert row["muffin_acc_imp"] > -0.02, row["model"]

    # The paper's headline behaviour: architectures improve both attributes
    # at once, at least one of them by a clear margin, with accuracy gains
    # concentrated on the small models.
    both_improved = [
        row
        for row in rows
        if row["muffin_age_vs_vil"] > 0.0 and row["muffin_site_vs_vil"] > 0.0
    ]
    assert len(both_improved) >= 1
    assert any(
        row["muffin_age_vs_vil"] > 0.05 and row["muffin_site_vs_vil"] > 0.05 for row in rows
    )
    assert claims["max_accuracy_gain"] > 0.0
    assert claims["small_models_gain_most_accuracy"]

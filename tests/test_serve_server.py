"""Tests of the micro-batching inference server and the live fairness monitor."""

import json
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.core import FusedModel
from repro.serve import (
    FairnessMonitor,
    InferenceServer,
    ServeClient,
    ServeConfig,
    ServeHTTPServer,
)


@pytest.fixture(scope="module")
def bound_model(fused_model, serving_schema):
    """Schema-bound view of the shared fused model (body/head shared)."""
    return FusedModel(
        fused_model.body, fused_model.head, name=fused_model.name, schema=serving_schema
    )


@pytest.fixture(scope="module")
def serving_features(serving_schema, isic_split):
    return serving_schema.features(isic_split.test)


@pytest.fixture(scope="module")
def direct_predictions(bound_model, serving_features):
    return bound_model.predict_features(serving_features)


def make_server(bound_model, **overrides) -> InferenceServer:
    config = ServeConfig(
        **{"batch_window_ms": 5.0, "max_batch": 32, "log_every": 0, **overrides}
    )
    return InferenceServer(bound_model, config)


class TestMicroBatcher:
    def test_sequential_requests_match_direct_predictions(
        self, bound_model, serving_features, direct_predictions
    ):
        with make_server(bound_model, batch_window_ms=0.0) as server:
            client = ServeClient(server)
            for start in range(0, 50, 10):
                rows = slice(start, start + 10)
                response = client.predict(serving_features[rows])
                np.testing.assert_array_equal(
                    response.predictions, direct_predictions[rows]
                )
        assert server.requests_served == 5

    def test_partial_batch_flushes_at_window(
        self, bound_model, serving_features, direct_predictions
    ):
        """Fewer rows than max_batch must still be answered (window flush)."""
        with make_server(bound_model, max_batch=64, batch_window_ms=2.0) as server:
            response = ServeClient(server).predict(serving_features[:3])
            np.testing.assert_array_equal(response.predictions, direct_predictions[:3])
            assert response.batch_rows == 3
        assert server.batches_served == 1

    def test_burst_coalesces_into_fewer_batches(
        self, bound_model, serving_features, direct_predictions
    ):
        """A pre-submitted burst drains in max_batch chunks, preserving order."""
        server = make_server(bound_model, max_batch=16, batch_window_ms=20.0)
        pending = [
            server.submit(serving_features[i : i + 1]) for i in range(32)
        ]  # queued before the worker starts: a cold burst
        server.start()
        for i, request in enumerate(pending):
            assert request.done.wait(timeout=30)
            np.testing.assert_array_equal(
                request.response.predictions, direct_predictions[i : i + 1]
            )
        assert server.batches_served == 2  # 32 single-row requests / max_batch=16
        assert server.stats()["mean_batch_size"] == 16.0
        server.stop()

    def test_concurrent_clients_get_their_own_rows(
        self, bound_model, serving_features, direct_predictions
    ):
        with make_server(bound_model, batch_window_ms=10.0) as server:
            client = ServeClient(server)
            results = {}
            barrier = threading.Barrier(10)

            def call(i):
                rows = slice(i * 7, i * 7 + 7)
                barrier.wait()
                results[i] = client.predict(serving_features[rows])

            threads = [threading.Thread(target=call, args=(i,)) for i in range(10)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            for i in range(10):
                np.testing.assert_array_equal(
                    results[i].predictions, direct_predictions[i * 7 : i * 7 + 7]
                )
        assert server.requests_served == 10
        assert server.batches_served <= 10

    def test_oversized_request_processed_alone(
        self, bound_model, serving_features, direct_predictions
    ):
        with make_server(bound_model, max_batch=8) as server:
            response = ServeClient(server).predict(serving_features[:20])
            np.testing.assert_array_equal(response.predictions, direct_predictions[:20])
            assert response.batch_rows == 20

    def test_submit_after_stop_rejected(self, bound_model, serving_features):
        server = make_server(bound_model).start()
        server.stop()
        with pytest.raises(RuntimeError, match="shutting down"):
            server.submit(serving_features[:1])

    def test_invalid_features_rejected_at_submit(self, bound_model):
        with make_server(bound_model) as server:
            with pytest.raises(ValueError, match="expected features"):
                server.submit(np.zeros((2, 3)))

    def test_thread_executor_serves_identical_predictions(
        self, bound_model, serving_features, direct_predictions
    ):
        with make_server(bound_model, executor="thread", max_workers=3) as server:
            response = ServeClient(server).predict(serving_features[:25])
            np.testing.assert_array_equal(response.predictions, direct_predictions[:25])


class TestFairnessMonitor:
    def test_windowed_metrics_match_offline_engine(
        self, bound_model, serving_schema, serving_features, isic_split
    ):
        """The live window reproduces the offline evaluation on the same samples."""
        from repro.fairness import evaluate_predictions

        test = isic_split.test
        n = 200
        groups = {a: test.group_ids(a)[:n] for a in test.attributes.names}
        with make_server(bound_model, monitor_window=4096) as server:
            client = ServeClient(server)
            for start in range(0, n, 25):
                rows = slice(start, start + 25)
                client.predict(
                    serving_features[rows],
                    groups={a: ids[rows] for a, ids in groups.items()},
                    labels=test.labels[rows],
                )
            stats = server.stats()
        window = stats["fairness"]["window"]
        assert window["size"] == n
        offline = evaluate_predictions(
            bound_model.predict_features(serving_features[:n]), test.subset(np.arange(n))
        )
        assert window["accuracy"] == pytest.approx(offline.accuracy)
        for attribute, value in offline.unfairness.items():
            assert window["unfairness_score"][attribute] == pytest.approx(value)
            assert window["accuracy_gap"][attribute] == pytest.approx(
                offline.gaps[attribute]
            )

    def test_group_counts_accumulate(self, serving_schema):
        monitor = FairnessMonitor(serving_schema, window=16)
        monitor.observe(np.array([0, 1]), groups={"age": np.array([0, 5])})
        monitor.observe(np.array([1]), groups={"age": np.array([0])})
        snapshot = monitor.snapshot()
        assert snapshot["total_samples"] == 3
        assert snapshot["group_counts"]["age"]["0-20"] == 2
        assert snapshot["group_counts"]["age"]["unknown"] == 1
        # No labels -> no fairness window yet.
        assert snapshot["labelled_samples"] == 0
        assert snapshot["window"] is None

    def test_window_slides(self, serving_schema):
        monitor = FairnessMonitor(serving_schema, window=8)
        names = serving_schema.attribute_names
        for _ in range(4):
            monitor.observe(
                np.zeros(4, dtype=np.int64),
                groups={a: np.zeros(4, dtype=np.int64) for a in names},
                labels=np.zeros(4, dtype=np.int64),
            )
        snapshot = monitor.snapshot()
        assert snapshot["labelled_samples"] == 16
        assert snapshot["window"]["size"] == 8  # capped by the sliding window

    def test_periodic_log_rows(self, serving_schema):
        monitor = FairnessMonitor(serving_schema, window=32, log_every=10)
        names = serving_schema.attribute_names
        for _ in range(3):
            monitor.observe(
                np.zeros(6, dtype=np.int64),
                groups={a: np.zeros(6, dtype=np.int64) for a in names},
                labels=np.zeros(6, dtype=np.int64),
            )
            monitor.maybe_log()
        rows = monitor.logger.rows
        assert rows and rows[0]["event"] == "fairness-window"
        assert all(f"U({a})" in rows[0] for a in names)


class TestHTTPFrontend:
    @pytest.fixture()
    def httpd(self, bound_model):
        frontend = ServeHTTPServer(make_server(bound_model), port=0)
        with frontend:
            yield frontend

    def _post(self, httpd, payload):
        host, port = httpd.address
        request = urllib.request.Request(
            f"http://{host}:{port}/predict",
            data=json.dumps(payload).encode("utf-8"),
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(request) as response:
            return json.loads(response.read())

    def _get(self, httpd, path):
        host, port = httpd.address
        with urllib.request.urlopen(f"http://{host}:{port}{path}") as response:
            return json.loads(response.read())

    def test_predict_roundtrip(self, httpd, serving_features, direct_predictions):
        body = self._post(httpd, {"features": serving_features[:4].tolist()})
        assert body["predictions"] == direct_predictions[:4].tolist()
        assert len(body["probabilities"]) == 4
        assert len(body["consensus"]) == 4

    def test_single_sample_flat_list(self, httpd, serving_features, direct_predictions):
        body = self._post(httpd, {"features": serving_features[0].tolist()})
        assert body["predictions"] == [int(direct_predictions[0])]

    def test_labelled_request_feeds_monitor(
        self, httpd, serving_features, isic_split
    ):
        test = isic_split.test
        payload = {
            "features": serving_features[:6].tolist(),
            "groups": {a: test.group_ids(a)[:6].tolist() for a in test.attributes.names},
            "labels": test.labels[:6].tolist(),
        }
        self._post(httpd, payload)
        stats = self._get(httpd, "/stats")
        assert stats["fairness"]["labelled_samples"] == 6
        assert stats["fairness"]["window"]["size"] == 6

    def test_health_and_stats(self, httpd):
        health = self._get(httpd, "/healthz")
        assert health["status"] == "ok"
        stats = self._get(httpd, "/stats")
        assert stats["running"] is True
        assert stats["config"]["max_batch"] == 32

    def test_bad_request_is_400(self, httpd):
        host, port = httpd.address
        request = urllib.request.Request(
            f"http://{host}:{port}/predict",
            data=json.dumps({"features": [[1.0, 2.0]]}).encode("utf-8"),
        )
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(request)
        assert err.value.code == 400

    def test_failed_forward_returns_500(self, httpd, serving_features, monkeypatch):
        class Boom:
            name = "boom"
            metadata = {}

            def predict_detailed_features(self, *args, **kwargs):
                raise MemoryError("synthetic forward failure")

        # the shard's worker loop forwards through its own replica reference
        monkeypatch.setattr(httpd.inference.shards[0], "model", Boom())
        with pytest.raises(urllib.error.HTTPError) as err:
            self._post(httpd, {"features": serving_features[:1].tolist()})
        assert err.value.code == 500
        assert "synthetic forward failure" in json.loads(err.value.read())["error"]

    def test_unknown_path_is_404(self, httpd):
        host, port = httpd.address
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(f"http://{host}:{port}/nonsense")
        assert err.value.code == 404

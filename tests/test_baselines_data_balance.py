"""Unit tests for the data-balancing baseline (Method D)."""

import numpy as np
import pytest

from repro.baselines import (
    DataBalanceConfig,
    apply_data_balancing,
    balance_dataset,
    balancing_weights,
    group_sampling_plan,
)


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            DataBalanceConfig(target_ratio=0.0)
        with pytest.raises(ValueError):
            DataBalanceConfig(max_duplication=0.5)
        with pytest.raises(ValueError):
            DataBalanceConfig(variant="smote")

    def test_default_augmentation_created(self):
        assert DataBalanceConfig().augmentation is not None


class TestSamplingPlan:
    def test_plan_targets_small_groups(self, isic_dataset):
        plan = group_sampling_plan(isic_dataset, "site", DataBalanceConfig())
        sizes = isic_dataset.group_sizes("site")
        largest = max(sizes, key=sizes.get)
        assert plan[largest] == 0
        smallest = min(sizes, key=sizes.get)
        assert plan[smallest] > 0

    def test_max_duplication_cap(self, isic_dataset):
        config = DataBalanceConfig(max_duplication=1.5)
        plan = group_sampling_plan(isic_dataset, "site", config)
        sizes = isic_dataset.group_sizes("site")
        for group, extra in plan.items():
            assert extra <= int(0.5 * sizes[group]) + 1

    def test_plan_never_negative(self, isic_dataset):
        plan = group_sampling_plan(isic_dataset, "age", DataBalanceConfig(target_ratio=0.5))
        assert all(extra >= 0 for extra in plan.values())


class TestBalanceDataset:
    def test_balanced_dataset_is_larger(self, isic_split):
        train = isic_split.train
        balanced = balance_dataset(train, "site", DataBalanceConfig(seed=0))
        assert len(balanced) > len(train)

    def test_group_ratios_improve(self, isic_split):
        train = isic_split.train
        balanced = balance_dataset(train, "site", DataBalanceConfig(seed=0))

        def ratio(dataset):
            sizes = dataset.group_sizes("site")
            return min(sizes.values()) / max(sizes.values())

        assert ratio(balanced) > ratio(train)

    def test_original_rows_preserved(self, isic_split):
        train = isic_split.train
        balanced = balance_dataset(train, "age", DataBalanceConfig(seed=1))
        np.testing.assert_array_equal(balanced.labels[: len(train)], train.labels)

    def test_deterministic_given_seed(self, isic_split):
        train = isic_split.train
        a = balance_dataset(train, "site", DataBalanceConfig(seed=3))
        b = balance_dataset(train, "site", DataBalanceConfig(seed=3))
        assert len(a) == len(b)
        np.testing.assert_array_equal(a.labels, b.labels)


class TestBalancingWeights:
    def test_weights_mean_one(self, isic_split):
        weights = balancing_weights(isic_split.train, "site")
        assert weights.mean() == pytest.approx(1.0)
        assert (weights > 0).all()

    def test_rare_groups_get_higher_weight(self, isic_split):
        train = isic_split.train
        weights = balancing_weights(train, "site")
        sizes = train.group_sizes("site")
        smallest = min(sizes, key=sizes.get)
        largest = max(sizes, key=sizes.get)
        small_weight = weights[train.group_mask("site", smallest)].mean()
        large_weight = weights[train.group_mask("site", largest)].mean()
        assert small_weight > large_weight


class TestApplyDataBalancing:
    def test_resample_variant_improves_target_attribute(self, pool, isic_split, train_config):
        base = pool.get("MobileNet_V3_Small")
        vanilla = base.evaluate(isic_split.test)
        outcome = apply_data_balancing(base, isic_split, "site", train_config)
        optimized = outcome.model.evaluate(isic_split.test)
        assert outcome.method == "D"
        assert outcome.balanced_size > len(isic_split.train)
        assert optimized.unfairness["site"] < vanilla.unfairness["site"] + 0.05

    def test_reweight_variant_runs(self, pool, isic_split, train_config):
        base = pool.get("ShuffleNet_V2_X1_0")
        outcome = apply_data_balancing(
            base,
            isic_split,
            "age",
            train_config,
            DataBalanceConfig(variant="reweight"),
        )
        assert outcome.model.is_trained
        assert outcome.balanced_size == len(isic_split.train)

    def test_outcome_label_mentions_method_and_attribute(self, pool, isic_split, train_config):
        outcome = apply_data_balancing(pool.get("ResNet-18"), isic_split, "age", train_config)
        assert "D(age)" in outcome.model.label

"""Unit tests for the multi-fairness reward (Equation 3)."""

import pytest

from repro.core import MultiFairnessReward, RewardConfig
from repro.fairness import FairnessEvaluation


def make_eval(acc, **unfairness):
    return FairnessEvaluation(accuracy=acc, unfairness=dict(unfairness))


class TestRewardConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            RewardConfig(attributes=("a",), epsilon=0.0)
        with pytest.raises(ValueError):
            RewardConfig(attributes=("a",), accuracy_penalty=-1.0)
        with pytest.raises(ValueError):
            RewardConfig(attributes=("a",), min_accuracy=1.5)

    def test_reward_requires_attributes(self):
        with pytest.raises(ValueError):
            MultiFairnessReward(RewardConfig(attributes=()))


class TestMultiFairnessReward:
    def test_equation_3(self):
        reward = MultiFairnessReward(RewardConfig(attributes=("age", "site")))
        value = reward(make_eval(0.8, age=0.4, site=0.2))
        assert value == pytest.approx(0.8 / 0.4 + 0.8 / 0.2)

    def test_lower_unfairness_gives_higher_reward(self):
        reward = MultiFairnessReward(RewardConfig(attributes=("age", "site")))
        fair = reward(make_eval(0.8, age=0.2, site=0.2))
        unfair = reward(make_eval(0.8, age=0.5, site=0.5))
        assert fair > unfair

    def test_higher_accuracy_gives_higher_reward(self):
        reward = MultiFairnessReward(RewardConfig(attributes=("age",)))
        assert reward(make_eval(0.9, age=0.3)) > reward(make_eval(0.7, age=0.3))

    def test_epsilon_guards_division_by_zero(self):
        reward = MultiFairnessReward(RewardConfig(attributes=("age",), epsilon=1e-3))
        value = reward(make_eval(0.8, age=0.0))
        assert value == pytest.approx(0.8 / 1e-3)

    def test_missing_attribute_raises(self):
        reward = MultiFairnessReward(RewardConfig(attributes=("age", "site")))
        with pytest.raises(KeyError):
            reward(make_eval(0.8, age=0.4))

    def test_accuracy_floor_penalises_shortfall(self):
        config = RewardConfig(attributes=("age",), min_accuracy=0.8, accuracy_penalty=10.0)
        reward = MultiFairnessReward(config)
        above = reward(make_eval(0.85, age=0.3))
        below = reward(make_eval(0.70, age=0.3))
        unpenalised_below = 0.70 / 0.3
        assert above == pytest.approx(0.85 / 0.3)
        assert below < unpenalised_below

    def test_breakdown_sums_to_total(self):
        reward = MultiFairnessReward(RewardConfig(attributes=("age", "site")))
        evaluation = make_eval(0.8, age=0.4, site=0.2)
        breakdown = reward.breakdown(evaluation)
        assert breakdown["total"] == pytest.approx(breakdown["age"] + breakdown["site"])

    def test_callable_and_compute_agree(self):
        reward = MultiFairnessReward(RewardConfig(attributes=("age",)))
        evaluation = make_eval(0.75, age=0.25)
        assert reward(evaluation) == pytest.approx(reward.compute(evaluation))

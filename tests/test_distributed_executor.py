"""DistributedExecutor tests: bit-identity with serial, worker supervision,
crash recovery, and the ProcessExecutor crash-diagnosis satellite."""

import os
import signal
import threading
import time

import numpy as np
import pytest

from repro.core import (
    ExecutorWorkerError,
    HeadTrainConfig,
    MuffinSearch,
    SearchConfig,
)
from repro.core.execution import EXECUTORS, build_executor
from repro.master.worker import (
    DistributedExecutor,
    die_task,
    echo_task,
    failing_task,
    slow_echo_task,
)


def _search(pool, **config_overrides):
    config = dict(episodes=6, episode_batch=3, seed=0)
    config.update(config_overrides)
    return MuffinSearch(
        pool,
        attributes=["age", "site"],
        base_model="MobileNet_V3_Small",
        search_config=SearchConfig(**config),
        # use_fused=False forces every head through the executor (the fused
        # ReLU fast path would otherwise train in-process and bypass it).
        head_config=HeadTrainConfig(epochs=4, seed=0, use_fused=False),
    )


class TestRegistry:
    def test_distributed_is_registered(self):
        assert "distributed" in EXECUTORS.names()
        executor = build_executor("distributed", max_workers=2)
        assert isinstance(executor, DistributedExecutor)
        executor.shutdown()

    def test_distributed_only_options_filtered_for_others(self):
        # The distributed knobs ride through configs without breaking the
        # pooled executors, which simply ignore them.
        executor = build_executor("serial", task_retries=5, heartbeat_seconds=0.1)
        assert executor.map(abs, [-1, 2]) == [1, 2]

    def test_config_validation(self):
        with pytest.raises(ValueError):
            DistributedExecutor(max_workers=0)
        with pytest.raises(ValueError):
            DistributedExecutor(task_retries=-1)
        with pytest.raises(ValueError):
            DistributedExecutor(heartbeat_seconds=0)


class TestMapSemantics:
    def test_order_and_bits_preserved(self):
        rng = np.random.default_rng(3)
        payloads = [{"i": i, "x": rng.normal(size=(5, 3))} for i in range(8)]
        with DistributedExecutor(max_workers=2) as executor:
            results = executor.map(echo_task, payloads)
        assert [r["i"] for r in results] == list(range(8))
        for sent, received in zip(payloads, results):
            assert received["x"].dtype == sent["x"].dtype
            np.testing.assert_array_equal(received["x"], sent["x"])

    def test_single_item_runs_inline(self):
        with DistributedExecutor(max_workers=4) as executor:
            assert executor.map(echo_task, [{"only": 1}]) == [{"only": 1}]
            assert executor._workers == []  # no subprocess was spawned

    def test_workers_reused_across_maps(self):
        with DistributedExecutor(max_workers=2) as executor:
            executor.map(echo_task, [1, 2, 3])
            pids = [w.pid for w in executor._workers]
            executor.map(echo_task, [4, 5, 6])
            assert [w.pid for w in executor._workers] == pids
            assert executor.worker_restarts == 0

    def test_task_exception_propagates_with_remote_traceback(self):
        with DistributedExecutor(max_workers=2) as executor:
            with pytest.raises(ExecutorWorkerError, match="failing_task failed on purpose"):
                executor.map(failing_task, ["a", "b"])

    def test_executor_recovers_after_task_error(self):
        with DistributedExecutor(max_workers=2) as executor:
            with pytest.raises(ExecutorWorkerError):
                executor.map(failing_task, [1, 2])
            assert executor.map(echo_task, [7, 8, 9]) == [7, 8, 9]


class TestSupervision:
    def test_sigkilled_worker_is_restarted_and_task_requeued(self):
        payloads = [{"i": i, "sleep": 0.6} for i in range(4)]
        with DistributedExecutor(max_workers=2, heartbeat_seconds=0.1) as executor:
            executor.map(echo_task, [0, 1])  # warm up the worker pool
            victim_pid = executor._workers[0].process.pid
            results = {}

            def run_map():
                results["value"] = executor.map(slow_echo_task, payloads)

            thread = threading.Thread(target=run_map)
            thread.start()
            time.sleep(0.3)  # both workers are now mid-task
            os.kill(victim_pid, signal.SIGKILL)
            thread.join(timeout=60.0)
            assert not thread.is_alive()
            assert [r["i"] for r in results["value"]] == [0, 1, 2, 3]
            assert executor.worker_restarts >= 1
            assert executor.tasks_requeued >= 1
            # The pool is healthy again afterwards.
            assert executor.map(echo_task, list(range(3))) == [0, 1, 2]

    def test_repeated_crashes_exhaust_retries(self):
        with DistributedExecutor(max_workers=2, task_retries=2) as executor:
            with pytest.raises(ExecutorWorkerError, match="task_retries"):
                executor.map(die_task, [0, 1])
            assert executor.tasks_requeued >= 3  # initial + 2 retries for one task

    def test_crash_error_names_serial_fallback(self):
        with DistributedExecutor(max_workers=2, task_retries=0) as executor:
            with pytest.raises(ExecutorWorkerError, match="--executor serial"):
                executor.map(die_task, [0, 1])


class TestSearchBitIdentity:
    @pytest.mark.parametrize("candidate_seeds", ["episode", "derived"])
    def test_distributed_matches_serial_bit_exactly(self, pool, candidate_seeds):
        serial = _search(pool, executor="serial", candidate_seeds=candidate_seeds).run()
        distributed = _search(
            pool, executor="distributed", max_workers=2, candidate_seeds=candidate_seeds
        ).run()

        assert serial.result_hash() == distributed.result_hash()
        for record_a, record_b in zip(serial.records, distributed.records):
            assert record_a.candidate == record_b.candidate
            assert record_a.reward == record_b.reward
            assert record_a.evaluation.accuracy == record_b.evaluation.accuracy
            assert record_a.evaluation.unfairness == record_b.evaluation.unfairness
            assert record_a.train_losses == record_b.train_losses
            for key in record_a.head_state:
                np.testing.assert_array_equal(record_a.head_state[key], record_b.head_state[key])
        assert distributed.execution_stats.executor == "distributed"


class TestProcessExecutorCrashDiagnosis:
    def test_broken_pool_names_task_and_fallback(self):
        """A crashed process-pool worker no longer surfaces as a bare
        BrokenProcessPool: the error names the task and the serial fallback."""
        executor = build_executor("process", max_workers=2)
        try:
            with pytest.raises(
                ExecutorWorkerError, match=r"task \d+ of 2.*--executor serial"
            ) as excinfo:
                executor.map(die_task, [0, 1])
            assert "process-pool worker died" in str(excinfo.value)
        finally:
            executor.shutdown()

    def test_pool_usable_after_crash(self):
        executor = build_executor("process", max_workers=2)
        try:
            with pytest.raises(ExecutorWorkerError):
                executor.map(die_task, [0, 1])
            assert executor.map(echo_task, [1, 2, 3]) == [1, 2, 3]
        finally:
            executor.shutdown()

"""Tests of the fault-tolerant shard pool: supervision, admission control,
deadlines, deterministic fault injection and graceful drain.

Everything here runs REPRO_TSAN-clean (the CI concurrency-check step
includes this file) — the pool, the shard generations and the monitor all
declare their shared-state contracts.
"""

import json
import threading
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.core import FusedModel
from repro.serve import (
    DeadlineExceeded,
    FaultEvent,
    FaultPlan,
    InferenceFailed,
    InferenceServer,
    InjectedCrash,
    PoisonedRequest,
    ServeClient,
    ServeConfig,
    ServeHTTPServer,
    ServerClosed,
    ServerOverloaded,
    ShardState,
)
from repro.serve.faults import resolve_fault_plan


@pytest.fixture(scope="module")
def bound_model(fused_model, serving_schema):
    """Schema-bound view of the shared fused model (body/head shared)."""
    return FusedModel(
        fused_model.body, fused_model.head, name=fused_model.name, schema=serving_schema
    )


@pytest.fixture(scope="module")
def serving_features(serving_schema, isic_split):
    return serving_schema.features(isic_split.test)


@pytest.fixture(scope="module")
def direct_predictions(bound_model, serving_features):
    return bound_model.predict_features(serving_features)


def make_server(bound_model, **overrides) -> InferenceServer:
    config = ServeConfig(
        **{"batch_window_ms": 5.0, "max_batch": 32, "log_every": 0, **overrides}
    )
    return InferenceServer(bound_model, config)


def wait_until(predicate, timeout=10.0, interval=0.01):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


# ----------------------------------------------------------------------
# Sharding preserves answers
# ----------------------------------------------------------------------
class TestShardedIdentity:
    def test_two_shards_answer_bit_identically(
        self, bound_model, serving_features, direct_predictions
    ):
        """The acceptance bar: sharding changes capacity, never answers."""
        with make_server(bound_model, num_shards=2, batch_window_ms=1.0) as server:
            client = ServeClient(server)
            for start in range(0, 60, 6):
                rows = slice(start, start + 6)
                response = client.predict(serving_features[rows])
                np.testing.assert_array_equal(
                    response.predictions, direct_predictions[rows]
                )
                np.testing.assert_array_equal(
                    response.probabilities,
                    bound_model.predict_detailed_features(
                        serving_features[rows]
                    ).probabilities,
                )
        assert server.requests_served == 10

    def test_replicas_are_copies_not_aliases(self, bound_model):
        with make_server(bound_model, num_shards=3) as server:
            shards = server.shards
            assert len(shards) == 3
            assert shards[0].model is bound_model  # slot 0 serves the original
            assert shards[1].model is not bound_model
            assert shards[2].model is not shards[1].model

    def test_concurrent_burst_spreads_over_shards(
        self, bound_model, serving_features, direct_predictions
    ):
        server = make_server(bound_model, num_shards=2, batch_window_ms=2.0)
        pending = [server.submit(serving_features[i : i + 1]) for i in range(24)]
        server.start()
        for i, request in enumerate(pending):
            assert request.done.wait(timeout=30)
            assert request.error is None
            np.testing.assert_array_equal(
                request.response.predictions, direct_predictions[i : i + 1]
            )
        server.stop()
        # least-loaded dispatch on a cold burst alternates the two queues
        per_shard = [s["requests"] for s in server.stats()["shards"]]
        assert sum(per_shard) == 24
        assert all(count > 0 for count in per_shard)


# ----------------------------------------------------------------------
# Typed admission errors
# ----------------------------------------------------------------------
class TestAdmissionControl:
    def test_submit_after_stop_raises_server_closed(
        self, bound_model, serving_features
    ):
        server = make_server(bound_model).start()
        server.stop()
        with pytest.raises(ServerClosed, match="shutting down"):
            server.submit(serving_features[:1])

    def test_overload_rejects_immediately_with_retry_after(
        self, bound_model, serving_features
    ):
        # not started: nothing drains, so the bounded queue fills at once
        server = make_server(bound_model, queue_depth=4, retry_after_s=2.5)
        for i in range(4):
            server.submit(serving_features[i : i + 1])
        began = time.perf_counter()
        with pytest.raises(ServerOverloaded) as err:
            server.submit(serving_features[:1])
        elapsed_ms = (time.perf_counter() - began) * 1000.0
        assert elapsed_ms < 50.0  # shed synchronously, never queued-and-hoped
        assert err.value.retry_after == 2.5
        assert server.stats()["shed"]["overload"] == 1
        server.start()  # the four accepted requests still complete
        server.stop()
        assert server.requests_served == 4

    def test_healthy_traffic_survives_an_overload_burst(
        self, bound_model, serving_features, direct_predictions
    ):
        with make_server(
            bound_model, queue_depth=8, batch_window_ms=0.0
        ) as server:
            client = ServeClient(server)
            outcomes = {"ok": 0, "shed": 0}
            for i in range(40):
                try:
                    response = client.predict(serving_features[i : i + 1])
                except ServerOverloaded:
                    outcomes["shed"] += 1
                else:
                    outcomes["ok"] += 1
                    np.testing.assert_array_equal(
                        response.predictions, direct_predictions[i : i + 1]
                    )
            assert outcomes["ok"] == 40  # synchronous callers never overrun depth 8

    def test_deadline_expired_before_admission(self, bound_model, serving_features):
        server = make_server(bound_model)
        with pytest.raises(ValueError, match="deadline_ms must be positive"):
            server.submit(serving_features[:1], deadline_ms=-1.0)

    def test_expired_requests_are_shed_before_forward(
        self, bound_model, serving_features
    ):
        # queue a tight-deadline request on a *stopped* server, wait past the
        # deadline, then start: the batcher must shed it, not serve it late
        server = make_server(bound_model)
        doomed = server.submit(serving_features[:1], deadline_ms=10.0)
        healthy = server.submit(serving_features[1:2])
        time.sleep(0.05)
        server.start()
        assert doomed.done.wait(timeout=10)
        assert isinstance(doomed.error, DeadlineExceeded)
        assert healthy.done.wait(timeout=10)
        assert healthy.error is None
        server.stop()
        assert server.stats()["shed"]["deadline"] == 1

    def test_default_deadline_from_config(self, bound_model, serving_features):
        server = make_server(bound_model, default_deadline_ms=10.0)
        doomed = server.submit(serving_features[:1])
        assert doomed.deadline_at is not None
        time.sleep(0.05)
        server.start()
        assert doomed.done.wait(timeout=10)
        assert isinstance(doomed.error, DeadlineExceeded)
        server.stop()


# ----------------------------------------------------------------------
# Fault injection: crash, poison, delay
# ----------------------------------------------------------------------
class TestFaultInjection:
    def test_crash_mid_batch_redispatches_to_healthy_shard(
        self, bound_model, serving_features, direct_predictions
    ):
        """The headline acceptance criterion: a shard dies mid-batch, every
        accepted request still completes bit-identically, zero hung futures."""
        plan = FaultPlan([FaultEvent(kind="crash_shard", shard=0, at_batch=0)])
        server = make_server(
            bound_model,
            num_shards=2,
            batch_window_ms=2.0,
            fault_plan=plan,
            restart_backoff_ms=10.0,
            supervise_interval_ms=5.0,
        )
        pending = [server.submit(serving_features[i : i + 1]) for i in range(16)]
        server.start()
        for i, request in enumerate(pending):
            assert request.done.wait(timeout=30), f"request {i} hung"
            assert request.error is None, f"request {i} failed: {request.error!r}"
            np.testing.assert_array_equal(
                request.response.predictions, direct_predictions[i : i + 1]
            )
        stats = server.stats()
        assert stats["restarts"] >= 1
        assert stats["redispatched"] >= 1
        # the crashed slot came back as generation 1+
        assert wait_until(
            lambda: any(s["generation"] >= 1 for s in server.stats()["shards"])
        )
        server.stop()

    def test_single_shard_crash_restarts_and_serves_backlog(
        self, bound_model, serving_features, direct_predictions
    ):
        """With nowhere to re-dispatch, the slot's own queue survives the
        restart and the replacement generation serves the backlog."""
        plan = FaultPlan([FaultEvent(kind="crash_shard", shard=0, at_batch=0)])
        server = make_server(
            bound_model,
            num_shards=1,
            batch_window_ms=2.0,
            fault_plan=plan,
            restart_backoff_ms=10.0,
            supervise_interval_ms=5.0,
        )
        pending = [server.submit(serving_features[i : i + 1]) for i in range(8)]
        server.start()
        for i, request in enumerate(pending):
            assert request.done.wait(timeout=30), f"request {i} hung"
            assert request.error is None
            np.testing.assert_array_equal(
                request.response.predictions, direct_predictions[i : i + 1]
            )
        assert server.stats()["restarts"] == 1
        server.stop()

    def test_redispatch_budget_fails_fast_with_typed_error(
        self, bound_model, serving_features
    ):
        plan = FaultPlan([FaultEvent(kind="crash_shard", shard=0, at_batch=0)])
        server = make_server(
            bound_model,
            num_shards=1,
            batch_window_ms=2.0,
            fault_plan=plan,
            max_redispatch=0,
            restart_backoff_ms=10.0,
            supervise_interval_ms=5.0,
        )
        request = server.submit(serving_features[:1])
        server.start()
        assert request.done.wait(timeout=30)
        assert isinstance(request.error, InferenceFailed)
        assert "re-dispatch budget" in str(request.error)
        server.stop()

    def test_poisoned_request_is_isolated_by_bisection(
        self, bound_model, serving_features, direct_predictions
    ):
        plan = FaultPlan([FaultEvent(kind="poison_request", at_request=3)])
        server = make_server(bound_model, batch_window_ms=5.0, fault_plan=plan)
        pending = [server.submit(serving_features[i : i + 1]) for i in range(8)]
        server.start()
        for i, request in enumerate(pending):
            assert request.done.wait(timeout=30)
            if i == 3:
                # the typed-error contract: isolated forward failures surface
                # as InferenceFailed chaining the original exception
                assert isinstance(request.error, InferenceFailed)
                assert isinstance(request.error.__cause__, PoisonedRequest)
            else:
                assert request.error is None, f"request {i}: {request.error!r}"
                np.testing.assert_array_equal(
                    request.response.predictions, direct_predictions[i : i + 1]
                )
        server.stop()
        assert server.errors == 1
        assert server.stats()["restarts"] == 0  # a poison is not a crash

    def test_delay_fault_drives_the_suspect_transition(
        self, bound_model, serving_features
    ):
        plan = FaultPlan(
            [FaultEvent(kind="delay_forward", shard=0, at_batch=0, ms=400.0)]
        )
        server = make_server(
            bound_model,
            fault_plan=plan,
            heartbeat_interval_ms=10.0,
            supervise_interval_ms=10.0,
            suspect_after_ms=100.0,
            restart_after_ms=30000.0,
        )
        seen_states = set()

        def record():
            for shard in server.stats()["shards"]:
                seen_states.add(shard["state"])
            return ShardState.SUSPECT in seen_states

        server.start()
        request = server.submit(serving_features[:1])
        assert wait_until(record, timeout=5.0, interval=0.02)
        assert request.done.wait(timeout=30)
        assert request.error is None
        # and it recovers: the next heartbeat flips it back to healthy
        assert wait_until(
            lambda: server.stats()["shards"][0]["state"] == ShardState.HEALTHY
        )
        server.stop()

    def test_hung_shard_is_force_restarted(self, bound_model, serving_features):
        plan = FaultPlan(
            [FaultEvent(kind="delay_forward", shard=0, at_batch=0, ms=2000.0)]
        )
        server = make_server(
            bound_model,
            fault_plan=plan,
            heartbeat_interval_ms=10.0,
            supervise_interval_ms=10.0,
            suspect_after_ms=50.0,
            restart_after_ms=150.0,
            restart_backoff_ms=10.0,
        )
        server.start()
        stuck = server.submit(serving_features[:1])
        assert stuck.done.wait(timeout=10)
        assert isinstance(stuck.error, InferenceFailed)
        assert "unresponsive" in str(stuck.error)
        # the replacement generation serves fresh traffic (batch index moved
        # past the planned delay, so no further fault fires)
        assert wait_until(
            lambda: server.stats()["shards"][0]["generation"] >= 1, timeout=10.0
        )
        fresh = server.submit(serving_features[1:2])
        assert fresh.done.wait(timeout=30)
        assert fresh.error is None
        server.stop()

    def test_admission_during_hang_restart_backoff_is_served(
        self, bound_model, serving_features, direct_predictions
    ):
        # Regression: a hang-restart swaps the slot's queue while the old
        # shard object lingers in RESTARTING until its backoff elapses.  A
        # request admitted in that window must land on the fresh queue the
        # replacement will own — on the abandoned zombie's queue it would
        # hang forever (worst with num_shards=1, where there is no fallback).
        plan = FaultPlan(
            [FaultEvent(kind="delay_forward", shard=0, at_batch=0, ms=2000.0)]
        )
        server = make_server(
            bound_model,
            num_shards=1,
            fault_plan=plan,
            heartbeat_interval_ms=10.0,
            supervise_interval_ms=10.0,
            suspect_after_ms=50.0,
            restart_after_ms=150.0,
            restart_backoff_ms=750.0,
        )
        events = []
        original_event = server.pool.logger.event

        def recording_event(name, **fields):
            events.append((name, fields))
            original_event(name, **fields)

        server.pool.logger.event = recording_event
        server.start()
        stuck = server.submit(serving_features[:1])
        assert stuck.done.wait(timeout=10)  # failed by the force-restart
        assert isinstance(stuck.error, InferenceFailed)
        assert wait_until(
            lambda: server.stats()["shards"][0]["state"] == ShardState.RESTARTING,
            timeout=10.0,
        )
        during_backoff = server.submit(serving_features[1:2])
        assert during_backoff.done.wait(
            timeout=30
        ), "request admitted during the restart backoff window hung"
        assert during_backoff.error is None
        np.testing.assert_array_equal(
            during_backoff.response.predictions, direct_predictions[1:2]
        )
        assert server.stats()["restarts"] == 1
        # the structured log attributes the restart to the hang, not a crash
        restarted = [fields for name, fields in events if name == "shard-restarted"]
        assert restarted and restarted[0]["cause"] == "hang"
        server.stop()

    def test_breaker_forgives_a_slot_after_healthy_uptime(
        self, bound_model, serving_features
    ):
        # the circuit breaker measures crash frequency, not lifetime total:
        # a slot that stays healthy for breaker_reset_ms gets its crash
        # count back, while the pool-level cumulative restart total survives
        plan = FaultPlan([FaultEvent(kind="crash_shard", shard=0, at_batch=0)])
        server = make_server(
            bound_model,
            num_shards=1,
            batch_window_ms=1.0,
            fault_plan=plan,
            restart_backoff_ms=10.0,
            supervise_interval_ms=10.0,
            heartbeat_interval_ms=10.0,
            breaker_reset_ms=150.0,
        )
        request = server.submit(serving_features[:1])
        server.start()
        assert request.done.wait(timeout=30)
        assert request.error is None  # re-dispatched to the replacement
        assert server.stats()["restarts"] == 1
        assert wait_until(
            lambda: server.stats()["shards"][0]["restarts"] == 0, timeout=10.0
        ), "healthy uptime never reset the slot's breaker window"
        assert server.stats()["restarts"] == 1  # cumulative total is untouched
        server.stop()

    def test_circuit_breaker_stops_a_crash_looping_slot(
        self, bound_model, serving_features
    ):
        # crash every generation's first batch; with max_restarts=1 the slot
        # crashes, restarts once, crashes again and the breaker opens
        plan = FaultPlan(
            [
                FaultEvent(kind="crash_shard", shard=0, at_batch=0),
                FaultEvent(kind="crash_shard", shard=0, at_batch=1),
            ]
        )
        server = make_server(
            bound_model,
            num_shards=1,
            batch_window_ms=1.0,
            fault_plan=plan,
            max_redispatch=5,
            max_restarts=1,
            restart_backoff_ms=5.0,
            supervise_interval_ms=5.0,
        )
        request = server.submit(serving_features[:1])
        server.start()
        assert request.done.wait(timeout=30)
        assert request.error is not None  # failed fast, not hung
        assert wait_until(
            lambda: server.stats()["shards"][0]["state"] == ShardState.STOPPED
        )
        with pytest.raises(ServerClosed, match="circuit breaker"):
            server.submit(serving_features[:1])
        server.stop()

    def test_fault_plan_round_trips_through_json(self):
        plan = FaultPlan(
            [
                FaultEvent(kind="crash_shard", shard=1, at_batch=7),
                FaultEvent(kind="delay_forward", at_batch=2, ms=15.0, jitter=0.5),
                FaultEvent(kind="poison_request", at_request=42),
            ],
            seed=2023,
        )
        clone = FaultPlan.from_json(plan.to_json())
        assert clone.to_dict() == plan.to_dict()
        assert clone.poisons(42) and not clone.poisons(41)
        # jittered delay is a pure function of (seed, shard, batch)
        assert clone.delay_seconds(0, 2) == plan.delay_seconds(0, 2)
        assert 0.0075 <= clone.delay_seconds(0, 2) <= 0.0225
        with pytest.raises(InjectedCrash, match="crash_shard"):
            clone.check_batch(1, 7)

    def test_config_resolves_plan_from_dict_and_rejects_garbage(self):
        config = ServeConfig(
            fault_plan={"seed": 1, "events": [{"kind": "poison_request", "at_request": 0}]}
        )
        assert isinstance(config.fault_plan, FaultPlan)
        assert resolve_fault_plan(None) is None
        with pytest.raises(ValueError, match="unknown fault kind"):
            ServeConfig(fault_plan={"events": [{"kind": "set_on_fire"}]})


# ----------------------------------------------------------------------
# Graceful drain
# ----------------------------------------------------------------------
class TestGracefulDrain:
    def test_drain_completes_every_accepted_request_bit_identically(
        self, bound_model, serving_features, direct_predictions
    ):
        server = make_server(bound_model, num_shards=2, batch_window_ms=2.0)
        pending = [server.submit(serving_features[i : i + 1]) for i in range(20)]
        server.start()
        server.stop()  # drain: nothing accepted may be lost
        for i, request in enumerate(pending):
            assert request.done.is_set(), f"request {i} not settled after drain"
            assert request.error is None, f"request {i} failed: {request.error!r}"
            np.testing.assert_array_equal(
                request.response.predictions, direct_predictions[i : i + 1]
            )
        assert server.requests_served == 20

    def test_post_drain_submit_rejected_fast(self, bound_model, serving_features):
        server = make_server(bound_model).start()
        server.stop()
        began = time.perf_counter()
        with pytest.raises(ServerClosed):
            server.submit(serving_features[:1])
        assert (time.perf_counter() - began) * 1000.0 < 50.0

    def test_stop_timeout_is_honored_and_nothing_hangs(
        self, bound_model, serving_features
    ):
        # a 5s injected stall outlives stop(timeout=0.3): stop must return
        # promptly and fail (not hang) whatever could not drain
        plan = FaultPlan(
            [FaultEvent(kind="delay_forward", shard=0, at_batch=0, ms=5000.0)]
        )
        server = make_server(
            bound_model, fault_plan=plan, restart_after_ms=60000.0
        ).start()
        stuck = server.submit(serving_features[:1])
        queued = server.submit(serving_features[1:2])
        time.sleep(0.05)  # let the worker pick the first request up
        began = time.monotonic()
        server.stop(timeout=0.3)
        assert time.monotonic() - began < 3.0
        assert stuck.done.is_set() and queued.done.is_set()  # zero hung futures
        assert isinstance(stuck.error, ServerClosed)
        assert isinstance(queued.error, ServerClosed)

    def test_stop_is_idempotent_and_unstarted_stop_is_safe(self, bound_model):
        server = make_server(bound_model)
        server.stop()
        server.stop()
        with pytest.raises(ServerClosed):
            server.start()


# ----------------------------------------------------------------------
# HTTP status mapping
# ----------------------------------------------------------------------
class TestHTTPErrorMapping:
    def _post(self, httpd, payload):
        host, port = httpd.address
        request = urllib.request.Request(
            f"http://{host}:{port}/predict",
            data=json.dumps(payload).encode("utf-8"),
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(request, timeout=30) as response:
            return json.loads(response.read())

    def test_overload_maps_to_429_with_retry_after(
        self, bound_model, serving_features
    ):
        server = make_server(bound_model, queue_depth=1, retry_after_s=3.0)
        httpd = ServeHTTPServer(server, port=0)
        thread = threading.Thread(target=httpd.serve_forever, daemon=True)
        thread.start()
        # fill the only queue slot while the batcher is parked, then ask again
        server.submit(serving_features[:1])
        try:
            with pytest.raises(urllib.error.HTTPError) as err:
                self._post(httpd, {"features": serving_features[1:2].tolist()})
            assert err.value.code == 429
            assert err.value.headers["Retry-After"] == "3"
            body = json.loads(err.value.read())
            assert "rejected without queuing" in body["error"]
            assert body["retry_after_s"] == 3.0
        finally:
            httpd.shutdown()
            httpd.server_close()
            server.stop(timeout=0.2)  # never started: the backlog fails fast

    def test_closed_maps_to_503(self, bound_model, serving_features):
        server = make_server(bound_model).start()
        httpd = ServeHTTPServer(server, port=0)
        thread = threading.Thread(target=httpd.serve_forever, daemon=True)
        thread.start()
        try:
            server.stop()
            with pytest.raises(urllib.error.HTTPError) as err:
                self._post(httpd, {"features": serving_features[:1].tolist()})
            assert err.value.code == 503
            assert "shutting down" in json.loads(err.value.read())["error"]
        finally:
            httpd.shutdown()
            httpd.server_close()

    def test_deadline_maps_to_504(self, bound_model, serving_features):
        plan = FaultPlan(
            [FaultEvent(kind="delay_forward", shard=0, at_batch=0, ms=300.0)]
        )
        server = make_server(
            bound_model, fault_plan=plan, restart_after_ms=60000.0
        )
        with ServeHTTPServer(server, port=0) as httpd:
            # the stalled first batch holds the worker; the second request's
            # 50ms deadline expires while it waits in the queue
            stalled = server.submit(serving_features[:1])
            time.sleep(0.02)
            with pytest.raises(urllib.error.HTTPError) as err:
                self._post(
                    httpd,
                    {
                        "features": serving_features[1:2].tolist(),
                        "deadline_ms": 50.0,
                    },
                )
            assert err.value.code == 504
            assert "deadline" in json.loads(err.value.read())["error"]
            assert stalled.done.wait(timeout=10)

    def test_healthz_reports_shard_states(self, bound_model):
        server = make_server(bound_model, num_shards=2)
        with ServeHTTPServer(server, port=0) as httpd:
            host, port = httpd.address
            with urllib.request.urlopen(
                f"http://{host}:{port}/healthz", timeout=30
            ) as response:
                payload = json.loads(response.read())
            assert [s["slot"] for s in payload["shards"]] == [0, 1]
            assert all(
                s["state"]
                in (ShardState.STARTING, ShardState.HEALTHY, ShardState.SUSPECT)
                for s in payload["shards"]
            )

    def test_bad_deadline_type_is_400(self, bound_model, serving_features):
        server = make_server(bound_model)
        with ServeHTTPServer(server, port=0) as httpd:
            with pytest.raises(urllib.error.HTTPError) as err:
                self._post(
                    httpd,
                    {
                        "features": serving_features[:1].tolist(),
                        "deadline_ms": "soon",
                    },
                )
            assert err.value.code == 400

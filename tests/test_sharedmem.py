"""Shared-memory task transport: registry lifecycle, transport identity, leaks.

The zero-copy transport (:mod:`repro.core.sharedmem` plus the
``BodyOutputCache`` integration in :mod:`repro.core.search`) promises:

* share/attach round trips are bit-identical and attached views read-only;
* segments are refcounted per source array and unlinked at refcount zero;
* a search over a process-crossing executor ships descriptors instead of
  pickled matrices (bytes counters prove it), returns bit-identical results,
  and leaves **no** ``/dev/shm/repro-boc-*`` segment behind after shutdown.
"""

from __future__ import annotations

import glob
import os

import numpy as np
import pytest

from repro.core import HeadTrainConfig, MuffinSearch, SearchConfig
from repro.core.search import (
    REF_DESCRIPTOR_BYTES,
    TASK_ARRAY_FIELDS,
    evaluate_task,
    resolve_task_arrays,
    task_payload_bytes,
)
from repro.core.sharedmem import (
    SEGMENT_PREFIX,
    SharedArrayRef,
    SharedSegmentRegistry,
    attach_shared_array,
    detach_all,
)


def live_segments():
    """Names of this machine's live repro shared-memory segments."""
    return sorted(
        os.path.basename(path) for path in glob.glob(f"/dev/shm/{SEGMENT_PREFIX}*")
    )


@pytest.fixture(autouse=True)
def no_leaked_segments():
    """Every test starts and must end with zero live repro segments."""
    before = live_segments()
    yield
    detach_all()
    after = live_segments()
    assert after == before, f"leaked shared-memory segments: {after}"


# ----------------------------------------------------------------------
# Registry / attach primitives
# ----------------------------------------------------------------------
class TestRegistry:
    def test_share_attach_round_trip_is_bit_identical(self):
        registry = SharedSegmentRegistry()
        array = np.random.default_rng(0).random((37, 5))
        ref = registry.share(array)
        assert ref.name.startswith(SEGMENT_PREFIX)
        assert ref.shape == (37, 5)
        assert ref.nbytes == array.nbytes
        view = attach_shared_array(ref)
        assert np.array_equal(view, array)
        assert not view.flags.writeable
        with pytest.raises(ValueError):
            view[0, 0] = 1.0
        detach_all()
        registry.close_all()

    def test_attach_copy_is_private_and_mutable(self):
        registry = SharedSegmentRegistry()
        array = np.arange(10, dtype=np.float64)
        ref = registry.share(array)
        private = attach_shared_array(ref, copy=True)
        private[0] = -1.0
        assert attach_shared_array(ref)[0] == 0.0
        detach_all()
        registry.close_all()

    def test_share_is_memoised_per_array_and_refcounted(self):
        registry = SharedSegmentRegistry()
        array = np.ones((8, 8))
        ref_a = registry.share(array)
        ref_b = registry.share(array)
        assert ref_a == ref_b
        assert len(registry) == 1
        registry.release(array)  # refcount 2 -> 1: still live
        assert len(registry) == 1
        assert ref_a.name in live_segments()
        registry.release(array)  # refcount 1 -> 0: unlinked
        assert len(registry) == 0
        assert ref_a.name not in live_segments()

    def test_distinct_arrays_get_distinct_segments(self):
        registry = SharedSegmentRegistry()
        a, b = np.zeros(4), np.zeros(4)
        assert registry.share(a).name != registry.share(b).name
        assert len(registry) == 2
        registry.close_all()

    def test_release_of_unknown_array_is_a_no_op(self):
        registry = SharedSegmentRegistry()
        registry.release(np.zeros(3))
        assert len(registry) == 0

    def test_close_all_is_idempotent_and_registry_stays_usable(self):
        registry = SharedSegmentRegistry()
        registry.share(np.zeros(4))
        registry.close_all()
        registry.close_all()
        assert len(registry) == 0
        # a registry survives close_all: the pipeline re-exports on later runs
        ref = registry.share(np.ones(4))
        assert ref.name in live_segments()
        registry.close_all()

    def test_fresh_registries_never_reuse_names_against_stale_attachments(self):
        """Segment names are process-unique, not per-registry.

        Regression: an executor running tasks inline attaches segments in
        the master process; a later search's fresh registry restarting its
        counter would reuse the name and the name-keyed attach cache would
        serve the old (unlinked, smaller) segment's bytes.
        """
        registry_a = SharedSegmentRegistry()
        small = np.zeros(4)
        ref_a = registry_a.share(small)
        attach_shared_array(ref_a)  # master-side inline-eval attachment
        registry_a.release(small)

        registry_b = SharedSegmentRegistry()
        big = np.arange(64, dtype=np.float64)
        ref_b = registry_b.share(big)
        assert ref_b.name != ref_a.name
        assert np.array_equal(attach_shared_array(ref_b), big)
        registry_b.close_all()

    def test_destroy_drops_the_local_attachment(self):
        registry = SharedSegmentRegistry()
        array = np.ones(8)
        ref = registry.share(array)
        attach_shared_array(ref)
        registry.release(array)  # unlinks — and closes the cached attachment
        with pytest.raises(FileNotFoundError):
            attach_shared_array(ref)

    def test_attach_is_cached_per_segment(self):
        registry = SharedSegmentRegistry()
        ref = registry.share(np.arange(6, dtype=np.int64))
        first = attach_shared_array(ref)
        second = attach_shared_array(ref)
        # same underlying buffer (one cached attachment, two views)
        assert first.__array_interface__["data"][0] == second.__array_interface__["data"][0]
        detach_all()
        registry.close_all()


# ----------------------------------------------------------------------
# Task-level transport helpers
# ----------------------------------------------------------------------
class TestTaskTransport:
    def _search(self, pool, executor="serial"):
        return MuffinSearch(
            pool,
            attributes=["age", "site"],
            base_model="MobileNet_V3_Small",
            search_config=SearchConfig(
                episodes=2, episode_batch=2, seed=0, executor=executor, memoize=False
            ),
            head_config=HeadTrainConfig(epochs=2, seed=0),
        )

    def _task(self, search):
        from repro.core.search_space import FusingCandidate

        candidate = FusingCandidate(
            ("MobileNet_V3_Small", "ResNet-18"), (16,), "relu"
        )
        return search._task_for(candidate, search.candidate_seed(candidate))

    def test_ship_task_replaces_every_array_field_with_descriptors(self, pool):
        search = self._search(pool)
        task = self._task(search)
        shipped = search._ship_task(task)
        for name in TASK_ARRAY_FIELDS:
            assert isinstance(getattr(shipped, name), SharedArrayRef)
        raw, wire = task_payload_bytes(shipped)
        assert wire == len(TASK_ARRAY_FIELDS) * REF_DESCRIPTOR_BYTES
        assert raw > 10 * wire  # the whole point of the transport
        search._cache.release_shared_segments()

    def test_resolved_shipped_task_evaluates_bit_identically(self, pool):
        search = self._search(pool)
        task = self._task(search)
        expected = evaluate_task(task)
        shipped = search._ship_task(task)
        resolved = resolve_task_arrays(shipped)
        for name in TASK_ARRAY_FIELDS:
            assert np.array_equal(getattr(resolved, name), getattr(task, name))
        got = evaluate_task(shipped)
        assert np.array_equal(got.predictions, expected.predictions)
        assert got.losses == expected.losses
        detach_all()
        search._cache.release_shared_segments()

    def test_ship_task_memoises_shared_cache_arrays(self, pool):
        """Two tasks over the same cached matrices share one segment set."""
        search = self._search(pool)
        task_a = self._task(search)
        task_b = self._task(search)
        search._ship_task(task_a)
        segments_after_one = live_segments()
        search._ship_task(task_b)
        assert live_segments() == segments_after_one
        search._cache.release_shared_segments()

    def test_share_array_requires_enabled_transport(self, pool):
        search = self._search(pool)
        with pytest.raises(RuntimeError, match="enable_shared_transport"):
            search._cache.share_array(np.zeros(3))

    def test_serial_and_thread_executors_do_not_ship(self, pool):
        for executor in ("serial", "thread"):
            search = self._search(pool, executor=executor)
            result = search.run()
            assert search.task_bytes_raw == 0
            assert search.task_bytes_shipped == 0
            assert result.execution_stats.task_bytes_shipped == 0
            assert not search._cache.shared_transport_enabled


# ----------------------------------------------------------------------
# End-to-end: process executor ships descriptors, leaks nothing
# ----------------------------------------------------------------------
class TestProcessExecutorTransport:
    def _run(self, pool, executor):
        search = MuffinSearch(
            pool,
            attributes=["age", "site"],
            base_model="MobileNet_V3_Small",
            search_config=SearchConfig(
                episodes=4,
                episode_batch=4,
                seed=0,
                executor=executor,
                max_workers=2,
                memoize=False,
            ),
            # the autograd path sends every task through the executor
            head_config=HeadTrainConfig(epochs=2, seed=0, use_fused=False),
        )
        return search, search.run()

    def test_process_run_is_bit_identical_ships_10x_less_and_leaks_nothing(self, pool):
        _, serial_result = self._run(pool, "serial")
        search, process_result = self._run(pool, "process")

        assert [r.reward for r in serial_result.records] == [
            r.reward for r in process_result.records
        ]
        assert [r.candidate for r in serial_result.records] == [
            r.candidate for r in process_result.records
        ]

        stats = process_result.execution_stats
        assert stats.task_bytes_shipped > 0
        assert stats.task_bytes_raw >= 10 * stats.task_bytes_shipped
        assert stats.task_bytes_raw == search.task_bytes_raw
        # run() shut the executor down and released every segment
        assert live_segments() == []

"""Unit tests for repro.nn.losses."""

import numpy as np
import pytest

from repro.nn import CrossEntropyLoss, FairRegularizedLoss, Tensor, WeightedMSELoss


class TestCrossEntropyLoss:
    def test_matches_functional(self):
        from repro.nn import functional as F

        logits = Tensor(np.random.default_rng(0).normal(size=(5, 3)))
        targets = np.array([0, 1, 2, 0, 1])
        assert CrossEntropyLoss()(logits, targets).item() == pytest.approx(
            F.cross_entropy(logits, targets).item()
        )

    def test_label_smoothing_validation(self):
        with pytest.raises(ValueError):
            CrossEntropyLoss(label_smoothing=1.0)

    def test_sample_weights_change_loss(self):
        logits = Tensor(np.array([[4.0, 0.0], [0.0, 0.5]]))
        targets = np.array([0, 1])
        plain = CrossEntropyLoss()(logits, targets).item()
        weighted = CrossEntropyLoss()(logits, targets, sample_weights=np.array([0.0, 1.0])).item()
        assert weighted != pytest.approx(plain)


class TestWeightedMSELoss:
    def test_zero_when_prediction_is_one_hot_target(self):
        loss_fn = WeightedMSELoss(num_classes=3)
        logits = Tensor(np.array([[100.0, 0.0, 0.0]]))
        loss = loss_fn(logits, np.array([0]), np.array([1.0]))
        assert loss.item() == pytest.approx(0.0, abs=1e-6)

    def test_higher_weight_on_wrong_sample_raises_loss(self):
        loss_fn = WeightedMSELoss(num_classes=2)
        logits = Tensor(np.array([[3.0, 0.0], [3.0, 0.0]]))
        targets = np.array([0, 1])  # second sample is wrong
        low = loss_fn(logits, targets, np.array([1.0, 1.0])).item()
        high = loss_fn(logits, targets, np.array([1.0, 4.0])).item()
        assert high > low

    def test_rejects_non_positive_classes(self):
        with pytest.raises(ValueError):
            WeightedMSELoss(num_classes=0)

    def test_gradient_reduces_loss(self):
        rng = np.random.default_rng(1)
        logits_val = rng.normal(size=(6, 4))
        targets = rng.integers(0, 4, size=6)
        weights = rng.uniform(0.5, 2.0, size=6)
        loss_fn = WeightedMSELoss(num_classes=4)
        logits = Tensor(logits_val, requires_grad=True)
        loss = loss_fn(logits, targets, weights)
        loss.backward()
        stepped = Tensor(logits_val - 0.5 * logits.grad)
        assert loss_fn(stepped, targets, weights).item() < loss.item()


class TestFairRegularizedLoss:
    def _setup(self):
        rng = np.random.default_rng(2)
        logits = rng.normal(size=(20, 3))
        targets = rng.integers(0, 3, size=20)
        groups = np.array([0] * 10 + [1] * 10)
        # Make group 1 systematically worse.
        logits[10:, :] *= 0.1
        return Tensor(logits), targets, groups

    def test_penalty_increases_loss_when_groups_diverge(self):
        logits, targets, groups = self._setup()
        base = FairRegularizedLoss(fairness_weight=0.0)(logits, targets, groups).item()
        regularized = FairRegularizedLoss(fairness_weight=2.0)(logits, targets, groups).item()
        assert regularized > base

    def test_zero_weight_equals_cross_entropy(self):
        from repro.nn import functional as F

        logits, targets, groups = self._setup()
        loss = FairRegularizedLoss(fairness_weight=0.0)(logits, targets, groups).item()
        assert loss == pytest.approx(F.cross_entropy(logits, targets).item(), abs=1e-10)

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            FairRegularizedLoss(fairness_weight=-1.0)

    def test_group_losses_reports_each_group(self):
        logits, targets, groups = self._setup()
        per_group = FairRegularizedLoss().group_losses(logits, targets, groups)
        assert set(per_group) == {0, 1}
        assert all(value >= 0 for value in per_group.values())

    def test_single_group_has_no_penalty(self):
        from repro.nn import functional as F

        logits, targets, _ = self._setup()
        groups = np.zeros(20, dtype=int)
        loss = FairRegularizedLoss(fairness_weight=5.0)(logits, targets, groups).item()
        # With one group, the group mean equals the total mean: penalty ~ 0.
        assert loss == pytest.approx(F.cross_entropy(logits, targets).item(), abs=1e-8)

    def test_gradient_flows(self):
        logits, targets, groups = self._setup()
        logits = Tensor(logits.data, requires_grad=True)
        FairRegularizedLoss(fairness_weight=1.0)(logits, targets, groups).backward()
        assert logits.grad is not None
        assert np.isfinite(logits.grad).all()

"""Unit tests for the RNN controller and its REINFORCE update."""

import numpy as np
import pytest

from repro.core import ControllerConfig, RandomController, RNNController, SearchSpace
from repro.zoo import default_pool_names


@pytest.fixture()
def space():
    return SearchSpace(default_pool_names(), base_model="ResNet-18", num_paired=1)


@pytest.fixture()
def controller(space):
    return RNNController(space, ControllerConfig(seed=0, lr=0.01))


class TestControllerConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ControllerConfig(hidden_size=0)
        with pytest.raises(ValueError):
            ControllerConfig(gamma=0.0)
        with pytest.raises(ValueError):
            ControllerConfig(baseline_decay=1.0)


class TestSampling:
    def test_episode_structure(self, controller, space):
        episode = controller.sample(np.random.default_rng(0))
        assert len(episode.actions) == space.num_steps
        assert len(episode.log_probs) == space.num_steps
        assert len(episode.entropies) == space.num_steps
        for action, step in zip(episode.actions, space.steps):
            assert 0 <= action < step.num_choices

    def test_log_probs_are_negative(self, controller):
        episode = controller.sample(np.random.default_rng(1))
        assert all(lp.item() <= 0 for lp in episode.log_probs)

    def test_sampled_actions_decode(self, controller, space):
        for seed in range(5):
            episode = controller.sample(np.random.default_rng(seed))
            candidate = space.decode(episode.actions)
            assert candidate.model_names[0] == "ResNet-18"

    def test_greedy_is_deterministic(self, controller):
        assert controller.greedy_actions() == controller.greedy_actions()

    def test_action_probabilities_are_distributions(self, controller, space):
        distributions = controller.action_probabilities()
        assert len(distributions) == space.num_steps
        for probs, step in zip(distributions, space.steps):
            assert probs.shape == (step.num_choices,)
            assert probs.sum() == pytest.approx(1.0)


class TestUpdate:
    def test_update_changes_parameters(self, controller):
        before = {name: param.data.copy() for name, param in controller.named_parameters()}
        episodes = []
        rng = np.random.default_rng(0)
        for reward in (1.0, 5.0, 0.5):
            episode = controller.sample(rng)
            episode.reward = reward
            episodes.append(episode)
        stats = controller.update(episodes)
        assert np.isfinite(stats["loss"])
        changed = any(
            not np.allclose(before[name], param.data)
            for name, param in controller.named_parameters()
        )
        assert changed

    def test_baseline_tracks_rewards(self, controller):
        rng = np.random.default_rng(0)
        for _ in range(3):
            episodes = []
            for _ in range(3):
                episode = controller.sample(rng)
                episode.reward = 10.0
                episodes.append(episode)
            controller.update(episodes)
        assert controller.baseline == pytest.approx(10.0, rel=0.3)

    def test_update_without_rewards_raises(self, controller):
        episode = controller.sample(np.random.default_rng(0))
        with pytest.raises(ValueError):
            controller.update([episode])

    def test_update_history_recorded(self, controller):
        rng = np.random.default_rng(0)
        episode = controller.sample(rng)
        episode.reward = 2.0
        controller.update([episode])
        assert len(controller.update_history) == 1
        assert {"loss", "mean_reward", "baseline", "grad_norm"} <= set(controller.update_history[0])

    def test_policy_learns_to_prefer_rewarded_action(self, space):
        """Rewarding a fixed first-step action should raise its probability."""
        controller = RNNController(space, ControllerConfig(seed=1, lr=0.05, entropy_weight=0.0))
        target_action = 2
        initial_prob = controller.action_probabilities()[0][target_action]
        rng = np.random.default_rng(0)
        for _ in range(30):
            episodes = []
            for _ in range(4):
                episode = controller.sample(rng)
                episode.reward = 5.0 if episode.actions[0] == target_action else 0.1
                episodes.append(episode)
            controller.update(episodes)
        final_prob = controller.action_probabilities()[0][target_action]
        assert final_prob > initial_prob


class TestRandomController:
    def test_sampling_and_update(self, space):
        controller = RandomController(space, seed=0)
        episode = controller.sample()
        assert len(episode.actions) == space.num_steps
        episode.reward = 1.0
        stats = controller.update([episode])
        assert stats["mean_reward"] == pytest.approx(1.0)
        assert controller.greedy_actions() is not None

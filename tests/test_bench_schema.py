"""The bench --json document: schema v2 keeps v1 fields and adds span metrics."""

from __future__ import annotations

import json

from repro.bench import main as bench_main, run_benchmarks
from repro.obs import active_writer

V1_RECORD_FIELDS = {
    "benchmark", "backend", "wall_time_s", "baseline_s", "speedup",
    "verdict", "detail",
}


def test_json_document_is_schema_v2_with_v1_fields(tmp_path, capsys):
    out = tmp_path / "bench.json"
    code = bench_main(
        ["--json", str(out), "--backend", "numpy-float64",
         "--bench", "metrics_engine", "--rounds", "1"]
    )
    assert code == 0
    document = json.loads(out.read_text())
    assert document["schema_version"] == 2
    assert isinstance(document["identity_only"], bool)
    record = document["records"][0]
    assert V1_RECORD_FIELDS <= set(record)
    assert record["verdict"] == "identity"
    # the v2 addition: per-phase wall times measured by the span layer
    phases = record["metrics"]["phases"]
    assert set(phases) == {"baseline", "fastpath", "verify"}
    assert all(seconds >= 0.0 for seconds in phases.values())
    assert record["metrics"]["total_s"] >= phases["fastpath"]


def test_span_capture_does_not_leak_a_writer():
    assert active_writer() is None
    records = run_benchmarks(
        backends=["numpy-float64"], benchmarks=["metrics_engine"], rounds=1
    )
    assert active_writer() is None
    assert records[0].metrics["phases"]["baseline"] > 0.0

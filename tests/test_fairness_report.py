"""Unit tests for repro.fairness.report."""

import pytest

from repro.fairness import (
    ComparisonReport,
    FairnessEvaluation,
    ModelFairnessReport,
    accuracy_improvement,
    relative_improvement,
)


def make_eval(acc, age, site):
    return FairnessEvaluation(accuracy=acc, unfairness={"age": age, "site": site})


class TestImprovementHelpers:
    def test_relative_improvement_positive_when_score_drops(self):
        assert relative_improvement(0.4, 0.3) == pytest.approx(0.25)

    def test_relative_improvement_negative_when_score_rises(self):
        assert relative_improvement(0.4, 0.5) == pytest.approx(-0.25)

    def test_relative_improvement_zero_baseline(self):
        assert relative_improvement(0.0, 0.2) == 0.0

    def test_accuracy_improvement(self):
        assert accuracy_improvement(0.75, 0.80) == pytest.approx(0.05)

    def test_paper_headline_number(self):
        # MobileNet_V3_Small: vanilla U(age)=0.38, Muffin U(age)=0.28 -> 26.32%
        assert relative_improvement(0.38, 0.28) == pytest.approx(0.2632, abs=1e-3)


class TestModelFairnessReport:
    def test_row_without_baseline(self):
        report = ModelFairnessReport("net", make_eval(0.8, 0.3, 0.4))
        row = report.row()
        assert row["model"] == "net"
        assert row["U(age)"] == 0.3
        assert row["U(multi)"] == pytest.approx(0.7)
        assert report.improvement("age") is None
        assert report.accuracy_gain() is None

    def test_row_with_baseline(self):
        report = ModelFairnessReport(
            "muffin", make_eval(0.82, 0.28, 0.43), baseline=make_eval(0.76, 0.38, 0.54)
        )
        row = report.row()
        assert row["imp(age)"] == pytest.approx(relative_improvement(0.38, 0.28))
        assert row["acc_imp"] == pytest.approx(0.06)

    def test_metadata_included(self):
        report = ModelFairnessReport("net", make_eval(0.8, 0.3, 0.4), metadata={"paired": "R18"})
        assert report.row()["paired"] == "R18"

    def test_to_dict_with_baseline(self):
        report = ModelFairnessReport(
            "muffin", make_eval(0.8, 0.3, 0.4), baseline=make_eval(0.7, 0.4, 0.5)
        )
        payload = report.to_dict()
        assert "improvements" in payload and "accuracy_gain" in payload


class TestComparisonReport:
    def _report(self):
        comparison = ComparisonReport("demo")
        comparison.add(ModelFairnessReport("a", make_eval(0.7, 0.4, 0.5)))
        comparison.add(ModelFairnessReport("b", make_eval(0.8, 0.3, 0.6)))
        return comparison

    def test_rows_and_render(self):
        comparison = self._report()
        assert len(comparison.rows()) == 2
        rendered = comparison.render()
        assert "demo" in rendered and "a" in rendered and "b" in rendered

    def test_best_by_accuracy(self):
        assert self._report().best_by("accuracy").model_name == "b"

    def test_best_by_minimised_column(self):
        assert self._report().best_by("U(age)", maximize=False).model_name == "b"

    def test_best_by_missing_column(self):
        with pytest.raises(KeyError):
            self._report().best_by("missing")

    def test_empty_report_raises(self):
        with pytest.raises(ValueError):
            ComparisonReport("empty").best_by("accuracy")

    def test_to_dict(self):
        payload = self._report().to_dict()
        assert payload["title"] == "demo"
        assert len(payload["reports"]) == 2

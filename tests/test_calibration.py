"""Calibration tests: the synthetic substrate reproduces the paper's
qualitative observations (Section II of DESIGN.md).

These are the load-bearing tests of the reproduction — if they hold, the
experiment harness regenerates the right *shapes* for Figures 1-3 and the
Muffin experiments have the structure they rely on (unfairness exists,
baselines see-saw, models disagree and are complementary).
"""

import numpy as np
import pytest

from repro.core import oracle_union_predictions
from repro.fairness import disagreement_breakdown, overall_accuracy


class TestObservation1UnfairnessExists:
    """Figure 1: gender is fair, age and site are not, no model wins both."""

    def test_gender_unfairness_is_small(self, pool):
        for name, evaluation in pool.evaluate_all().items():
            assert evaluation.unfairness["gender"] < 0.15, name

    def test_age_and_site_unfairness_substantial(self, pool):
        evaluations = pool.evaluate_all()
        mean_age = np.mean([e.unfairness["age"] for e in evaluations.values()])
        mean_site = np.mean([e.unfairness["site"] for e in evaluations.values()])
        max_gender = max(e.unfairness["gender"] for e in evaluations.values())
        assert mean_age > 0.1
        assert mean_site > 0.2
        assert mean_age > 1.5 * max_gender
        assert mean_site > 1.5 * max_gender

    def test_unprivileged_groups_have_lower_accuracy(self, pool):
        test = pool.split.test
        evaluation = pool.evaluate("ResNet-18")
        for attribute in ("age", "site"):
            spec = test.attributes[attribute]
            per_group = evaluation.group_accuracy[attribute]
            unpriv = np.mean([per_group[g] for g in spec.unprivileged])
            priv = np.mean([per_group[g] for g in spec.privileged])
            assert unpriv < priv, attribute

    def test_accuracy_in_plausible_range(self, pool):
        for name, evaluation in pool.evaluate_all().items():
            assert 0.6 < evaluation.accuracy < 0.95, name

    def test_architecture_tradeoff_between_age_and_site(self, pool):
        """ResNet-18 is fairer on age, DenseNet121 on site (family pattern of Fig 1c)."""
        r18 = pool.evaluate("ResNet-18")
        d121 = pool.evaluate("DenseNet121")
        assert r18.unfairness["age"] < d121.unfairness["age"]
        assert d121.unfairness["site"] < r18.unfairness["site"]


class TestObservation3Complementarity:
    """Figure 3: similar-accuracy models disagree on unprivileged data."""

    def test_disagreement_fraction_is_substantial(self, pool):
        test = pool.split.test
        a = pool.get("ResNet-18").predict(test)
        b = pool.get("DenseNet121").predict(test)
        mask = test.unprivileged_mask("site")
        breakdown = disagreement_breakdown(a, b, test.labels, mask=mask)
        assert 0.05 < breakdown["disagreement"] < 0.6

    def test_oracle_union_beats_both_members_on_unprivileged_group(self, pool):
        test = pool.split.test
        a = pool.get("ResNet-18").predict(test)
        b = pool.get("DenseNet121").predict(test)
        mask = test.unprivileged_mask("site")
        oracle = oracle_union_predictions(np.stack([a, b]), test.labels)
        oracle_acc = overall_accuracy(oracle[mask], test.labels[mask])
        assert oracle_acc > overall_accuracy(a[mask], test.labels[mask]) + 0.03
        assert oracle_acc > overall_accuracy(b[mask], test.labels[mask]) + 0.03


class TestFitzpatrickCalibration:
    """Section 4.5: the second dataset also exhibits multi-dimensional unfairness."""

    def test_skin_tone_unfairness_exists(self, fitz_pool):
        evaluations = fitz_pool.evaluate_all()
        mean_tone = np.mean([e.unfairness["skin_tone"] for e in evaluations.values()])
        assert mean_tone > 0.08

    def test_darker_tones_are_disadvantaged(self, fitz_pool):
        test = fitz_pool.split.test
        evaluation = fitz_pool.evaluate("ResNet-18")
        per_group = evaluation.group_accuracy["skin_tone"]
        assert per_group["black"] < per_group["white"]

    def test_accuracy_lower_than_isic(self, pool, fitz_pool):
        """Fitzpatrick17K is the harder task (paper: ~62% vs ~80%)."""
        isic_best = max(e.accuracy for e in pool.evaluate_all().values())
        fitz_best = max(e.accuracy for e in fitz_pool.evaluate_all().values())
        assert fitz_best < isic_best

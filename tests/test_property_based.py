"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.data import AttributeSpec, stratified_split_indices
from repro.fairness import (
    disagreement_breakdown,
    make_point,
    overall_accuracy,
    pareto_front,
    unfairness_score,
)
from repro.nn import Tensor
from repro.nn import functional as F

# ---------------------------------------------------------------------------
# Autograd invariants
# ---------------------------------------------------------------------------

small_arrays = hnp.arrays(
    dtype=np.float64,
    shape=hnp.array_shapes(min_dims=1, max_dims=2, min_side=1, max_side=6),
    elements=st.floats(-5.0, 5.0, allow_nan=False),
)


@given(small_arrays)
@settings(max_examples=50, deadline=None)
def test_sum_gradient_is_ones(values):
    t = Tensor(values, requires_grad=True)
    t.sum().backward()
    np.testing.assert_allclose(t.grad, np.ones_like(values))


@given(small_arrays, st.integers(0, 2**31 - 1))
@settings(max_examples=50, deadline=None)
def test_addition_gradient_distributes(a_values, seed):
    b_values = np.random.default_rng(seed).uniform(-5.0, 5.0, size=a_values.shape)
    a = Tensor(a_values, requires_grad=True)
    b = Tensor(b_values, requires_grad=True)
    (a + b).sum().backward()
    np.testing.assert_allclose(a.grad, np.ones_like(a_values))
    np.testing.assert_allclose(b.grad, np.ones_like(b_values))


@given(small_arrays)
@settings(max_examples=50, deadline=None)
def test_mul_by_self_gradient_is_2x(values):
    x = Tensor(values, requires_grad=True)
    (x * x).sum().backward()
    np.testing.assert_allclose(x.grad, 2 * values, atol=1e-10)


@given(
    hnp.arrays(
        dtype=np.float64,
        shape=st.tuples(st.integers(1, 8), st.integers(2, 6)),
        elements=st.floats(-30.0, 30.0, allow_nan=False),
    )
)
@settings(max_examples=60, deadline=None)
def test_softmax_is_a_distribution(logits):
    probs = F.softmax(Tensor(logits)).data
    assert (probs >= 0).all()
    np.testing.assert_allclose(probs.sum(axis=-1), np.ones(logits.shape[0]), atol=1e-9)


@given(st.integers(2, 10), st.integers(1, 40))
@settings(max_examples=40, deadline=None)
def test_one_hot_is_inverse_of_argmax(num_classes, n):
    labels = np.random.default_rng(n).integers(0, num_classes, size=n)
    encoded = F.one_hot(labels, num_classes)
    assert encoded.shape == (n, num_classes)
    np.testing.assert_array_equal(encoded.argmax(axis=1), labels)
    np.testing.assert_allclose(encoded.sum(axis=1), np.ones(n))


# ---------------------------------------------------------------------------
# Fairness metric invariants
# ---------------------------------------------------------------------------


@st.composite
def predictions_labels_groups(draw):
    n = draw(st.integers(4, 120))
    num_classes = draw(st.integers(2, 6))
    num_groups = draw(st.integers(2, 5))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    labels = rng.integers(0, num_classes, size=n)
    predictions = rng.integers(0, num_classes, size=n)
    groups = rng.integers(0, num_groups, size=n)
    spec = AttributeSpec(
        name="attr", groups=tuple(f"g{i}" for i in range(num_groups)), unprivileged=("g0",)
    )
    return predictions, labels, groups, spec


@given(predictions_labels_groups())
@settings(max_examples=60, deadline=None)
def test_unfairness_score_bounds(data):
    predictions, labels, groups, spec = data
    score = unfairness_score(predictions, labels, groups, spec)
    assert 0.0 <= score <= spec.num_groups


@given(predictions_labels_groups())
@settings(max_examples=60, deadline=None)
def test_perfect_predictions_are_perfectly_fair(data):
    _, labels, groups, spec = data
    assert unfairness_score(labels, labels, groups, spec) == pytest.approx(0.0)
    assert overall_accuracy(labels, labels) == 1.0


@given(predictions_labels_groups())
@settings(max_examples=60, deadline=None)
def test_disagreement_breakdown_partitions_probability(data):
    predictions, labels, groups, _ = data
    other = np.roll(predictions, 1)
    breakdown = disagreement_breakdown(predictions, other, labels)
    total = breakdown["00"] + breakdown["01"] + breakdown["10"] + breakdown["11"]
    assert total == pytest.approx(1.0)
    assert breakdown["oracle"] >= max(
        overall_accuracy(predictions, labels), overall_accuracy(other, labels)
    ) - 1e-12


# ---------------------------------------------------------------------------
# Pareto-front invariants
# ---------------------------------------------------------------------------


@given(
    st.lists(
        st.tuples(st.floats(0.0, 1.0, allow_nan=False), st.floats(0.0, 1.0, allow_nan=False)),
        min_size=1,
        max_size=20,
    )
)
@settings(max_examples=60, deadline=None)
def test_pareto_front_is_subset_and_nonempty(points):
    named = [make_point(f"p{i}", {"a": a, "b": b}) for i, (a, b) in enumerate(points)]
    front = pareto_front(named, ["a", "b"])
    assert 1 <= len(front) <= len(named)
    front_names = {p.name for p in front}
    assert front_names <= {p.name for p in named}
    # The point with the minimum first objective is never strictly dominated:
    best_a = min(named, key=lambda p: (p.objectives["a"], p.objectives["b"]))
    assert best_a.name in front_names


# ---------------------------------------------------------------------------
# Split invariants
# ---------------------------------------------------------------------------


@given(st.integers(20, 300), st.integers(2, 6), st.integers(0, 10_000))
@settings(max_examples=40, deadline=None)
def test_split_partitions_every_index_exactly_once(n, num_classes, seed):
    labels = np.random.default_rng(seed).integers(0, num_classes, size=n)
    train, val, test = stratified_split_indices(labels, seed=seed)
    combined = np.sort(np.concatenate([train, val, test]))
    np.testing.assert_array_equal(combined, np.arange(n))


# ---------------------------------------------------------------------------
# Proxy weight invariants (Algorithm 1)
# ---------------------------------------------------------------------------


@given(st.integers(0, 5000))
@settings(max_examples=20, deadline=None)
def test_image_weights_bounded_by_attribute_count(seed):
    from repro.core import compute_image_weights
    from repro.data import SyntheticISIC2019

    dataset = SyntheticISIC2019(num_samples=200, seed=seed % 100)
    weights = compute_image_weights(dataset, ["age", "site", "gender"])
    assert weights.min() >= 0
    assert weights.max() <= 3

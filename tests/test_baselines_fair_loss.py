"""Unit tests for the fair-loss baseline (Method L)."""

import pytest

from repro.baselines import FairLossConfig, apply_fair_loss


class TestFairLossConfig:
    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            FairLossConfig(fairness_weight=-0.5)

    def test_defaults(self):
        assert FairLossConfig().fairness_weight > 0


class TestApplyFairLoss:
    def test_unknown_attribute_rejected(self, pool, isic_split, train_config):
        with pytest.raises(KeyError):
            apply_fair_loss(pool.get("ResNet-18"), isic_split, "income", train_config)

    def test_outcome_structure(self, pool, isic_split, train_config):
        outcome = apply_fair_loss(pool.get("DenseNet121"), isic_split, "age", train_config)
        assert outcome.method == "L"
        assert outcome.attribute == "age"
        assert outcome.model.is_trained
        assert "L(age)" in outcome.model.label
        assert len(outcome.train_result.losses) == train_config.epochs

    def test_improves_or_holds_target_attribute(self, pool, isic_split, train_config):
        base = pool.get("MobileNet_V3_Large")
        vanilla = base.evaluate(isic_split.test)
        outcome = apply_fair_loss(base, isic_split, "site", train_config, FairLossConfig(fairness_weight=3.0))
        optimized = outcome.model.evaluate(isic_split.test)
        # The fair loss targets the site attribute; allow small noise.
        assert optimized.unfairness["site"] < vanilla.unfairness["site"] + 0.08

    def test_does_not_modify_base_model(self, pool, isic_split, train_config):
        base = pool.get("ResNet-18")
        before = base.predict(isic_split.test)
        apply_fair_loss(base, isic_split, "age", train_config)
        after = base.predict(isic_split.test)
        assert (before == after).all()

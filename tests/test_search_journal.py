"""Episode-journal resume tests: a search interrupted after any number of
batches and resumed from its journal is bit-identical to an uninterrupted
run — the durability claim behind the master's crash story."""

import numpy as np
import pytest

from repro.core import (
    HeadTrainConfig,
    MuffinSearch,
    SearchConfig,
    SearchInterrupted,
)
from repro.master import EpisodeJournal


def _search(pool, **config_overrides):
    config = dict(episodes=9, episode_batch=3, seed=0)
    config.update(config_overrides)
    return MuffinSearch(
        pool,
        attributes=["age", "site"],
        base_model="MobileNet_V3_Small",
        search_config=SearchConfig(**config),
        head_config=HeadTrainConfig(epochs=4, seed=0),
    )


class TestJournalPassThrough:
    def test_journalled_run_matches_plain_run(self, pool, tmp_path):
        plain = _search(pool).run()
        with EpisodeJournal(tmp_path / "journal.jsonl") as journal:
            journalled = _search(pool).run(journal=journal)
        assert journalled.result_hash() == plain.result_hash()
        assert journal.batches == 3
        assert journal.episodes == 9

    def test_completed_journal_replays_without_reevaluation(self, pool, tmp_path):
        path = tmp_path / "journal.jsonl"
        with EpisodeJournal(path) as journal:
            first = _search(pool).run(journal=journal)
        with EpisodeJournal(path) as journal:
            replayed = _search(pool).run(journal=journal)
            assert journal.replayed_batches == 3  # answered from disk, batch for batch
        assert replayed.result_hash() == first.result_hash()


class TestInterruptAndResume:
    @pytest.mark.parametrize("stop_after", [1, 2])
    @pytest.mark.parametrize("candidate_seeds", ["episode", "derived"])
    def test_resume_is_bit_identical(self, pool, tmp_path, stop_after, candidate_seeds):
        """Kill the search at an arbitrary batch boundary; the resumed search
        must reproduce the uninterrupted result bit for bit."""
        reference = _search(pool, candidate_seeds=candidate_seeds).run()
        path = tmp_path / "journal.jsonl"

        checks = {"count": 0}

        def stop_after_n_batches() -> bool:
            checks["count"] += 1
            return checks["count"] > stop_after

        with EpisodeJournal(path) as journal:
            with pytest.raises(SearchInterrupted) as excinfo:
                _search(pool, candidate_seeds=candidate_seeds).run(
                    journal=journal, should_stop=stop_after_n_batches
                )
        assert excinfo.value.completed_episodes == stop_after * 3
        assert EpisodeJournal.progress(path) == {
            "batches": stop_after,
            "episodes": stop_after * 3,
        }

        with EpisodeJournal(path) as journal:
            resumed = _search(pool, candidate_seeds=candidate_seeds).run(journal=journal)
            # Journalled batches were answered from disk; the rest ran live.
            assert journal.replayed_batches == stop_after
            assert journal.batches == 3

        assert resumed.result_hash() == reference.result_hash()
        for record_a, record_b in zip(reference.records, resumed.records):
            assert record_a.candidate == record_b.candidate
            assert record_a.reward == record_b.reward
            assert record_a.train_losses == record_b.train_losses
            for key in record_a.head_state:
                np.testing.assert_array_equal(record_a.head_state[key], record_b.head_state[key])

    def test_stale_journal_from_other_config_is_discarded(self, pool, tmp_path):
        """Resuming with a journal written by a different search truncates the
        mismatching tail instead of serving wrong records."""
        path = tmp_path / "journal.jsonl"
        with EpisodeJournal(path) as journal:
            _search(pool, seed=123).run(journal=journal)
        with EpisodeJournal(path) as journal:
            resumed = _search(pool).run(journal=journal)
            assert journal.replayed_batches == 0
        assert resumed.result_hash() == _search(pool).run().result_hash()

    def test_should_stop_before_first_batch(self, pool, tmp_path):
        with EpisodeJournal(tmp_path / "j.jsonl") as journal:
            with pytest.raises(SearchInterrupted) as excinfo:
                _search(pool).run(journal=journal, should_stop=lambda: True)
        assert excinfo.value.completed_episodes == 0
        assert journal.batches == 0

    def test_interrupt_without_journal_still_raises(self, pool):
        checks = {"count": 0}

        def stop_after_one() -> bool:
            checks["count"] += 1
            return checks["count"] > 1

        with pytest.raises(SearchInterrupted):
            _search(pool).run(should_stop=stop_after_one)

"""Tests of the deployable fused-model artifact and the raw-feature path."""

import json

import numpy as np
import pytest

from repro.data import FeatureSchema
from repro.zoo import (
    FUSED_ARTIFACT_FORMAT,
    fused_model_payload,
    load_fused_model,
    save_fused_model,
)


class TestFeatureSchema:
    def test_roundtrip(self, serving_schema):
        restored = FeatureSchema.from_dict(serving_schema.to_dict())
        assert restored == serving_schema
        assert restored.input_dim == serving_schema.input_dim

    def test_features_layout(self, serving_schema, isic_dataset):
        features = serving_schema.features(isic_dataset)
        assert features.shape == (len(isic_dataset), serving_schema.input_dim)
        slices = serving_schema.component_slices()
        np.testing.assert_array_equal(
            features[:, slices["signal"]], isic_dataset.components["signal"]
        )

    def test_validate_features_rejects_wrong_width(self, serving_schema):
        with pytest.raises(ValueError, match="expected features of shape"):
            serving_schema.validate_features(np.zeros((4, serving_schema.input_dim + 1)))

    def test_validate_features_promotes_single_sample(self, serving_schema):
        one = serving_schema.validate_features(np.zeros(serving_schema.input_dim))
        assert one.shape == (1, serving_schema.input_dim)

    def test_validate_groups_and_labels(self, serving_schema):
        groups = serving_schema.validate_groups({"age": [0, 1, 2]}, 3)
        assert groups["age"].tolist() == [0, 1, 2]
        with pytest.raises(ValueError, match="group ids"):
            serving_schema.validate_groups({"age": [0, 99]}, 2)
        with pytest.raises(KeyError):
            serving_schema.validate_groups({"nonsense": [0]}, 1)
        with pytest.raises(ValueError, match="labels"):
            serving_schema.validate_labels([0, 1], 3)


class TestRawFeaturePath:
    def test_bit_identical_to_dataset_path(self, fused_model, serving_schema, isic_split):
        """predict_features on schema features == predict on the dataset, exactly."""
        for partition in (isic_split.val, isic_split.test):
            features = serving_schema.features(partition)
            np.testing.assert_array_equal(
                fused_model.predict_features(features, serving_schema),
                fused_model.predict(partition),
            )

    def test_no_consensus_shortcut_path(self, fused_model, serving_schema, isic_split):
        features = serving_schema.features(isic_split.test)
        np.testing.assert_array_equal(
            fused_model.predict_features(
                features, serving_schema, use_consensus_shortcut=False
            ),
            fused_model.predict(isic_split.test, use_consensus_shortcut=False),
        )

    def test_probabilities_are_consensus_onehot(self, fused_model, serving_schema, isic_split):
        features = serving_schema.features(isic_split.test)
        detailed = fused_model.predict_detailed_features(features, serving_schema)
        assert detailed.probabilities.shape == (
            features.shape[0],
            fused_model.num_classes,
        )
        np.testing.assert_allclose(detailed.probabilities.sum(axis=1), 1.0)
        consensus_rows = detailed.probabilities[detailed.consensus_mask]
        if consensus_rows.size:
            assert set(np.unique(consensus_rows)) <= {0.0, 1.0}
        np.testing.assert_array_equal(
            detailed.probabilities.argmax(axis=1), detailed.predictions
        )

    def test_member_forwards_identical_across_executors(
        self, fused_model, serving_schema, isic_split
    ):
        from repro.core import build_executor

        features = serving_schema.features(isic_split.val)
        serial = fused_model.predict_proba_features(features, serving_schema)
        executor = build_executor("thread", max_workers=2)
        try:
            threaded = fused_model.predict_proba_features(
                features, serving_schema, executor=executor
            )
        finally:
            executor.shutdown()
        np.testing.assert_array_equal(serial, threaded)

    def test_schema_required(self, fused_model, serving_schema, isic_split):
        features = serving_schema.features(isic_split.test)
        assert fused_model.schema is None
        with pytest.raises(ValueError, match="no feature schema"):
            fused_model.predict_features(features)


class TestFusedModelArtifact:
    def test_export_load_roundtrip_bit_identical(
        self, fused_model, serving_schema, isic_split, tmp_path
    ):
        """export -> load_fused_model -> predict_features is bit-identical to
        the in-memory FusedModel.predict on the same dataset features."""
        path = save_fused_model(
            fused_model, tmp_path / "muffin.json", schema=serving_schema, spec_hash="cafe"
        )
        loaded = load_fused_model(path)
        assert loaded.name == fused_model.name
        assert loaded.schema == serving_schema
        assert loaded.metadata["spec_hash"] == "cafe"
        features = serving_schema.features(isic_split.test)
        np.testing.assert_array_equal(
            loaded.predict_features(features), fused_model.predict(isic_split.test)
        )
        np.testing.assert_array_equal(
            loaded.predict_proba_features(features),
            fused_model.predict_proba_features(features, serving_schema),
        )

    def test_overwrite_guard(self, fused_model, serving_schema, tmp_path):
        path = tmp_path / "muffin.json"
        save_fused_model(fused_model, path, schema=serving_schema)
        with pytest.raises(FileExistsError):
            save_fused_model(fused_model, path, schema=serving_schema)
        save_fused_model(fused_model, path, schema=serving_schema, overwrite=True)

    def test_checksum_detects_tampering(self, fused_model, serving_schema, tmp_path):
        path = save_fused_model(fused_model, tmp_path / "muffin.json", schema=serving_schema)
        payload = json.loads(path.read_text())
        first_tensor = next(iter(payload["head"]["state"]))
        payload["head"]["state"][first_tensor]["values"][0] += 1.0
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="checksum"):
            load_fused_model(path)

    def test_truncated_artifact_rejected(self, fused_model, serving_schema, tmp_path):
        path = save_fused_model(fused_model, tmp_path / "muffin.json", schema=serving_schema)
        text = path.read_text()
        path.write_text(text[: len(text) // 2])
        with pytest.raises(ValueError):
            load_fused_model(path)

    def test_non_artifact_rejected(self, tmp_path):
        path = tmp_path / "not-an-artifact.json"
        path.write_text(json.dumps({"format": "something-else"}))
        with pytest.raises(ValueError, match=FUSED_ARTIFACT_FORMAT):
            load_fused_model(path)

    def test_payload_requires_schema(self, fused_model):
        with pytest.raises(ValueError, match="FeatureSchema"):
            fused_model_payload(fused_model)

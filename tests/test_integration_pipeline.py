"""End-to-end integration tests: the full Muffin pipeline reproduces the
paper's headline behaviour on the synthetic substrate.

These tests run a small but complete search (pool -> proxy -> RL search ->
finalised Muffin-Net) and check the paper's Table I claims in relaxed form:
the fused model improves the unfairness of *both* attributes relative to the
vanilla base model while keeping (or improving) accuracy.
"""

import numpy as np
import pytest

from repro.core import HeadTrainConfig, MuffinSearch, SearchConfig


@pytest.fixture(scope="module")
def search_outcome(pool):
    base_model = "MobileNet_V3_Small"
    search = MuffinSearch(
        pool,
        attributes=["age", "site"],
        base_model=base_model,
        search_config=SearchConfig(episodes=25, episode_batch=5, seed=0),
        head_config=HeadTrainConfig(epochs=20, seed=0),
    )
    result = search.run()
    muffin = search.finalize(
        result, metric="reward", name="Muffin", reference_model=base_model
    )
    vanilla = pool.evaluate(base_model, partition="test")
    return {"search": search, "result": result, "muffin": muffin, "vanilla": vanilla}


class TestEndToEndMuffin:
    def test_search_completes(self, search_outcome):
        assert len(search_outcome["result"]) == 25

    def test_muffin_improves_both_attributes(self, search_outcome):
        """Neither attribute degrades and the combined unfairness improves.

        The dominating-candidate selection is made on the validation
        partition, so a small generalisation slack is allowed on test.
        """
        vanilla = search_outcome["vanilla"]
        fused = search_outcome["muffin"].test_evaluation
        assert fused.unfairness["age"] < vanilla.unfairness["age"] + 0.03
        assert fused.unfairness["site"] < vanilla.unfairness["site"] + 0.03
        assert (
            fused.multi_dimensional_unfairness < vanilla.multi_dimensional_unfairness
        )

    def test_muffin_does_not_lose_accuracy(self, search_outcome):
        vanilla = search_outcome["vanilla"]
        fused = search_outcome["muffin"].test_evaluation
        assert fused.accuracy >= vanilla.accuracy - 0.01

    def test_muffin_reward_exceeds_vanilla_reward(self, search_outcome):
        vanilla = search_outcome["vanilla"]
        fused = search_outcome["muffin"].test_evaluation
        vanilla_reward = sum(vanilla.accuracy / max(vanilla.unfairness[a], 1e-6) for a in ("age", "site"))
        fused_reward = sum(fused.accuracy / max(fused.unfairness[a], 1e-6) for a in ("age", "site"))
        assert fused_reward > vanilla_reward

    def test_body_contains_base_and_partner(self, search_outcome):
        names = search_outcome["muffin"].record.candidate.model_names
        assert names[0] == "MobileNet_V3_Small"
        assert len(names) == 2 and names[1] != names[0]

    def test_consensus_shortcut_only_changes_disagreements(self, search_outcome, pool):
        fused = search_outcome["muffin"].fused
        test = pool.split.test
        detailed = fused.predict_detailed(test)
        member_predictions = np.stack([m.predict(test) for m in fused.body.models])
        agree = np.all(member_predictions == member_predictions[0], axis=0)
        np.testing.assert_array_equal(
            detailed.predictions[agree], member_predictions[0][agree]
        )

    def test_search_reward_trend_not_degenerate(self, search_outcome):
        """The reward signal is informative: the best episode clearly beats the worst."""
        rewards = search_outcome["result"].rewards()
        assert rewards.max() > rewards.min()
        assert np.isfinite(rewards).all()


class TestQuickMuffinSearchHelper:
    def test_quick_helper_runs(self):
        from repro import quick_muffin_search

        outcome = quick_muffin_search(
            base_model="ShuffleNet_V2_X1_0", episodes=6, num_samples=2000, seed=1
        )
        assert outcome["muffin"].test_evaluation is not None
        assert len(outcome["result"]) == 6
        assert outcome["pool"].get("ShuffleNet_V2_X1_0").is_trained

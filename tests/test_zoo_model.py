"""Unit tests for ZooModel."""

import numpy as np
import pytest

from repro.zoo import ZooModel, get_architecture, train_model, TrainConfig


class TestZooModel:
    def test_construction_from_name(self, isic_dataset):
        model = ZooModel.from_name("R-18", isic_dataset.feature_dim, isic_dataset.num_classes)
        assert model.name == "ResNet-18"
        assert model.num_parameters == 11_181_642
        assert not model.is_trained

    def test_prediction_shapes(self, isic_split):
        test = isic_split.test
        model = ZooModel.from_name("DenseNet121", test.feature_dim, test.num_classes, seed=0)
        logits = model.predict_logits(test)
        proba = model.predict_proba(test)
        predictions = model.predict(test)
        assert logits.shape == (len(test), test.num_classes)
        assert proba.shape == logits.shape
        assert predictions.shape == (len(test),)

    def test_proba_rows_sum_to_one(self, isic_split):
        test = isic_split.test
        model = ZooModel.from_name("ResNet-18", test.feature_dim, test.num_classes, seed=0)
        proba = model.predict_proba(test, indices=np.arange(25))
        np.testing.assert_allclose(proba.sum(axis=1), np.ones(25), atol=1e-9)
        assert (proba >= 0).all()

    def test_untrained_model_near_chance(self, isic_split):
        test = isic_split.test
        model = ZooModel.from_name("ResNet-18", test.feature_dim, test.num_classes, seed=0)
        evaluation = model.evaluate(test)
        assert evaluation.accuracy < 0.5

    def test_trained_pool_models_beat_chance(self, pool):
        test = pool.split.test
        chance = 1.0 / test.num_classes
        for model in pool:
            assert model.evaluate(test).accuracy > chance + 0.2

    def test_clone_untrained_resets_head(self, pool):
        base = pool.get("ResNet-18")
        clone = base.clone_untrained(seed=1, label="clone")
        assert not clone.is_trained
        assert clone.label == "clone"
        assert clone.spec.name == base.spec.name
        # Same frozen backbone features (architecture-seeded), different head.
        test = pool.split.test
        np.testing.assert_allclose(
            clone.features(test, np.arange(5)), base.features(test, np.arange(5))
        )
        assert not np.allclose(clone.predict_logits(test), base.predict_logits(test))

    def test_head_state_roundtrip(self, isic_split, train_config):
        train = isic_split.train
        model = ZooModel.from_name("MobileNet_V3_Small", train.feature_dim, train.num_classes, seed=0)
        train_model(model, train, config=TrainConfig(epochs=10, batch_size=256))
        state = model.head_state()
        clone = model.clone_untrained(seed=99)
        clone.load_head_state(state)
        np.testing.assert_allclose(
            clone.predict_logits(isic_split.test), model.predict_logits(isic_split.test)
        )
        assert clone.is_trained

    def test_evaluate_attribute_subset(self, pool):
        evaluation = pool.get("ResNet-18").evaluate(pool.split.test, attributes=["age"])
        assert list(evaluation.unfairness) == ["age"]

    def test_repr_mentions_training_state(self, pool):
        assert "trained" in repr(pool.get("ResNet-18"))

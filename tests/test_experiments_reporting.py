"""Unit tests for the paper-vs-measured reporting module."""

import pytest

from repro.experiments.reporting import (
    PAPER_REPORTED,
    _markdown_table,
    build_experiments_markdown,
)


class TestMarkdownTable:
    def test_basic_rendering(self):
        rows = [{"model": "a", "acc": 0.5}, {"model": "b", "acc": 0.75}]
        text = _markdown_table(rows)
        lines = text.splitlines()
        assert lines[0] == "| model | acc |"
        assert lines[1] == "|---|---|"
        assert "| a | 0.5000 |" in lines

    def test_column_selection_and_missing_values(self):
        rows = [{"a": 1}, {"a": 2, "b": 3}]
        text = _markdown_table(rows, columns=["b"])
        assert "| b |" in text.splitlines()[0]
        assert "| 3 |" in text

    def test_empty(self):
        assert "_(no rows)_" == _markdown_table([])


class TestPaperReported:
    def test_every_experiment_has_paper_claims(self):
        assert set(PAPER_REPORTED) == {
            "fig1",
            "fig2",
            "fig3",
            "table1",
            "fig5",
            "fig6",
            "fig7",
            "fig8",
            "fig9",
        }
        assert all(claims for claims in PAPER_REPORTED.values())


class TestBuildMarkdown:
    def _minimal_results(self):
        return {
            "fig1": {
                "rows": [
                    {
                        "model": "ResNet-18",
                        "accuracy": 0.82,
                        "U(age)": 0.2,
                        "U(site)": 0.4,
                        "U(gender)": 0.02,
                    }
                ],
                "claims": {
                    "best_on_age": "ResNet-18",
                    "best_on_site": "DenseNet121",
                    "pareto_frontier_age_site": ["ResNet-18", "DenseNet121"],
                },
            },
            "fig3": {
                "claims": {
                    "disagreement_fraction": 0.17,
                    "oracle_unprivileged_accuracy": 0.9,
                }
            },
        }

    def test_document_contains_sections_and_numbers(self):
        text = build_experiments_markdown(self._minimal_results(), scale="smoke")
        assert "# EXPERIMENTS" in text
        assert "Figure 1" in text and "Figure 3" in text
        assert "Table I" not in text  # not in the supplied results
        assert "0.1700" in text
        assert "--scale smoke" in text

    def test_fig1_table_included(self):
        text = build_experiments_markdown(self._minimal_results())
        assert "| model | accuracy | U(age) | U(site) | U(gender) |" in text

    def test_paper_claims_listed(self):
        text = build_experiments_markdown(self._minimal_results())
        assert "no model wins both" in text

"""Unit tests for the ISIC2019 / Fitzpatrick17K synthetic stand-ins."""

import numpy as np
import pytest

from repro.data import (
    FITZPATRICK_CLASS_NAMES,
    ISIC_CLASS_NAMES,
    SyntheticFitzpatrick17K,
    SyntheticISIC2019,
    load_fitzpatrick17k,
    load_isic2019,
)


class TestSyntheticISIC2019:
    def test_schema_matches_paper(self, isic_dataset):
        assert isic_dataset.num_classes == 8
        assert isic_dataset.attributes.names == ("age", "site", "gender")
        assert isic_dataset.attributes["age"].num_groups == 6
        assert isic_dataset.attributes["site"].num_groups == 9
        assert isic_dataset.attributes["gender"].num_groups == 2
        assert len(ISIC_CLASS_NAMES) == 8

    def test_requested_size(self):
        assert len(SyntheticISIC2019(num_samples=500, seed=0)) == 500

    def test_reproducible_from_seed(self):
        a = SyntheticISIC2019(num_samples=300, seed=11)
        b = SyntheticISIC2019(num_samples=300, seed=11)
        np.testing.assert_array_equal(a.labels, b.labels)
        np.testing.assert_allclose(a.components["signal"], b.components["signal"])

    def test_loader_function(self):
        ds = load_isic2019(num_samples=200, seed=1)
        assert isinstance(ds, SyntheticISIC2019)
        assert len(ds) == 200

    def test_every_group_represented(self, isic_dataset):
        for attr in isic_dataset.attributes.names:
            sizes = isic_dataset.group_sizes(attr)
            assert all(size > 0 for size in sizes.values()), f"empty group in {attr}"

    def test_unprivileged_fraction_reasonable(self, isic_dataset):
        fraction = isic_dataset.unprivileged_mask().mean()
        assert 0.2 < fraction < 0.8


class TestSyntheticFitzpatrick17K:
    def test_schema_matches_paper(self, fitz_dataset):
        assert fitz_dataset.num_classes == 9
        assert fitz_dataset.attributes.names == ("skin_tone", "type")
        assert fitz_dataset.attributes["skin_tone"].num_groups == 6
        assert len(FITZPATRICK_CLASS_NAMES) == 9

    def test_loader_function(self):
        ds = load_fitzpatrick17k(num_samples=150, seed=2)
        assert isinstance(ds, SyntheticFitzpatrick17K)
        assert len(ds) == 150

    def test_skin_tone_groups_ordered_light_to_black(self, fitz_dataset):
        assert fitz_dataset.attributes["skin_tone"].groups == (
            "light",
            "white",
            "medium",
            "olive",
            "brown",
            "black",
        )

    def test_reproducible_from_seed(self):
        a = SyntheticFitzpatrick17K(num_samples=200, seed=3)
        b = SyntheticFitzpatrick17K(num_samples=200, seed=3)
        np.testing.assert_array_equal(a.labels, b.labels)

    def test_different_from_isic(self, isic_dataset, fitz_dataset):
        assert isic_dataset.num_classes != fitz_dataset.num_classes
        assert set(isic_dataset.attributes.names) != set(fitz_dataset.attributes.names)

"""Unit tests for repro.nn.functional."""

import numpy as np
import pytest

from repro.nn import Tensor
from repro.nn import functional as F


class TestSoftmax:
    def test_rows_sum_to_one(self):
        logits = Tensor(np.random.default_rng(0).normal(size=(5, 4)))
        probs = F.softmax(logits)
        np.testing.assert_allclose(probs.data.sum(axis=-1), np.ones(5), atol=1e-12)

    def test_invariant_to_constant_shift(self):
        logits = np.array([[1.0, 2.0, 3.0]])
        a = F.softmax(Tensor(logits)).data
        b = F.softmax(Tensor(logits + 100.0)).data
        np.testing.assert_allclose(a, b, atol=1e-12)

    def test_handles_large_values_without_overflow(self):
        probs = F.softmax(Tensor(np.array([[1000.0, 0.0]]))).data
        assert np.isfinite(probs).all()
        assert probs[0, 0] == pytest.approx(1.0)

    def test_log_softmax_matches_log_of_softmax(self):
        logits = Tensor(np.random.default_rng(1).normal(size=(3, 6)))
        np.testing.assert_allclose(
            F.log_softmax(logits).data, np.log(F.softmax(logits).data), atol=1e-10
        )

    def test_softmax_gradient_flows(self):
        logits = Tensor(np.random.default_rng(2).normal(size=(2, 3)), requires_grad=True)
        F.softmax(logits).sum().backward()
        assert logits.grad is not None
        # Softmax rows always sum to 1, so the gradient of the sum is ~0.
        np.testing.assert_allclose(logits.grad, np.zeros_like(logits.data), atol=1e-8)


class TestOneHot:
    def test_basic_encoding(self):
        encoded = F.one_hot(np.array([0, 2, 1]), 3)
        np.testing.assert_allclose(encoded, np.array([[1, 0, 0], [0, 0, 1], [0, 1, 0]], dtype=float))

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            F.one_hot(np.array([3]), 3)
        with pytest.raises(ValueError):
            F.one_hot(np.array([-1]), 3)

    def test_rejects_2d_labels(self):
        with pytest.raises(ValueError):
            F.one_hot(np.zeros((2, 2), dtype=int), 3)

    def test_empty_labels(self):
        assert F.one_hot(np.array([], dtype=int), 4).shape == (0, 4)


class TestCrossEntropy:
    def test_matches_manual_computation(self):
        logits = np.array([[2.0, 0.0, 0.0], [0.0, 3.0, 0.0]])
        targets = np.array([0, 1])
        loss = F.cross_entropy(Tensor(logits), targets).item()
        log_probs = logits - np.log(np.exp(logits).sum(axis=1, keepdims=True))
        expected = -np.mean(log_probs[np.arange(2), targets])
        assert loss == pytest.approx(expected, abs=1e-10)

    def test_perfect_prediction_has_small_loss(self):
        logits = np.array([[50.0, 0.0], [0.0, 50.0]])
        loss = F.cross_entropy(Tensor(logits), np.array([0, 1])).item()
        assert loss < 1e-6

    def test_weights_shift_the_loss(self):
        logits = Tensor(np.array([[5.0, 0.0], [0.0, 0.1]]))
        targets = np.array([0, 1])
        uniform = F.cross_entropy(logits, targets).item()
        # Up-weighting the harder (second) sample must raise the loss.
        weighted = F.cross_entropy(logits, targets, weights=np.array([0.1, 0.9])).item()
        assert weighted > uniform

    def test_weight_validation(self):
        logits = Tensor(np.zeros((2, 2)))
        with pytest.raises(ValueError):
            F.cross_entropy(logits, np.array([0, 1]), weights=np.array([1.0]))
        with pytest.raises(ValueError):
            F.cross_entropy(logits, np.array([0, 1]), weights=np.array([0.0, 0.0]))

    def test_label_smoothing_increases_confident_loss(self):
        logits = Tensor(np.array([[10.0, 0.0]]))
        targets = np.array([0])
        plain = F.cross_entropy(logits, targets).item()
        smoothed = F.cross_entropy(logits, targets, label_smoothing=0.2).item()
        assert smoothed > plain

    def test_gradient_direction_reduces_loss(self):
        rng = np.random.default_rng(3)
        logits_val = rng.normal(size=(8, 4))
        targets = rng.integers(0, 4, size=8)
        logits = Tensor(logits_val, requires_grad=True)
        loss = F.cross_entropy(logits, targets)
        loss.backward()
        stepped = Tensor(logits_val - 0.1 * logits.grad)
        assert F.cross_entropy(stepped, targets).item() < loss.item()


class TestMSE:
    def test_mse_zero_for_identical(self):
        x = Tensor(np.ones((3, 2)))
        assert F.mse(x, np.ones((3, 2))).item() == pytest.approx(0.0)

    def test_weighted_mse_upweights_samples(self):
        predictions = Tensor(np.array([[1.0, 0.0], [0.0, 1.0]]))
        targets = np.array([[0.0, 1.0], [0.0, 1.0]])  # first sample is wrong
        uniform = F.weighted_mse(predictions, targets, np.array([1.0, 1.0])).item()
        upweighted = F.weighted_mse(predictions, targets, np.array([3.0, 1.0])).item()
        assert upweighted > uniform

    def test_weighted_mse_validates_weights(self):
        predictions = Tensor(np.zeros((2, 2)))
        with pytest.raises(ValueError):
            F.weighted_mse(predictions, np.zeros((2, 2)), np.array([1.0]))


class TestAccuracy:
    def test_accuracy_from_logits(self):
        logits = np.array([[0.9, 0.1], [0.2, 0.8], [0.6, 0.4]])
        assert F.accuracy(logits, np.array([0, 1, 1])) == pytest.approx(2 / 3)

    def test_accuracy_accepts_tensor(self):
        logits = Tensor(np.array([[1.0, 0.0]]))
        assert F.accuracy(logits, np.array([0])) == 1.0

    def test_accuracy_empty(self):
        assert F.accuracy(np.zeros((0, 3)), np.array([], dtype=int)) == 0.0


class TestActivationHelpers:
    def test_relu_and_leaky_relu(self):
        x = Tensor(np.array([-1.0, 2.0]))
        np.testing.assert_allclose(F.relu(x).data, [0.0, 2.0])
        np.testing.assert_allclose(F.leaky_relu(x, 0.5).data, [-0.5, 2.0])

    def test_sigmoid_tanh_ranges(self):
        x = Tensor(np.linspace(-5, 5, 11))
        assert ((F.sigmoid(x).data > 0) & (F.sigmoid(x).data < 1)).all()
        assert ((F.tanh(x).data > -1) & (F.tanh(x).data < 1)).all()

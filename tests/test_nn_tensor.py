"""Unit tests for the autograd tensor (repro.nn.tensor)."""

import numpy as np
import pytest

from repro.nn import Tensor, ones, stack_tensors, tensor, zeros


def numerical_gradient(fn, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of a scalar-valued function of ``x``."""
    grad = np.zeros_like(x, dtype=np.float64)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = fn(x.copy())
        flat[i] = original - eps
        minus = fn(x.copy())
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2 * eps)
    return grad


class TestConstruction:
    def test_wraps_numpy_array(self):
        t = Tensor(np.arange(6).reshape(2, 3))
        assert t.shape == (2, 3)
        assert t.ndim == 2
        assert t.size == 6

    def test_accepts_python_lists_and_scalars(self):
        assert Tensor([1.0, 2.0]).shape == (2,)
        assert Tensor(3.5).shape == ()

    def test_dtype_is_float64(self):
        assert Tensor(np.array([1, 2], dtype=np.int32)).dtype == np.float64

    def test_helpers(self):
        assert zeros((2, 2)).data.sum() == 0
        assert ones((3,)).data.sum() == 3
        assert tensor([1.0], requires_grad=True).requires_grad

    def test_detach_and_copy(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        d = t.detach()
        assert not d.requires_grad
        c = t.copy()
        c.data[0] = 99.0
        assert t.data[0] == 1.0

    def test_item_on_scalar(self):
        assert Tensor([3.0]).item() == pytest.approx(3.0)

    def test_len_and_repr(self):
        t = Tensor(np.zeros((4, 2)), requires_grad=True)
        assert len(t) == 4
        assert "requires_grad=True" in repr(t)


class TestArithmetic:
    def test_add_backward(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0], requires_grad=True)
        (a + b).sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 1.0])
        np.testing.assert_allclose(b.grad, [1.0, 1.0])

    def test_radd_and_rsub_and_rmul(self):
        a = Tensor([2.0], requires_grad=True)
        (1.0 + a).sum().backward()
        np.testing.assert_allclose(a.grad, [1.0])
        a.zero_grad()
        (5.0 - a).sum().backward()
        np.testing.assert_allclose(a.grad, [-1.0])
        a.zero_grad()
        (3.0 * a).sum().backward()
        np.testing.assert_allclose(a.grad, [3.0])

    def test_mul_backward(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0], requires_grad=True)
        (a * b).sum().backward()
        np.testing.assert_allclose(a.grad, [3.0, 4.0])
        np.testing.assert_allclose(b.grad, [1.0, 2.0])

    def test_div_backward(self):
        a = Tensor([4.0], requires_grad=True)
        b = Tensor([2.0], requires_grad=True)
        (a / b).sum().backward()
        np.testing.assert_allclose(a.grad, [0.5])
        np.testing.assert_allclose(b.grad, [-1.0])

    def test_rtruediv(self):
        a = Tensor([2.0], requires_grad=True)
        (4.0 / a).sum().backward()
        np.testing.assert_allclose(a.grad, [-1.0])

    def test_neg(self):
        a = Tensor([1.0, -2.0], requires_grad=True)
        (-a).sum().backward()
        np.testing.assert_allclose(a.grad, [-1.0, -1.0])

    def test_pow_backward(self):
        a = Tensor([3.0], requires_grad=True)
        (a ** 2).sum().backward()
        np.testing.assert_allclose(a.grad, [6.0])

    def test_pow_rejects_tensor_exponent(self):
        with pytest.raises(TypeError):
            Tensor([1.0]) ** Tensor([2.0])

    def test_broadcast_add_reduces_gradient(self):
        a = Tensor(np.ones((3, 2)), requires_grad=True)
        b = Tensor(np.ones((2,)), requires_grad=True)
        (a + b).sum().backward()
        assert a.grad.shape == (3, 2)
        assert b.grad.shape == (2,)
        np.testing.assert_allclose(b.grad, [3.0, 3.0])

    def test_broadcast_keepdims_dimension(self):
        a = Tensor(np.ones((4, 3)), requires_grad=True)
        b = Tensor(np.ones((4, 1)), requires_grad=True)
        (a * b).sum().backward()
        assert b.grad.shape == (4, 1)
        np.testing.assert_allclose(b.grad, np.full((4, 1), 3.0))


class TestMatmul:
    def test_matmul_2d_gradients(self):
        rng = np.random.default_rng(0)
        a_val = rng.normal(size=(3, 4))
        b_val = rng.normal(size=(4, 2))
        a = Tensor(a_val, requires_grad=True)
        b = Tensor(b_val, requires_grad=True)
        (a @ b).sum().backward()

        num_a = numerical_gradient(lambda x: float((x @ b_val).sum()), a_val.copy())
        num_b = numerical_gradient(lambda x: float((a_val @ x).sum()), b_val.copy())
        np.testing.assert_allclose(a.grad, num_a, atol=1e-5)
        np.testing.assert_allclose(b.grad, num_b, atol=1e-5)

    def test_matmul_vector_matrix(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        w = Tensor(np.array([[1.0, 0.0], [0.0, 1.0]]), requires_grad=True)
        (a @ w).sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 1.0])
        np.testing.assert_allclose(w.grad, [[1.0, 1.0], [2.0, 2.0]])

    def test_matmul_matrix_vector(self):
        m = Tensor(np.eye(2), requires_grad=True)
        v = Tensor([3.0, 4.0], requires_grad=True)
        (m @ v).sum().backward()
        np.testing.assert_allclose(v.grad, [1.0, 1.0])

    def test_matmul_vector_vector(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0], requires_grad=True)
        (a @ b).backward()
        np.testing.assert_allclose(a.grad, [3.0, 4.0])
        np.testing.assert_allclose(b.grad, [1.0, 2.0])


class TestShapes:
    def test_reshape_backward(self):
        a = Tensor(np.arange(6.0), requires_grad=True)
        a.reshape(2, 3).sum().backward()
        assert a.grad.shape == (6,)

    def test_reshape_accepts_tuple(self):
        a = Tensor(np.arange(6.0))
        assert a.reshape((3, 2)).shape == (3, 2)

    def test_transpose_backward(self):
        a = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
        a.T.sum().backward()
        assert a.grad.shape == (2, 3)

    def test_transpose_with_axes(self):
        a = Tensor(np.arange(24.0).reshape(2, 3, 4), requires_grad=True)
        out = a.transpose((2, 0, 1))
        assert out.shape == (4, 2, 3)
        out.sum().backward()
        assert a.grad.shape == (2, 3, 4)

    def test_getitem_backward(self):
        a = Tensor(np.arange(5.0), requires_grad=True)
        a[1:3].sum().backward()
        np.testing.assert_allclose(a.grad, [0.0, 1.0, 1.0, 0.0, 0.0])

    def test_getitem_repeated_indices_accumulate(self):
        a = Tensor(np.arange(3.0), requires_grad=True)
        a[np.array([0, 0, 2])].sum().backward()
        np.testing.assert_allclose(a.grad, [2.0, 0.0, 1.0])

    def test_concatenate_backward(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        b = Tensor(np.ones((2, 3)), requires_grad=True)
        out = Tensor.concatenate([a, b], axis=1)
        assert out.shape == (2, 5)
        out.sum().backward()
        assert a.grad.shape == (2, 2)
        assert b.grad.shape == (2, 3)

    def test_stack_tensors(self):
        stacked = stack_tensors([Tensor([1.0]), Tensor([2.0])])
        assert stacked.shape == (2, 1)


class TestReductions:
    def test_sum_axis_keepdims(self):
        a = Tensor(np.ones((2, 3)), requires_grad=True)
        out = a.sum(axis=1, keepdims=True)
        assert out.shape == (2, 1)
        out.sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((2, 3)))

    def test_mean_gradient(self):
        a = Tensor(np.arange(4.0), requires_grad=True)
        a.mean().backward()
        np.testing.assert_allclose(a.grad, np.full(4, 0.25))

    def test_max_global(self):
        a = Tensor([1.0, 5.0, 3.0], requires_grad=True)
        a.max().backward()
        np.testing.assert_allclose(a.grad, [0.0, 1.0, 0.0])

    def test_max_axis(self):
        a = Tensor(np.array([[1.0, 2.0], [5.0, 0.0]]), requires_grad=True)
        a.max(axis=1).sum().backward()
        np.testing.assert_allclose(a.grad, [[0.0, 1.0], [1.0, 0.0]])

    def test_max_ties_split_gradient(self):
        a = Tensor([2.0, 2.0], requires_grad=True)
        a.max().backward()
        np.testing.assert_allclose(a.grad, [0.5, 0.5])


class TestNonlinearities:
    @pytest.mark.parametrize(
        "op",
        ["exp", "log", "sqrt", "abs", "relu", "sigmoid", "tanh"],
    )
    def test_elementwise_gradients_match_numerical(self, op):
        rng = np.random.default_rng(1)
        x_val = rng.uniform(0.2, 2.0, size=(4,))
        x = Tensor(x_val, requires_grad=True)
        getattr(x, op)().sum().backward()

        def fn(values):
            arr = {
                "exp": np.exp,
                "log": np.log,
                "sqrt": np.sqrt,
                "abs": np.abs,
                "relu": lambda v: np.maximum(v, 0),
                "sigmoid": lambda v: 1 / (1 + np.exp(-v)),
                "tanh": np.tanh,
            }[op](values)
            return float(arr.sum())

        np.testing.assert_allclose(x.grad, numerical_gradient(fn, x_val.copy()), atol=1e-5)

    def test_leaky_relu(self):
        x = Tensor([-1.0, 2.0], requires_grad=True)
        x.leaky_relu(0.1).sum().backward()
        np.testing.assert_allclose(x.grad, [0.1, 1.0])

    def test_clip(self):
        x = Tensor([-2.0, 0.5, 3.0], requires_grad=True)
        out = x.clip(0.0, 1.0)
        np.testing.assert_allclose(out.data, [0.0, 0.5, 1.0])
        out.sum().backward()
        np.testing.assert_allclose(x.grad, [0.0, 1.0, 0.0])


class TestBackwardMechanics:
    def test_backward_requires_grad(self):
        with pytest.raises(RuntimeError):
            Tensor([1.0]).backward()

    def test_backward_non_scalar_needs_grad(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(RuntimeError):
            t.backward()
        t.backward(np.array([1.0, 1.0]))
        np.testing.assert_allclose(t.grad, [1.0, 1.0])

    def test_gradient_accumulates_across_backward_calls(self):
        a = Tensor([1.0], requires_grad=True)
        (a * 2).sum().backward()
        (a * 2).sum().backward()
        np.testing.assert_allclose(a.grad, [4.0])

    def test_zero_grad(self):
        a = Tensor([1.0], requires_grad=True)
        (a * 3).sum().backward()
        a.zero_grad()
        assert a.grad is None

    def test_reused_node_gradients(self):
        # f(x) = x*x + x -> df/dx = 2x + 1
        x = Tensor([3.0], requires_grad=True)
        (x * x + x).sum().backward()
        np.testing.assert_allclose(x.grad, [7.0])

    def test_deep_chain_is_iterative_not_recursive(self):
        x = Tensor([1.0], requires_grad=True)
        y = x
        for _ in range(2000):
            y = y + 1.0
        y.sum().backward()
        np.testing.assert_allclose(x.grad, [1.0])

    def test_no_graph_tracking_without_requires_grad(self):
        a = Tensor([1.0])
        b = Tensor([2.0])
        c = a + b
        assert not c.requires_grad
        assert c._parents == ()

    def test_composite_expression_matches_numerical(self):
        rng = np.random.default_rng(2)
        x_val = rng.normal(size=(3, 3))
        x = Tensor(x_val, requires_grad=True)
        out = ((x.tanh() * x).sigmoid() + x.abs()).mean()
        out.backward()

        def fn(values):
            t = np.tanh(values) * values
            s = 1 / (1 + np.exp(-t))
            return float((s + np.abs(values)).mean())

        np.testing.assert_allclose(x.grad, numerical_gradient(fn, x_val.copy()), atol=1e-5)

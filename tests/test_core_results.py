"""Unit tests for search result containers."""

import numpy as np
import pytest

from repro.core import (
    EpisodeRecord,
    FusingCandidate,
    MuffinSearchResult,
    rebuild_fused_model,
)
from repro.fairness import FairnessEvaluation


def make_record(episode, reward, acc, age, site, names=("ResNet-18", "DenseNet121")):
    return EpisodeRecord(
        episode=episode,
        candidate=FusingCandidate(model_names=names, hidden_sizes=(16,), activation="relu"),
        reward=reward,
        evaluation=FairnessEvaluation(accuracy=acc, unfairness={"age": age, "site": site}),
        num_parameters=1000,
        trainable_parameters=100,
    )


@pytest.fixture()
def result():
    records = [
        make_record(0, reward=3.0, acc=0.78, age=0.30, site=0.40),
        make_record(1, reward=5.0, acc=0.82, age=0.25, site=0.35),
        make_record(2, reward=4.0, acc=0.85, age=0.35, site=0.20),
        make_record(3, reward=2.0, acc=0.70, age=0.50, site=0.60),
    ]
    return MuffinSearchResult(records, attributes=["age", "site"])


class TestBestRecord:
    def test_best_by_reward(self, result):
        assert result.best_record("reward").episode == 1

    def test_best_by_accuracy(self, result):
        assert result.best_record("accuracy").episode == 2

    def test_best_by_attribute(self, result):
        assert result.best_record("age").episode == 1
        assert result.best_record("site").episode == 2

    def test_best_by_multi(self, result):
        assert result.best_record("multi").episode == 2 or result.best_record("multi").episode == 1

    def test_unknown_metric(self, result):
        with pytest.raises(KeyError):
            result.best_record("f1")

    def test_best_balanced_preserves_accuracy(self, result):
        balanced = result.best_balanced_record(accuracy_slack=0.02)
        best_accuracy = max(r.evaluation.accuracy for r in result.records)
        assert balanced.evaluation.accuracy >= best_accuracy - 0.02

    def test_best_dominating_record_prefers_dominators(self, result):
        from repro.fairness import FairnessEvaluation

        reference = FairnessEvaluation(
            accuracy=0.80, unfairness={"age": 0.33, "site": 0.45}
        )
        record = result.best_dominating_record(reference)
        assert record.evaluation.accuracy >= reference.accuracy
        assert record.evaluation.unfairness["age"] < reference.unfairness["age"]
        assert record.evaluation.unfairness["site"] < reference.unfairness["site"]

    def test_best_dominating_record_falls_back_gracefully(self, result):
        from repro.fairness import FairnessEvaluation

        # Nothing dominates an impossible reference; the fallback still
        # returns an accuracy-preserving record when one exists.
        reference = FairnessEvaluation(
            accuracy=0.84, unfairness={"age": 0.01, "site": 0.01}
        )
        record = result.best_dominating_record(reference)
        assert record.evaluation.accuracy >= 0.84


class TestParetoAndCurves:
    def test_pareto_records_exclude_dominated(self, result):
        front_episodes = {record.episode for record in result.pareto_records()}
        assert 3 not in front_episodes  # strictly dominated
        assert {1, 2} <= front_episodes

    def test_pareto_points_with_accuracy(self, result):
        points = result.pareto_points(include_accuracy=True)
        assert len(points) == 4
        assert "accuracy" in points[0].objectives

    def test_reward_curve_smoothing(self, result):
        raw = result.reward_curve(window=1)
        smoothed = result.reward_curve(window=3)
        assert raw == [3.0, 5.0, 4.0, 2.0]
        assert len(smoothed) == 4
        assert smoothed[2] == pytest.approx(np.mean([3.0, 5.0, 4.0]))

    def test_rewards_array(self, result):
        np.testing.assert_allclose(result.rewards(), [3.0, 5.0, 4.0, 2.0])


class TestSerialisation:
    def test_summary_fields(self, result):
        summary = result.summary()
        assert summary["episodes"] == 4
        assert summary["best_reward"] == 5.0
        assert summary["attributes"] == ["age", "site"]

    def test_to_dict(self, result):
        payload = result.to_dict()
        assert len(payload["records"]) == 4
        assert payload["summary"]["best_reward"] == 5.0

    def test_empty_result_rejected(self):
        with pytest.raises(ValueError):
            MuffinSearchResult([], attributes=["age"])

    def test_len(self, result):
        assert len(result) == 4


class TestRebuildFusedModel:
    def test_rebuild_with_stored_head(self, pool):
        from repro.core import FusedModel

        candidate = FusingCandidate(
            model_names=("ResNet-18", "DenseNet121"), hidden_sizes=(12,), activation="tanh"
        )
        models = pool.models(candidate.model_names)
        original = FusedModel.from_candidate(candidate, models, seed=0)
        record = EpisodeRecord(
            episode=0,
            candidate=candidate,
            reward=1.0,
            evaluation=FairnessEvaluation(accuracy=0.5, unfairness={"age": 0.2}),
            head_state=original.head.state_dict(),
        )
        rebuilt = rebuild_fused_model(record, models, name="rebuilt")
        test = pool.split.test
        np.testing.assert_allclose(
            rebuilt.head_logits(test, np.arange(20)), original.head_logits(test, np.arange(20))
        )
        assert rebuilt.name == "rebuilt"

    def test_rebuild_without_head_state(self, pool):
        candidate = FusingCandidate(
            model_names=("ResNet-18",), hidden_sizes=(8,), activation="relu"
        )
        record = EpisodeRecord(
            episode=0,
            candidate=candidate,
            reward=1.0,
            evaluation=FairnessEvaluation(accuracy=0.5, unfairness={"age": 0.2}),
        )
        rebuilt = rebuild_fused_model(record, pool.models(candidate.model_names))
        assert rebuilt.num_classes == pool.split.test.num_classes

"""Unit tests for the fairness proxy dataset (Algorithm 1)."""

import numpy as np
import pytest

from repro.core import (
    build_proxy_dataset,
    compute_group_weights,
    compute_image_weights,
    uniform_proxy_dataset,
)


class TestImageWeights:
    def test_counts_unprivileged_memberships(self, isic_split):
        train = isic_split.train
        weights = compute_image_weights(train, ["age", "site"])
        assert weights.shape == (len(train),)
        assert weights.min() >= 0 and weights.max() <= 2
        # A sample unprivileged under both attributes gets weight 2.
        both = train.unprivileged_mask("age") & train.unprivileged_mask("site")
        if both.any():
            assert (weights[both] == 2).all()

    def test_zero_for_fully_privileged_samples(self, isic_split):
        train = isic_split.train
        weights = compute_image_weights(train, ["age", "site"])
        privileged = ~(train.unprivileged_mask("age") | train.unprivileged_mask("site"))
        assert (weights[privileged] == 0).all()

    def test_single_attribute_weights_are_binary(self, isic_split):
        weights = compute_image_weights(isic_split.train, ["age"])
        assert set(np.unique(weights)) <= {0.0, 1.0}


class TestGroupWeights:
    def test_group_weights_cover_unprivileged_groups(self, isic_split):
        train = isic_split.train
        group_weights = compute_group_weights(train, ["age", "site"])
        assert set(group_weights) == {"age", "site"}
        assert set(group_weights["age"]) == set(train.attributes["age"].unprivileged)

    def test_group_weight_is_mean_of_member_image_weights(self, isic_split):
        train = isic_split.train
        image_weights = compute_image_weights(train, ["age", "site"])
        group_weights = compute_group_weights(train, ["age", "site"], image_weights)
        spec = train.attributes["age"]
        group = spec.unprivileged[0]
        mask = train.group_ids("age") == spec.group_index(group)
        assert group_weights["age"][group] == pytest.approx(image_weights[mask].mean())

    def test_group_weights_at_least_one(self, isic_split):
        """Every member of an unprivileged group counts that group at least once."""
        group_weights = compute_group_weights(isic_split.train, ["age", "site"])
        for per_group in group_weights.values():
            assert all(value >= 1.0 for value in per_group.values() if value > 0)


class TestBuildProxyDataset:
    def test_only_unprivileged_samples_selected(self, isic_split):
        train = isic_split.train
        proxy = build_proxy_dataset(train, ["age", "site"])
        unprivileged = train.unprivileged_mask("age") | train.unprivileged_mask("site")
        assert len(proxy) == int(unprivileged.sum())
        assert unprivileged[proxy.indices].all()

    def test_weights_normalised_to_mean_one(self, isic_split):
        proxy = build_proxy_dataset(isic_split.train, ["age", "site"])
        assert proxy.sample_weights.mean() == pytest.approx(1.0)
        assert (proxy.sample_weights > 0).all()

    def test_multi_attribute_members_weighted_higher(self, isic_split):
        train = isic_split.train
        proxy = build_proxy_dataset(train, ["age", "site"], normalize=False)
        both = (train.unprivileged_mask("age") & train.unprivileged_mask("site"))[proxy.indices]
        single = ~both
        if both.any() and single.any():
            assert proxy.sample_weights[both].mean() > proxy.sample_weights[single].mean()

    def test_include_privileged_keeps_everything(self, isic_split):
        proxy = build_proxy_dataset(isic_split.train, ["age", "site"], include_privileged=True)
        assert len(proxy) == len(isic_split.train)

    def test_subset_property(self, isic_split):
        proxy = build_proxy_dataset(isic_split.train, ["age"])
        subset = proxy.subset
        assert len(subset) == len(proxy)
        np.testing.assert_array_equal(subset.labels, isic_split.train.labels[proxy.indices])

    def test_unknown_attribute_rejected(self, isic_split):
        with pytest.raises(KeyError):
            build_proxy_dataset(isic_split.train, ["hair_colour"])

    def test_summary_fields(self, isic_split):
        summary = build_proxy_dataset(isic_split.train, ["age", "site"]).summary()
        assert {"size", "fraction_of_dataset", "group_weights", "weight_range"} <= set(summary)
        assert 0 < summary["fraction_of_dataset"] < 1

    def test_default_attributes_are_all(self, isic_split):
        proxy = build_proxy_dataset(isic_split.train)
        assert set(proxy.attributes) == {"age", "site", "gender"}


class TestUniformProxy:
    def test_uniform_proxy_covers_full_dataset_with_unit_weights(self, isic_split):
        proxy = uniform_proxy_dataset(isic_split.train, ["age", "site"])
        assert len(proxy) == len(isic_split.train)
        np.testing.assert_allclose(proxy.sample_weights, np.ones(len(isic_split.train)))

    def test_unknown_attribute_rejected(self, isic_split):
        """Regression: the uniform builder silently accepted unknown names."""
        with pytest.raises(KeyError, match="dataset has no attribute 'hair_colour'"):
            uniform_proxy_dataset(isic_split.train, ["hair_colour"])

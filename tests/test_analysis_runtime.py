"""The REPRO_TSAN runtime concurrency checker.

These tests install/uninstall the checker themselves, so they are skipped
when the whole session already runs under ``REPRO_TSAN=1`` (the deliberate
violations staged here would otherwise tear down the session guard's
evidence — and vice versa).
"""

from __future__ import annotations

import os
import threading

import pytest

from repro.analysis import runtime

pytestmark = pytest.mark.skipif(
    os.environ.get("REPRO_TSAN") == "1",
    reason="session-wide REPRO_TSAN owns the recorder; staged violations would collide",
)


@pytest.fixture()
def tsan():
    runtime.install()
    runtime.reset()
    try:
        yield runtime
    finally:
        runtime.uninstall()
        runtime.reset()


def make_lock_a():
    return threading.Lock()


def make_lock_b():
    return threading.Lock()


class TestInstallation:
    def test_install_swaps_the_lock_factory(self, tsan):
        assert threading.Lock is runtime.TsanLock
        assert isinstance(threading.Lock(), runtime.TsanLock)
        assert tsan.is_active()

    def test_uninstall_restores_it(self):
        runtime.install()
        runtime.uninstall()
        assert threading.Lock is not runtime.TsanLock
        assert not runtime.is_active()

    def test_inactive_hooks_are_noops(self):
        owner = object()
        runtime.register_shared_state("x", owner)
        runtime.touch_shared_state("x", owner)
        assert runtime.report() == []


class TestTsanLockSemantics:
    def test_basic_lock_protocol(self, tsan):
        lock = threading.Lock()
        assert not lock.locked()
        assert lock.acquire()
        assert lock.locked()
        assert not lock.acquire(blocking=False)
        lock.release()
        assert not lock.locked()
        with lock:
            assert lock.locked()
            assert lock._is_owned()
        assert not lock._is_owned()

    def test_condition_and_event_still_work(self, tsan):
        cond = threading.Condition(threading.Lock())
        hits = []

        def waiter():
            with cond:
                while not hits:
                    cond.wait(timeout=5.0)
                hits.append("woke")

        thread = threading.Thread(target=waiter)
        thread.start()
        with cond:
            hits.append("set")
            cond.notify_all()
        thread.join(timeout=5.0)
        assert hits == ["set", "woke"]

        event = threading.Event()
        event.set()
        assert event.wait(timeout=1.0)

    def test_clean_nesting_reports_nothing(self, tsan):
        a, b = make_lock_a(), make_lock_b()
        for _ in range(3):  # consistent order: never a cycle
            with a:
                with b:
                    pass
        assert tsan.report() == []


class TestLockOrderCycles:
    def test_inverted_order_is_a_cycle(self, tsan):
        a, b = make_lock_a(), make_lock_b()
        with a:
            with b:
                pass
        with b:
            with a:
                pass
        problems = tsan.report()
        assert len(problems) == 1
        assert "lock-order cycle" in problems[0]
        assert "test_analysis_runtime" in problems[0]

    def test_cycle_evidence_composes_across_instances(self, tsan):
        # different *instances* from the same creation sites share a class:
        # one order observed on pair 1, the inverse on pair 2 → still a cycle
        a1, b1 = make_lock_a(), make_lock_b()
        a2, b2 = make_lock_a(), make_lock_b()
        with a1:
            with b1:
                pass
        with b2:
            with a2:
                pass
        assert any("cycle" in p for p in tsan.report())

    def test_cycle_across_threads(self, tsan):
        a, b = make_lock_a(), make_lock_b()

        def forward():
            with a:
                with b:
                    pass

        def backward():
            with b:
                with a:
                    pass

        for target in (forward, backward):  # sequential: evidence, no deadlock
            thread = threading.Thread(target=target)
            thread.start()
            thread.join(timeout=5.0)
        assert any("cycle" in p for p in tsan.report())

    def test_reset_clears_evidence(self, tsan):
        a, b = make_lock_a(), make_lock_b()
        with a:
            with b:
                pass
        with b:
            with a:
                pass
        tsan.reset()
        assert tsan.report() == []


class TestSharedStateDiscipline:
    class Owner:
        pass

    def test_single_writer_same_thread_is_clean(self, tsan):
        owner = self.Owner()
        tsan.register_shared_state("counters", owner)
        for _ in range(5):
            tsan.touch_shared_state("counters", owner)
        assert tsan.report() == []

    def test_single_writer_second_thread_is_flagged(self, tsan):
        owner = self.Owner()
        tsan.register_shared_state("counters", owner)
        tsan.touch_shared_state("counters", owner)
        thread = threading.Thread(
            target=tsan.touch_shared_state, args=("counters", owner)
        )
        thread.start()
        thread.join(timeout=5.0)
        problems = tsan.report()
        assert len(problems) == 1
        assert "single-writer" in problems[0]
        assert "Owner" in problems[0]

    def test_locked_mode_requires_the_lock(self, tsan):
        owner = self.Owner()
        guard = threading.Lock()
        tsan.register_shared_state("table", owner, lock=guard)
        with guard:
            tsan.touch_shared_state("table", owner)  # disciplined
        assert tsan.report() == []
        tsan.touch_shared_state("table", owner)  # undisciplined
        problems = tsan.report()
        assert len(problems) == 1
        assert "without holding its declared lock" in problems[0]

    def test_unregistered_state_is_ignored(self, tsan):
        tsan.touch_shared_state("never-registered", self.Owner())
        assert tsan.report() == []

    def test_reregistration_resets_the_writer(self, tsan):
        owner = self.Owner()
        tsan.register_shared_state("counters", owner)
        thread = threading.Thread(
            target=tsan.touch_shared_state, args=("counters", owner)
        )
        thread.start()
        thread.join(timeout=5.0)
        tsan.register_shared_state("counters", owner)  # e.g. a new __init__
        tsan.touch_shared_state("counters", owner)  # main thread now owns it
        assert tsan.report() == []


class TestInstrumentedClasses:
    def test_run_scheduler_discipline_is_clean(self, tsan):
        from repro.master.scheduler import RunScheduler

        scheduler = RunScheduler()
        scheduler.submit(1, priority=2)
        scheduler.submit(2, priority=1)
        assert scheduler.claim(timeout=0.1) == 1
        assert scheduler.cancel(2) == "dequeued"
        scheduler.release(1)
        assert tsan.report() == []

    def test_run_scheduler_bypass_is_flagged(self, tsan):
        from repro.master.scheduler import RunScheduler

        scheduler = RunScheduler()
        # mutating queue state without the lock trips the declared contract
        tsan.touch_shared_state("run-queue", scheduler)
        problems = tsan.report()
        assert len(problems) == 1
        assert "run-queue" in problems[0]
        assert "RunScheduler" in problems[0]

    def test_fairness_monitor_observe_is_clean(self, tsan):
        import numpy as np

        from repro.data import SyntheticISIC2019
        from repro.data.schema import FeatureSchema
        from repro.serve.monitor import FairnessMonitor

        schema = FeatureSchema.from_dataset(SyntheticISIC2019(num_samples=64, seed=0))
        monitor = FairnessMonitor(schema, window=16)
        monitor.observe(np.zeros(4, dtype=np.int64))
        monitor.snapshot()
        assert tsan.report() == []

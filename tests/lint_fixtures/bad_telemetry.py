"""RL8 fixture: wall-clock durations anywhere; print/stdlib logging when
checked under a hot-module rel path (e.g. src/repro/core/search.py)."""

import logging
import time


def wallclock_duration(start):
    return time.time() - start  # line 9: duration off the steppable wall clock


def wallclock_duration_flipped(deadline):
    return deadline - time.time()  # line 13: same bug, operand order flipped


def nested_wallclock_duration(start):
    return round(1000.0 * (time.time() - start), 3)  # line 17: buried in arithmetic


def timestamp_is_fine():
    return {"submitted_at": time.time()}  # row timestamp, not a duration


def monotonic_duration_is_fine(start):
    return time.perf_counter() - start  # the sanctioned duration clock


def suppressed_duration(start):
    return time.time() - start  # repro-lint: disable=RL8 -- legacy schema field


def print_on_hot_path(result):
    print(f"evaluated {result}")  # line 33: fires only under a hot-module rel


def stdlib_logging_on_hot_path(result):
    logging.info("evaluated %s", result)  # line 37: fires only under a hot rel
    logger = logging.getLogger("repro")  # line 38: ditto
    return logger

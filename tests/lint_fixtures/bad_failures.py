"""Known-bad failure handling for the RL9 fixture tests.

Only meaningful when checked under a forced ``src/repro/serve/`` or
``src/repro/master/`` path — the rule is scoped to the fault-tolerant
tiers.  Expected findings (through the engine, suppression honoured):
lines 15, 22, 29, 36, 45, 46, 47, 50.
"""

import queue


def swallow_bare():
    try:  # handler at line 15: bare except, body is pure pass
        risky()
    except:  # noqa: E722 (the point of the fixture)
        pass


def swallow_exception():
    try:  # handler at line 22: except Exception, swallowed
        risky()
    except Exception:
        pass


def swallow_base_exception():
    try:  # handler at line 29: except BaseException, swallowed
        risky()
    except BaseException:
        return None


def swallow_bound_but_unused():
    try:  # handler at line 36: binds exc but never consults it
        risky()
    except Exception as exc:
        counter = 0
        counter += 1
        return counter


def unbounded_queues():
    # every construction below must fire: no maxsize, explicit zero,
    # negative literal, and the unboundable SimpleQueue
    a = queue.Queue()  # line 45
    b = queue.LifoQueue(maxsize=0)  # line 46
    c = queue.PriorityQueue(-1)  # line 47
    # a computed bound is trusted — not flagged
    d = queue.Queue(maxsize=max(1, len("x")))
    e = queue.SimpleQueue()  # line 50
    return a, b, c, d, e


def fine_handlers(logger):
    # all four idioms below surface the failure — none may fire
    try:
        risky()
    except Exception as exc:
        raise RuntimeError("typed wrapper") from exc
    try:
        risky()
    except Exception:
        logger.event("risky-failed")
    try:
        risky()
    except Exception as exc:
        record(exc)
    try:
        risky()
    except (ValueError, KeyError):
        pass  # narrow excepts are an application-level judgement call


def suppressed():
    try:
        risky()
    except Exception:  # repro-lint: disable=RL9
        pass


def risky():
    raise ValueError("boom")


def record(exc):
    return exc

"""RL4 fixture: non-atomic truncating writes (checked under a durable rel path)."""

import json
from pathlib import Path


def bare_truncate(path, payload):
    with open(path, "w") as handle:  # bare truncating open
        handle.write(payload)


def torn_dump(path, payload):
    with open(path) as handle:  # reads are fine
        json.load(handle)
    with open(path, mode="w+") as handle:  # keyword mode still truncates
        json.dump(payload, handle)  # json.dump into truncated handle


def path_write(path: Path, text: str):
    path.write_text(text)  # non-atomic Path write

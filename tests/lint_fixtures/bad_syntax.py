"""RL0 fixture: a file the engine cannot parse at all."""

def broken(:
    return 1

"""RL1 fixture: every way the determinism rule should fire (and one allowed)."""

import random
import time

import numpy as np
from numpy.random import default_rng


def unseeded_generator():
    return np.random.default_rng()  # line 11: unseeded


def global_state():
    np.random.seed(0)  # line 15: hidden global RandomState
    return np.random.rand(3)  # line 16: hidden global RandomState


def stdlib_random():
    return random.random()  # line 20: stdlib random


def wallclock_seed():
    return default_rng(int(time.time()))  # line 24: wall-clock seed


def suppressed_with_justification():
    # the shim pattern: justified + explicitly allow-listed
    np.random.seed(1)  # repro-lint: disable=RL1


def seeded_is_fine(seed: int):
    return np.random.default_rng(seed)

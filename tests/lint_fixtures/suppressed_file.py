"""Suppression fixture: a file-wide disable silences RL1 everywhere in it."""
# repro-lint: disable-file=RL1

import numpy as np


def all_quiet():
    np.random.seed(3)
    return np.random.default_rng()

"""RL3 fixture: unpicklable callables handed to executor map()/submit()."""


def _square(x):
    return x * x


def dispatch_lambda(executor):
    return executor.map(lambda x: x * x, [1, 2, 3])  # lambda task


def dispatch_closure(executor, factor):
    def scaled(x):
        return x * factor

    return executor.submit(scaled, 4)  # closure task


class Runner:
    def _task(self, x):
        return x

    def dispatch_bound(self, executor):
        return executor.submit(self._task, 5)  # bound-method task


def dispatch_module_level(executor):
    return executor.map(_square, [1, 2, 3])  # fine: module-level function

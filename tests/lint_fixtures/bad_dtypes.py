"""Known-bad fixture for RL7 (dtype discipline in precision hot modules).

Checked under a forced hot-module path (``src/repro/nn/fused.py``); every
dtype-less array factory below must fire, every pinned one must not.
"""

import numpy as np
from numpy import asarray, empty as np_empty


def sloppy(values, n):
    a = np.asarray(values)  # RL7: result dtype follows the input
    b = np.zeros(n)  # RL7: defaults to float64 regardless of backend
    c = np.empty((n, n))  # RL7: same
    d = asarray(values)  # RL7: from-import alias resolves too
    e = np_empty(n)  # RL7: renamed from-import alias resolves too
    return a, b, c, d, e


def disciplined(values, n, compute_dtype):
    a = np.asarray(values, dtype=compute_dtype)  # pinned via kwarg
    b = np.zeros(n, np.float64)  # pinned positionally
    c = np.empty((n, n), dtype=np.float32)
    d = np.asarray(values)  # repro-lint: disable=RL7 — suppression honoured
    e = np.arange(n)  # not a tracked factory
    return a, b, c, d, e

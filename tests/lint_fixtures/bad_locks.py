"""RL6 fixture: blocking calls under held locks (checked under a serve/ rel path)."""

import os
import threading
import time

_lock = threading.Lock()
_send_lock = threading.Lock()


def sleep_under_lock():
    with _lock:
        time.sleep(0.5)  # blocking sleep in the critical section


def fsync_under_lock(fd):
    with _lock:
        os.fsync(fd)  # blocking fsync in the critical section


def socket_under_lock(sock, payload):
    with _lock:
        sock.sendall(payload)  # blocking socket write


def wait_for_worker(process):
    with _lock:
        process.wait()  # blocking process wait


def io_lock_is_exempt(sock, payload):
    with _send_lock:
        sock.sendall(payload)  # exempt: the lock's purpose IS serialising I/O


def deferred_is_fine():
    with _lock:
        def later():
            time.sleep(1.0)  # only defined here, not executed under the lock

        return later


def condition_wait_is_fine(cond: threading.Condition):
    with _lock:
        cond.wait(timeout=0.1)  # Condition.wait releases the lock

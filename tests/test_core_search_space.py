"""Unit tests for the Muffin search space."""

import numpy as np
import pytest

from repro.core import FusingCandidate, SearchSpace
from repro.zoo import default_pool_names

POOL = default_pool_names()


class TestConstruction:
    def test_step_layout_with_base_model(self):
        space = SearchSpace(POOL, base_model="ResNet-18", num_paired=1)
        # 1 partner + depth + max_depth widths + activation
        assert space.num_steps == 1 + 1 + space.max_depth + 1
        assert space.steps[0].name == "paired_model_1"
        assert space.steps[-1].name == "activation"

    def test_partner_choices_exclude_base(self):
        space = SearchSpace(POOL, base_model="ResNet-18")
        assert "ResNet-18" not in space.partner_choices
        assert len(space.partner_choices) == len(POOL) - 1

    def test_num_choices_match_steps(self):
        space = SearchSpace(POOL, base_model=None, num_paired=2)
        counts = space.num_choices()
        assert len(counts) == space.num_steps
        assert all(count >= 1 for count in counts)

    def test_size_is_positive_and_large(self):
        space = SearchSpace(POOL, base_model="ResNet-18")
        assert space.size() > 100

    def test_validation(self):
        with pytest.raises(ValueError):
            SearchSpace([], base_model=None)
        with pytest.raises(ValueError):
            SearchSpace(POOL, base_model="NotInPool")
        with pytest.raises(ValueError):
            SearchSpace(POOL, num_paired=0)
        with pytest.raises(ValueError):
            SearchSpace(["OnlyOne"], base_model="OnlyOne", num_paired=1)
        with pytest.raises(ValueError):
            SearchSpace(POOL, width_choices=[])

    def test_describe(self):
        description = SearchSpace(POOL, base_model="ResNet-18").describe()
        assert description["base_model"] == "ResNet-18"
        assert description["num_steps"] > 0


class TestDecode:
    def test_decode_roundtrip_structure(self):
        space = SearchSpace(POOL, base_model="ResNet-18", num_paired=1)
        actions = [0] * space.num_steps
        candidate = space.decode(actions)
        assert isinstance(candidate, FusingCandidate)
        assert candidate.model_names[0] == "ResNet-18"
        assert len(candidate.model_names) == 2
        assert len(candidate.hidden_sizes) >= 1
        assert candidate.activation in space.activation_choices

    def test_depth_controls_width_count(self):
        space = SearchSpace(POOL, base_model="ResNet-18", depth_choices=(1, 2, 3))
        actions = [0] * space.num_steps
        depth_step = space.num_paired  # index of the depth decision
        actions[depth_step] = 2  # choose depth 3
        candidate = space.decode(actions)
        assert len(candidate.hidden_sizes) == 3

    def test_duplicate_partner_resolved(self):
        space = SearchSpace(POOL, base_model=None, num_paired=2)
        actions = [0, 0] + [0] * (space.num_steps - 2)
        candidate = space.decode(actions)
        assert len(set(candidate.model_names)) == 2

    def test_wrong_length_rejected(self):
        space = SearchSpace(POOL, base_model="ResNet-18")
        with pytest.raises(ValueError):
            space.decode([0])

    def test_out_of_range_action_rejected(self):
        space = SearchSpace(POOL, base_model="ResNet-18")
        actions = [0] * space.num_steps
        actions[-1] = 99
        with pytest.raises(ValueError):
            space.decode(actions)

    def test_every_random_candidate_is_valid(self):
        space = SearchSpace(POOL, base_model="MobileNet_V3_Small", num_paired=2)
        rng = np.random.default_rng(0)
        for _ in range(50):
            candidate = space.random_candidate(rng)
            assert candidate.model_names[0] == "MobileNet_V3_Small"
            assert len(set(candidate.model_names)) == len(candidate.model_names)
            assert all(width in space.width_choices for width in candidate.hidden_sizes)
            assert len(candidate.hidden_sizes) in space.depth_choices

    def test_candidate_describe_and_dict(self):
        space = SearchSpace(POOL, base_model="ResNet-18")
        candidate = space.random_candidate(np.random.default_rng(1))
        assert "ResNet-18" in candidate.describe()
        payload = candidate.to_dict()
        assert set(payload) == {"model_names", "hidden_sizes", "activation"}

    def test_free_selection_has_no_base(self):
        space = SearchSpace(POOL, base_model=None, num_paired=3)
        candidate = space.decode(space.random_actions(np.random.default_rng(2)))
        assert len(candidate.model_names) == 3

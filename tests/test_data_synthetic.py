"""Unit tests for the synthetic latent-feature generator."""

import numpy as np
import pytest

from repro.data import (
    AttributeSet,
    AttributeSpec,
    SyntheticConfig,
    build_blueprint,
    describe_difficulty,
    distortion_key,
    sample_dataset,
)


def toy_attributes():
    return AttributeSet(
        [
            AttributeSpec(
                name="easy_hard",
                groups=("easy", "hard"),
                unprivileged=("hard",),
                difficulty={"easy": 0.05, "hard": 0.7},
                proportions={"easy": 0.7, "hard": 0.3},
            ),
            AttributeSpec(
                name="other",
                groups=("o1", "o2", "o3"),
                unprivileged=("o3",),
                difficulty={"o3": 0.5},
            ),
        ]
    )


class TestBlueprint:
    def test_prototype_shapes_and_separation(self):
        config = SyntheticConfig(num_samples=10, feature_dim=12, class_separation=2.0)
        blueprint = build_blueprint(4, toy_attributes(), config, np.random.default_rng(0))
        assert blueprint.class_prototypes.shape == (4, 12)
        norms = np.linalg.norm(blueprint.class_prototypes, axis=1)
        np.testing.assert_allclose(norms, np.full(4, 2.0), rtol=1e-6)

    def test_group_shift_scales_with_difficulty(self):
        config = SyntheticConfig(num_samples=10, feature_dim=12, group_shift_scale=3.0)
        blueprint = build_blueprint(3, toy_attributes(), config, np.random.default_rng(0))
        shifts = blueprint.group_shifts["easy_hard"]
        assert np.linalg.norm(shifts[1]) > np.linalg.norm(shifts[0])
        assert np.linalg.norm(shifts[1]) == pytest.approx(0.7 * 3.0, rel=1e-6)

    def test_class_proportions_sum_to_one(self):
        config = SyntheticConfig(num_samples=10)
        blueprint = build_blueprint(5, toy_attributes(), config, np.random.default_rng(1))
        assert blueprint.class_proportions.shape == (5,)
        assert blueprint.class_proportions.sum() == pytest.approx(1.0)

    def test_explicit_class_proportions(self):
        config = SyntheticConfig(num_samples=10, class_proportions=[0.5, 0.25, 0.25])
        blueprint = build_blueprint(3, toy_attributes(), config, np.random.default_rng(1))
        np.testing.assert_allclose(blueprint.class_proportions, [0.5, 0.25, 0.25])

    def test_bad_class_proportions_rejected(self):
        with pytest.raises(ValueError):
            build_blueprint(
                3,
                toy_attributes(),
                SyntheticConfig(num_samples=5, class_proportions=[0.5, 0.5]),
                np.random.default_rng(0),
            )


class TestSampleDataset:
    def test_shapes_and_components(self):
        config = SyntheticConfig(num_samples=200, feature_dim=16)
        ds = sample_dataset("toy", 4, toy_attributes(), config, seed=0)
        assert len(ds) == 200
        assert ds.feature_dim == 16
        assert set(ds.components) == {
            "signal",
            "noise",
            distortion_key("easy_hard"),
            distortion_key("other"),
        }

    def test_determinism_from_seed(self):
        config = SyntheticConfig(num_samples=100, feature_dim=8)
        a = sample_dataset("toy", 3, toy_attributes(), config, seed=7)
        b = sample_dataset("toy", 3, toy_attributes(), config, seed=7)
        np.testing.assert_array_equal(a.labels, b.labels)
        np.testing.assert_allclose(a.components["signal"], b.components["signal"])

    def test_different_seeds_differ(self):
        config = SyntheticConfig(num_samples=100, feature_dim=8)
        a = sample_dataset("toy", 3, toy_attributes(), config, seed=1)
        b = sample_dataset("toy", 3, toy_attributes(), config, seed=2)
        assert not np.allclose(a.components["signal"], b.components["signal"])

    def test_group_proportions_roughly_respected(self):
        config = SyntheticConfig(num_samples=4000, feature_dim=8)
        ds = sample_dataset("toy", 3, toy_attributes(), config, seed=0)
        sizes = ds.group_sizes("easy_hard")
        assert sizes["easy"] / len(ds) == pytest.approx(0.7, abs=0.05)

    def test_hard_group_distortion_larger(self):
        config = SyntheticConfig(num_samples=1500, feature_dim=12)
        ds = sample_dataset("toy", 3, toy_attributes(), config, seed=0)
        magnitudes = describe_difficulty(ds)["easy_hard"]
        assert magnitudes["hard"] > 3 * magnitudes["easy"]

    def test_invalid_sample_count(self):
        with pytest.raises(ValueError):
            sample_dataset("toy", 3, toy_attributes(), SyntheticConfig(num_samples=0), seed=0)

    def test_shared_blueprint_gives_consistent_geometry(self):
        config = SyntheticConfig(num_samples=50, feature_dim=8)
        rng = np.random.default_rng(3)
        blueprint = build_blueprint(3, toy_attributes(), config, rng)
        a = sample_dataset("a", 3, toy_attributes(), config, seed=10, blueprint=blueprint)
        b = sample_dataset("b", 3, toy_attributes(), config, seed=11, blueprint=blueprint)
        # Same latent geometry, different samples.
        assert not np.allclose(a.components["signal"], b.components["signal"])

    def test_labels_within_range(self):
        config = SyntheticConfig(num_samples=300, feature_dim=8)
        ds = sample_dataset("toy", 5, toy_attributes(), config, seed=0)
        assert ds.labels.min() >= 0 and ds.labels.max() < 5

    def test_signal_carries_class_information(self):
        """Nearest-prototype classification on the signal should beat chance."""
        config = SyntheticConfig(num_samples=600, feature_dim=16, class_separation=3.0)
        attrs = toy_attributes()
        rng = np.random.default_rng(0)
        blueprint = build_blueprint(4, attrs, config, rng)
        ds = sample_dataset("toy", 4, attrs, config, seed=5, blueprint=blueprint)
        signal = ds.components["signal"]
        distances = np.linalg.norm(
            signal[:, None, :] - blueprint.class_prototypes[None, :, :], axis=2
        )
        predictions = distances.argmin(axis=1)
        accuracy = (predictions == ds.labels).mean()
        assert accuracy > 0.5

"""Unit tests for repro.nn.rnn."""

import numpy as np
import pytest

from repro.nn import GRUCell, RNN, RNNCell, Tensor


class TestRNNCell:
    def test_output_shape(self):
        cell = RNNCell(4, 8)
        h = cell(Tensor(np.zeros((3, 4))))
        assert h.shape == (3, 8)

    def test_output_bounded_by_tanh(self):
        cell = RNNCell(4, 8)
        h = cell(Tensor(np.random.default_rng(0).normal(size=(5, 4)) * 10))
        assert (np.abs(h.data) <= 1.0).all()

    def test_hidden_state_feeds_back(self):
        cell = RNNCell(2, 3, rng=np.random.default_rng(1))
        x = Tensor(np.ones((1, 2)))
        h1 = cell(x)
        h2 = cell(x, h1)
        assert not np.allclose(h1.data, h2.data)

    def test_init_hidden_zeros(self):
        cell = RNNCell(2, 5)
        np.testing.assert_allclose(cell.init_hidden(4).data, np.zeros((4, 5)))

    def test_gradients_flow_through_time(self):
        cell = RNNCell(2, 3, rng=np.random.default_rng(2))
        x = Tensor(np.ones((1, 2)))
        h = cell(x)
        for _ in range(3):
            h = cell(x, h)
        h.sum().backward()
        assert cell.weight_hh.grad is not None
        assert np.isfinite(cell.weight_hh.grad).all()

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            RNNCell(0, 4)


class TestGRUCell:
    def test_output_shape(self):
        cell = GRUCell(4, 6)
        assert cell(Tensor(np.zeros((2, 4)))).shape == (2, 6)

    def test_zero_input_zero_hidden_stays_small(self):
        cell = GRUCell(3, 3)
        h = cell(Tensor(np.zeros((1, 3))))
        assert np.abs(h.data).max() < 1.0

    def test_gradients_flow(self):
        cell = GRUCell(3, 4, rng=np.random.default_rng(3))
        h = cell(Tensor(np.ones((1, 3))))
        h = cell(Tensor(np.ones((1, 3))), h)
        h.sum().backward()
        assert cell.weight_hn.grad is not None

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            GRUCell(3, 0)


class TestRNN:
    def test_unroll_shapes(self):
        rnn = RNN(3, 5)
        inputs = Tensor(np.random.default_rng(0).normal(size=(7, 2, 3)))
        outputs, final_hidden = rnn(inputs)
        assert outputs.shape == (7, 2, 5)
        assert final_hidden.shape == (2, 5)

    def test_last_output_matches_final_hidden(self):
        rnn = RNN(3, 4)
        inputs = Tensor(np.random.default_rng(1).normal(size=(4, 1, 3)))
        outputs, final_hidden = rnn(inputs)
        np.testing.assert_allclose(outputs.data[-1], final_hidden.data)

    def test_gru_variant(self):
        rnn = RNN(3, 4, cell="gru")
        outputs, _ = rnn(Tensor(np.zeros((2, 1, 3))))
        assert outputs.shape == (2, 1, 4)

    def test_invalid_cell_type(self):
        with pytest.raises(ValueError):
            RNN(3, 4, cell="lstm")

    def test_rejects_2d_input(self):
        rnn = RNN(3, 4)
        with pytest.raises(ValueError):
            rnn(Tensor(np.zeros((2, 3))))

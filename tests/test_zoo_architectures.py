"""Unit tests for the architecture registry."""

import pytest

from repro.zoo import (
    ALIASES,
    ARCHITECTURES,
    ArchitectureSpec,
    architecture_names,
    architectures_by_family,
    default_pool_names,
    fitzpatrick_pool_names,
    get_architecture,
    register_architecture,
)


class TestRegistry:
    def test_ten_architectures_like_the_paper(self):
        assert len(ARCHITECTURES) == 10
        assert len(architecture_names()) == 10

    def test_paper_parameter_counts(self):
        assert get_architecture("ShuffleNet_V2_X1_0").num_parameters == 1_261_804
        assert get_architecture("MobileNet_V3_Small").num_parameters == 1_526_056

    def test_parameter_ordering_small_to_large(self):
        params = [spec.num_parameters for spec in ARCHITECTURES]
        assert params == sorted(params)

    def test_aliases_resolve(self):
        assert get_architecture("R-18").name == "ResNet-18"
        assert get_architecture("D121").name == "DenseNet121"
        assert get_architecture("S_V2_X1_0").name == "ShuffleNet_V2_X1_0"
        assert get_architecture("M_V3_Small").name == "MobileNet_V3_Small"

    def test_every_alias_points_to_registered_arch(self):
        names = set(architecture_names())
        assert all(target in names for target in ALIASES.values())

    def test_unknown_architecture_raises(self):
        with pytest.raises(KeyError):
            get_architecture("VGG-16")

    def test_families(self):
        assert len(architectures_by_family("ResNet")) == 3
        assert len(architectures_by_family("densenet")) == 2
        with pytest.raises(KeyError):
            architectures_by_family("Transformer")

    def test_default_pool_is_all_ten(self):
        assert len(default_pool_names()) == 10

    def test_fitzpatrick_pool_excludes_densenets(self):
        names = fitzpatrick_pool_names()
        assert all("DenseNet" not in name for name in names)
        assert any("ResNet" in name for name in names)


class TestSensitivityProfiles:
    def test_every_arch_defines_all_paper_attributes(self):
        for spec in ARCHITECTURES:
            for attr in ("age", "site", "gender", "skin_tone", "type"):
                assert 0.0 <= spec.sensitivity_for(attr) <= 1.5

    def test_gender_sensitivity_is_low(self):
        """All architectures are nearly fair on gender (Figure 1a-b)."""
        assert all(spec.sensitivity_for("gender") <= 0.6 for spec in ARCHITECTURES)

    def test_resnet_vs_densenet_tradeoff(self):
        """ResNet-18 is robust on age, DenseNet121 on site (Figure 1c)."""
        r18 = get_architecture("ResNet-18")
        d121 = get_architecture("DenseNet121")
        assert r18.sensitivity_for("age") < d121.sensitivity_for("age")
        assert d121.sensitivity_for("site") < r18.sensitivity_for("site")

    def test_default_sensitivity_for_unknown_attribute(self):
        spec = ARCHITECTURES[0]
        assert spec.sensitivity_for("unknown_attr") == spec.default_sensitivity

    def test_to_dict(self):
        payload = ARCHITECTURES[0].to_dict()
        assert {"name", "family", "num_parameters", "capacity", "sensitivity"} <= set(payload)


class TestCustomRegistration:
    def test_register_and_lookup(self):
        spec = ArchitectureSpec(
            name="TestNet-42", family="Custom", num_parameters=1000, capacity=8
        )
        register_architecture(spec, overwrite=True)
        assert get_architecture("TestNet-42").capacity == 8

    def test_duplicate_registration_rejected(self):
        spec = ArchitectureSpec(name="TestNet-dup", family="Custom", num_parameters=10, capacity=4)
        register_architecture(spec, overwrite=True)
        with pytest.raises(ValueError):
            register_architecture(spec)

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            ArchitectureSpec(name="bad", family="x", num_parameters=0, capacity=4)
        with pytest.raises(ValueError):
            ArchitectureSpec(name="bad", family="x", num_parameters=10, capacity=0)
        with pytest.raises(ValueError):
            ArchitectureSpec(
                name="bad", family="x", num_parameters=10, capacity=4, sensitivity={"age": 2.0}
            )

"""Tests of the declarative RunSpec layer: JSON round-trips, validation, hashing."""

import json

import pytest

from repro.api import (
    DatasetSpec,
    ExecutionSpec,
    FinalizeSpec,
    PoolSpec,
    ReportSpec,
    RunSpec,
    SearchSpec,
    SpecError,
)


def make_spec(**overrides) -> RunSpec:
    base = dict(
        name="unit-spec",
        dataset=DatasetSpec(name="synthetic_isic", num_samples=1500, seed=3, split_seed=5),
        pool=PoolSpec(architectures=("MobileNet_V3_Small", "ResNet-18"), epochs=10),
        search=SearchSpec(
            attributes=("age", "site"), base_model="MobileNet_V3_Small", episodes=4
        ),
        finalize=FinalizeSpec(selection="reward", name="Muffin-unit"),
        report=ReportSpec(top_k=2),
    )
    base.update(overrides)
    return RunSpec(**base)


class TestRoundTrip:
    def test_json_round_trip_equality(self):
        spec = make_spec()
        assert RunSpec.from_json(spec.to_json()) == spec

    def test_dict_round_trip_equality(self):
        spec = make_spec()
        assert RunSpec.from_dict(spec.to_dict()) == spec

    def test_round_trip_via_file(self, tmp_path):
        spec = make_spec()
        path = tmp_path / "spec.json"
        spec.to_json(path)
        assert RunSpec.from_json(path) == spec

    def test_round_trip_preserves_params_mapping(self):
        spec = make_spec(
            dataset=DatasetSpec(name="synthetic_isic", params={"config": None})
        )
        loaded = RunSpec.from_json(spec.to_json())
        assert loaded.dataset.params == {"config": None}

    def test_sequences_normalise_to_tuples(self):
        spec = RunSpec.from_dict(
            {
                "search": {"attributes": ["age"]},
                "pool": {"architectures": ["ResNet-18"]},
            }
        )
        assert spec.search.attributes == ("age",)
        assert spec.pool.architectures == ("ResNet-18",)

    def test_sections_accept_mappings_directly(self):
        spec = RunSpec(name="m", dataset={"name": "isic", "num_samples": 100})
        assert spec.dataset.num_samples == 100


class TestValidation:
    def test_unknown_top_level_section_rejected(self):
        with pytest.raises(SpecError):
            RunSpec.from_dict({"name": "x", "serach": {}})

    def test_unknown_section_key_rejected(self):
        with pytest.raises(SpecError) as excinfo:
            RunSpec.from_dict({"search": {"episodess": 3}})
        assert "episodess" in str(excinfo.value)

    def test_invalid_values_rejected(self):
        with pytest.raises(SpecError):
            DatasetSpec(num_samples=0)
        with pytest.raises(SpecError):
            PoolSpec(epochs=0)
        with pytest.raises(SpecError):
            SearchSpec(attributes=())
        with pytest.raises(SpecError):
            ReportSpec(top_k=-1)

    def test_invalid_json_rejected(self):
        with pytest.raises(SpecError):
            RunSpec.from_json("{not json")
        with pytest.raises(SpecError):
            RunSpec.from_json("/nonexistent/spec.json")

    def test_non_object_json_rejected(self):
        with pytest.raises(SpecError):
            RunSpec.from_json(json.dumps([1, 2, 3]))


class TestHashing:
    def test_hash_is_stable_across_round_trips(self):
        spec = make_spec()
        assert spec.spec_hash() == RunSpec.from_json(spec.to_json()).spec_hash()

    def test_stage_hashes_ignore_downstream_sections(self):
        a = make_spec()
        b = make_spec(search=SearchSpec(attributes=("age",), episodes=99))
        # Pool artifacts only depend on dataset+pool sub-specs.
        assert a.stage_hash("pool") == b.stage_hash("pool")
        assert a.stage_hash("search") != b.stage_hash("search")

    def test_stage_hashes_invalidate_upstream_changes(self):
        a = make_spec()
        b = make_spec(dataset=DatasetSpec(num_samples=999))
        for stage in ("dataset", "split", "pool", "search", "finalize", "report"):
            assert a.stage_hash(stage) != b.stage_hash(stage)

    def test_unknown_stage_rejected(self):
        with pytest.raises(SpecError):
            make_spec().stage_hash("training")

    def test_name_does_not_change_stage_hashes(self):
        a = make_spec(name="one")
        b = make_spec(name="two")
        assert a.stage_hash("report") == b.stage_hash("report")
        assert a.spec_hash() != b.spec_hash()

    def test_execution_section_never_invalidates_caches(self):
        """Executors change how fast a run computes, never what it computes."""
        serial = make_spec()
        parallel = make_spec(
            execution=ExecutionSpec(executor="process", max_workers=4, memoize=False)
        )
        assert serial.spec_hash() == parallel.spec_hash()
        for stage in ("dataset", "split", "pool", "search", "finalize", "report"):
            assert serial.stage_hash(stage) == parallel.stage_hash(stage)


class TestExecutionSpec:
    def test_round_trip(self):
        spec = make_spec(execution=ExecutionSpec(executor="thread", max_workers=3))
        loaded = RunSpec.from_json(spec.to_json())
        assert loaded == spec
        assert loaded.execution.executor == "thread"
        assert loaded.execution.max_workers == 3

    def test_defaults_are_serial_and_memoised(self):
        execution = RunSpec().execution
        assert execution.executor == "serial"
        assert execution.max_workers is None
        assert execution.memoize is True

    def test_unknown_executor_rejected_with_suggestion(self):
        with pytest.raises(SpecError, match="thread"):
            ExecutionSpec(executor="thread-pool")

    def test_non_positive_max_workers_rejected(self):
        with pytest.raises(SpecError):
            ExecutionSpec(max_workers=0)

    def test_search_config_carries_execution_knobs(self):
        config = SearchSpec().search_config(ExecutionSpec(executor="thread", max_workers=2))
        assert config.executor == "thread"
        assert config.max_workers == 2
        assert config.memoize is True
        # Omitting the execution spec keeps the SearchConfig defaults.
        assert SearchSpec().search_config().executor == "serial"


class TestQuickstartSpecFile:
    def test_checked_in_specs_parse(self):
        from pathlib import Path

        specs_dir = Path(__file__).parent.parent / "examples" / "specs"
        for name in ("quickstart.json", "smoke.json"):
            spec = RunSpec.from_json(specs_dir / name)
            assert spec.search.attributes == ("age", "site")
            assert RunSpec.from_json(spec.to_json()) == spec

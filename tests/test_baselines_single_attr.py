"""Unit tests for the single-attribute optimization study driver."""

import pytest

from repro.baselines import SingleAttributeOptimizer
from repro.zoo import TrainConfig


@pytest.fixture(scope="module")
def study(pool, isic_split):
    optimizer = SingleAttributeOptimizer(
        isic_split, train_config=TrainConfig(epochs=20, batch_size=256)
    )
    return optimizer.run(pool.get("MobileNet_V3_Small"), attributes=("age", "site"))


class TestSingleAttributeStudy:
    def test_grid_shape(self, study):
        # 2 attributes x 2 methods = 4 cells
        assert len(study.cells) == 4
        labels = {cell.label for cell in study.cells}
        assert labels == {"D(age)", "D(site)", "L(age)", "L(site)"}

    def test_cell_lookup(self, study):
        assert study.cell("D", "age").attribute == "age"
        with pytest.raises(KeyError):
            study.cell("D", "gender")

    def test_vanilla_evaluation_present(self, study):
        assert study.vanilla.accuracy > 0.4
        assert set(study.vanilla.unfairness) == {"age", "site"}

    def test_seesaw_rows_structure(self, study):
        rows = study.seesaw_pairs(("age", "site"))
        assert len(rows) == 4
        assert {"method", "optimized_attribute", "delta_U(age)", "delta_U(site)", "delta_accuracy"} <= set(
            rows[0]
        )

    def test_reports_reference_vanilla(self, study):
        reports = study.reports()
        assert len(reports) == 5  # vanilla + 4 cells
        assert reports[0].baseline is None
        assert all(report.baseline is not None for report in reports[1:])

    def test_to_dict_roundtrip_fields(self, study):
        payload = study.to_dict()
        assert payload["model"] == "MobileNet_V3_Small"
        assert len(payload["cells"]) == 4


class TestOptimizerValidation:
    def test_untrained_base_rejected(self, pool, isic_split):
        optimizer = SingleAttributeOptimizer(isic_split, TrainConfig(epochs=1))
        untrained = pool.get("ResNet-18").clone_untrained(label="untrained")
        with pytest.raises(ValueError):
            optimizer.run(untrained, attributes=("age",))

    def test_unknown_method_rejected(self, pool, isic_split):
        optimizer = SingleAttributeOptimizer(isic_split, TrainConfig(epochs=1))
        with pytest.raises(ValueError):
            optimizer.run(pool.get("ResNet-18"), attributes=("age",), methods=("X",))

    def test_eval_attributes_can_differ_from_optimized(self, pool, isic_split):
        optimizer = SingleAttributeOptimizer(isic_split, TrainConfig(epochs=5))
        study = optimizer.run(
            pool.get("ShuffleNet_V2_X1_0"),
            attributes=("age",),
            methods=("D",),
            eval_attributes=("age", "site", "gender"),
        )
        assert set(study.vanilla.unfairness) == {"age", "site", "gender"}
        assert len(study.cells) == 1

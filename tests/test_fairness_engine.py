"""Equivalence and unit tests for the vectorized evaluation engine.

The load-bearing claim of :mod:`repro.fairness.engine` is that its batched
matmul formulation is **bit-identical** to the seed implementation's scalar
per-group mask loop.  The legacy loop is reproduced verbatim below (the
library versions are now wrappers over the engine, so they cannot serve as
the reference) and compared against the engine across seeded random shapes,
including empty groups and probability-tensor inputs.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import MultiFairnessReward, RewardConfig
from repro.data import AttributeSpec, GroupIndexBank
from repro.fairness import (
    EvaluationEngine,
    FairnessEvaluation,
    accuracy_gap,
    evaluate_predictions,
    group_accuracies,
    unfairness_score,
)

# ----------------------------------------------------------------------
# The seed implementation's scalar loop, reproduced as the reference.
# ----------------------------------------------------------------------


def legacy_overall_accuracy(predictions, labels):
    if labels.size == 0:
        return 0.0
    return float((predictions == labels).mean())


def legacy_group_accuracies(predictions, labels, group_ids, spec):
    overall = legacy_overall_accuracy(predictions, labels)
    accuracies = {}
    for index, group in enumerate(spec.groups):
        mask = group_ids == index
        if mask.any():
            accuracies[group] = float((predictions[mask] == labels[mask]).mean())
        else:
            accuracies[group] = overall
    return accuracies


def legacy_evaluation(predictions, labels, group_ids_by_attr, specs):
    accuracy = legacy_overall_accuracy(predictions, labels)
    unfairness, per_group, gaps = {}, {}, {}
    for name, spec in specs.items():
        per_group[name] = legacy_group_accuracies(
            predictions, labels, group_ids_by_attr[name], spec
        )
        unfairness[name] = float(
            sum(abs(acc - accuracy) for acc in per_group[name].values())
        )
        values = list(per_group[name].values())
        gaps[name] = float(max(values) - min(values))
    return FairnessEvaluation(
        accuracy=accuracy, unfairness=unfairness, group_accuracy=per_group, gaps=gaps
    )


def random_problem(rng, num_samples, group_counts, num_classes=4, empty_group_prob=0.0):
    """A random labelled population with one attribute per entry of ``group_counts``."""
    labels = rng.integers(0, num_classes, num_samples)
    specs, group_ids = {}, {}
    for a, num_groups in enumerate(group_counts):
        name = f"attr{a}"
        specs[name] = AttributeSpec(
            name=name, groups=tuple(f"g{i}" for i in range(num_groups))
        )
        ids = rng.integers(0, num_groups, num_samples)
        if empty_group_prob and rng.random() < empty_group_prob and num_groups > 2:
            # Force one group empty to exercise the overall-accuracy fallback.
            ids[ids == num_groups - 1] = 0
        group_ids[name] = ids
    return labels, group_ids, specs


class TestEngineMatchesLegacyLoop:
    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize(
        "num_samples,group_counts",
        [(1, (2,)), (17, (3,)), (200, (2, 6)), (503, (6, 9, 2)), (64, (4, 4))],
    )
    def test_randomized_equivalence(self, seed, num_samples, group_counts):
        rng = np.random.default_rng(1000 * seed + num_samples)
        labels, group_ids, specs = random_problem(
            rng, num_samples, group_counts, empty_group_prob=0.5
        )
        engine = EvaluationEngine.from_arrays(labels, group_ids, specs)
        num_candidates = int(rng.integers(1, 9))
        stacked = np.stack(
            [
                np.where(rng.random(num_samples) < rng.random(), labels, rng.integers(0, 4, num_samples))
                for _ in range(num_candidates)
            ]
        )
        batch = engine.evaluate(stacked)
        assert len(batch) == num_candidates
        for i in range(num_candidates):
            expected = legacy_evaluation(stacked[i], labels, group_ids, specs)
            got = batch.evaluation(i)
            # Bit-identical, not approximately equal.
            assert got.accuracy == expected.accuracy
            assert got.unfairness == expected.unfairness
            assert got.group_accuracy == expected.group_accuracy
            assert got.gaps == expected.gaps

    def test_batch_accessors_match_scalar_properties(self):
        rng = np.random.default_rng(21)
        labels, group_ids, specs = random_problem(rng, 80, (3, 2))
        engine = EvaluationEngine.from_arrays(labels, group_ids, specs)
        stacked = np.stack([labels, np.zeros(80, dtype=np.int64)])
        batch = engine.evaluate(stacked)
        matrix = batch.unfairness_matrix()
        assert matrix.shape == (2, 2)
        for i, evaluation in enumerate(batch):
            assert matrix[i].tolist() == [
                evaluation.unfairness["attr0"],
                evaluation.unfairness["attr1"],
            ]
            assert batch.multi_dimensional_unfairness()[i] == (
                evaluation.multi_dimensional_unfairness
            )

    def test_probability_tensor_input(self):
        rng = np.random.default_rng(3)
        labels, group_ids, specs = random_problem(rng, 40, (3,))
        probs = rng.random((5, 40, 4))
        engine = EvaluationEngine.from_arrays(labels, group_ids, specs)
        batch = engine.evaluate(probs)
        hard = probs.argmax(axis=-1)
        for i in range(5):
            expected = legacy_evaluation(hard[i], labels, group_ids, specs)
            assert batch.evaluation(i).to_dict() == expected.to_dict()

    def test_single_vector_input_is_one_candidate(self):
        rng = np.random.default_rng(4)
        labels, group_ids, specs = random_problem(rng, 30, (2,))
        engine = EvaluationEngine.from_arrays(labels, group_ids, specs)
        batch = engine.evaluate(labels.copy())
        assert len(batch) == 1
        assert batch.evaluation(0).accuracy == 1.0

    def test_empty_population(self):
        labels = np.array([], dtype=np.int64)
        spec = AttributeSpec(name="a", groups=("x", "y"))
        engine = EvaluationEngine.from_arrays(labels, {"a": labels}, {"a": spec})
        batch = engine.evaluate(np.zeros((3, 0), dtype=np.int64))
        assert batch.accuracy.tolist() == [0.0, 0.0, 0.0]
        assert batch.unfairness["a"].tolist() == [0.0, 0.0, 0.0]

    def test_scalar_wrappers_match_legacy(self):
        rng = np.random.default_rng(9)
        labels, group_ids, specs = random_problem(rng, 120, (5,), empty_group_prob=1.0)
        spec = specs["attr0"]
        ids = group_ids["attr0"]
        predictions = np.where(rng.random(120) < 0.7, labels, (labels + 1) % 4)
        assert group_accuracies(predictions, labels, ids, spec) == legacy_group_accuracies(
            predictions, labels, ids, spec
        )
        expected = legacy_evaluation(predictions, labels, group_ids, specs)
        assert unfairness_score(predictions, labels, ids, spec) == expected.unfairness["attr0"]
        assert accuracy_gap(predictions, labels, ids, spec) == expected.gaps["attr0"]


class TestEngineForDataset:
    def test_matches_evaluate_predictions(self, isic_dataset):
        rng = np.random.default_rng(0)
        predictions = np.stack(
            [
                np.where(rng.random(len(isic_dataset)) < 0.8, isic_dataset.labels, 0)
                for _ in range(4)
            ]
        )
        engine = EvaluationEngine.for_dataset(isic_dataset)
        batch = engine.evaluate(predictions)
        for i in range(4):
            scalar = evaluate_predictions(predictions[i], isic_dataset)
            assert batch.evaluation(i).to_dict() == scalar.to_dict()

    def test_engine_and_bank_are_cached(self, isic_dataset):
        engine_a = EvaluationEngine.for_dataset(isic_dataset)
        engine_b = EvaluationEngine.for_dataset(isic_dataset)
        assert engine_a is engine_b
        assert isic_dataset.group_index_bank() is isic_dataset.group_index_bank()

    def test_attribute_subset(self, isic_dataset):
        engine = EvaluationEngine.for_dataset(isic_dataset, ["site"])
        batch = engine.evaluate(isic_dataset.labels)
        assert list(batch.unfairness) == ["site"]

    def test_empty_attribute_selection_is_accuracy_only(self, isic_dataset):
        """Regression: ``attributes=[]`` must keep working (accuracy only)."""
        evaluation = evaluate_predictions(isic_dataset.labels, isic_dataset, attributes=[])
        assert evaluation.accuracy == 1.0
        assert evaluation.unfairness == {}
        assert evaluation.multi_dimensional_unfairness == 0.0
        engine = EvaluationEngine.for_dataset(isic_dataset, [])
        batch = engine.evaluate(isic_dataset.labels)
        assert len(batch) == 1 and batch.unfairness == {}

    def test_unknown_attribute_raises(self, isic_dataset):
        with pytest.raises(KeyError, match="unknown attribute"):
            EvaluationEngine.for_dataset(isic_dataset, ["nonsense"])

    def test_restrict_matches_subset_evaluation(self, isic_dataset):
        rng = np.random.default_rng(5)
        indices = rng.choice(len(isic_dataset), size=200, replace=False)
        predictions = np.where(
            rng.random(len(isic_dataset)) < 0.75, isic_dataset.labels, 1
        )
        engine = EvaluationEngine.for_dataset(isic_dataset)
        restricted = engine.restrict(indices)
        subset = isic_dataset.subset(indices)
        expected = evaluate_predictions(predictions[indices], subset)
        got = restricted.evaluate(predictions[indices]).evaluation(0)
        assert got.accuracy == expected.accuracy
        assert got.unfairness == expected.unfairness

    def test_restricted_bank_slices_are_memoised(self, isic_dataset):
        engine = EvaluationEngine.for_dataset(isic_dataset)
        indices = np.arange(50)
        assert engine.restrict(indices).bank is engine.restrict(indices).bank


class TestRewards:
    def _batch(self, rng, num_candidates=6):
        labels, group_ids, specs = random_problem(rng, 150, (3, 4))
        engine = EvaluationEngine.from_arrays(labels, group_ids, specs)
        stacked = np.stack(
            [
                np.where(rng.random(150) < 0.6 + 0.05 * i, labels, 0)
                for i in range(num_candidates)
            ]
        )
        return engine, engine.evaluate(stacked)

    def test_engine_rewards_match_scalar_reward(self):
        engine, batch = self._batch(np.random.default_rng(11))
        rewards = engine.rewards(batch)
        for i, evaluation in enumerate(batch.evaluations()):
            assert rewards[i] == evaluation.reward()

    def test_compute_batch_matches_scalar_compute(self):
        engine, batch = self._batch(np.random.default_rng(12))
        reward = MultiFairnessReward(
            RewardConfig(attributes=("attr0", "attr1"), min_accuracy=0.9)
        )
        batched = reward.compute_batch(batch)
        for i, evaluation in enumerate(batch.evaluations()):
            assert batched[i] == reward.compute(evaluation)

    def test_compute_batch_unknown_attribute(self):
        _, batch = self._batch(np.random.default_rng(13))
        reward = MultiFairnessReward(RewardConfig(attributes=("nope",)))
        with pytest.raises(KeyError, match="lacks unfairness score"):
            reward.compute_batch(batch)

    def test_reward_unknown_attribute_is_value_error(self):
        evaluation = FairnessEvaluation(accuracy=0.9, unfairness={"age": 0.2})
        with pytest.raises(ValueError, match="unknown attribute"):
            evaluation.reward(["age", "typo"])


class TestNonFloat64Inputs:
    """Non-float64 inputs (float32 serving tensors, int32 labels) are either
    handled with unchanged results or rejected with a clear ValueError."""

    @given(
        seed=st.integers(0, 2**31 - 1),
        num_samples=st.integers(1, 120),
        num_candidates=st.integers(1, 6),
    )
    @settings(max_examples=25, deadline=None)
    def test_float32_probability_tensors_match_int64_argmax(
        self, seed, num_samples, num_candidates
    ):
        rng = np.random.default_rng(seed)
        labels, group_ids, specs = random_problem(rng, num_samples, (3,))
        engine = EvaluationEngine.from_arrays(labels, group_ids, specs)
        probs32 = rng.random((num_candidates, num_samples, 4), dtype=np.float32)
        batch32 = engine.evaluate(probs32)
        reference = engine.evaluate(probs32.argmax(axis=-1))
        assert batch32.accuracy.tolist() == reference.accuracy.tolist()
        for name in reference.unfairness:
            assert batch32.unfairness[name].tolist() == reference.unfairness[name].tolist()
            assert batch32.gaps[name].tolist() == reference.gaps[name].tolist()

    @given(seed=st.integers(0, 2**31 - 1), num_samples=st.integers(1, 120))
    @settings(max_examples=25, deadline=None)
    def test_int32_labels_and_predictions_match_int64(self, seed, num_samples):
        rng = np.random.default_rng(seed)
        labels, group_ids, specs = random_problem(rng, num_samples, (3, 2))
        predictions = np.where(
            rng.random(num_samples) < 0.7, labels, rng.integers(0, 4, num_samples)
        )
        reference = EvaluationEngine.from_arrays(labels, group_ids, specs)
        narrow = EvaluationEngine.from_arrays(
            labels.astype(np.int32), group_ids, specs
        )
        got = narrow.evaluate(predictions.astype(np.int32))
        expected = reference.evaluate(predictions)
        assert got.accuracy.tolist() == expected.accuracy.tolist()
        for name in expected.unfairness:
            assert got.unfairness[name].tolist() == expected.unfairness[name].tolist()

    def test_integral_float_inputs_are_accepted(self):
        rng = np.random.default_rng(6)
        labels, group_ids, specs = random_problem(rng, 40, (3,))
        engine = EvaluationEngine.from_arrays(labels.astype(np.float32), group_ids, specs)
        batch = engine.evaluate(labels.astype(np.float64))
        assert batch.evaluation(0).accuracy == 1.0

    def test_fractional_hard_predictions_are_rejected(self):
        rng = np.random.default_rng(7)
        labels, group_ids, specs = random_problem(rng, 30, (2,))
        engine = EvaluationEngine.from_arrays(labels, group_ids, specs)
        soft = labels.astype(np.float32) + 0.5
        with pytest.raises(ValueError, match="fractional"):
            engine.evaluate(soft)

    def test_fractional_labels_are_rejected(self):
        rng = np.random.default_rng(8)
        labels, group_ids, specs = random_problem(rng, 30, (2,))
        with pytest.raises(ValueError, match="fractional"):
            EvaluationEngine.from_arrays(labels + 0.25, group_ids, specs)

    def test_complex_and_object_dtypes_are_rejected(self):
        rng = np.random.default_rng(9)
        labels, group_ids, specs = random_problem(rng, 20, (2,))
        engine = EvaluationEngine.from_arrays(labels, group_ids, specs)
        with pytest.raises(ValueError, match="real-valued"):
            engine.evaluate(labels.astype(np.complex128))
        with pytest.raises(ValueError, match="integer-valued"):
            EvaluationEngine.from_arrays(labels.astype(object), group_ids, specs)


class TestFloat32Backend:
    """The float32 engine's group counts are exact (0/1 GEMM below 2^24),
    so its metrics are *bit-identical* to the float64 engine — the property
    that justifies the tight 'metrics'/'group_counts' tolerance entries."""

    def _engines(self, rng, num_samples=500):
        labels, group_ids, specs = random_problem(rng, num_samples, (4, 3))
        bank = GroupIndexBank(group_ids, specs)
        oracle = EvaluationEngine(labels, bank)
        fp32 = EvaluationEngine(labels, bank, backend="numpy-float32")
        return oracle, fp32, labels

    def test_float32_engine_is_bit_identical_on_hard_predictions(self):
        rng = np.random.default_rng(31)
        oracle, fp32, labels = self._engines(rng)
        stacked = np.stack(
            [
                np.where(rng.random(len(labels)) < 0.6 + 0.05 * i, labels, 0)
                for i in range(6)
            ]
        )
        expected = oracle.evaluate(stacked)
        got = fp32.evaluate(stacked)
        assert got.accuracy.tolist() == expected.accuracy.tolist()
        for name in expected.unfairness:
            assert got.group_accuracy[name].tolist() == expected.group_accuracy[name].tolist()
            assert got.unfairness[name].tolist() == expected.unfairness[name].tolist()
            assert got.gaps[name].tolist() == expected.gaps[name].tolist()

    def test_for_dataset_memoises_per_backend(self, isic_dataset):
        oracle_a = EvaluationEngine.for_dataset(isic_dataset)
        oracle_b = EvaluationEngine.for_dataset(isic_dataset, backend="numpy-float64")
        fp32 = EvaluationEngine.for_dataset(isic_dataset, backend="fp32")
        assert oracle_a is oracle_b
        assert fp32 is not oracle_a
        assert fp32.backend.name == "numpy-float32"
        assert EvaluationEngine.for_dataset(isic_dataset, backend="numpy-float32") is fp32

    def test_restrict_preserves_the_backend(self, isic_dataset):
        fp32 = EvaluationEngine.for_dataset(isic_dataset, backend="numpy-float32")
        assert fp32.restrict(np.arange(40)).backend is fp32.backend


class TestGroupIdValidation:
    """Out-of-range group ids used to be silently ignored (regression)."""

    def test_group_accuracies_rejects_out_of_range_ids(self):
        spec = AttributeSpec(name="grp", groups=("g0", "g1"))
        labels = np.array([0, 1, 0])
        predictions = labels.copy()
        with pytest.raises(ValueError, match=r"must be in \[0, 2\)"):
            group_accuracies(predictions, labels, np.array([0, 1, 2]), spec)
        with pytest.raises(ValueError, match=r"must be in \[0, 2\)"):
            unfairness_score(predictions, labels, np.array([0, -1, 1]), spec)
        with pytest.raises(ValueError, match=r"must be in \[0, 2\)"):
            accuracy_gap(predictions, labels, np.array([5, 0, 1]), spec)

    def test_bank_rejects_out_of_range_ids(self):
        spec = AttributeSpec(name="grp", groups=("g0", "g1", "g2"))
        with pytest.raises(ValueError, match="out-of-range"):
            GroupIndexBank({"grp": np.array([0, 3])}, {"grp": spec})

    def test_bank_counts_and_membership(self):
        spec = AttributeSpec(name="grp", groups=("g0", "g1", "g2"))
        bank = GroupIndexBank({"grp": np.array([0, 0, 2, 1, 2, 2])}, {"grp": spec})
        assert bank.counts_for("grp").tolist() == [2.0, 1.0, 3.0]
        assert bank.membership.shape == (6, 3)
        assert bank.membership.sum(axis=1).tolist() == [1.0] * 6

    def test_bank_from_attribute_set_matches_dataset(self, isic_dataset):
        bank = GroupIndexBank.from_attribute_set(
            isic_dataset.attribute_groups, isic_dataset.attributes
        )
        for name in isic_dataset.attributes.names:
            sizes = isic_dataset.group_sizes(name)
            counts = bank.counts_for(name)
            spec = isic_dataset.attributes[name]
            assert [sizes[g] for g in spec.groups] == counts.tolist()

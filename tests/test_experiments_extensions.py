"""Tests for the extension studies (controller ablation, three attributes)."""

import pytest

from repro.experiments import (
    render_extensions,
    run_controller_ablation,
    run_three_attribute,
)


@pytest.mark.slow
class TestControllerAblation:
    def test_structure_and_claims(self, smoke_context):
        results = run_controller_ablation(smoke_context, episodes=8)
        assert {row["controller"] for row in results["rows"]} == {"rnn", "random"}
        for row in results["rows"]:
            assert row["episodes"] == 8
            assert row["best_reward"] >= row["mean_reward"]
        assert isinstance(results["claims"]["rnn_matches_or_beats_random_best"], bool)

    def test_results_cached_in_context(self, smoke_context):
        first = run_controller_ablation(smoke_context, episodes=8)
        second = run_controller_ablation(smoke_context, episodes=8)
        assert first["rows"] == second["rows"]


@pytest.mark.slow
class TestThreeAttribute:
    def test_three_attribute_optimization(self, smoke_context):
        results = run_three_attribute(smoke_context)
        assert len(results["rows"]) == 2
        muffin_row = results["rows"][1]
        assert {"U(age)", "U(site)", "U(gender)"} <= set(muffin_row)
        claims = results["claims"]
        assert claims["gender_stays_fair"]
        assert claims["accuracy_kept"]
        assert len(claims["paired_models"]) >= 2

    def test_render(self, smoke_context):
        results = {
            "controller": run_controller_ablation(smoke_context, episodes=8),
            "three_attribute": run_three_attribute(smoke_context),
        }
        text = render_extensions(results)
        assert "RNN controller" in text and "three-attribute" in text

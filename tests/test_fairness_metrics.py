"""Unit tests for repro.fairness.metrics."""

import numpy as np
import pytest

from repro.data import AttributeSpec
from repro.fairness import (
    FairnessEvaluation,
    accuracy_gap,
    disagreement_breakdown,
    evaluate_predictions,
    group_accuracies,
    overall_accuracy,
    unfairness_score,
)


@pytest.fixture
def simple_spec():
    return AttributeSpec(name="grp", groups=("g0", "g1", "g2"), unprivileged=("g2",))


class TestOverallAccuracy:
    def test_from_hard_predictions(self):
        assert overall_accuracy(np.array([0, 1, 1]), np.array([0, 1, 0])) == pytest.approx(2 / 3)

    def test_from_logits(self):
        logits = np.array([[0.2, 0.8], [0.9, 0.1]])
        assert overall_accuracy(logits, np.array([1, 0])) == 1.0

    def test_empty(self):
        assert overall_accuracy(np.array([], dtype=int), np.array([], dtype=int)) == 0.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            overall_accuracy(np.array([0, 1]), np.array([0]))

    def test_rejects_3d_input(self):
        with pytest.raises(ValueError):
            overall_accuracy(np.zeros((2, 2, 2)), np.array([0, 1]))


class TestGroupAccuracies:
    def test_per_group_values(self, simple_spec):
        labels = np.array([0, 0, 1, 1, 1, 0])
        predictions = np.array([0, 1, 1, 1, 0, 0])  # correctness: 1,0,1,1,0,1
        groups = np.array([0, 0, 1, 1, 2, 2])
        accs = group_accuracies(predictions, labels, groups, simple_spec)
        assert accs["g0"] == pytest.approx(0.5)
        assert accs["g1"] == pytest.approx(1.0)
        assert accs["g2"] == pytest.approx(0.5)

    def test_empty_group_gets_overall_accuracy(self, simple_spec):
        labels = np.array([0, 1])
        predictions = np.array([0, 1])
        groups = np.array([0, 0])
        accs = group_accuracies(predictions, labels, groups, simple_spec)
        assert accs["g2"] == pytest.approx(1.0)

    def test_shape_validation(self, simple_spec):
        with pytest.raises(ValueError):
            group_accuracies(np.array([0]), np.array([0, 1]), np.array([0, 0]), simple_spec)


class TestUnfairnessScore:
    def test_matches_hand_computation(self, simple_spec):
        labels = np.array([0, 0, 1, 1, 1, 0])
        predictions = np.array([0, 1, 1, 1, 0, 0])
        groups = np.array([0, 0, 1, 1, 2, 2])
        overall = overall_accuracy(predictions, labels)  # 4/6
        expected = abs(0.5 - overall) + abs(1.0 - overall) + abs(0.5 - overall)
        assert unfairness_score(predictions, labels, groups, simple_spec) == pytest.approx(expected)

    def test_zero_when_groups_identical(self, simple_spec):
        labels = np.array([0, 1, 0, 1, 0, 1])
        predictions = labels.copy()
        groups = np.array([0, 0, 1, 1, 2, 2])
        assert unfairness_score(predictions, labels, groups, simple_spec) == pytest.approx(0.0)

    def test_higher_disparity_gives_higher_score(self, simple_spec):
        labels = np.zeros(30, dtype=int)
        groups = np.repeat([0, 1, 2], 10)
        balanced = np.zeros(30, dtype=int)
        skewed = np.zeros(30, dtype=int)
        skewed[20:] = 1  # group g2 entirely wrong
        assert unfairness_score(skewed, labels, groups, simple_spec) > unfairness_score(
            balanced, labels, groups, simple_spec
        )

    def test_bounded_by_group_count(self, simple_spec):
        # Each group deviates by at most 1, so the L1 score <= num_groups.
        labels = np.zeros(30, dtype=int)
        predictions = np.ones(30, dtype=int)
        groups = np.repeat([0, 1, 2], 10)
        assert unfairness_score(predictions, labels, groups, simple_spec) <= 3.0


class TestAccuracyGap:
    def test_gap(self, simple_spec):
        labels = np.zeros(30, dtype=int)
        predictions = np.zeros(30, dtype=int)
        predictions[20:] = 1  # g2 wrong
        groups = np.repeat([0, 1, 2], 10)
        assert accuracy_gap(predictions, labels, groups, simple_spec) == pytest.approx(1.0)


class TestEvaluatePredictions:
    def test_full_evaluation(self, isic_dataset):
        rng = np.random.default_rng(0)
        predictions = isic_dataset.labels.copy()
        flip = rng.random(len(isic_dataset)) < 0.2
        predictions[flip] = (predictions[flip] + 1) % isic_dataset.num_classes
        evaluation = evaluate_predictions(predictions, isic_dataset)
        assert 0.75 < evaluation.accuracy < 0.85
        assert set(evaluation.unfairness) == {"age", "site", "gender"}
        assert evaluation.multi_dimensional_unfairness == pytest.approx(
            sum(evaluation.unfairness.values())
        )
        assert set(evaluation.group_accuracy["site"]) == set(
            isic_dataset.attributes["site"].groups
        )

    def test_attribute_subset(self, isic_dataset):
        predictions = isic_dataset.labels
        evaluation = evaluate_predictions(predictions, isic_dataset, attributes=["age"])
        assert list(evaluation.unfairness) == ["age"]

    def test_reward_formula(self):
        evaluation = FairnessEvaluation(
            accuracy=0.8, unfairness={"a": 0.4, "b": 0.2}, group_accuracy={}, gaps={}
        )
        assert evaluation.reward(["a", "b"]) == pytest.approx(0.8 / 0.4 + 0.8 / 0.2)

    def test_reward_epsilon_guards_zero(self):
        evaluation = FairnessEvaluation(accuracy=0.9, unfairness={"a": 0.0})
        assert np.isfinite(evaluation.reward(["a"]))

    def test_to_dict_roundtrip_fields(self):
        evaluation = FairnessEvaluation(accuracy=0.7, unfairness={"a": 0.3}, gaps={"a": 0.2})
        payload = evaluation.to_dict()
        assert payload["accuracy"] == 0.7
        assert payload["multi_dimensional_unfairness"] == pytest.approx(0.3)


class TestDisagreementBreakdown:
    def test_fractions_sum_to_one(self):
        rng = np.random.default_rng(0)
        labels = rng.integers(0, 3, 100)
        a = rng.integers(0, 3, 100)
        b = rng.integers(0, 3, 100)
        breakdown = disagreement_breakdown(a, b, labels)
        assert breakdown["00"] + breakdown["01"] + breakdown["10"] + breakdown["11"] == pytest.approx(1.0)

    def test_known_case(self):
        labels = np.array([0, 0, 0, 0])
        a = np.array([0, 0, 1, 1])
        b = np.array([0, 1, 0, 1])
        breakdown = disagreement_breakdown(a, b, labels)
        assert breakdown["11"] == pytest.approx(0.25)
        assert breakdown["01"] == pytest.approx(0.25)
        assert breakdown["10"] == pytest.approx(0.25)
        assert breakdown["00"] == pytest.approx(0.25)
        assert breakdown["disagreement"] == pytest.approx(0.5)
        assert breakdown["oracle"] == pytest.approx(0.75)

    def test_mask_restricts_population(self):
        labels = np.array([0, 0, 1, 1])
        a = np.array([0, 1, 1, 0])
        b = np.array([0, 0, 1, 1])
        full = disagreement_breakdown(a, b, labels)
        masked = disagreement_breakdown(a, b, labels, mask=np.array([True, False, False, False]))
        assert masked != full
        assert masked["11"] == pytest.approx(1.0)

    def test_empty_mask(self):
        labels = np.array([0, 1])
        out = disagreement_breakdown(labels, labels, labels, mask=np.array([False, False]))
        assert out["oracle"] == 0.0

    def test_oracle_is_upper_bound_of_members(self):
        rng = np.random.default_rng(1)
        labels = rng.integers(0, 4, 200)
        a = np.where(rng.random(200) < 0.7, labels, (labels + 1) % 4)
        b = np.where(rng.random(200) < 0.7, labels, (labels + 2) % 4)
        breakdown = disagreement_breakdown(a, b, labels)
        acc_a = (a == labels).mean()
        acc_b = (b == labels).mean()
        assert breakdown["oracle"] >= max(acc_a, acc_b) - 1e-12

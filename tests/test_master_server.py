"""End-to-end MasterServer tests: submit → execute → done, cancellation,
restart-with-resume, and the client protocol over real sockets."""

import time

import pytest

from repro.api import (
    DatasetSpec,
    ExecutionSpec,
    MuffinPipeline,
    PoolSpec,
    RunSpec,
    SearchSpec,
)
from repro.master import (
    EpisodeJournal,
    MasterClient,
    MasterConfig,
    MasterError,
    MasterServer,
    MasterUnreachable,
    resolve_endpoint,
)

ARCHS = ("MobileNet_V3_Small", "ResNet-18")


def tiny_spec(name="master-test", episodes=4, head_epochs=4, use_fused=True, samples=800):
    return RunSpec(
        name=name,
        dataset=DatasetSpec(name="synthetic_isic", num_samples=samples, seed=11, split_seed=2),
        pool=PoolSpec(architectures=ARCHS, epochs=6, batch_size=256, seed=4),
        search=SearchSpec(
            attributes=("age", "site"),
            base_model="MobileNet_V3_Small",
            episodes=episodes,
            episode_batch=2,
            head_epochs=head_epochs,
            seed=0,
        ),
        execution=ExecutionSpec(use_fused=use_fused),
    )


def slow_spec(name="master-slow"):
    """~6s of search spread over 30 batches: enough runway to intervene."""
    return tiny_spec(name=name, episodes=60, head_epochs=30, use_fused=False, samples=2000)


def make_server(tmp_path, **overrides):
    options = dict(db_root=tmp_path / "db", executor=None, verbose=False)
    options.update(overrides)
    return MasterServer(MasterConfig(**options))


def wait_for(predicate, timeout=60.0, interval=0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(interval)
    raise AssertionError(f"condition not met within {timeout}s")


class TestSubmitToDone:
    def test_run_completes_and_matches_local_pipeline(self, tmp_path):
        spec = tiny_spec()
        with make_server(tmp_path) as server:
            client = MasterClient(db=server.config.db_root)
            rid = client.submit(spec)
            final = client.watch(rid, poll_seconds=0.05, timeout=120)
        assert final["status"] == "done"
        local = MuffinPipeline(spec, cache_dir=tmp_path / "local-cache").run()
        assert final["result_hash"] == local.result.result_hash()
        assert final["result"]["episodes"] == 4
        # The journal recorded every batch of the completed run.
        assert final["journal"] == {"batches": 2, "episodes": 4}

    def test_distributed_run_matches_serial(self, tmp_path):
        """One master + two workers produce the serial run's exact result."""
        spec = tiny_spec(name="master-dist", use_fused=False)
        with make_server(tmp_path, executor="distributed", max_workers=2) as server:
            rid = server.submit(spec)
            final = MasterClient(db=server.config.db_root).watch(
                rid, poll_seconds=0.05, timeout=300
            )
        assert final["status"] == "done"
        serial = MuffinPipeline(spec, cache_dir=tmp_path / "serial-cache").run()
        assert final["result_hash"] == serial.result.result_hash()

    def test_priority_order_respected(self, tmp_path):
        server = make_server(tmp_path)
        # Submit before starting the run loop so ordering is deterministic.
        low = server.db.submit(tiny_spec("low"), priority=0)
        high = server.db.submit(tiny_spec("high"), priority=5)
        finished = {}
        with server:
            client = MasterClient(host=server.host, port=server.port)
            for rid in (low, high):
                finished[rid] = client.watch(rid, poll_seconds=0.05, timeout=120)
        assert finished[high]["status"] == "done"
        assert finished[low]["status"] == "done"
        assert finished[high]["finished_at"] < finished[low]["finished_at"]


class TestCancellation:
    def test_cancel_queued_run(self, tmp_path):
        with make_server(tmp_path) as server:
            client = MasterClient(db=server.config.db_root)
            blocker = client.submit(slow_spec("blocker"))
            queued = client.submit(tiny_spec("victim"))
            outcome = client.cancel(queued)
            # Normally dequeued; "flagged" only if the run loop won the race.
            assert outcome["outcome"] in ("dequeued", "flagged")
            final = client.watch(queued, poll_seconds=0.05, timeout=120)
            assert final["status"] == "cancelled"
            assert client.watch(blocker, poll_seconds=0.05, timeout=120)["status"] == "done"

    def test_cancel_mid_run_stops_at_batch_boundary(self, tmp_path):
        with make_server(tmp_path) as server:
            client = MasterClient(db=server.config.db_root)
            rid = client.submit(slow_spec())
            wait_for(
                lambda: client.status(rid)["status"] == "running"
                and client.status(rid)["journal"]["batches"] >= 1
            )
            assert client.cancel(rid)["outcome"] == "flagged"
            final = client.watch(rid, poll_seconds=0.05, timeout=120)
        assert final["status"] == "cancelled"
        # Stopped partway: some batches journalled, but not all 30.
        assert 1 <= final["journal"]["batches"] < 30

    def test_cancel_pending_run_without_run_loop(self, tmp_path):
        """A run that is pending on disk but absent from the live queue is
        cancelled directly (covers takeover of an older master's database)."""
        server = make_server(tmp_path)  # never started: no run loop
        rid = server.db.submit(tiny_spec())
        assert server.cancel(rid)["outcome"] == "dequeued"
        assert server.db.status(rid)["status"] == "cancelled"

    def test_cancel_terminal_and_unknown(self, tmp_path):
        server = make_server(tmp_path)
        rid = server.db.submit(tiny_spec())
        server.db.set_status(rid, "cancelled")
        assert server.cancel(rid)["outcome"] == "already-cancelled"
        assert server.cancel(999)["outcome"] == "unknown"


class TestRestartResume:
    def test_graceful_stop_requeues_and_resume_is_bit_identical(self, tmp_path):
        """Stop the master mid-run; a fresh master over the same database
        finishes the run and the result matches an uninterrupted one."""
        spec = slow_spec("resumable")
        db_root = tmp_path / "db"
        first = MasterServer(MasterConfig(db_root=db_root, executor=None, verbose=False))
        first.start()
        rid = first.submit(spec)
        client = MasterClient(db=db_root)
        wait_for(lambda: client.status(rid)["journal"]["batches"] >= 2)
        first.stop()  # drains the in-flight batch and requeues

        from repro.master import RunDatabase

        status = RunDatabase(db_root).status(rid)
        assert status["status"] == "pending"
        assert status["requeued"] is True
        progress = EpisodeJournal.progress(db_root / "runs" / str(rid) / "journal.jsonl")
        assert 2 <= progress["batches"] < 30

        with MasterServer(MasterConfig(db_root=db_root, executor=None, verbose=False)) as second:
            final = MasterClient(db=db_root).watch(rid, poll_seconds=0.05, timeout=300)
        assert final["status"] == "done"
        assert final["journal"]["batches"] == 30
        uninterrupted = MuffinPipeline(spec, cache_dir=tmp_path / "ref-cache").run()
        assert final["result_hash"] == uninterrupted.result.result_hash()

    def test_crashed_master_requeues_running_runs(self, tmp_path):
        """A 'running' status left behind by a dead master is requeued on start."""
        server = make_server(tmp_path)
        rid = server.db.submit(tiny_spec())
        server.db.set_status(rid, "running")  # simulate the stale state
        with server:
            final = MasterClient(db=server.config.db_root).watch(
                rid, poll_seconds=0.05, timeout=120
            )
        assert final["status"] == "done"


class TestClientProtocol:
    def test_ping_and_endpoint_discovery(self, tmp_path):
        with make_server(tmp_path) as server:
            host, port = resolve_endpoint(server.config.db_root)
            assert (host, port) == (server.host, server.port)
            pong = MasterClient(host=host, port=port).ping()
            assert pong["type"] == "pong"
            assert pong["queued"] == 0
        # The endpoint file is removed on shutdown.
        with pytest.raises(MasterError, match="is a master running"):
            resolve_endpoint(server.config.db_root)

    def test_status_all_runs(self, tmp_path):
        with make_server(tmp_path) as server:
            client = MasterClient(db=server.config.db_root)
            first = client.submit(tiny_spec("one"))
            second = client.submit(tiny_spec("two"))
            runs = client.status()
            assert {entry["rid"] for entry in runs} == {first, second}

    def test_unknown_rid_is_a_master_error(self, tmp_path):
        with make_server(tmp_path) as server:
            client = MasterClient(db=server.config.db_root)
            with pytest.raises(MasterError, match="unknown run"):
                client.status(424242)
            assert client.cancel(424242)["outcome"] == "unknown"

    def test_malformed_spec_rejected(self, tmp_path):
        with make_server(tmp_path) as server:
            client = MasterClient(db=server.config.db_root)
            with pytest.raises(MasterError):
                client._request({"type": "submit", "spec": {"search": {"episodes": -3}}})
            with pytest.raises(MasterError, match="unknown request type"):
                client._request({"type": "explode"})

    def test_client_without_endpoint_raises(self, tmp_path):
        with pytest.raises(MasterError):
            MasterClient(db=tmp_path / "nowhere")
        with pytest.raises(MasterError):
            MasterClient()


class TestClientConnectRetry:
    """Transient connect failures are retried with deterministic backoff;
    exhaustion raises the typed MasterUnreachable naming the attempt count."""

    def test_exhaustion_raises_typed_error_with_attempt_count(self):
        # 127.0.0.1:1 refuses instantly, so three attempts stay fast
        client = MasterClient(host="127.0.0.1", port=1, retries=2, backoff_s=0.01)
        began = time.monotonic()
        with pytest.raises(MasterUnreachable, match="3 attempt") as err:
            client.ping()
        assert time.monotonic() - began < 5.0
        assert err.value.attempts == 3
        assert isinstance(err.value, MasterError)  # existing handlers keep working
        assert isinstance(err.value.__cause__, OSError)

    def test_zero_retries_fails_on_first_attempt(self):
        client = MasterClient(host="127.0.0.1", port=1, retries=0, backoff_s=0.01)
        with pytest.raises(MasterUnreachable, match="1 attempt") as err:
            client.ping()
        assert err.value.attempts == 1

    def test_transient_failures_then_success(self, monkeypatch):
        from repro.master import client as client_module

        calls = {"n": 0}
        sentinel = object()

        def flaky_connect(host, port, timeout):
            calls["n"] += 1
            if calls["n"] < 3:
                raise ConnectionRefusedError("not up yet")
            return sentinel

        slept = []
        monkeypatch.setattr(client_module, "connect", flaky_connect)
        monkeypatch.setattr(client_module.time, "sleep", slept.append)
        client = MasterClient(
            host="127.0.0.1", port=65000, retries=3, backoff_s=0.1, backoff_max_s=1.0
        )
        assert client._connect_with_retry() is sentinel
        assert calls["n"] == 3
        # exponential base schedule (0.1, 0.2) with a bounded jitter on top
        assert len(slept) == 2
        assert 0.1 <= slept[0] <= 0.2
        assert 0.2 <= slept[1] <= 0.4

    def test_backoff_jitter_is_deterministic(self):
        from repro.master.client import _retry_jitter

        first = [_retry_jitter(attempt, "127.0.0.1", 7777) for attempt in range(1, 5)]
        again = [_retry_jitter(attempt, "127.0.0.1", 7777) for attempt in range(1, 5)]
        assert first == again  # pure hash, no RNG: replays identically
        assert all(0.0 <= unit < 1.0 for unit in first)
        # and it actually varies across attempts/endpoints
        assert len(set(first)) > 1
        assert _retry_jitter(1, "127.0.0.1", 7777) != _retry_jitter(1, "10.0.0.2", 7777)

    def test_negative_retries_rejected(self):
        with pytest.raises(MasterError, match="non-negative"):
            MasterClient(host="127.0.0.1", port=1, retries=-1)

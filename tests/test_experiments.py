"""Integration tests for the experiment harness (one per paper table/figure).

These run at the 'smoke' scale: small datasets, few episodes.  They verify
the harness plumbing (structured results, rendering, claim extraction) and
the coarse qualitative claims; the calibrated quantitative shapes are
exercised by the benchmarks and by tests/test_calibration.py.
"""

import pytest

from repro.experiments import (
    EXPERIMENTS,
    ExperimentConfig,
    ExperimentContext,
    experiment_ids,
    fast_config,
    paper_scale_config,
    render_experiment,
    run_experiment,
    smoke_config,
)


class TestConfigs:
    def test_experiment_registry_covers_all_paper_artifacts(self):
        assert set(experiment_ids()) == {
            "fig1",
            "fig2",
            "fig3",
            "table1",
            "fig5",
            "fig6",
            "fig7",
            "fig8",
            "fig9",
        }

    def test_scale_presets(self):
        assert smoke_config().scale == "smoke"
        assert fast_config().scale == "fast"
        assert paper_scale_config().search_episodes == 500

    def test_fast_config_overrides(self):
        config = fast_config(search_episodes=10)
        assert config.search_episodes == 10

    def test_context_caches_artifacts(self, smoke_context):
        pool_a = smoke_context.isic_pool
        pool_b = smoke_context.isic_pool
        assert pool_a is pool_b
        value = smoke_context.cached("answer", lambda: 42)
        assert smoke_context.cached("answer", lambda: 0) == value

    def test_unknown_experiment_rejected(self, smoke_context):
        with pytest.raises(KeyError):
            run_experiment("fig99", smoke_context)


class TestObservationExperiments:
    def test_fig1_structure_and_claims(self, smoke_context):
        results = run_experiment("fig1", smoke_context)
        assert len(results["rows"]) == 10
        claims = results["claims"]
        assert claims["gender_is_nearly_fair"]
        assert claims["age_site_much_more_unfair_than_gender"]
        rendered = render_experiment("fig1", results)
        assert "Figure 1" in rendered and "U(age)" in rendered

    def test_fig3_structure_and_claims(self, smoke_context):
        results = run_experiment("fig3", smoke_context)
        assert len(results["rows"]) == 4
        fractions = [row["fraction"] for row in results["rows"]]
        assert sum(fractions) == pytest.approx(1.0)
        claims = results["claims"]
        assert claims["disagreement_is_substantial"]
        assert claims["oracle_beats_both_members_on_unprivileged"]
        assert "oracle union" in render_experiment("fig3", results)

    def test_fig2_structure(self, smoke_context):
        results = run_experiment("fig2", smoke_context)
        assert set(results["panels"]) == {"MobileNet_V2", "DenseNet121", "ResNet-18"}
        for rows in results["panels"].values():
            assert rows[0]["configuration"] == "vanilla"
            assert len(rows) == 5  # vanilla + D/L x age/site
        assert results["claims"]["total_cells"] == 12
        assert results["claims"]["no_method_improves_both"]


class TestAblationExperiments:
    def test_fig9_structure_and_claims(self, smoke_context):
        results = run_experiment("fig9", smoke_context)
        fig9a, fig9b = results["fig9a"], results["fig9b"]
        assert {row["training_data"] for row in fig9a["rows"]} == {"weighted", "original"}
        assert fig9a["claims"]["weighted_improves_site"] or fig9a["claims"]["weighted_improves_age"]
        assert [row["paired_models"] for row in fig9b["rows"]] == [1, 2, 3, 4]
        assert fig9b["claims"]["parameters_grow_with_paired_models"]
        rendered = render_experiment("fig9", results)
        assert "Figure 9(a)" in rendered and "Figure 9(b)" in rendered


@pytest.mark.slow
class TestSearchExperiments:
    """The experiments that embed full Muffin searches (slower, still smoke-scale)."""

    def test_table1_single_model(self, smoke_context):
        from repro.experiments import run_table1

        results = run_table1(smoke_context, models=["MobileNet_V3_Small"])
        assert len(results["rows"]) == 1
        row = results["rows"][0]
        assert "muffin_paired" in row and row["muffin_paired"]
        assert row["muffin_acc"] > 0.5
        rendered = render_experiment("table1", results)
        assert "Table I" in rendered

    def test_fig5_fig6_share_search(self, smoke_context):
        fig5 = run_experiment("fig5", smoke_context)
        assert len(fig5["existing_rows"]) == 10
        assert len(fig5["muffin_rows"]) >= 3
        fig6 = run_experiment("fig6", smoke_context)
        assert set(fig6["panels"]) == {"age", "site"}
        assert len(fig6["panels"]["site"]) == 9
        assert len(fig6["members"]) >= 2

    def test_fig7_fig8_fitzpatrick(self, smoke_context):
        fig7 = run_experiment("fig7", smoke_context)
        assert len(fig7["existing_rows"]) >= 3
        assert any("Muffin" in row["model"] for row in fig7["muffin_rows"])
        fig8 = run_experiment("fig8", smoke_context)
        assert len(fig8["rows"]) == 6
        assert {"skin_tone", "ResNet-18", "Muffin-Balance", "delta"} <= set(fig8["rows"][0])

"""Shared fixtures for the test suite.

Expensive artefacts (datasets, splits, trained model pools) are built once
per session at a reduced scale; individual tests treat them as read-only.
Tests that need to mutate models clone them instead.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.data import (
    SyntheticFitzpatrick17K,
    SyntheticISIC2019,
    split_dataset,
)
from repro.zoo import ModelPool, TrainConfig

#: Architectures used by the small test pool: both families of the paper's
#: Figure 2/3 pairs plus two small models, so baseline and fusing tests can
#: exercise the same pairs the paper discusses.
TEST_POOL_ARCHS = (
    "ShuffleNet_V2_X1_0",
    "MobileNet_V3_Small",
    "MobileNet_V3_Large",
    "DenseNet121",
    "ResNet-18",
)

FITZ_POOL_ARCHS = ("ShuffleNet_V2_X1_0", "MobileNet_V3_Large", "ResNet-18")


@pytest.fixture(autouse=True, scope="session")
def _tsan_session_guard():
    """Under ``REPRO_TSAN=1``, fail the session if the runtime checker saw
    lock-order cycles or shared-state discipline violations."""
    yield
    if os.environ.get("REPRO_TSAN") != "1":
        return
    from repro.analysis import runtime

    if not runtime.is_active():
        return
    problems = runtime.report()
    assert not problems, "REPRO_TSAN found concurrency problems:\n" + "\n".join(problems)


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def isic_dataset() -> SyntheticISIC2019:
    return SyntheticISIC2019(num_samples=3000, seed=2019)


@pytest.fixture(scope="session")
def isic_split(isic_dataset):
    return split_dataset(isic_dataset, seed=1)


@pytest.fixture(scope="session")
def train_config() -> TrainConfig:
    return TrainConfig(epochs=30, batch_size=256, lr=0.1, seed=0)


@pytest.fixture(scope="session")
def pool(isic_split, train_config) -> ModelPool:
    return ModelPool(
        isic_split,
        architecture_names=TEST_POOL_ARCHS,
        train_config=train_config,
        seed=0,
    ).build()


@pytest.fixture(scope="session")
def fused_model(pool):
    """A deterministic fused model over three pool members (untrained head
    weights are fine for serving-path tests: the forward is deterministic)."""
    from repro.core import FusedModel
    from repro.core.search_space import FusingCandidate

    candidate = FusingCandidate(
        model_names=("MobileNet_V3_Small", "ResNet-18", "DenseNet121"),
        hidden_sizes=(16,),
        activation="relu",
    )
    return FusedModel.from_candidate(candidate, pool.models(candidate.model_names), seed=7)


@pytest.fixture(scope="session")
def serving_schema(isic_dataset):
    from repro.data import FeatureSchema

    return FeatureSchema.from_dataset(isic_dataset)


@pytest.fixture(scope="session")
def fitz_dataset() -> SyntheticFitzpatrick17K:
    return SyntheticFitzpatrick17K(num_samples=2500, seed=1717)


@pytest.fixture(scope="session")
def fitz_split(fitz_dataset):
    return split_dataset(fitz_dataset, seed=2)


@pytest.fixture(scope="session")
def fitz_pool(fitz_split, train_config) -> ModelPool:
    return ModelPool(
        fitz_split,
        architecture_names=FITZ_POOL_ARCHS,
        train_config=train_config,
        seed=1,
    ).build()


@pytest.fixture(scope="session")
def smoke_context():
    """A tiny ExperimentContext for harness integration tests."""
    from repro.experiments import ExperimentContext, smoke_config

    return ExperimentContext(smoke_config())

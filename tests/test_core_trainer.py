"""Unit tests for the muffin-head trainer (Equation 2 training)."""

import numpy as np
import pytest

from repro.core import (
    FusedModel,
    FusingCandidate,
    HeadTrainConfig,
    build_proxy_dataset,
    train_head,
)


@pytest.fixture()
def fused(pool):
    candidate = FusingCandidate(
        model_names=("ResNet-18", "DenseNet121"), hidden_sizes=(16, 10), activation="relu"
    )
    return FusedModel.from_candidate(candidate, pool.models(candidate.model_names), seed=0)


@pytest.fixture(scope="module")
def proxy(isic_split):
    return build_proxy_dataset(isic_split.train, ["age", "site"])


class TestHeadTrainConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            HeadTrainConfig(epochs=0)
        with pytest.raises(ValueError):
            HeadTrainConfig(loss="hinge")
        with pytest.raises(ValueError):
            HeadTrainConfig(optimizer="rmsprop")

    def test_rejects_non_positive_lr(self):
        with pytest.raises(ValueError):
            HeadTrainConfig(lr=0.0)
        with pytest.raises(ValueError):
            HeadTrainConfig(lr=-1e-3)

    def test_rejects_negative_weight_decay(self):
        with pytest.raises(ValueError):
            HeadTrainConfig(weight_decay=-1e-4)
        HeadTrainConfig(weight_decay=0.0)  # zero decay is valid


class TestTrainHead:
    def test_loss_decreases(self, fused, proxy):
        result = train_head(fused, proxy, HeadTrainConfig(epochs=15, seed=0))
        assert len(result.losses) == 15
        assert result.losses[-1] < result.losses[0]
        assert result.proxy_size == len(proxy)

    def test_trained_head_beats_untrained_on_disagreements(self, pool, proxy, isic_split):
        candidate = FusingCandidate(
            model_names=("ResNet-18", "DenseNet121"), hidden_sizes=(16, 10), activation="relu"
        )
        models = pool.models(candidate.model_names)
        untrained = FusedModel.from_candidate(candidate, models, seed=0)
        trained = FusedModel.from_candidate(candidate, models, seed=0)
        train_head(trained, proxy, HeadTrainConfig(epochs=25, seed=0))
        test = isic_split.test
        untrained_acc = untrained.evaluate(test).accuracy
        trained_acc = trained.evaluate(test).accuracy
        assert trained_acc > untrained_acc - 0.02
        # Head-only predictions (no consensus shortcut) must clearly improve.
        untrained_head = untrained.evaluate(test, use_consensus_shortcut=False).accuracy
        trained_head = trained.evaluate(test, use_consensus_shortcut=False).accuracy
        assert trained_head > untrained_head + 0.2

    def test_precomputed_body_outputs_match(self, pool, proxy):
        candidate = FusingCandidate(
            model_names=("ResNet-18", "DenseNet121"), hidden_sizes=(12,), activation="tanh"
        )
        models = pool.models(candidate.model_names)
        a = FusedModel.from_candidate(candidate, models, seed=1)
        b = FusedModel.from_candidate(candidate, models, seed=1)
        outputs = a.body.forward(proxy.dataset, proxy.indices)
        result_a = train_head(a, proxy, HeadTrainConfig(epochs=5, seed=2), body_outputs=outputs)
        result_b = train_head(b, proxy, HeadTrainConfig(epochs=5, seed=2))
        np.testing.assert_allclose(result_a.losses, result_b.losses, rtol=1e-8)

    def test_bad_body_output_shape_rejected(self, fused, proxy):
        with pytest.raises(ValueError):
            train_head(fused, proxy, HeadTrainConfig(epochs=1), body_outputs=np.zeros((3, 3)))

    def test_weighted_ce_loss_variant(self, fused, proxy):
        result = train_head(fused, proxy, HeadTrainConfig(epochs=5, loss="weighted_ce", seed=0))
        assert result.losses[-1] < result.losses[0]

    def test_sgd_optimizer_variant(self, fused, proxy):
        result = train_head(
            fused, proxy, HeadTrainConfig(epochs=5, optimizer="sgd", lr=0.05, seed=0)
        )
        assert np.isfinite(result.losses).all()

    def test_result_to_dict(self, fused, proxy):
        result = train_head(fused, proxy, HeadTrainConfig(epochs=2, seed=0))
        payload = result.to_dict()
        assert payload["epochs"] == 2
        assert payload["proxy_size"] == len(proxy)


class TestTrainHeadOnOutputs:
    """The executor-safe core: pure arrays in, same trajectory as train_head."""

    def test_matches_train_head(self, pool, proxy):
        from repro.core import train_head_on_outputs

        candidate = FusingCandidate(
            model_names=("ResNet-18", "DenseNet121"), hidden_sizes=(16,), activation="relu"
        )
        models = pool.models(candidate.model_names)
        via_fused = FusedModel.from_candidate(candidate, models, seed=3)
        standalone = FusedModel.from_candidate(candidate, models, seed=3)
        outputs = via_fused.body.forward(proxy.dataset, proxy.indices)

        config = HeadTrainConfig(epochs=5, seed=4)
        result_fused = train_head(via_fused, proxy, config, body_outputs=outputs)
        result_standalone = train_head_on_outputs(
            standalone.head,
            outputs,
            proxy.dataset.labels[proxy.indices],
            proxy.sample_weights,
            standalone.num_classes,
            config,
        )
        assert result_fused.losses == result_standalone.losses
        for key, values in via_fused.head.state_dict().items():
            np.testing.assert_array_equal(values, standalone.head.state_dict()[key])

    def test_shape_validation(self, pool, proxy):
        from repro.core import MuffinHead, train_head_on_outputs

        head = MuffinHead(body_output_dim=16, num_classes=8, hidden_sizes=(8,), seed=0)
        with pytest.raises(ValueError):
            train_head_on_outputs(
                head,
                np.zeros((3, 16)),
                np.zeros(5, dtype=np.int64),
                np.ones(5),
                8,
                HeadTrainConfig(epochs=1),
            )
        with pytest.raises(ValueError):
            train_head_on_outputs(
                head,
                np.zeros((5, 16)),
                np.zeros(5, dtype=np.int64),
                np.ones(3),
                8,
                HeadTrainConfig(epochs=1),
            )

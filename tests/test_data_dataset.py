"""Unit tests for repro.data.dataset (FairnessDataset container)."""

import numpy as np
import pytest

from repro.data import AttributeSet, AttributeSpec, FairnessDataset, distortion_key


def make_dataset(n=40, d=6, seed=0):
    rng = np.random.default_rng(seed)
    attrs = AttributeSet(
        [
            AttributeSpec(name="alpha", groups=("a0", "a1"), unprivileged=("a1",)),
            AttributeSpec(name="beta", groups=("b0", "b1", "b2"), unprivileged=("b2",)),
        ]
    )
    return FairnessDataset(
        name="toy",
        num_classes=3,
        labels=rng.integers(0, 3, size=n),
        attribute_groups={
            "alpha": rng.integers(0, 2, size=n),
            "beta": rng.integers(0, 3, size=n),
        },
        attributes=attrs,
        components={
            "signal": rng.normal(size=(n, d)),
            "noise": rng.normal(size=(n, d)),
            distortion_key("alpha"): rng.normal(size=(n, d)),
            distortion_key("beta"): rng.normal(size=(n, d)),
        },
    )


class TestConstruction:
    def test_basic_properties(self):
        ds = make_dataset()
        assert len(ds) == 40
        assert ds.feature_dim == 6
        assert ds.num_classes == 3
        assert "toy" in repr(ds)
        assert len(ds.class_names) == 3

    def test_validation_errors(self):
        ds = make_dataset()
        with pytest.raises(ValueError):
            FairnessDataset(
                name="bad",
                num_classes=1,
                labels=ds.labels,
                attribute_groups=ds.attribute_groups,
                attributes=ds.attributes,
                components=ds.components,
            )
        with pytest.raises(KeyError):
            FairnessDataset(
                name="bad",
                num_classes=3,
                labels=ds.labels,
                attribute_groups={"alpha": ds.attribute_groups["alpha"]},
                attributes=ds.attributes,
                components=ds.components,
            )
        with pytest.raises(KeyError):
            FairnessDataset(
                name="bad",
                num_classes=3,
                labels=ds.labels,
                attribute_groups=ds.attribute_groups,
                attributes=ds.attributes,
                components={"noise": ds.components["noise"]},
            )
        with pytest.raises(ValueError):
            FairnessDataset(
                name="bad",
                num_classes=3,
                labels=np.array([5] * 40),
                attribute_groups=ds.attribute_groups,
                attributes=ds.attributes,
                components=ds.components,
            )

    def test_mismatched_component_shapes_rejected(self):
        ds = make_dataset()
        bad_components = dict(ds.components)
        bad_components["signal"] = np.zeros((len(ds), 99))
        bad_components["noise"] = np.zeros((len(ds), 6))
        with pytest.raises(ValueError):
            ds.with_components(bad_components)

    def test_class_names_length_checked(self):
        ds = make_dataset()
        with pytest.raises(ValueError):
            FairnessDataset(
                name="bad",
                num_classes=3,
                labels=ds.labels,
                attribute_groups=ds.attribute_groups,
                attributes=ds.attributes,
                components=ds.components,
                class_names=("only-one",),
            )


class TestGroups:
    def test_group_masks_partition_dataset(self):
        ds = make_dataset()
        spec = ds.attributes["beta"]
        total = sum(ds.group_mask("beta", g).sum() for g in spec.groups)
        assert total == len(ds)

    def test_group_indices_consistent_with_mask(self):
        ds = make_dataset()
        idx = ds.group_indices("alpha", "a1")
        mask = ds.group_mask("alpha", "a1")
        np.testing.assert_array_equal(np.where(mask)[0], idx)

    def test_unprivileged_mask_single_attribute(self):
        ds = make_dataset()
        mask = ds.unprivileged_mask("alpha")
        np.testing.assert_array_equal(mask, ds.group_ids("alpha") == 1)

    def test_unprivileged_mask_any_attribute_is_union(self):
        ds = make_dataset()
        union = ds.unprivileged_mask("alpha") | ds.unprivileged_mask("beta")
        np.testing.assert_array_equal(ds.unprivileged_mask(), union)

    def test_privileged_mask_is_complement(self):
        ds = make_dataset()
        np.testing.assert_array_equal(ds.privileged_mask(), ~ds.unprivileged_mask())

    def test_group_sizes_sum_to_n(self):
        ds = make_dataset()
        assert sum(ds.group_sizes("beta").values()) == len(ds)

    def test_unknown_attribute_raises(self):
        with pytest.raises(KeyError):
            make_dataset().group_ids("missing")

    def test_class_counts(self):
        ds = make_dataset()
        assert ds.class_counts().sum() == len(ds)


class TestComposeFeatures:
    def test_default_exposes_everything(self):
        ds = make_dataset()
        composed = ds.compose_features()
        expected = (
            ds.components["signal"]
            + ds.components["noise"]
            + ds.components[distortion_key("alpha")]
            + ds.components[distortion_key("beta")]
        )
        np.testing.assert_allclose(composed, expected)

    def test_zero_sensitivity_removes_distortion(self):
        ds = make_dataset()
        composed = ds.compose_features(sensitivity={"alpha": 0.0, "beta": 0.0})
        np.testing.assert_allclose(composed, ds.components["signal"] + ds.components["noise"])

    def test_gains_scale_components(self):
        ds = make_dataset()
        composed = ds.compose_features(
            sensitivity={"alpha": 0.0, "beta": 0.0}, signal_gain=2.0, noise_gain=0.0
        )
        np.testing.assert_allclose(composed, 2.0 * ds.components["signal"])

    def test_indices_subset(self):
        ds = make_dataset()
        idx = np.array([0, 5, 7])
        composed = ds.compose_features(indices=idx)
        assert composed.shape == (3, ds.feature_dim)


class TestSubsetAndBatches:
    def test_subset_copies_rows(self):
        ds = make_dataset()
        idx = np.arange(10)
        sub = ds.subset(idx)
        assert len(sub) == 10
        np.testing.assert_array_equal(sub.labels, ds.labels[:10])
        sub.components["signal"][0, 0] = 1e9
        assert ds.components["signal"][0, 0] != 1e9

    def test_with_components_replaces_features(self):
        ds = make_dataset()
        comps = {k: np.zeros_like(v) for k, v in ds.components.items()}
        replaced = ds.with_components(comps)
        assert replaced.compose_features().sum() == 0.0
        assert len(replaced) == len(ds)

    def test_iter_batches_covers_everything_once(self):
        ds = make_dataset()
        features = ds.compose_features()
        seen = []
        for batch, weights in ds.iter_batches(16, features, shuffle=True, rng=np.random.default_rng(0)):
            assert weights is None
            seen.extend(batch.indices.tolist())
        assert sorted(seen) == list(range(len(ds)))

    def test_iter_batches_respects_weights(self):
        ds = make_dataset()
        features = ds.compose_features()
        sample_weights = np.arange(len(ds), dtype=float)
        for batch, weights in ds.iter_batches(8, features, shuffle=False, sample_weights=sample_weights):
            np.testing.assert_allclose(weights, sample_weights[batch.indices])

    def test_iter_batches_validation(self):
        ds = make_dataset()
        with pytest.raises(ValueError):
            list(ds.iter_batches(0, ds.compose_features()))
        with pytest.raises(ValueError):
            list(ds.iter_batches(4, np.zeros((3, ds.feature_dim))))

    def test_summary_structure(self):
        summary = make_dataset().summary()
        assert summary["num_samples"] == 40
        assert set(summary["group_sizes"]) == {"alpha", "beta"}
        assert len(summary["class_counts"]) == 3

"""The tracing half of repro.obs: spans, trees, the CLI, the session scope."""

from __future__ import annotations

import io
import json

import pytest

import repro.obs.trace as trace_mod
from repro.obs import (
    METRICS,
    TraceWriter,
    active_writer,
    install,
    load_spans,
    render_tree,
    session,
    span,
    uninstall,
)
from repro.obs.trace import build_tree, main as trace_main


@pytest.fixture(autouse=True)
def clean_tracer():
    """No test leaks an installed writer into the next one."""
    yield
    uninstall()


def _spans_from(buffer: io.StringIO):
    buffer.seek(0)
    return load_spans(buffer)


# ----------------------------------------------------------------------
# Recording
# ----------------------------------------------------------------------
class TestSpanRecording:
    def test_span_without_writer_is_a_noop(self):
        assert active_writer() is None
        with span("anything", attr=1) as span_id:
            assert span_id is None

    def test_nesting_links_parent_ids(self):
        buffer = io.StringIO()
        install(TraceWriter(buffer))
        with span("outer") as outer_id:
            with span("inner-a") as a_id:
                pass
            with span("inner-b"):
                pass
        rows = _spans_from(buffer)
        by_name = {row["name"]: row for row in rows}
        assert by_name["outer"]["parent_id"] is None
        assert by_name["inner-a"]["parent_id"] == outer_id
        assert by_name["inner-b"]["parent_id"] == outer_id
        assert by_name["inner-a"]["span_id"] == a_id
        # spans close inner-first, so children precede parents in the file
        assert [row["name"] for row in rows] == ["inner-a", "inner-b", "outer"]

    def test_ids_are_sequential_from_one(self):
        buffer = io.StringIO()
        install(TraceWriter(buffer))
        with span("a"):
            with span("b"):
                pass
        ids = sorted(row["span_id"] for row in _spans_from(buffer))
        assert ids == [1, 2]

    def test_attrs_ride_along_and_floats_are_rounded(self):
        buffer = io.StringIO()
        install(TraceWriter(buffer))
        with span("work", batch=3, ratio=0.123456789, tag="x"):
            pass
        row = _spans_from(buffer)[0]
        assert row["batch"] == 3
        assert row["ratio"] == 0.123457
        assert row["tag"] == "x"
        assert row["duration_s"] >= 0.0
        assert row["event"] == "span"

    def test_writer_to_file_appends_jsonl(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        writer = TraceWriter(path)
        install(writer)
        with span("one"):
            pass
        uninstall()
        writer.close()
        rows = load_spans(path)
        assert [row["name"] for row in rows] == ["one"]

    def test_malformed_lines_are_skipped(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text(
            'not json\n'
            '{"event": "span", "name": "ok", "span_id": 1, "parent_id": null, '
            '"start_s": 0.0, "duration_s": 0.5}\n'
            '{"event": "fairness-window"}\n'
            '{"event": "span", "torn": tru'
        )
        rows = load_spans(path)
        assert [row["name"] for row in rows] == ["ok"]


# ----------------------------------------------------------------------
# Tree building and rendering
# ----------------------------------------------------------------------
def _rows():
    return [
        {"event": "span", "name": "child", "span_id": 2, "parent_id": 1,
         "start_s": 0.1, "duration_s": 0.3},
        {"event": "span", "name": "root", "span_id": 1, "parent_id": None,
         "start_s": 0.0, "duration_s": 1.0},
        {"event": "span", "name": "late-child", "span_id": 3, "parent_id": 1,
         "start_s": 0.5, "duration_s": 0.2, "batch": 7},
    ]


class TestTree:
    def test_build_tree_nests_and_computes_self_time(self):
        roots = build_tree(_rows())
        assert len(roots) == 1
        root = roots[0]
        assert root["name"] == "root"
        assert [child["name"] for child in root["children"]] == ["child", "late-child"]
        assert root["self_s"] == pytest.approx(0.5)  # 1.0 - (0.3 + 0.2)
        assert root["children"][0]["self_s"] == pytest.approx(0.3)

    def test_orphans_are_promoted_to_roots(self):
        rows = [{"event": "span", "name": "lost", "span_id": 9, "parent_id": 4,
                 "start_s": 0.0, "duration_s": 0.1}]
        roots = build_tree(rows)
        assert [root["name"] for root in roots] == ["lost"]

    def test_render_tree_shows_totals_and_attrs(self):
        text = render_tree(_rows())
        lines = text.splitlines()
        assert lines[0].startswith("root  total 1.000000s  self 0.500000s")
        assert lines[1].startswith("  child  total 0.300000s")
        assert "batch=7" in lines[2]

    def test_render_tree_empty(self):
        assert render_tree([]) == "(no spans)"


# ----------------------------------------------------------------------
# The CLI
# ----------------------------------------------------------------------
class TestCli:
    @pytest.fixture
    def trace_file(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with open(path, "w", encoding="utf-8") as handle:
            for row in _rows():
                handle.write(json.dumps(row) + "\n")
        return path

    def test_text_rendering(self, trace_file, capsys):
        assert trace_main([str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert f"{trace_file}: 3 spans" in out
        assert "root  total 1.000000s" in out

    def test_json_rendering(self, trace_file, capsys):
        assert trace_main([str(trace_file), "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document[0]["name"] == "root"
        assert document[0]["children"][1]["batch"] == 7

    def test_main_module_dispatches_trace(self, trace_file, capsys):
        from repro.__main__ import main

        assert main(["trace", str(trace_file)]) == 0
        assert "3 spans" in capsys.readouterr().out


# ----------------------------------------------------------------------
# The session scope pipelines wrap around run()
# ----------------------------------------------------------------------
class TestSession:
    def test_session_installs_and_restores(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        assert active_writer() is None
        assert METRICS.enabled is False
        with session(trace_path=str(path), metrics_enabled=True):
            assert active_writer() is not None
            assert METRICS.enabled is True
            with span("inside"):
                pass
        assert active_writer() is None
        assert METRICS.enabled is False
        assert [row["name"] for row in load_spans(path)] == ["inside"]

    def test_session_restores_previous_writer(self):
        buffer = io.StringIO()
        outer = install(TraceWriter(buffer))
        with session(trace_path=None, metrics_enabled=False):
            assert active_writer() is outer
        assert active_writer() is outer

    def test_nested_session_restores_outer_writer(self, tmp_path):
        outer_path = tmp_path / "outer.jsonl"
        inner_path = tmp_path / "inner.jsonl"
        with session(trace_path=str(outer_path)):
            outer_writer = active_writer()
            with session(trace_path=str(inner_path)):
                assert active_writer() is not outer_writer
                with span("inner-work"):
                    pass
            assert active_writer() is outer_writer
        assert trace_mod._writer is None
        assert [row["name"] for row in load_spans(inner_path)] == ["inner-work"]

"""Unit tests for the model-fusing structure (muffin body + head)."""

import numpy as np
import pytest

from repro.core import (
    FusedModel,
    FusingCandidate,
    MuffinBody,
    MuffinHead,
    consensus_arbitrate,
    oracle_union_predictions,
)
from repro.nn import Tensor


@pytest.fixture(scope="module")
def body(pool):
    return MuffinBody(pool.models(["ResNet-18", "DenseNet121"]))


class TestMuffinBody:
    def test_output_dim(self, body, pool):
        assert body.output_dim == 2 * pool.split.test.num_classes
        assert len(body) == 2
        assert body.model_names == ["ResNet-18", "DenseNet121"]

    def test_forward_concatenates_probabilities(self, body, pool):
        test = pool.split.test
        output = body.forward(test, indices=np.arange(10))
        assert output.shape == (10, body.output_dim)
        # Each member block is a probability distribution.
        c = test.num_classes
        np.testing.assert_allclose(output[:, :c].sum(axis=1), np.ones(10), atol=1e-9)
        np.testing.assert_allclose(output[:, c:].sum(axis=1), np.ones(10), atol=1e-9)

    def test_consensus_mask(self, body, pool):
        test = pool.split.test
        consensus = body.consensus(test)
        assert consensus["member_predictions"].shape == (2, len(test))
        agree = consensus["agree"]
        member = consensus["member_predictions"]
        np.testing.assert_array_equal(agree, member[0] == member[1])

    def test_num_parameters_sums_members(self, body):
        assert body.num_parameters == 11_181_642 + 6_961_928

    def test_untrained_member_rejected(self, pool):
        untrained = pool.get("ResNet-18").clone_untrained(label="u")
        with pytest.raises(ValueError):
            MuffinBody([untrained])

    def test_empty_body_rejected(self):
        with pytest.raises(ValueError):
            MuffinBody([])


class TestMuffinHead:
    def test_forward_shape(self):
        head = MuffinHead(body_output_dim=16, num_classes=8, hidden_sizes=(16, 12), activation="relu")
        out = head(Tensor(np.zeros((5, 16))))
        assert out.shape == (5, 8)

    def test_layer_description_matches_paper_notation(self):
        head = MuffinHead(16, 8, hidden_sizes=(16, 18, 12))
        assert head.layer_description(8) == [16, 18, 12, 8]

    def test_parameters_trainable(self):
        head = MuffinHead(16, 8, hidden_sizes=(10,))
        assert head.num_parameters() == 16 * 10 + 10 + 10 * 8 + 8


class TestFusedModel:
    @pytest.fixture(scope="class")
    def fused(self, pool):
        candidate = FusingCandidate(
            model_names=("ResNet-18", "DenseNet121"), hidden_sizes=(16, 12), activation="relu"
        )
        return FusedModel.from_candidate(candidate, pool.models(candidate.model_names), seed=0)

    def test_from_candidate_structure(self, fused, pool):
        assert fused.num_classes == pool.split.test.num_classes
        assert fused.body.output_dim == 2 * fused.num_classes
        assert fused.trainable_parameters == fused.head.num_parameters()
        assert fused.num_parameters == fused.body.num_parameters + fused.trainable_parameters

    def test_predict_shapes(self, fused, pool):
        test = pool.split.test
        detailed = fused.predict_detailed(test)
        assert detailed.predictions.shape == (len(test),)
        assert detailed.consensus_mask.shape == (len(test),)
        assert 0.0 <= detailed.arbitrated_fraction <= 1.0

    def test_consensus_shortcut_keeps_agreements(self, fused, pool):
        test = pool.split.test
        detailed = fused.predict_detailed(test, use_consensus_shortcut=True)
        agree = detailed.consensus_mask
        np.testing.assert_array_equal(
            detailed.predictions[agree], detailed.consensus_predictions[agree]
        )
        # Disagreements are decided by the head.
        np.testing.assert_array_equal(
            detailed.predictions[~agree], detailed.head_predictions[~agree]
        )

    def test_without_shortcut_head_decides_everything(self, fused, pool):
        test = pool.split.test
        detailed = fused.predict_detailed(test, use_consensus_shortcut=False)
        np.testing.assert_array_equal(detailed.predictions, detailed.head_predictions)

    def test_predict_detailed_matches_shared_arbitration_helper(self, fused, pool):
        """predict_detailed and the search loop share consensus_arbitrate."""
        test = pool.split.test
        body_outputs = fused.body.forward(test)
        head_predictions = fused.head(Tensor(body_outputs)).data.argmax(axis=-1)
        helper = consensus_arbitrate(body_outputs, head_predictions, fused.num_classes)
        detailed = fused.predict_detailed(test)
        np.testing.assert_array_equal(helper.predictions, detailed.predictions)
        np.testing.assert_array_equal(helper.consensus_mask, detailed.consensus_mask)
        np.testing.assert_array_equal(helper.head_predictions, detailed.head_predictions)
        np.testing.assert_array_equal(
            helper.consensus_predictions, detailed.consensus_predictions
        )

    def test_consensus_arbitrate_validates_shapes(self, fused, pool):
        body_outputs = fused.body.forward(pool.split.test, indices=np.arange(8))
        with pytest.raises(ValueError):
            consensus_arbitrate(body_outputs, np.zeros(5, dtype=np.int64), fused.num_classes)
        with pytest.raises(ValueError):
            consensus_arbitrate(
                body_outputs[:, :-1], np.zeros(8, dtype=np.int64), fused.num_classes
            )

    def test_evaluate_returns_fairness_evaluation(self, fused, pool):
        evaluation = fused.evaluate(pool.split.test, attributes=["age", "site"])
        assert set(evaluation.unfairness) == {"age", "site"}
        assert 0.0 <= evaluation.accuracy <= 1.0

    def test_repr(self, fused):
        assert "ResNet-18" in repr(fused)


class TestOracleUnion:
    def test_oracle_picks_correct_member(self):
        labels = np.array([0, 1, 2, 3])
        member_a = np.array([0, 9, 2, 9])
        member_b = np.array([9, 1, 9, 9])
        oracle = oracle_union_predictions(np.stack([member_a, member_b]), labels)
        np.testing.assert_array_equal(oracle[:3], labels[:3])
        assert oracle[3] == member_a[3]  # both wrong -> first member

    def test_oracle_accuracy_upper_bounds_members(self, pool):
        test = pool.split.test
        a = pool.get("ResNet-18").predict(test)
        b = pool.get("DenseNet121").predict(test)
        oracle = oracle_union_predictions(np.stack([a, b]), test.labels)
        oracle_acc = (oracle == test.labels).mean()
        assert oracle_acc >= max((a == test.labels).mean(), (b == test.labels).mean())

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            oracle_union_predictions(np.zeros(5), np.zeros(5, dtype=int))

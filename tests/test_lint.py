"""The ``repro lint`` engine: rules, suppression, selection, CLI, self-check.

The fixture files under ``tests/lint_fixtures/`` are *known-bad* snippets —
each rule family must fire on its fixture with the expected codes — while
the live tree must come back with zero findings (the linter gates CI on
exactly that).
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis.core import (
    REPORT_SCHEMA_VERSION,
    LintConfigError,
    Project,
    SourceFile,
    run_lint,
)
from repro.analysis.hash_contract import HashContractRule
from repro.analysis.registry_audit import (
    RegistryConsistencyRule,
    audit_registries,
    audit_spec_file,
    registry_summary,
)
from repro.analysis.rules import (
    AtomicPersistenceRule,
    DtypeDisciplineRule,
    FailureDisciplineRule,
    LockHygieneRule,
    TelemetryDisciplineRule,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
FIXTURES = REPO_ROOT / "tests" / "lint_fixtures"
GOLDEN = FIXTURES / "golden_report.json"


def lint_fixture(name, **kwargs):
    return run_lint(root=REPO_ROOT, paths=[FIXTURES / name], **kwargs)


def fixture_source(name: str, rel: str) -> SourceFile:
    """Parse a fixture under a *forced* repo-relative path, so path-scoped
    rules (RL4 durable modules, RL6 serve/master) treat it as in scope."""
    path = FIXTURES / name
    return SourceFile(path, rel, text=path.read_text())


# ----------------------------------------------------------------------
# Rule families on known-bad fixtures
# ----------------------------------------------------------------------
class TestDeterminismRule:
    def test_fires_on_every_violation_kind(self):
        report = lint_fixture("bad_determinism.py", select=["RL1"])
        lines = {f.line for f in report.findings}
        assert lines == {11, 15, 16, 20, 24}
        assert all(f.code == "RL1" for f in report.findings)

    def test_messages_explain_the_violation(self):
        report = lint_fixture("bad_determinism.py", select=["RL1"])
        text = report.render_text()
        assert "unseeded np.random.default_rng()" in text
        assert "hidden global RandomState" in text
        assert "stdlib random.random()" in text
        assert "time.time" in text

    def test_inline_suppression_silences_the_line(self):
        report = lint_fixture("bad_determinism.py", select=["RL1"])
        # line 29 carries ``# repro-lint: disable=RL1`` — must not appear
        assert 29 not in {f.line for f in report.findings}

    def test_file_suppression_silences_everything(self):
        report = lint_fixture("suppressed_file.py", select=["RL1"])
        assert report.ok


class TestExecutorSafetyRule:
    def test_fires_on_lambda_closure_and_bound_method(self):
        report = lint_fixture("bad_executor.py", select=["RL3"])
        messages = [f.message for f in report.findings]
        assert len(messages) == 3
        assert any("lambda" in m for m in messages)
        assert any("closure 'scaled'" in m for m in messages)
        assert any("bound method" in m for m in messages)

    def test_module_level_functions_are_fine(self):
        report = lint_fixture("bad_executor.py", select=["RL3"])
        # the module-level `_square` dispatch at the bottom is not flagged
        assert all("_square" not in f.message for f in report.findings)


class TestAtomicPersistenceRule:
    def _findings(self):
        source = fixture_source("bad_persistence.py", "src/repro/master/db.py")
        project = Project(root=REPO_ROOT)
        return list(AtomicPersistenceRule().check_file(source, project))

    def test_fires_on_truncating_writes(self):
        messages = [f.message for f in self._findings()]
        assert len(messages) == 4
        assert any("open(..., 'w')" in m for m in messages)
        assert any("'w+'" in m for m in messages)
        assert any("json.dump()" in m for m in messages)
        assert any("write_text" in m for m in messages)

    def test_out_of_scope_paths_are_ignored(self):
        source = fixture_source("bad_persistence.py", "src/repro/core/search.py")
        project = Project(root=REPO_ROOT)
        assert list(AtomicPersistenceRule().check_file(source, project)) == []

    def test_reads_are_not_flagged(self):
        # the fixture opens for read on line 14; no finding lands there
        assert 14 not in {f.line for f in self._findings()}


class TestLockHygieneRule:
    def _findings(self, rel="src/repro/serve/server.py"):
        source = fixture_source("bad_locks.py", rel)
        project = Project(root=REPO_ROOT)
        return list(LockHygieneRule().check_file(source, project))

    def test_fires_on_blocking_calls_under_lock(self):
        messages = [f.message for f in self._findings()]
        assert len(messages) == 4
        assert any("time.sleep" in m for m in messages)
        assert any("os.fsync" in m for m in messages)
        assert any("sendall" in m for m in messages)
        assert any("process.wait" in m for m in messages)

    def test_io_named_locks_are_exempt(self):
        assert all("_send_lock" not in f.message for f in self._findings())

    def test_deferred_and_condition_wait_are_fine(self):
        lines = {f.line for f in self._findings()}
        # `later()` body and `cond.wait()` must not be flagged
        assert not any(line >= 36 for line in lines)

    def test_out_of_scope_paths_are_ignored(self):
        assert self._findings(rel="src/repro/core/search.py") == []


class TestDtypeDisciplineRule:
    def _findings(self, rel="src/repro/nn/fused.py"):
        source = fixture_source("bad_dtypes.py", rel)
        project = Project(root=REPO_ROOT)
        return list(DtypeDisciplineRule().check_file(source, project))

    def test_fires_on_every_dtype_less_factory(self):
        findings = self._findings()
        assert all(f.code == "RL7" for f in findings)
        messages = [f.message for f in findings]
        assert any("np.asarray()" in m for m in messages)
        assert any("np.zeros()" in m for m in messages)
        assert any("np.empty()" in m for m in messages)

    def test_pinned_dtypes_and_untracked_factories_are_fine(self):
        # every bare factory fires — sloppy() lines 12-16 plus the (later
        # suppressed) line 24; nothing with a kwarg/positional dtype or an
        # untracked factory (np.arange) does
        assert {f.line for f in self._findings()} == {12, 13, 14, 15, 16, 24}

    def test_suppression_comment_is_honoured(self):
        # line 24 carries ``# repro-lint: disable=RL7``; run_lint's
        # suppression pass (which check_file bypasses) must drop it
        source = fixture_source("bad_dtypes.py", "src/repro/nn/fused.py")
        assert source.is_suppressed("RL7", 24)
        assert not source.is_suppressed("RL7", 12)

    def test_fixture_path_itself_is_out_of_scope(self):
        report = run_lint(
            root=REPO_ROOT,
            paths=[FIXTURES / "bad_dtypes.py"],
            select=["RL7"],
        )
        # under its real tests/lint_fixtures path the file is not hot
        assert report.ok

    def test_out_of_scope_paths_are_ignored(self):
        assert self._findings(rel="src/repro/core/search.py") == []

    def test_live_hot_modules_are_clean(self):
        for rel in DtypeDisciplineRule.HOT_MODULES:
            report = run_lint(root=REPO_ROOT, paths=[REPO_ROOT / rel], select=["RL7"])
            assert report.ok, report.render_text()


class TestTelemetryDisciplineRule:
    def test_wallclock_durations_fire_everywhere(self):
        # run through the engine (suppression honoured); the fixture's own
        # tests/ path is outside the hot set, so only durations can fire
        report = lint_fixture("bad_telemetry.py", select=["RL8"])
        assert {f.line for f in report.findings} == {9, 13, 17}
        assert all(f.code == "RL8" for f in report.findings)
        assert all("subtraction" in f.message for f in report.findings)

    def test_inline_suppression_silences_the_line(self):
        report = lint_fixture("bad_telemetry.py", select=["RL8"])
        # line 29 carries ``# repro-lint: disable=RL8``
        assert 29 not in {f.line for f in report.findings}

    def test_print_and_stdlib_logging_fire_on_hot_paths(self):
        source = fixture_source("bad_telemetry.py", "src/repro/core/search.py")
        project = Project(root=REPO_ROOT)
        findings = list(TelemetryDisciplineRule().check_file(source, project))
        # check_file bypasses suppression: durations {9, 13, 17, 29} plus
        # the output findings {33, 37, 38}
        assert {f.line for f in findings} == {9, 13, 17, 29, 33, 37, 38}
        messages = [f.message for f in findings]
        assert any("print()" in m for m in messages)
        assert any("logging.info()" in m for m in messages)
        assert any("logging.getLogger()" in m for m in messages)

    def test_obs_layer_is_exempt(self):
        source = fixture_source("bad_telemetry.py", "src/repro/obs/trace.py")
        project = Project(root=REPO_ROOT)
        assert list(TelemetryDisciplineRule().check_file(source, project)) == []

    def test_timestamps_and_perf_counter_are_fine(self):
        report = lint_fixture("bad_telemetry.py", select=["RL8"])
        lines = {f.line for f in report.findings}
        assert 21 not in lines  # plain time.time() timestamp
        assert 25 not in lines  # perf_counter duration

    def test_live_hot_modules_are_clean(self):
        for rel in TelemetryDisciplineRule.HOT_MODULES:
            report = run_lint(root=REPO_ROOT, paths=[REPO_ROOT / rel], select=["RL8"])
            assert report.ok, report.render_text()


class TestFailureDisciplineRule:
    def _findings(self, rel="src/repro/serve/supervisor.py"):
        source = fixture_source("bad_failures.py", rel)
        project = Project(root=REPO_ROOT)
        return list(FailureDisciplineRule().check_file(source, project))

    def test_fires_on_every_swallowed_broad_except(self):
        lines = {f.line for f in self._findings()}
        # bare except, except Exception, except BaseException, bound-but-
        # unused exc (plus line 77's suppressed handler — check_file
        # bypasses the suppression pass)
        assert {15, 22, 29, 36, 77} <= lines
        messages = [f.message for f in self._findings()]
        assert any("bare except" in m for m in messages)
        assert any("except BaseException" in m for m in messages)

    def test_fires_on_every_unbounded_queue(self):
        lines = {f.line for f in self._findings()}
        assert {45, 46, 47, 50} <= lines
        messages = [f.message for f in self._findings()]
        assert any("SimpleQueue" in m for m in messages)
        assert any("queue.LifoQueue" in m for m in messages)

    def test_exactly_the_expected_findings(self):
        assert {f.line for f in self._findings()} == {15, 22, 29, 36, 45, 46, 47, 50, 77}
        assert all(f.code == "RL9" for f in self._findings())

    def test_surfaced_failures_and_computed_bounds_are_fine(self):
        # fine_handlers() (raise-from, logger.event, record(exc), a narrow
        # tuple) and the computed maxsize on line 49 must not fire
        lines = {f.line for f in self._findings()}
        assert not any(54 <= line <= 72 for line in lines)
        assert 49 not in lines

    def test_suppression_comment_is_honoured_by_the_engine(self):
        report = lint_fixture("bad_failures.py", select=["RL9"])
        # under its real tests/lint_fixtures path the file is out of scope
        assert report.ok

    def test_master_scope_also_fires(self):
        assert self._findings(rel="src/repro/master/worker.py")

    def test_out_of_scope_paths_are_ignored(self):
        assert self._findings(rel="src/repro/core/search.py") == []

    def test_live_serve_and_master_trees_are_clean(self):
        for rel in FailureDisciplineRule.SCOPE_DIRS:
            paths = sorted((REPO_ROOT / rel).glob("*.py"))
            assert paths
            report = run_lint(root=REPO_ROOT, paths=paths, select=["RL9"])
            assert report.ok, report.render_text()


class TestParseErrors:
    def test_unparseable_file_reports_rl0(self):
        report = lint_fixture("bad_syntax.py")
        assert [f.code for f in report.findings] == ["RL0"]
        assert "does not parse" in report.findings[0].message

    def test_rl0_can_be_ignored(self):
        report = lint_fixture("bad_syntax.py", ignore=["RL0"])
        assert report.ok


# ----------------------------------------------------------------------
# RL2 — hash contract
# ----------------------------------------------------------------------
class TestHashContract:
    def _project(self):
        spec_py = REPO_ROOT / "src" / "repro" / "api" / "spec.py"
        return Project(
            root=REPO_ROOT,
            files=[SourceFile(spec_py, "src/repro/api/spec.py")],
        )

    def test_live_manifest_is_complete(self):
        assert list(HashContractRule().check_project(self._project())) == []

    def test_manifest_covers_every_field_of_every_section(self):
        import dataclasses

        from repro.api import spec as spec_module

        for section, section_type in spec_module._SECTION_TYPES.items():
            declared = set(spec_module.HASH_MANIFEST[section])
            actual = {f.name for f in dataclasses.fields(section_type)}
            assert declared == actual, section

    def test_missing_field_is_reported(self, monkeypatch):
        from repro.api import spec as spec_module

        manifest = {k: dict(v) for k, v in spec_module.HASH_MANIFEST.items()}
        manifest["search"].pop("episodes")
        monkeypatch.setattr(spec_module, "HASH_MANIFEST", manifest)
        findings = list(HashContractRule().check_project(self._project()))
        assert any("'search.episodes' is not declared" in f.message for f in findings)

    def test_stale_entry_is_reported(self, monkeypatch):
        from repro.api import spec as spec_module

        manifest = {k: dict(v) for k, v in spec_module.HASH_MANIFEST.items()}
        manifest["pool"]["ghost_field"] = "hashed"
        monkeypatch.setattr(spec_module, "HASH_MANIFEST", manifest)
        findings = list(HashContractRule().check_project(self._project()))
        assert any("no such field" in f.message for f in findings)

    def test_mismarked_execution_field_is_reported(self, monkeypatch):
        from repro.api import spec as spec_module

        manifest = {k: dict(v) for k, v in spec_module.HASH_MANIFEST.items()}
        manifest["execution"]["executor"] = "hashed"
        monkeypatch.setattr(spec_module, "HASH_MANIFEST", manifest)
        findings = list(HashContractRule().check_project(self._project()))
        assert any("popped from spec_hash()" in f.message for f in findings)


# ----------------------------------------------------------------------
# RL5 — registry consistency
# ----------------------------------------------------------------------
class TestRegistryAudit:
    def test_live_registries_are_consistent(self):
        assert audit_registries(include_experiments=True) == []

    def test_live_specs_resolve(self):
        for spec_path in (REPO_ROOT / "examples" / "specs").glob("*.json"):
            assert audit_spec_file(spec_path) == [], spec_path.name

    def test_summary_lists_every_family(self):
        summary = registry_summary()
        assert set(summary) >= {
            "datasets", "architectures", "controllers", "proxy_builders",
            "rewards", "selection_strategies", "executors", "experiments",
        }
        assert "rnn" in summary["controllers"]

    def test_unknown_component_gets_did_you_mean(self, tmp_path):
        spec = {
            "name": "typo-run",
            "search": {"controller": "rrn"},
        }
        path = tmp_path / "typo.json"
        path.write_text(json.dumps(spec))
        issues = audit_spec_file(path)
        assert len(issues) == 1
        assert "unknown controller 'rrn'" in issues[0].message
        assert "did you mean 'rnn'" in issues[0].hint

    def test_unparseable_spec_is_one_issue(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text('{"unknown_section": {}}')
        issues = audit_spec_file(path)
        assert len(issues) == 1
        assert "does not parse" in issues[0].message

    def test_scope_examples_runs_only_spec_checks(self):
        report = run_lint(root=REPO_ROOT, scope="examples", select=["RL5"])
        assert report.ok
        assert report.files_checked == 0
        assert report.specs_checked >= 2

    def test_bad_spec_path_is_line_anchored(self, tmp_path):
        lines = [
            "{",
            '  "name": "typo-run",',
            '  "dataset": {"name": "synthetic_isicc"}',
            "}",
        ]
        path = tmp_path / "anchored.json"
        path.write_text("\n".join(lines))
        report = run_lint(root=REPO_ROOT, paths=[path], select=["RL5"])
        assert len(report.findings) == 1
        assert report.findings[0].line == 3


# ----------------------------------------------------------------------
# Selection / suppression semantics and the JSON schema
# ----------------------------------------------------------------------
class TestSelectionSemantics:
    def test_select_narrows_to_listed_codes(self):
        report = lint_fixture("bad_determinism.py", select=["RL3"])
        assert report.ok  # RL1 findings exist but RL1 did not run
        assert report.codes_run == ("RL3",)

    def test_ignore_removes_codes(self):
        report = lint_fixture("bad_determinism.py", ignore=["RL1"])
        assert report.ok
        assert "RL1" not in report.codes_run

    def test_code_in_both_select_and_ignore_is_off(self):
        report = lint_fixture(
            "bad_determinism.py", select=["RL1", "RL3"], ignore=["RL1"]
        )
        assert report.codes_run == ("RL3",)

    def test_comma_separated_and_case_insensitive(self):
        report = lint_fixture("bad_determinism.py", select=["rl1,rl3"])
        assert report.codes_run == ("RL1", "RL3")

    def test_unknown_code_is_a_config_error_with_suggestion(self):
        with pytest.raises(LintConfigError, match="RL1"):
            lint_fixture("bad_determinism.py", select=["RL11"])

    def test_missing_path_is_a_config_error(self):
        with pytest.raises(LintConfigError, match="does not exist"):
            run_lint(root=REPO_ROOT, paths=["no/such/file.py"])


class TestJsonReport:
    def _report(self):
        return lint_fixture("bad_determinism.py", select=["RL1"])

    def test_schema_golden_file(self):
        payload = self._report().to_dict()
        golden = json.loads(GOLDEN.read_text())
        assert payload == golden

    def test_schema_shape(self):
        payload = self._report().to_dict()
        assert payload["schema_version"] == REPORT_SCHEMA_VERSION
        assert payload["counts"] == {"RL1": 5}
        for finding in payload["findings"]:
            assert set(finding) == {"path", "line", "col", "code", "message", "hint"}

    def test_json_round_trips(self):
        report = self._report()
        assert json.loads(report.to_json()) == report.to_dict()


# ----------------------------------------------------------------------
# The CLI and the gate itself
# ----------------------------------------------------------------------
class TestCli:
    def test_clean_tree_exits_zero(self, capsys):
        from repro.analysis.cli import main

        assert main(["--root", str(REPO_ROOT)]) == 0
        assert "clean: 0 findings" in capsys.readouterr().out

    def test_violations_exit_nonzero_with_codes(self, capsys):
        from repro.analysis.cli import main

        rc = main(
            ["--root", str(REPO_ROOT), "--select", "RL1",
             str(FIXTURES / "bad_determinism.py")]
        )
        assert rc == 1
        assert "RL1" in capsys.readouterr().out

    def test_json_format(self, capsys):
        from repro.analysis.cli import main

        rc = main(
            ["--root", str(REPO_ROOT), "--format", "json", "--select", "RL1",
             str(FIXTURES / "bad_determinism.py")]
        )
        assert rc == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["counts"] == {"RL1": 5}

    def test_config_error_exits_two(self, capsys):
        from repro.analysis.cli import main

        assert main(["--select", "BOGUS"]) == 2
        assert "unknown rule code" in capsys.readouterr().out

    def test_main_module_dispatches_lint(self, capsys):
        from repro.__main__ import main

        assert main(["lint", "--root", str(REPO_ROOT), "--scope", "examples"]) == 0


class TestSelfCheck:
    def test_live_tree_is_clean(self):
        """The CI gate: the full rule set finds nothing in the repo."""
        report = run_lint(root=REPO_ROOT)
        assert report.ok, report.render_text()
        assert report.files_checked > 80
        assert report.specs_checked >= 2

    def test_rule_registry_is_complete(self):
        from repro.analysis.core import LINT_RULES

        assert set(LINT_RULES.names()) == {
            "RL1", "RL2", "RL3", "RL4", "RL5", "RL6", "RL7", "RL8", "RL9",
        }
        for code in LINT_RULES.names():
            rule = LINT_RULES.get(code)()
            assert rule.code == code
            assert rule.description

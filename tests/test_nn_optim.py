"""Unit tests for repro.nn.optim."""

import numpy as np
import pytest

from repro.nn import SGD, Adam, Linear, StepLR, Tensor, clip_grad_norm
from repro.nn import functional as F


def _quadratic_problem():
    """A parameter that should converge to the target under any optimiser."""
    param = Linear(1, 1, bias=False, rng=np.random.default_rng(0))
    target = 3.0

    def loss_fn():
        prediction = param(Tensor(np.array([[1.0]])))
        return ((prediction - target) ** 2).sum()

    return param, loss_fn


class TestSGD:
    def test_plain_sgd_reduces_quadratic_loss(self):
        param, loss_fn = _quadratic_problem()
        optimizer = SGD(param.parameters(), lr=0.1)
        first = loss_fn().item()
        for _ in range(50):
            loss = loss_fn()
            param.zero_grad()
            loss.backward()
            optimizer.step()
        assert loss_fn().item() < 1e-3 < first

    def test_momentum_accelerates(self):
        param_a, loss_a = _quadratic_problem()
        param_b, loss_b = _quadratic_problem()
        plain = SGD(param_a.parameters(), lr=0.01)
        momentum = SGD(param_b.parameters(), lr=0.01, momentum=0.9)
        for _ in range(30):
            for param, loss_fn, opt in ((param_a, loss_a, plain), (param_b, loss_b, momentum)):
                loss = loss_fn()
                param.zero_grad()
                loss.backward()
                opt.step()
        assert loss_b().item() < loss_a().item()

    def test_weight_decay_shrinks_weights(self):
        layer = Linear(3, 3, bias=False, rng=np.random.default_rng(1))
        optimizer = SGD(layer.parameters(), lr=0.1, weight_decay=0.5)
        before = np.abs(layer.weight.data).sum()
        # No data gradient: only the decay term acts.
        layer.weight.grad = np.zeros_like(layer.weight.data)
        optimizer.step()
        assert np.abs(layer.weight.data).sum() < before

    def test_parameters_without_grad_are_skipped(self):
        layer = Linear(2, 2)
        optimizer = SGD(layer.parameters(), lr=0.1)
        before = layer.weight.data.copy()
        optimizer.step()
        np.testing.assert_allclose(layer.weight.data, before)

    def test_validation(self):
        layer = Linear(2, 2)
        with pytest.raises(ValueError):
            SGD(layer.parameters(), lr=0.0)
        with pytest.raises(ValueError):
            SGD(layer.parameters(), lr=0.1, momentum=1.5)
        with pytest.raises(ValueError):
            SGD([], lr=0.1)


class TestAdam:
    def test_adam_converges_on_quadratic(self):
        param, loss_fn = _quadratic_problem()
        optimizer = Adam(param.parameters(), lr=0.1)
        for _ in range(200):
            loss = loss_fn()
            param.zero_grad()
            loss.backward()
            optimizer.step()
        assert loss_fn().item() < 1e-4

    def test_adam_trains_small_classifier(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(200, 5))
        w_true = rng.normal(size=(5,))
        y = (x @ w_true > 0).astype(int)
        layer = Linear(5, 2, rng=rng)
        optimizer = Adam(layer.parameters(), lr=0.05)
        for _ in range(100):
            logits = layer(Tensor(x))
            loss = F.cross_entropy(logits, y)
            layer.zero_grad()
            loss.backward()
            optimizer.step()
        assert F.accuracy(layer(Tensor(x)).data, y) > 0.9

    def test_beta_validation(self):
        layer = Linear(2, 2)
        with pytest.raises(ValueError):
            Adam(layer.parameters(), betas=(1.0, 0.999))


class TestStepLR:
    def test_decay_schedule(self):
        layer = Linear(2, 2)
        optimizer = SGD(layer.parameters(), lr=0.1)
        scheduler = StepLR(optimizer, step_size=20, gamma=0.9)
        for _ in range(19):
            scheduler.step()
        assert optimizer.lr == pytest.approx(0.1)
        scheduler.step()
        assert optimizer.lr == pytest.approx(0.09)
        for _ in range(20):
            scheduler.step()
        assert optimizer.lr == pytest.approx(0.1 * 0.9 ** 2)

    def test_validation(self):
        layer = Linear(2, 2)
        optimizer = SGD(layer.parameters(), lr=0.1)
        with pytest.raises(ValueError):
            StepLR(optimizer, step_size=0)
        with pytest.raises(ValueError):
            StepLR(optimizer, gamma=0.0)


class TestClipGradNorm:
    def test_clipping_scales_gradients(self):
        layer = Linear(4, 4, bias=False)
        layer.weight.grad = np.full((4, 4), 10.0)
        norm_before = clip_grad_norm(layer.parameters(), max_norm=1.0)
        assert norm_before > 1.0
        clipped_norm = float(np.sqrt((layer.weight.grad ** 2).sum()))
        assert clipped_norm == pytest.approx(1.0, rel=1e-6)

    def test_small_gradients_untouched(self):
        layer = Linear(2, 2, bias=False)
        layer.weight.grad = np.full((2, 2), 0.01)
        before = layer.weight.grad.copy()
        clip_grad_norm(layer.parameters(), max_norm=10.0)
        np.testing.assert_allclose(layer.weight.grad, before)

    def test_no_gradients_returns_zero(self):
        layer = Linear(2, 2)
        assert clip_grad_norm(layer.parameters(), max_norm=1.0) == 0.0

    def test_invalid_max_norm(self):
        layer = Linear(2, 2, bias=False)
        layer.weight.grad = np.ones((2, 2))
        with pytest.raises(ValueError):
            clip_grad_norm(layer.parameters(), max_norm=0.0)

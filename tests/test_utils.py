"""Unit tests for repro.utils (rng, logging, serialization)."""

import dataclasses
import json

import numpy as np
import pytest

from repro.utils import (
    DEFAULT_SEED,
    RunLogger,
    derive_seeds,
    format_table,
    get_rng,
    load_json,
    load_state_dict,
    save_json,
    save_state_dict,
    seed_everything,
    spawn_rng,
    to_jsonable,
)


class TestRng:
    def test_get_rng_from_int(self):
        a = get_rng(7)
        b = get_rng(7)
        assert a.integers(0, 100) == b.integers(0, 100)

    def test_get_rng_passthrough(self):
        rng = np.random.default_rng(0)
        assert get_rng(rng) is rng

    def test_default_seed_used_when_none(self):
        a = get_rng(None).integers(0, 1_000_000)
        b = get_rng(DEFAULT_SEED).integers(0, 1_000_000)
        assert a == b

    def test_spawn_rng_label_dependent(self):
        parent_a = get_rng(1)
        parent_b = get_rng(1)
        child_x = spawn_rng(parent_a, "x")
        child_y = spawn_rng(parent_b, "y")
        assert child_x.integers(0, 10**9) != child_y.integers(0, 10**9)

    def test_derive_seeds_deterministic(self):
        assert derive_seeds(5, 4) == derive_seeds(5, 4)
        assert len(derive_seeds(5, 4)) == 4

    def test_seed_everything_returns_generator(self):
        rng = seed_everything(3)
        assert isinstance(rng, np.random.Generator)


class TestRunLogger:
    def test_log_and_columns(self):
        logger = RunLogger("test")
        logger.log(step=0, reward=1.0)
        logger.log(step=1, reward=3.0)
        assert len(logger) == 2
        assert logger.column("reward") == [1.0, 3.0]

    def test_best_row(self):
        logger = RunLogger("test")
        logger.log(step=0, reward=1.0)
        logger.log(step=1, reward=3.0)
        assert logger.best("reward")["step"] == 1
        assert logger.best("reward", maximize=False)["step"] == 0

    def test_best_missing_key(self):
        logger = RunLogger("test")
        logger.log(step=0)
        with pytest.raises(KeyError):
            logger.best("reward")

    def test_csv_export(self):
        logger = RunLogger("test")
        logger.log(a=1, b="x")
        csv_text = logger.to_csv()
        assert "a" in csv_text.splitlines()[0]
        assert RunLogger("empty").to_csv() == ""

    def test_verbose_logging_writes_to_stream(self, capsys):
        logger = RunLogger("loud", verbose=True)
        logger.log(metric=0.5)
        captured = capsys.readouterr()
        assert "loud" in captured.out


class TestFormatTable:
    def test_alignment_and_title(self):
        rows = [{"model": "a", "acc": 0.5}, {"model": "bbbb", "acc": 0.75}]
        text = format_table(rows, title="demo")
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "model" in lines[1] and "acc" in lines[1]
        assert len(lines) == 2 + 2 + 1  # title + header + separator + 2 rows

    def test_column_selection(self):
        rows = [{"a": 1, "b": 2}]
        text = format_table(rows, columns=["b"])
        assert "a" not in text.splitlines()[0]

    def test_missing_values_rendered_empty(self):
        rows = [{"a": 1}, {"a": 2, "b": 3}]
        assert "b" in format_table(rows)

    def test_empty_rows(self):
        assert format_table([]) == "(empty table)"


class TestSerialization:
    def test_to_jsonable_handles_numpy(self):
        payload = to_jsonable(
            {"array": np.arange(3), "float": np.float64(1.5), "int": np.int64(2), "bool": np.bool_(True)}
        )
        assert payload == {"array": [0, 1, 2], "float": 1.5, "int": 2, "bool": True}

    def test_to_jsonable_dataclass(self):
        @dataclasses.dataclass
        class Point:
            x: int
            y: float

        assert to_jsonable(Point(1, 2.5)) == {"x": 1, "y": 2.5}

    def test_to_jsonable_rejects_unknown(self):
        with pytest.raises(TypeError):
            to_jsonable(object())

    def test_save_and_load_json(self, tmp_path):
        path = save_json({"value": np.float64(3.5)}, tmp_path / "out" / "data.json")
        assert path.exists()
        assert load_json(path) == {"value": 3.5}
        # File is valid JSON readable without the helper.
        assert json.loads(path.read_text())["value"] == 3.5

    def test_save_json_is_atomic(self, tmp_path, monkeypatch):
        """A crash mid-write must never leave a truncated artifact behind."""
        import os

        path = save_json({"value": 1}, tmp_path / "data.json")

        real_replace = os.replace

        def exploding_replace(src, dst):
            raise OSError("simulated crash at publish time")

        monkeypatch.setattr(os, "replace", exploding_replace)
        with pytest.raises(OSError, match="simulated crash"):
            save_json({"value": 2}, path)
        monkeypatch.setattr(os, "replace", real_replace)
        # The original artifact is untouched and no temp files linger.
        assert load_json(path) == {"value": 1}
        assert [p.name for p in tmp_path.iterdir()] == ["data.json"]

    def test_save_json_leaves_no_temp_files(self, tmp_path):
        save_json({"a": list(range(100))}, tmp_path / "out.json")
        assert [p.name for p in tmp_path.iterdir()] == ["out.json"]

    def test_save_json_honors_umask(self, tmp_path):
        """The atomic temp file must not leak mkstemp's 0600 onto artifacts."""
        import os
        import stat

        previous = os.umask(0o022)
        try:
            path = save_json({"v": 1}, tmp_path / "perm.json")
        finally:
            os.umask(previous)
        assert stat.S_IMODE(path.stat().st_mode) == 0o644

    def test_state_dict_roundtrip(self, tmp_path):
        state = {"layer.weight": np.random.default_rng(0).normal(size=(3, 4)), "layer.bias": np.zeros(4)}
        path = save_state_dict(state, tmp_path / "weights.json")
        loaded = load_state_dict(path)
        assert set(loaded) == set(state)
        np.testing.assert_allclose(loaded["layer.weight"], state["layer.weight"])
        assert loaded["layer.bias"].shape == (4,)

    def test_to_jsonable_evaluation_object(self):
        from repro.fairness import FairnessEvaluation

        evaluation = FairnessEvaluation(accuracy=0.8, unfairness={"age": 0.3})
        payload = to_jsonable(evaluation)
        assert payload["accuracy"] == 0.8

"""Unit and integration tests for the Muffin search loop."""

import numpy as np
import pytest

from repro.core import (
    BodyOutputCache,
    FusingCandidate,
    HeadTrainConfig,
    MuffinSearch,
    SearchConfig,
)


def _small_search(pool, cache=None, **config_overrides) -> MuffinSearch:
    config = dict(episodes=6, episode_batch=3, seed=0)
    config.update(config_overrides)
    return MuffinSearch(
        pool,
        attributes=["age", "site"],
        base_model="MobileNet_V3_Small",
        search_config=SearchConfig(**config),
        head_config=HeadTrainConfig(epochs=4, seed=0),
        body_cache=cache,
    )


@pytest.fixture(scope="module")
def search(pool):
    return MuffinSearch(
        pool,
        attributes=["age", "site"],
        base_model="MobileNet_V3_Small",
        search_config=SearchConfig(episodes=10, episode_batch=5, seed=0),
        head_config=HeadTrainConfig(epochs=10, seed=0),
    )


@pytest.fixture(scope="module")
def result(search):
    return search.run()


class TestSearchConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            SearchConfig(episodes=0)
        with pytest.raises(ValueError):
            SearchConfig(episode_batch=0)
        with pytest.raises(ValueError):
            SearchConfig(controller="bayes")


class TestBodyOutputCache:
    def test_cache_returns_same_arrays(self, pool):
        cache = BodyOutputCache(pool)
        test = pool.split.test
        first = cache.probabilities("ResNet-18", test, None, tag="test")
        second = cache.probabilities("ResNet-18", test, None, tag="test")
        assert first is second

    def test_concatenated_shape(self, pool):
        cache = BodyOutputCache(pool)
        test = pool.split.test
        output = cache.concatenated(["ResNet-18", "DenseNet121"], test, None, tag="test")
        assert output.shape == (len(test), 2 * test.num_classes)

    def test_distinct_index_sets_are_not_aliased(self, pool):
        """Regression: entries must key on the index fingerprint, not a tag.

        The old ``(model_name, tag)`` keying returned the first index set's
        probabilities for *any* later index set carrying the same tag.
        """
        cache = BodyOutputCache(pool)
        train = pool.split.train
        first_indices = np.arange(10)
        second_indices = np.arange(10, 20)
        cache.probabilities("ResNet-18", train, first_indices, tag="proxy")
        stale_candidate = cache.probabilities("ResNet-18", train, second_indices, tag="proxy")
        expected = pool.get("ResNet-18").predict_proba(train, second_indices)
        np.testing.assert_array_equal(stale_candidate, expected)

    def test_distinct_partitions_are_not_aliased(self, pool):
        cache = BodyOutputCache(pool)
        cache.probabilities("ResNet-18", pool.split.val, None, tag="eval")
        from_test = cache.probabilities("ResNet-18", pool.split.test, None, tag="eval")
        np.testing.assert_array_equal(
            from_test, pool.get("ResNet-18").predict_proba(pool.split.test, None)
        )

    def test_shared_cache_across_proxy_builders(self, pool):
        """Two searches with different proxy builders may share one cache.

        The weighted proxy uses the unprivileged subset, the uniform proxy
        the full training partition; under the old keying the second search
        read the first search's (differently-indexed) probability matrix.
        """
        cache = BodyOutputCache(pool)
        weighted = _small_search(pool, cache=cache, use_weighted_proxy=True)
        uniform = _small_search(pool, cache=cache, use_weighted_proxy=False)
        assert len(weighted.proxy) < len(uniform.proxy)

        names = ["MobileNet_V3_Small", "ResNet-18"]
        weighted_outputs = cache.concatenated(
            names, weighted.proxy.dataset, weighted.proxy.indices, tag="proxy"
        )
        uniform_outputs = cache.concatenated(
            names, uniform.proxy.dataset, uniform.proxy.indices, tag="proxy"
        )
        assert weighted_outputs.shape[0] == len(weighted.proxy)
        assert uniform_outputs.shape[0] == len(uniform.proxy)
        expected = np.concatenate(
            [
                pool.get(name).predict_proba(uniform.proxy.dataset, uniform.proxy.indices)
                for name in names
            ],
            axis=1,
        )
        np.testing.assert_array_equal(uniform_outputs, expected)

    def test_hit_miss_stats(self, pool):
        cache = BodyOutputCache(pool)
        test = pool.split.test
        cache.probabilities("ResNet-18", test, None)
        cache.probabilities("ResNet-18", test, None)
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1 and stats["entries"] == 1

    def test_concatenated_matrix_is_memoised(self, pool):
        cache = BodyOutputCache(pool)
        test = pool.split.test
        names = ["ResNet-18", "DenseNet121"]
        first = cache.concatenated(names, test, None)
        second = cache.concatenated(names, test, None)
        assert first is second  # one shared buffer per (models, dataset, indices)
        assert cache.stats()["concatenated_entries"] == 1


class TestMuffinSearch:
    def test_requires_attributes(self, pool):
        with pytest.raises(ValueError):
            MuffinSearch(pool, attributes=[])

    def test_proxy_built_from_unprivileged_data(self, search, pool):
        assert len(search.proxy) < len(pool.split.train)
        assert search.proxy.sample_weights.mean() == pytest.approx(1.0)

    def test_run_produces_one_record_per_episode(self, result):
        assert len(result) == 10
        assert all(np.isfinite(record.reward) for record in result.records)
        assert [record.episode for record in result.records] == list(range(10))

    def test_records_store_heads_and_parameters(self, result):
        record = result.records[0]
        assert record.head_state is not None
        assert record.num_parameters > record.trainable_parameters > 0
        assert len(record.train_losses) == 10

    def test_candidates_respect_base_model(self, result):
        for record in result.records:
            assert record.candidate.model_names[0] == "MobileNet_V3_Small"
            assert len(record.candidate.model_names) == 2

    def test_controller_was_updated(self, search, result):
        assert len(search.controller.update_history) == 2  # 10 episodes / batch of 5

    def test_evaluate_candidate_manual(self, search):
        candidate = FusingCandidate(
            model_names=("MobileNet_V3_Small", "ResNet-18"),
            hidden_sizes=(16, 10),
            activation="relu",
        )
        record = search.evaluate_candidate(candidate, episode=-1, seed=0)
        assert record.reward > 0
        assert set(record.evaluation.unfairness) == {"age", "site"}

    def test_finalize_best_reward(self, search, result, pool):
        muffin = search.finalize(result, metric="reward", name="Muffin-test")
        assert muffin.name == "Muffin-test"
        assert muffin.test_evaluation is not None
        best = result.best_record("reward")
        assert muffin.record is best
        # The rebuilt fused model reproduces the stored head exactly on the
        # evaluation partition used during the search.
        evaluation = search._evaluate_fused(muffin.fused, muffin.record.candidate)
        assert evaluation.accuracy == pytest.approx(muffin.record.evaluation.accuracy)

    def test_finalize_balance_metric(self, search, result):
        muffin = search.finalize(result, metric="balance", name="Muffin-Balance")
        assert muffin.record in result.records

    def test_named_muffin_nets(self, search, result):
        nets = search.named_muffin_nets(result)
        assert {"Muffin", "Muffin-Age", "Muffin-Site", "Muffin-Balance"} <= set(nets)
        for net in nets.values():
            assert net.test_evaluation is not None

    def test_random_controller_variant(self, pool):
        search = MuffinSearch(
            pool,
            attributes=["age", "site"],
            base_model="ResNet-18",
            search_config=SearchConfig(episodes=4, episode_batch=2, seed=1, controller="random"),
            head_config=HeadTrainConfig(epochs=5),
        )
        result = search.run()
        assert len(result) == 4

    def test_unweighted_proxy_variant(self, pool):
        search = MuffinSearch(
            pool,
            attributes=["age", "site"],
            base_model="ResNet-18",
            search_config=SearchConfig(
                episodes=2, episode_batch=2, seed=2, use_weighted_proxy=False
            ),
            head_config=HeadTrainConfig(epochs=5),
        )
        assert len(search.proxy) == len(pool.split.train)
        result = search.run()
        assert len(result) == 2

    def test_run_with_explicit_episode_count(self, pool):
        search = MuffinSearch(
            pool,
            attributes=["age"],
            base_model="DenseNet121",
            search_config=SearchConfig(episodes=50, episode_batch=3, seed=3),
            head_config=HeadTrainConfig(epochs=4),
        )
        result = search.run(episodes=3)
        assert len(result) == 3


class TestExecutors:
    def test_executor_config_validation(self):
        with pytest.raises(ValueError):
            SearchConfig(executor="gpu-cluster")
        with pytest.raises(ValueError):
            SearchConfig(max_workers=0)
        # Aliases resolve through the registry.
        assert SearchConfig(executor="threads").executor == "threads"

    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_parallel_executors_match_serial_bit_exactly(self, pool, executor):
        """Seeded records are bit-identical across serial/thread/process."""
        serial = _small_search(pool, executor="serial").run()
        parallel = _small_search(pool, executor=executor, max_workers=2).run()

        assert [r.candidate for r in serial.records] == [r.candidate for r in parallel.records]
        assert [r.reward for r in serial.records] == [r.reward for r in parallel.records]
        for record_a, record_b in zip(serial.records, parallel.records):
            assert record_a.evaluation.accuracy == record_b.evaluation.accuracy
            assert record_a.evaluation.unfairness == record_b.evaluation.unfairness
            assert record_a.train_losses == record_b.train_losses
            assert set(record_a.head_state) == set(record_b.head_state)
            for key in record_a.head_state:
                np.testing.assert_array_equal(record_a.head_state[key], record_b.head_state[key])
        assert serial.execution_stats.executor == "serial"
        assert parallel.execution_stats.executor == executor

    def test_run_reports_execution_stats(self, pool):
        result = _small_search(pool).run()
        stats = result.execution_stats
        assert stats is not None
        assert stats.episodes == 6
        assert stats.memo_hits + stats.memo_misses == 6
        assert stats.body_cache_misses > 0
        assert stats.eval_seconds > 0
        assert "execution" in result.summary()


def _count_trained_heads(search_module, monkeypatch):
    """Count heads trained through either entry point of the search.

    Eligible batches route through the fused batched trainer
    (``train_heads_batched``); the memoisation contract — never retrain a
    known ``(candidate, seed)`` — must hold regardless of path.
    """
    trained = []
    original_single = search_module.train_head_on_outputs
    original_batched = search_module.train_heads_batched

    def counting_single(head, *args, **kwargs):
        trained.append(head)
        return original_single(head, *args, **kwargs)

    def counting_batched(heads, *args, **kwargs):
        trained.extend(heads)
        return original_batched(heads, *args, **kwargs)

    monkeypatch.setattr(search_module, "train_head_on_outputs", counting_single)
    monkeypatch.setattr(search_module, "train_heads_batched", counting_batched)
    return trained


class TestMemoisation:
    @pytest.fixture()
    def search(self, pool):
        return _small_search(pool)

    @pytest.fixture()
    def candidate(self):
        return FusingCandidate(
            model_names=("MobileNet_V3_Small", "ResNet-18"),
            hidden_sizes=(16, 10),
            activation="relu",
        )

    def test_duplicate_evaluation_trains_zero_extra_epochs(
        self, search, candidate, monkeypatch
    ):
        import repro.core.search as search_module

        trained_heads = _count_trained_heads(search_module, monkeypatch)
        first, second = search.evaluate_batch([candidate, candidate])
        third = search.evaluate_candidate(candidate, episode=7)

        assert len(trained_heads) == 1  # one head trained for three requested evaluations
        assert search.memo_hits == 2 and search.memo_misses == 1
        assert first.reward == second.reward == third.reward
        assert third.episode == 7
        for key in first.head_state:
            np.testing.assert_array_equal(first.head_state[key], second.head_state[key])

    def test_candidate_seed_is_deterministic_and_order_free(self, pool, candidate):
        seed_a = _small_search(pool).candidate_seed(candidate)
        seed_b = _small_search(pool).candidate_seed(candidate)
        assert seed_a == seed_b
        other = FusingCandidate(
            model_names=("MobileNet_V3_Small", "DenseNet121"),
            hidden_sizes=(16, 10),
            activation="relu",
        )
        assert _small_search(pool).candidate_seed(other) != seed_a
        # The search seed participates, so two seeded searches stay distinct.
        assert _small_search(pool, seed=1).candidate_seed(candidate) != seed_a

    def test_memoize_can_be_disabled(self, candidate, monkeypatch, pool):
        import repro.core.search as search_module

        trained_heads = _count_trained_heads(search_module, monkeypatch)
        unmemoised = _small_search(pool, memoize=False)
        first, second = unmemoised.evaluate_batch([candidate, candidate])
        assert len(trained_heads) == 2
        assert first.reward == second.reward  # same (candidate, seed) → same result


class TestCandidateSeedStrategies:
    """'episode' draws seeds from the RNG stream (paper formulation);
    'derived' hashes them from the candidate so re-samples hit the memo."""

    @staticmethod
    def _single_candidate_search(pool, **config_overrides):
        from repro.core import SearchSpace

        # A degenerate one-point search space forces the controller to
        # re-sample the same structure every episode.
        space = SearchSpace(
            pool_names=["MobileNet_V3_Small", "ResNet-18"],
            base_model="MobileNet_V3_Small",
            num_paired=1,
            width_choices=(16,),
            depth_choices=(1,),
            activation_choices=("relu",),
        )
        assert space.size() == 1
        config = dict(episodes=4, episode_batch=2, seed=0)
        config.update(config_overrides)
        return MuffinSearch(
            pool,
            attributes=["age", "site"],
            search_space=space,
            search_config=SearchConfig(**config),
            head_config=HeadTrainConfig(epochs=3, seed=0),
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            SearchConfig(candidate_seeds="lottery")

    def test_derived_seeding_memoises_resampled_structures(self, pool):
        search = self._single_candidate_search(pool, candidate_seeds="derived")
        result = search.run()
        stats = result.execution_stats
        assert stats.memo_misses == 1  # one unique candidate trained once
        assert stats.memo_hits == 3
        rewards = {record.reward for record in result.records}
        assert len(rewards) == 1  # stationary reward per candidate

    def test_episode_seeding_retrains_every_episode(self, pool):
        search = self._single_candidate_search(pool, candidate_seeds="episode")
        result = search.run()
        stats = result.execution_stats
        assert stats.memo_misses == 4  # fresh seed per episode, no memo hits
        assert stats.memo_hits == 0

"""Unit and integration tests for the Muffin search loop."""

import numpy as np
import pytest

from repro.core import (
    BodyOutputCache,
    FusingCandidate,
    HeadTrainConfig,
    MuffinSearch,
    SearchConfig,
)


@pytest.fixture(scope="module")
def search(pool):
    return MuffinSearch(
        pool,
        attributes=["age", "site"],
        base_model="MobileNet_V3_Small",
        search_config=SearchConfig(episodes=10, episode_batch=5, seed=0),
        head_config=HeadTrainConfig(epochs=10, seed=0),
    )


@pytest.fixture(scope="module")
def result(search):
    return search.run()


class TestSearchConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            SearchConfig(episodes=0)
        with pytest.raises(ValueError):
            SearchConfig(episode_batch=0)
        with pytest.raises(ValueError):
            SearchConfig(controller="bayes")


class TestBodyOutputCache:
    def test_cache_returns_same_arrays(self, pool):
        cache = BodyOutputCache(pool)
        test = pool.split.test
        first = cache.probabilities("ResNet-18", test, None, tag="test")
        second = cache.probabilities("ResNet-18", test, None, tag="test")
        assert first is second

    def test_concatenated_shape(self, pool):
        cache = BodyOutputCache(pool)
        test = pool.split.test
        output = cache.concatenated(["ResNet-18", "DenseNet121"], test, None, tag="test")
        assert output.shape == (len(test), 2 * test.num_classes)


class TestMuffinSearch:
    def test_requires_attributes(self, pool):
        with pytest.raises(ValueError):
            MuffinSearch(pool, attributes=[])

    def test_proxy_built_from_unprivileged_data(self, search, pool):
        assert len(search.proxy) < len(pool.split.train)
        assert search.proxy.sample_weights.mean() == pytest.approx(1.0)

    def test_run_produces_one_record_per_episode(self, result):
        assert len(result) == 10
        assert all(np.isfinite(record.reward) for record in result.records)
        assert [record.episode for record in result.records] == list(range(10))

    def test_records_store_heads_and_parameters(self, result):
        record = result.records[0]
        assert record.head_state is not None
        assert record.num_parameters > record.trainable_parameters > 0
        assert len(record.train_losses) == 10

    def test_candidates_respect_base_model(self, result):
        for record in result.records:
            assert record.candidate.model_names[0] == "MobileNet_V3_Small"
            assert len(record.candidate.model_names) == 2

    def test_controller_was_updated(self, search, result):
        assert len(search.controller.update_history) == 2  # 10 episodes / batch of 5

    def test_evaluate_candidate_manual(self, search):
        candidate = FusingCandidate(
            model_names=("MobileNet_V3_Small", "ResNet-18"),
            hidden_sizes=(16, 10),
            activation="relu",
        )
        record = search.evaluate_candidate(candidate, episode=-1, seed=0)
        assert record.reward > 0
        assert set(record.evaluation.unfairness) == {"age", "site"}

    def test_finalize_best_reward(self, search, result, pool):
        muffin = search.finalize(result, metric="reward", name="Muffin-test")
        assert muffin.name == "Muffin-test"
        assert muffin.test_evaluation is not None
        best = result.best_record("reward")
        assert muffin.record is best
        # The rebuilt fused model reproduces the stored head exactly on the
        # evaluation partition used during the search.
        evaluation = search._evaluate_fused(muffin.fused, muffin.record.candidate)
        assert evaluation.accuracy == pytest.approx(muffin.record.evaluation.accuracy)

    def test_finalize_balance_metric(self, search, result):
        muffin = search.finalize(result, metric="balance", name="Muffin-Balance")
        assert muffin.record in result.records

    def test_named_muffin_nets(self, search, result):
        nets = search.named_muffin_nets(result)
        assert {"Muffin", "Muffin-Age", "Muffin-Site", "Muffin-Balance"} <= set(nets)
        for net in nets.values():
            assert net.test_evaluation is not None

    def test_random_controller_variant(self, pool):
        search = MuffinSearch(
            pool,
            attributes=["age", "site"],
            base_model="ResNet-18",
            search_config=SearchConfig(episodes=4, episode_batch=2, seed=1, controller="random"),
            head_config=HeadTrainConfig(epochs=5),
        )
        result = search.run()
        assert len(result) == 4

    def test_unweighted_proxy_variant(self, pool):
        search = MuffinSearch(
            pool,
            attributes=["age", "site"],
            base_model="ResNet-18",
            search_config=SearchConfig(
                episodes=2, episode_batch=2, seed=2, use_weighted_proxy=False
            ),
            head_config=HeadTrainConfig(epochs=5),
        )
        assert len(search.proxy) == len(pool.split.train)
        result = search.run()
        assert len(result) == 2

    def test_run_with_explicit_episode_count(self, pool):
        search = MuffinSearch(
            pool,
            attributes=["age"],
            base_model="DenseNet121",
            search_config=SearchConfig(episodes=50, episode_batch=3, seed=3),
            head_config=HeadTrainConfig(epochs=4),
        )
        result = search.run(episodes=3)
        assert len(result) == 3

"""Telemetry is observation only: results with it on and off are bit-identical.

The tentpole guarantee of the obs layer — spans and metrics never touch RNG
state, never reorder work and never enter ``spec_hash()`` — is proven here
end-to-end: the same spec run with tracing + metrics enabled produces the
same ``result_hash()`` as a run with telemetry fully off.
"""

from __future__ import annotations

import pytest

from repro.api import (
    DatasetSpec,
    FinalizeSpec,
    MuffinPipeline,
    PoolSpec,
    RunSpec,
    SearchSpec,
)
from repro.api.spec import ObsSpec
from repro.obs import METRICS, active_writer, load_spans

ARCHS = ("MobileNet_V3_Small", "ResNet-18", "DenseNet121")


def tiny_spec(**overrides) -> RunSpec:
    fields = dict(
        name="obs-identity",
        dataset=DatasetSpec(name="synthetic_isic", num_samples=900, seed=11, split_seed=2),
        pool=PoolSpec(architectures=ARCHS, epochs=8, batch_size=256, seed=4),
        search=SearchSpec(
            attributes=("age", "site"),
            base_model="MobileNet_V3_Small",
            episodes=4,
            episode_batch=2,
            head_epochs=4,
            seed=0,
        ),
        finalize=FinalizeSpec(selection="reward", name="Muffin-obs"),
    )
    fields.update(overrides)
    return RunSpec(**fields)


class TestSpecHashExclusion:
    def test_obs_section_never_enters_spec_hash(self):
        base = tiny_spec()
        traced = tiny_spec(obs=ObsSpec(trace_path="t.jsonl", metrics_enabled=True))
        assert base.spec_hash() == traced.spec_hash()

    def test_obs_round_trips_through_dict(self):
        traced = tiny_spec(obs=ObsSpec(trace_path="t.jsonl", metrics_enabled=True))
        clone = RunSpec.from_dict(traced.to_dict())
        assert clone.obs.trace_path == "t.jsonl"
        assert clone.obs.metrics_enabled is True


class TestBitIdentity:
    @pytest.fixture(scope="class")
    def plain_result(self, tmp_path_factory):
        cache = tmp_path_factory.mktemp("obs-off")
        return MuffinPipeline(tiny_spec(), cache_dir=cache).run()

    @pytest.fixture(scope="class")
    def traced_result(self, tmp_path_factory):
        cache = tmp_path_factory.mktemp("obs-on")
        trace_path = cache / "trace.jsonl"
        spec = tiny_spec(
            obs=ObsSpec(trace_path=str(trace_path), metrics_enabled=True)
        )
        result = MuffinPipeline(spec, cache_dir=cache).run()
        return result, trace_path

    def test_telemetry_on_and_off_are_bit_identical(self, plain_result, traced_result):
        traced, _ = traced_result
        assert traced.result.result_hash() == plain_result.result.result_hash()

    def test_traced_run_wrote_a_span_tree(self, traced_result):
        _, trace_path = traced_result
        rows = load_spans(trace_path)
        names = [row["name"] for row in rows]
        assert "pipeline/run" in names
        assert "pipeline/stage/search" in names
        assert any(name == "search/batch" for name in names)
        # spans close inner-first, so the run root is the last row
        assert names[-1] == "pipeline/run"

    def test_traced_run_recorded_stage_metrics(self, traced_result):
        # the pipeline session enabled METRICS for the traced run; the
        # counters keep their totals after the session restored the flag
        stages = METRICS.get("repro_pipeline_stages_total")
        executed = {
            labels["stage"]
            for labels, payload in stages.series()
            if labels["status"] != "cached" and payload["value"] >= 1
        }
        # the traced run started from an empty cache: every stage executed
        assert {"dataset", "split", "pool", "search", "finalize"} <= executed

    def test_session_state_is_restored_after_run(self, traced_result):
        assert METRICS.enabled is False
        assert active_writer() is None

"""Unit tests for ModelPool."""

import numpy as np
import pytest

from repro.baselines import apply_fair_loss
from repro.zoo import ModelPool, TrainConfig


class TestModelPool:
    def test_build_trains_all_architectures(self, pool):
        assert len(pool) == 5
        assert all(model.is_trained for model in pool)
        assert set(pool.names) == {
            "ShuffleNet_V2_X1_0",
            "MobileNet_V3_Small",
            "MobileNet_V3_Large",
            "DenseNet121",
            "ResNet-18",
        }

    def test_get_accepts_aliases(self, pool):
        assert pool.get("R-18").name == "ResNet-18"
        assert pool.get("D121").name == "DenseNet121"

    def test_get_unknown_raises(self, pool):
        with pytest.raises(KeyError):
            pool.get("ResNet-50")  # valid architecture, not in this pool

    def test_contains_and_iteration(self, pool):
        assert "ResNet-18" in pool
        assert "not-a-model" not in pool
        assert len(list(iter(pool))) == len(pool)

    def test_models_selection_order(self, pool):
        models = pool.models(["DenseNet121", "ResNet-18"])
        assert [m.name for m in models] == ["DenseNet121", "ResNet-18"]

    def test_partition_lookup(self, pool):
        assert len(pool.partition("train")) > len(pool.partition("test"))
        with pytest.raises(KeyError):
            pool.partition("holdout")

    def test_prediction_cache_consistency(self, pool):
        direct = pool.get("ResNet-18").predict(pool.split.test)
        cached_once = pool.predict("ResNet-18", "test")
        cached_twice = pool.predict("ResNet-18", "test")
        np.testing.assert_array_equal(direct, cached_once)
        np.testing.assert_array_equal(cached_once, cached_twice)

    def test_evaluate_matches_model_evaluate(self, pool):
        via_pool = pool.evaluate("DenseNet121")
        direct = pool.get("DenseNet121").evaluate(pool.split.test)
        assert via_pool.accuracy == pytest.approx(direct.accuracy)

    def test_evaluate_all_keys(self, pool):
        evaluations = pool.evaluate_all()
        assert set(evaluations) == set(pool.names)

    def test_train_result_recorded(self, pool):
        result = pool.train_result("ResNet-18")
        assert len(result.losses) > 0

    def test_pareto_points(self, pool):
        points = pool.pareto_points(["age", "site"], include_accuracy=True)
        assert len(points) == len(pool)
        sample = points[0]
        assert set(sample.objectives) == {"U(age)", "U(site)", "accuracy"}
        assert sample.minimize["accuracy"] is False

    def test_summary_rows(self, pool):
        rows = pool.summary()
        assert len(rows) == len(pool)
        assert {"model", "parameters", "accuracy"} <= set(rows[0])

    def test_add_model(self, pool, isic_split, train_config):
        outcome = apply_fair_loss(
            pool.get("ResNet-18"), isic_split, "age", TrainConfig(epochs=10, batch_size=256)
        )
        before = len(pool)
        pool.add_model(outcome.model, outcome.train_result)
        assert len(pool) == before + 1
        assert outcome.model.label in pool.names
        evaluation = pool.evaluate(outcome.model.label)
        assert evaluation.accuracy > 0.3

    def test_add_untrained_model_rejected(self, pool, isic_split):
        untrained = pool.get("ResNet-18").clone_untrained(label="untrained-clone")
        with pytest.raises(ValueError):
            pool.add_model(untrained)

    def test_empty_architecture_list_rejected(self, isic_split, train_config):
        with pytest.raises(ValueError):
            ModelPool(isic_split, architecture_names=[], train_config=train_config)

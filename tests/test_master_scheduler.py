"""RunScheduler unit tests: priority ordering, cancellation, claiming."""

import threading

from repro.master.scheduler import RunScheduler


class TestClaimOrder:
    def test_priority_descending(self):
        scheduler = RunScheduler()
        scheduler.submit(1, priority=0)
        scheduler.submit(2, priority=5)
        scheduler.submit(3, priority=2)
        order = [scheduler.claim(timeout=0) for _ in range(3)]
        assert order == [2, 3, 1]

    def test_fifo_within_priority_level(self):
        scheduler = RunScheduler()
        for rid in (7, 3, 9):
            scheduler.submit(rid, priority=1)
        # Same priority: RID ascending, i.e. submission order for a
        # monotonic RID counter.
        assert [scheduler.claim(timeout=0) for _ in range(3)] == [3, 7, 9]

    def test_claim_empty_times_out(self):
        scheduler = RunScheduler()
        assert scheduler.claim(timeout=0.01) is None

    def test_claim_blocks_until_submit(self):
        scheduler = RunScheduler()
        claimed = []

        def claimer():
            claimed.append(scheduler.claim(timeout=5.0))

        thread = threading.Thread(target=claimer)
        thread.start()
        scheduler.submit(42)
        thread.join(timeout=5.0)
        assert claimed == [42]

    def test_duplicate_submit_ignored(self):
        scheduler = RunScheduler()
        scheduler.submit(1)
        scheduler.submit(1)
        assert len(scheduler) == 1
        assert scheduler.claim(timeout=0) == 1
        assert scheduler.claim(timeout=0) is None


class TestCancel:
    def test_cancel_before_claim_dequeues(self):
        scheduler = RunScheduler()
        scheduler.submit(1, priority=0)
        scheduler.submit(2, priority=9)
        assert scheduler.cancel(2) == "dequeued"
        assert scheduler.pending() == [1]
        assert scheduler.claim(timeout=0) == 1

    def test_cancel_mid_run_flags(self):
        scheduler = RunScheduler()
        scheduler.submit(5)
        assert scheduler.claim(timeout=0) == 5
        assert scheduler.cancel(5) == "flagged"
        assert scheduler.is_cancelled(5)

    def test_cancel_unknown(self):
        scheduler = RunScheduler()
        assert scheduler.cancel(99) == "unknown"

    def test_release_clears_cancel_flag(self):
        scheduler = RunScheduler()
        scheduler.submit(5)
        scheduler.claim(timeout=0)
        scheduler.cancel(5)
        scheduler.release(5)
        assert not scheduler.is_cancelled(5)
        # Resubmission after a requeue starts with a clean slate.
        scheduler.submit(5)
        assert scheduler.claim(timeout=0) == 5
        assert not scheduler.is_cancelled(5)

    def test_cancel_does_not_disturb_heap_order(self):
        scheduler = RunScheduler()
        for rid, priority in [(1, 3), (2, 7), (3, 5), (4, 1)]:
            scheduler.submit(rid, priority=priority)
        assert scheduler.cancel(3) == "dequeued"
        assert [scheduler.claim(timeout=0) for _ in range(3)] == [2, 1, 4]

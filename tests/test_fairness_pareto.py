"""Unit tests for repro.fairness.pareto."""

import pytest

from repro.fairness import (
    dominates,
    front_advancement,
    hypervolume_2d,
    ideal_distance,
    make_point,
    pareto_front,
)


def P(name, a, b, acc=None):
    objectives = {"A": a, "B": b}
    maximize = []
    if acc is not None:
        objectives["acc"] = acc
        maximize.append("acc")
    return make_point(name, objectives, maximize=maximize)


class TestDominance:
    def test_strict_domination(self):
        assert dominates(P("x", 0.1, 0.1), P("y", 0.2, 0.2), ["A", "B"])

    def test_equal_points_do_not_dominate(self):
        assert not dominates(P("x", 0.1, 0.1), P("y", 0.1, 0.1), ["A", "B"])

    def test_tradeoff_points_do_not_dominate(self):
        assert not dominates(P("x", 0.1, 0.3), P("y", 0.3, 0.1), ["A", "B"])
        assert not dominates(P("y", 0.3, 0.1), P("x", 0.1, 0.3), ["A", "B"])

    def test_maximized_objective_flips_direction(self):
        better_acc = P("x", 0.1, 0.1, acc=0.9)
        worse_acc = P("y", 0.1, 0.1, acc=0.8)
        assert dominates(better_acc, worse_acc, ["A", "B", "acc"])
        assert not dominates(worse_acc, better_acc, ["A", "B", "acc"])

    def test_missing_objective_raises(self):
        with pytest.raises(KeyError):
            dominates(P("x", 0.1, 0.2), make_point("y", {"A": 0.1}), ["A", "B"])


class TestParetoFront:
    def test_front_excludes_dominated(self):
        points = [P("good", 0.1, 0.1), P("bad", 0.5, 0.5), P("trade", 0.05, 0.3)]
        names = {p.name for p in pareto_front(points, ["A", "B"])}
        assert names == {"good", "trade"}

    def test_all_nondominated_kept(self):
        points = [P("a", 0.1, 0.4), P("b", 0.2, 0.3), P("c", 0.3, 0.2)]
        assert len(pareto_front(points, ["A", "B"])) == 3

    def test_empty_input(self):
        assert pareto_front([], ["A", "B"]) == []

    def test_duplicate_points_both_kept(self):
        points = [P("a", 0.1, 0.1), P("b", 0.1, 0.1)]
        assert len(pareto_front(points, ["A", "B"])) == 2

    def test_default_keys(self):
        points = [P("a", 0.1, 0.9), P("b", 0.9, 0.1)]
        assert len(pareto_front(points)) == 2


class TestFrontAdvancement:
    def test_challenger_advances(self):
        baseline = [P("base1", 0.3, 0.3), P("base2", 0.2, 0.5)]
        challenger = [P("new", 0.1, 0.1)]
        result = front_advancement(baseline, challenger, ["A", "B"])
        assert result["challenger_advances"]
        assert "new" in result["undominated_challengers"]
        assert set(result["dominated_baseline"]) == {"base1", "base2"}

    def test_challenger_fails_to_advance(self):
        baseline = [P("base", 0.05, 0.05)]
        challenger = [P("new", 0.2, 0.2)]
        result = front_advancement(baseline, challenger, ["A", "B"])
        assert not result["challenger_advances"]

    def test_partial_advance(self):
        baseline = [P("base", 0.2, 0.2)]
        challenger = [P("better_A", 0.1, 0.3), P("worse", 0.5, 0.5)]
        result = front_advancement(baseline, challenger, ["A", "B"])
        assert result["undominated_challengers"] == ["better_A"]


class TestHypervolume:
    def test_single_point_area(self):
        points = [P("a", 0.2, 0.3)]
        assert hypervolume_2d(points, ["A", "B"], reference=(1.0, 1.0)) == pytest.approx(0.8 * 0.7)

    def test_better_front_has_larger_volume(self):
        good = [P("a", 0.1, 0.1)]
        bad = [P("b", 0.5, 0.5)]
        ref = (1.0, 1.0)
        assert hypervolume_2d(good, ["A", "B"], ref) > hypervolume_2d(bad, ["A", "B"], ref)

    def test_multiple_points_do_not_double_count(self):
        points = [P("a", 0.2, 0.6), P("b", 0.6, 0.2)]
        volume = hypervolume_2d(points, ["A", "B"], reference=(1.0, 1.0))
        assert volume == pytest.approx(0.8 * 0.4 + 0.4 * 0.4)

    def test_reference_must_be_worse(self):
        with pytest.raises(ValueError):
            hypervolume_2d([P("a", 0.5, 0.5)], ["A", "B"], reference=(0.1, 0.1))

    def test_empty_points(self):
        assert hypervolume_2d([], ["A", "B"], reference=(1.0, 1.0)) == 0.0

    def test_requires_two_keys(self):
        with pytest.raises(ValueError):
            hypervolume_2d([P("a", 0.5, 0.5)], ["A"], reference=(1.0, 1.0))


class TestIdealDistance:
    def test_distance_to_origin(self):
        point = P("a", 0.3, 0.4)
        assert ideal_distance(point, ["A", "B"], {"A": 0.0, "B": 0.0}) == pytest.approx(0.5)

    def test_zero_distance_at_ideal(self):
        point = P("a", 0.1, 0.2)
        assert ideal_distance(point, ["A", "B"], {"A": 0.1, "B": 0.2}) == pytest.approx(0.0)


class TestObjectiveKeyValidation:
    """Mismatched objective key sets must fail loudly (regression).

    ``pareto_front`` used to take the keys of ``points[0]`` on faith: a
    point with extra objectives was silently compared on a subset, and a
    point with missing objectives crashed deep inside ``dominates``.
    """

    def test_pareto_front_rejects_mismatched_key_sets(self):
        points = [P("a", 0.1, 0.2), make_point("b", {"A": 0.1, "C": 0.2})]
        with pytest.raises(ValueError, match="point 'b' has objectives"):
            pareto_front(points)

    def test_pareto_front_rejects_extra_objectives(self):
        points = [P("a", 0.1, 0.2), make_point("b", {"A": 0.1, "B": 0.2, "C": 0.0})]
        with pytest.raises(ValueError, match="all points must share one objective set"):
            pareto_front(points)

    def test_explicit_keys_allow_superset_objectives(self):
        points = [P("a", 0.1, 0.2), make_point("b", {"A": 0.5, "B": 0.5, "C": 0.0})]
        names = {p.name for p in pareto_front(points, ["A", "B"])}
        assert names == {"a"}

    def test_explicit_keys_reject_missing_objective(self):
        points = [P("a", 0.1, 0.2), make_point("b", {"A": 0.5})]
        with pytest.raises(ValueError, match="point 'b' lacks compared objective"):
            pareto_front(points, ["A", "B"])

    def test_front_advancement_validates_both_sides(self):
        baseline = [P("base", 0.2, 0.2)]
        challenger = [make_point("ch", {"A": 0.1, "C": 0.1})]
        with pytest.raises(ValueError, match="objective"):
            front_advancement(baseline, challenger)

    def test_front_advancement_with_consistent_points(self):
        baseline = [P("base", 0.3, 0.3)]
        challenger = [P("ch", 0.1, 0.1)]
        outcome = front_advancement(baseline, challenger)
        assert outcome["challenger_advances"] is True
        assert outcome["dominated_baseline"] == ["base"]

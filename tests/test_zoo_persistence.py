"""Unit tests for saving/loading trained zoo models and pools."""

import numpy as np
import pytest

from repro.zoo import load_model, load_pool, save_model, save_pool


class TestModelPersistence:
    def test_roundtrip_preserves_predictions(self, pool, isic_split, tmp_path):
        model = pool.get("ResNet-18")
        path = save_model(model, tmp_path / "resnet18.json")
        restored = load_model(path)
        np.testing.assert_allclose(
            restored.predict_logits(isic_split.test),
            model.predict_logits(isic_split.test),
        )
        assert restored.label == model.label
        assert restored.is_trained

    def test_untrained_model_rejected(self, pool, tmp_path):
        untrained = pool.get("ResNet-18").clone_untrained(label="u")
        with pytest.raises(ValueError):
            save_model(untrained, tmp_path / "u.json")

    def test_overwrite_guard(self, pool, tmp_path):
        model = pool.get("ResNet-18")
        path = save_model(model, tmp_path / "resnet18.json")
        with pytest.raises(FileExistsError):
            save_model(model, path)
        assert save_model(model, path, overwrite=True) == path

    def test_default_seed_is_process_independent(self, isic_dataset):
        """Two default-constructed models of the same architecture agree."""
        from repro.zoo import ZooModel

        a = ZooModel.from_name("DenseNet121", isic_dataset.feature_dim, 8)
        b = ZooModel.from_name("DenseNet121", isic_dataset.feature_dim, 8)
        idx = np.arange(10)
        np.testing.assert_allclose(
            a.features(isic_dataset, idx), b.features(isic_dataset, idx)
        )


class TestPoolPersistence:
    def test_pool_roundtrip(self, pool, isic_split, tmp_path):
        manifest = save_pool(pool, tmp_path / "pool")
        assert manifest.exists()
        restored = load_pool(tmp_path / "pool", isic_split)
        assert set(restored.names) == set(pool.names)
        for name in pool.names:
            np.testing.assert_allclose(
                restored.predict_proba(name, "test"), pool.predict_proba(name, "test")
            )

    def test_pool_overwrite_guard(self, pool, tmp_path):
        save_pool(pool, tmp_path / "pool")
        with pytest.raises(FileExistsError):
            save_pool(pool, tmp_path / "pool")
        save_pool(pool, tmp_path / "pool", overwrite=True)

    def test_load_pool_checks_feature_dim(self, pool, fitz_split, tmp_path):
        save_pool(pool, tmp_path / "pool")
        # The Fitzpatrick split has the same feature_dim by default, so fake a
        # mismatch by asserting the guard logic directly on a wrong split only
        # when dimensions differ; otherwise loading should simply succeed.
        if fitz_split.train.feature_dim != pool.split.train.feature_dim:
            with pytest.raises(ValueError):
                load_pool(tmp_path / "pool", fitz_split)
        else:
            restored = load_pool(tmp_path / "pool", fitz_split)
            assert len(restored) == len(pool)

"""Tests of the generic component registry and its concrete instances."""

import pytest

from repro.registry import (
    DuplicateComponentError,
    Registry,
    UnknownComponentError,
)


class TestGenericRegistry:
    def test_register_and_get(self):
        registry = Registry("widget")
        registry.register("a", 1)
        assert registry.get("a") == 1
        assert registry["a"] == 1
        assert "a" in registry
        assert registry.names() == ["a"]

    def test_decorator_registration(self):
        registry = Registry("widget")

        @registry.register("double")
        def double(x):
            return 2 * x

        assert registry.get("double")(4) == 8

    def test_bare_decorator_uses_function_name(self):
        registry = Registry("widget")

        @registry.register
        def triple(x):
            return 3 * x

        assert registry.get("triple")(3) == 9

    def test_aliases_resolve_to_canonical(self):
        registry = Registry("widget")
        registry.register("canonical", "value", aliases=("alt", "other"))
        assert registry.get("alt") == "value"
        assert registry.canonical_name("other") == "canonical"
        assert registry.names() == ["canonical"]
        assert registry.aliases() == {"alt": "canonical", "other": "canonical"}

    def test_unknown_name_suggests_close_matches(self):
        registry = Registry("widget")
        registry.register("weighted", 1)
        registry.register("uniform", 2)
        with pytest.raises(UnknownComponentError) as excinfo:
            registry.get("weigthed")
        assert "weighted" in str(excinfo.value)
        assert "did you mean" in str(excinfo.value)
        # UnknownComponentError is a KeyError, so dict-style callers still work.
        assert isinstance(excinfo.value, KeyError)

    def test_duplicate_registration_rejected(self):
        registry = Registry("widget")
        registry.register("x", 1)
        with pytest.raises(DuplicateComponentError):
            registry.register("x", 2)
        assert isinstance(DuplicateComponentError("widget", "x"), ValueError)
        registry.register("x", 2, overwrite=True)
        assert registry.get("x") == 2

    def test_duplicate_alias_rejected(self):
        registry = Registry("widget")
        registry.register("x", 1, aliases=("y",))
        with pytest.raises(DuplicateComponentError):
            registry.register("y", 2)
        with pytest.raises(DuplicateComponentError):
            registry.alias("y", "x")

    def test_alias_of_unknown_target_rejected(self):
        registry = Registry("widget")
        with pytest.raises(UnknownComponentError):
            registry.alias("a", "missing")

    def test_unregister_removes_entry_and_aliases(self):
        registry = Registry("widget")
        registry.register("x", 1, aliases=("y",))
        registry.unregister("x")
        assert "x" not in registry and "y" not in registry

    def test_mapping_protocol(self):
        registry = Registry("widget")
        registry.register("a", 1)
        registry.register("b", 2)
        assert list(registry) == ["a", "b"]
        assert len(registry) == 2
        assert dict(registry.items()) == {"a": 1, "b": 2}


class TestBuiltinRegistries:
    def test_every_component_family_is_populated(self):
        from repro.api import available_components

        components = available_components()
        assert "rnn" in components["controllers"]
        assert "random" in components["controllers"]
        assert "weighted" in components["proxy_builders"]
        assert "uniform" in components["proxy_builders"]
        assert "multi_fairness" in components["rewards"]
        assert {"reward", "balance", "per_attribute", "dominating"} <= set(
            components["selection_strategies"]
        )
        assert "synthetic_isic" in components["datasets"]
        assert "synthetic_fitzpatrick" in components["datasets"]
        assert "MobileNet_V3_Small" in components["architectures"]
        assert "fig1" in components["experiments"]

    def test_dataset_aliases(self):
        from repro.data import DATASETS

        assert DATASETS.canonical_name("isic") == "synthetic_isic"
        assert DATASETS.canonical_name("fitzpatrick17k") == "synthetic_fitzpatrick"

    def test_architecture_registry_backs_lookup(self):
        from repro.zoo import ARCHITECTURE_REGISTRY, get_architecture

        assert ARCHITECTURE_REGISTRY.get("R-18") is get_architecture("ResNet-18")

    def test_selection_strategy_unknown_metric_suggests(self):
        import numpy as np

        from repro.core import select_record
        from repro.core.results import EpisodeRecord, MuffinSearchResult
        from repro.core.search_space import FusingCandidate
        from repro.fairness.metrics import FairnessEvaluation

        record = EpisodeRecord(
            episode=0,
            candidate=FusingCandidate(("A", "B"), (8,), "relu"),
            reward=1.0,
            evaluation=FairnessEvaluation(accuracy=0.8, unfairness={"age": 0.2}),
        )
        result = MuffinSearchResult([record], attributes=["age"])
        assert select_record(result, "reward") is record
        assert select_record(result, "age") is record
        with pytest.raises(KeyError) as excinfo:
            select_record(result, "rewardd")
        assert "did you mean" in str(excinfo.value)


class TestSearchConfigRegistryValidation:
    def test_unknown_controller_rejected_with_suggestion(self):
        from repro.core import SearchConfig

        with pytest.raises(ValueError) as excinfo:
            SearchConfig(controller="rnnn")
        assert "rnn" in str(excinfo.value)

    def test_eval_partition_validated(self):
        from repro.core import SearchConfig

        with pytest.raises(ValueError) as excinfo:
            SearchConfig(eval_partition="vall")
        assert "eval_partition" in str(excinfo.value)
        SearchConfig(eval_partition="test")  # all real partitions accepted

    def test_unknown_proxy_builder_rejected(self):
        from repro.core import SearchConfig

        with pytest.raises(ValueError):
            SearchConfig(proxy_builder="weigthed")
        assert SearchConfig(proxy_builder="uniform").effective_proxy_builder == "uniform"
        assert SearchConfig(use_weighted_proxy=False).effective_proxy_builder == "uniform"
        assert SearchConfig().effective_proxy_builder == "weighted"


class TestCustomControllerPlugin:
    def test_registered_controller_drives_a_search(self, pool):
        """A plugin controller registered by name is usable end to end."""
        from repro.core import CONTROLLERS, HeadTrainConfig, MuffinSearch, SearchConfig
        from repro.core.controller import RandomController

        class GreedyFirstChoice(RandomController):
            def sample(self, rng=None, greedy=False):
                episode = super().sample(rng, greedy)
                episode.actions = [0 for _ in episode.actions]
                from repro.core.controller import Episode

                return Episode(actions=episode.actions, log_probs=[], entropies=[])

        CONTROLLERS.register(
            "greedy_first",
            lambda space, config: GreedyFirstChoice(space, seed=config.seed),
            overwrite=True,
        )
        try:
            search = MuffinSearch(
                pool,
                attributes=["age", "site"],
                base_model="MobileNet_V3_Small",
                search_config=SearchConfig(
                    episodes=2, episode_batch=2, controller="greedy_first"
                ),
                head_config=HeadTrainConfig(epochs=3),
            )
            result = search.run()
            assert len(result) == 2
            # Every decision was forced to choice 0.
            first = search.search_space.decode([0] * search.search_space.num_steps)
            assert result.records[0].candidate == first
        finally:
            CONTROLLERS.unregister("greedy_first")

"""Unit tests for repro.data.splits."""

import numpy as np
import pytest

from repro.data import PAPER_SPLIT, split_dataset, stratified_split_indices


class TestStratifiedIndices:
    def test_partitions_are_disjoint_and_complete(self):
        labels = np.random.default_rng(0).integers(0, 5, size=500)
        train, val, test = stratified_split_indices(labels, seed=1)
        combined = np.concatenate([train, val, test])
        assert len(combined) == 500
        assert len(np.unique(combined)) == 500

    def test_fractions_respected(self):
        labels = np.random.default_rng(0).integers(0, 4, size=1000)
        train, val, test = stratified_split_indices(labels, seed=0)
        assert len(train) / 1000 == pytest.approx(0.64, abs=0.03)
        assert len(val) / 1000 == pytest.approx(0.16, abs=0.03)
        assert len(test) / 1000 == pytest.approx(0.20, abs=0.03)

    def test_every_class_in_every_partition(self):
        labels = np.repeat(np.arange(6), 30)
        train, val, test = stratified_split_indices(labels, seed=2)
        for partition in (train, val, test):
            assert set(labels[partition]) == set(range(6))

    def test_small_class_still_split(self):
        labels = np.array([0] * 100 + [1] * 4)
        train, val, test = stratified_split_indices(labels, seed=0)
        assert (labels[train] == 1).any()
        assert (labels[test] == 1).any()

    def test_deterministic_given_seed(self):
        labels = np.random.default_rng(1).integers(0, 3, size=300)
        a = stratified_split_indices(labels, seed=42)
        b = stratified_split_indices(labels, seed=42)
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x, y)

    def test_different_seed_differs(self):
        labels = np.random.default_rng(1).integers(0, 3, size=300)
        a = stratified_split_indices(labels, seed=1)[0]
        b = stratified_split_indices(labels, seed=2)[0]
        assert not np.array_equal(a, b)

    def test_validation(self):
        labels = np.zeros(10, dtype=int)
        with pytest.raises(ValueError):
            stratified_split_indices(labels, fractions=(0.5, 0.2, 0.2))
        with pytest.raises(ValueError):
            stratified_split_indices(labels, fractions=(1.0, 0.0, 0.0))

    def test_paper_split_constant(self):
        assert sum(PAPER_SPLIT) == pytest.approx(1.0)
        assert PAPER_SPLIT == (0.64, 0.16, 0.20)


class TestSplitDataset:
    def test_split_sizes(self, isic_dataset):
        split = split_dataset(isic_dataset, seed=0)
        sizes = split.sizes()
        assert sizes["train"] + sizes["val"] + sizes["test"] == len(isic_dataset)
        assert sizes["train"] > sizes["test"] > 0

    def test_partitions_carry_attributes(self, isic_dataset):
        split = split_dataset(isic_dataset, seed=0)
        assert split.train.attributes.names == isic_dataset.attributes.names
        assert split.test.num_classes == isic_dataset.num_classes

    def test_indices_recorded(self, isic_dataset):
        split = split_dataset(isic_dataset, seed=0)
        np.testing.assert_array_equal(
            split.train.labels, isic_dataset.labels[split.train_indices]
        )

    def test_no_leakage_between_partitions(self, isic_dataset):
        split = split_dataset(isic_dataset, seed=3)
        assert not set(split.train_indices) & set(split.test_indices)
        assert not set(split.val_indices) & set(split.test_indices)

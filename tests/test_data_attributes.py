"""Unit tests for repro.data.attributes."""

import numpy as np
import pytest

from repro.data import (
    AttributeSet,
    AttributeSpec,
    fitzpatrick_attribute_set,
    fitzpatrick_skin_tone_spec,
    fitzpatrick_type_spec,
    isic_age_spec,
    isic_attribute_set,
    isic_gender_spec,
    isic_site_spec,
)


class TestAttributeSpec:
    def test_basic_properties(self):
        spec = AttributeSpec(
            name="camera",
            groups=("a", "b", "c"),
            unprivileged=("c",),
            difficulty={"c": 0.5},
            proportions={"a": 2.0, "b": 1.0, "c": 1.0},
        )
        assert spec.num_groups == 3
        assert spec.privileged == ("a", "b")
        assert spec.group_index("b") == 1
        assert spec.group_name(2) == "c"
        assert spec.is_unprivileged("c") and not spec.is_unprivileged("a")
        assert spec.unprivileged_indices() == (2,)
        assert spec.privileged_indices() == (0, 1)

    def test_difficulty_vector_defaults_to_zero(self):
        spec = AttributeSpec(name="x", groups=("p", "q"), difficulty={"q": 0.4})
        np.testing.assert_allclose(spec.difficulty_vector(), [0.0, 0.4])

    def test_proportion_vector_normalises(self):
        spec = AttributeSpec(name="x", groups=("p", "q"), proportions={"p": 3.0, "q": 1.0})
        np.testing.assert_allclose(spec.proportion_vector(), [0.75, 0.25])

    def test_proportion_defaults_to_uniform(self):
        spec = AttributeSpec(name="x", groups=("p", "q", "r"))
        np.testing.assert_allclose(spec.proportion_vector(), np.full(3, 1 / 3))

    def test_validation_errors(self):
        with pytest.raises(ValueError):
            AttributeSpec(name="x", groups=("only",))
        with pytest.raises(ValueError):
            AttributeSpec(name="x", groups=("a", "a"))
        with pytest.raises(ValueError):
            AttributeSpec(name="x", groups=("a", "b"), unprivileged=("z",))
        with pytest.raises(ValueError):
            AttributeSpec(name="x", groups=("a", "b"), difficulty={"z": 0.1})
        with pytest.raises(ValueError):
            AttributeSpec(name="x", groups=("a", "b"), difficulty={"a": 1.5})
        with pytest.raises(ValueError):
            AttributeSpec(name="x", groups=("a", "b"), proportions={"a": 0.0, "b": 1.0}).proportion_vector()

    def test_unknown_group_lookup(self):
        spec = AttributeSpec(name="x", groups=("a", "b"))
        with pytest.raises(KeyError):
            spec.group_index("missing")


class TestAttributeSet:
    def _set(self):
        return AttributeSet(
            [
                AttributeSpec(name="one", groups=("a", "b"), unprivileged=("b",)),
                AttributeSpec(name="two", groups=("x", "y", "z"), unprivileged=("z",)),
            ]
        )

    def test_ordering_and_lookup(self):
        attrs = self._set()
        assert attrs.names == ("one", "two")
        assert len(attrs) == 2
        assert "one" in attrs and "missing" not in attrs
        assert attrs["two"].num_groups == 3
        assert [spec.name for spec in attrs] == ["one", "two"]

    def test_subset_preserves_order(self):
        attrs = self._set()
        sub = attrs.subset(["two"])
        assert sub.names == ("two",)

    def test_unknown_attribute_raises(self):
        with pytest.raises(KeyError):
            self._set()["missing"]

    def test_duplicate_names_rejected(self):
        spec = AttributeSpec(name="dup", groups=("a", "b"))
        with pytest.raises(ValueError):
            AttributeSet([spec, spec])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            AttributeSet([])

    def test_to_dict_structure(self):
        payload = self._set().to_dict()
        assert set(payload) == {"one", "two"}
        assert payload["one"]["unprivileged"] == ["b"]


class TestPaperTaxonomies:
    def test_isic_age_groups(self):
        spec = isic_age_spec()
        assert spec.num_groups == 6
        assert set(spec.unprivileged) <= set(spec.groups)

    def test_isic_site_has_nine_groups(self):
        assert isic_site_spec().num_groups == 9

    def test_isic_gender_is_nearly_balanced_and_easy(self):
        spec = isic_gender_spec()
        assert spec.num_groups == 2
        assert max(spec.difficulty.values()) < 0.15

    def test_isic_attribute_set_order(self):
        assert isic_attribute_set().names == ("age", "site", "gender")

    def test_unprivileged_groups_are_harder(self):
        for spec in (isic_age_spec(), isic_site_spec(), fitzpatrick_skin_tone_spec()):
            unpriv = [spec.difficulty.get(g, 0.0) for g in spec.unprivileged]
            priv = [spec.difficulty.get(g, 0.0) for g in spec.privileged]
            assert min(unpriv) > max(priv)

    def test_fitzpatrick_taxonomy(self):
        attrs = fitzpatrick_attribute_set()
        assert attrs.names == ("skin_tone", "type")
        assert attrs["skin_tone"].num_groups == 6
        assert fitzpatrick_type_spec().num_groups == 3

    def test_fitzpatrick_darker_tones_are_unprivileged(self):
        spec = fitzpatrick_skin_tone_spec()
        assert "black" in spec.unprivileged
        assert "white" not in spec.unprivileged

"""Smoke tests for the experiment text renderers.

The render functions are pure formatting; these tests feed them the smallest
valid result structures and check the rendered text mentions the right
artefacts.  The full structures are exercised by tests/test_experiments.py
and the benchmark harness.
"""

from repro.experiments import render_fig1, render_fig3, render_fig9
from repro.experiments.fig9_ablations import FIG9A_HIDDEN, FIG9A_PAIR


class TestRenderFig1:
    def test_mentions_models_and_claims(self):
        results = {
            "rows": [
                {
                    "model": "ResNet-18",
                    "accuracy": 0.82,
                    "U(age)": 0.2,
                    "U(site)": 0.4,
                    "U(gender)": 0.02,
                }
            ],
            "claims": {
                "max_gender_unfairness": 0.02,
                "best_on_age": "ResNet-18",
                "best_on_site": "DenseNet121",
                "pareto_frontier_age_site": ["ResNet-18"],
            },
        }
        text = render_fig1(results)
        assert "ResNet-18" in text
        assert "0.12" in text  # the paper's reference threshold is quoted


class TestRenderFig3:
    def test_mentions_oracle_and_disagreement(self):
        results = {
            "attribute": "site",
            "rows": [{"case": "00 (both wrong)", "fraction": 0.1}],
            "accuracy_rows": [{"model": "oracle union", "unprivileged": 0.9, "privileged": 0.8}],
            "claims": {
                "disagreement_fraction": 0.16,
                "oracle_unprivileged_accuracy": 0.9,
            },
        }
        text = render_fig3(results)
        assert "oracle union" in text
        assert "15.93%" in text  # paper-reported figure quoted for comparison


class TestRenderFig9:
    def test_renders_both_panels(self):
        results = {
            "fig9a": {"rows": [{"training_data": "weighted", "U(age)": 0.2}]},
            "fig9b": {"rows": [{"paired_models": 1, "reward": 5.0}]},
        }
        text = render_fig9(results)
        assert "Figure 9(a)" in text and "Figure 9(b)" in text


class TestFig9Constants:
    def test_fixed_structure_matches_paper(self):
        # The paper's Figure 9(a) uses MLP [16,16,16,8] on D121 + R18.
        assert FIG9A_HIDDEN == (16, 16, 16)
        assert FIG9A_PAIR == ("DenseNet121", "ResNet-18")

"""Unit tests for the zoo head trainer."""

import numpy as np
import pytest

from repro.zoo import TrainConfig, ZooModel, train_model


@pytest.fixture
def fresh_model(isic_split):
    train = isic_split.train
    return ZooModel.from_name("MobileNet_V3_Large", train.feature_dim, train.num_classes, seed=0)


class TestTrainConfig:
    def test_defaults_follow_paper_recipe(self):
        config = TrainConfig()
        assert config.lr == pytest.approx(0.1)
        assert config.lr_decay == pytest.approx(0.9)
        assert config.lr_decay_every == 20

    def test_invalid_optimizer(self, fresh_model, isic_split):
        with pytest.raises(ValueError):
            train_model(fresh_model, isic_split.train, config=TrainConfig(epochs=1, optimizer="rmsprop"))


class TestTrainModel:
    def test_loss_decreases_and_accuracy_improves(self, fresh_model, isic_split):
        result = train_model(
            fresh_model, isic_split.train, isic_split.val, TrainConfig(epochs=20, batch_size=256)
        )
        assert result.losses[-1] < result.losses[0]
        assert result.train_accuracy[-1] > 0.5
        assert len(result.val_accuracy) == 20
        assert fresh_model.is_trained

    def test_lr_schedule_applied(self, fresh_model, isic_split):
        result = train_model(
            fresh_model,
            isic_split.train,
            config=TrainConfig(epochs=25, lr=0.1, lr_decay=0.9, lr_decay_every=20),
        )
        assert result.final_lr == pytest.approx(0.1 * 0.9)

    def test_sample_weights_change_outcome(self, isic_split):
        train = isic_split.train
        model_a = ZooModel.from_name("ResNet-34", train.feature_dim, train.num_classes, seed=0)
        model_b = ZooModel.from_name("ResNet-34", train.feature_dim, train.num_classes, seed=0)
        config = TrainConfig(epochs=10, batch_size=256, seed=0)
        train_model(model_a, train, config=config)
        weights = np.ones(len(train))
        weights[train.unprivileged_mask("site")] = 6.0
        train_model(model_b, train, config=config, sample_weights=weights)
        assert not np.allclose(
            model_a.predict_logits(isic_split.test), model_b.predict_logits(isic_split.test)
        )

    def test_sample_weight_shape_validated(self, fresh_model, isic_split):
        with pytest.raises(ValueError):
            train_model(
                fresh_model,
                isic_split.train,
                config=TrainConfig(epochs=1),
                sample_weights=np.ones(3),
            )

    def test_fair_loss_attribute_used(self, isic_split):
        train = isic_split.train
        model = ZooModel.from_name("DenseNet201", train.feature_dim, train.num_classes, seed=0)
        config = TrainConfig(epochs=10, fair_attribute="age", fairness_weight=2.0)
        result = train_model(model, train, config=config)
        assert model.is_trained
        assert len(result.losses) == 10

    def test_adam_option(self, isic_split):
        train = isic_split.train
        model = ZooModel.from_name("ShuffleNet_V2_X0_5", train.feature_dim, train.num_classes, seed=0)
        result = train_model(model, train, config=TrainConfig(epochs=10, optimizer="adam", lr=0.01))
        assert result.train_accuracy[-1] > 0.4

    def test_train_result_to_dict(self, fresh_model, isic_split):
        result = train_model(fresh_model, isic_split.train, config=TrainConfig(epochs=2))
        payload = result.to_dict()
        assert len(payload["losses"]) == 2

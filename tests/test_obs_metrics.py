"""The metrics half of repro.obs: instruments, rendering, discipline."""

from __future__ import annotations

import math

import pytest

from repro.obs import (
    METRICS,
    DEFAULT_LATENCY_BUCKETS_MS,
    LabelCardinalityError,
    MetricsError,
    MetricsRegistry,
)
from repro.registry import UnknownComponentError


@pytest.fixture
def registry():
    return MetricsRegistry(enabled=True)


# ----------------------------------------------------------------------
# Counters and gauges
# ----------------------------------------------------------------------
class TestCounter:
    def test_inc_accumulates_per_label_set(self, registry):
        counter = registry.counter("jobs_total", "Jobs.", labelnames=("status",))
        counter.inc(status="ok")
        counter.inc(2.0, status="ok")
        counter.inc(status="failed")
        assert counter.value(status="ok") == 3.0
        assert counter.value(status="failed") == 1.0

    def test_unobserved_series_reads_zero(self, registry):
        counter = registry.counter("jobs_total", "Jobs.", labelnames=("status",))
        assert counter.value(status="never-seen") == 0.0

    def test_negative_increment_is_rejected(self, registry):
        counter = registry.counter("jobs_total")
        with pytest.raises(MetricsError, match="cannot decrease"):
            counter.inc(-1.0)

    def test_label_set_mismatch_is_rejected(self, registry):
        counter = registry.counter("jobs_total", labelnames=("status",))
        with pytest.raises(MetricsError, match="declares labels"):
            counter.inc(outcome="ok")


class TestGauge:
    def test_set_inc_dec(self, registry):
        gauge = registry.gauge("depth")
        gauge.set(5.0)
        gauge.inc(2.0)
        gauge.dec(4.0)
        assert gauge.value() == 3.0


# ----------------------------------------------------------------------
# Histogram edge cases (satellite: empty / single / boundary / cardinality)
# ----------------------------------------------------------------------
class TestHistogramEdgeCases:
    def test_empty_histogram_quantiles_are_none(self, registry):
        hist = registry.histogram("latency", buckets=(1.0, 5.0, 10.0))
        assert hist.summary() == {
            "count": 0,
            "sum": 0.0,
            "p50": None,
            "p95": None,
            "p99": None,
        }

    def test_single_observation(self, registry):
        hist = registry.histogram("latency", buckets=(1.0, 5.0, 10.0))
        hist.observe(3.0)
        summary = hist.summary()
        assert summary["count"] == 1
        assert summary["sum"] == 3.0
        # the lone observation sits in (1, 5]; every quantile lands there
        for q in ("p50", "p95", "p99"):
            assert 1.0 < summary[q] <= 5.0

    def test_bucket_boundary_is_upper_inclusive(self, registry):
        hist = registry.histogram("latency", buckets=(1.0, 5.0, 10.0))
        hist.observe(5.0)  # le semantics: lands in the 5.0 bucket, not 10.0
        labels, payload = hist.series()[0]
        assert payload["buckets"] == [0, 1, 0, 0]

    def test_overflow_lands_in_inf_bucket(self, registry):
        hist = registry.histogram("latency", buckets=(1.0, 5.0, 10.0))
        hist.observe(1e9)
        labels, payload = hist.series()[0]
        assert payload["buckets"] == [0, 0, 0, 1]
        # the +Inf bucket has no finite upper bound: report the last one
        assert hist.summary()["p50"] == 10.0

    def test_quantile_interpolation_is_deterministic(self, registry):
        hist = registry.histogram("latency", buckets=(1.0, 5.0, 10.0))
        for value in (0.5, 1.0, 4.0, 9.0, 20.0):
            hist.observe(value)
        summary = hist.summary()
        assert summary["count"] == 5
        # rank 2.5 of 5 falls in the (1, 5] bucket: 1 + (2.5-2)/1 * 4 = 3.0
        assert summary["p50"] == pytest.approx(3.0)

    def test_label_cardinality_guard(self, registry):
        hist = registry.histogram("latency", labelnames=("who",))
        hist.max_label_sets = 2
        hist.observe(1.0, who="a")
        hist.observe(1.0, who="b")
        with pytest.raises(LabelCardinalityError) as excinfo:
            hist.observe(1.0, who="c")
        message = str(excinfo.value)
        assert "label-cardinality ceiling of 2" in message
        assert "span attributes" in message

    def test_bucket_bounds_must_increase(self, registry):
        with pytest.raises(MetricsError, match="strictly increasing"):
            registry.histogram("bad", buckets=(5.0, 1.0))
        with pytest.raises(MetricsError, match="at least one bucket"):
            registry.histogram("empty", buckets=())


# ----------------------------------------------------------------------
# Registry semantics
# ----------------------------------------------------------------------
class TestRegistry:
    def test_declaration_is_get_or_create(self, registry):
        first = registry.counter("jobs_total", labelnames=("status",))
        second = registry.counter("jobs_total", labelnames=("status",))
        assert first is second

    def test_kind_mismatch_is_rejected(self, registry):
        registry.counter("jobs_total")
        with pytest.raises(MetricsError, match="already registered as counter"):
            registry.gauge("jobs_total")

    def test_label_schema_mismatch_is_rejected(self, registry):
        registry.counter("jobs_total", labelnames=("status",))
        with pytest.raises(MetricsError, match="already registered with labels"):
            registry.counter("jobs_total", labelnames=("outcome",))

    def test_bucket_mismatch_is_rejected(self, registry):
        registry.histogram("latency", buckets=(1.0, 2.0))
        with pytest.raises(MetricsError, match="already registered with buckets"):
            registry.histogram("latency", buckets=(1.0, 3.0))

    def test_unknown_metric_gets_did_you_mean(self, registry):
        registry.counter("repro_serve_requests_total")
        with pytest.raises(UnknownComponentError, match="did you mean"):
            registry.get("repro_serve_request_total")

    def test_disabled_registry_records_nothing(self):
        registry = MetricsRegistry(enabled=False)
        counter = registry.counter("jobs_total")
        hist = registry.histogram("latency", buckets=(1.0,))
        counter.inc()
        hist.observe(0.5)
        assert counter.value() == 0.0
        assert hist.summary()["count"] == 0
        assert counter.series() == []

    def test_reset_clears_series_but_keeps_declarations(self, registry):
        counter = registry.counter("jobs_total")
        counter.inc()
        registry.reset()
        assert counter.value() == 0.0
        assert "jobs_total" in registry


# ----------------------------------------------------------------------
# Exposition
# ----------------------------------------------------------------------
class TestExposition:
    def _populated(self):
        registry = MetricsRegistry(enabled=True)
        counter = registry.counter(
            "requests_total", "Requests served.", labelnames=("outcome",)
        )
        counter.inc(3, outcome="ok")
        counter.inc(1, outcome="error")
        hist = registry.histogram(
            "latency_ms", "Latency.", buckets=(1.0, 5.0, 10.0)
        )
        for value in (0.5, 4.0, 12.0):
            hist.observe(value)
        return registry

    def test_prometheus_text_structure(self):
        text = self._populated().render_prometheus()
        lines = text.splitlines()
        assert "# HELP requests_total Requests served." in lines
        assert "# TYPE requests_total counter" in lines
        assert 'requests_total{outcome="ok"} 3.0' in lines
        assert 'requests_total{outcome="error"} 1.0' in lines
        assert "# TYPE latency_ms histogram" in lines
        assert 'latency_ms_bucket{le="1.0"} 1' in lines
        assert 'latency_ms_bucket{le="5.0"} 2' in lines
        assert 'latency_ms_bucket{le="10.0"} 2' in lines
        assert 'latency_ms_bucket{le="+Inf"} 3' in lines
        assert "latency_ms_sum 16.5" in lines
        assert "latency_ms_count 3" in lines
        assert text.endswith("\n")

    def test_prometheus_buckets_are_cumulative_and_monotone(self):
        text = self._populated().render_prometheus()
        counts = [
            int(line.rsplit(" ", 1)[1])
            for line in text.splitlines()
            if line.startswith("latency_ms_bucket")
        ]
        assert counts == sorted(counts)
        assert counts[-1] == 3  # +Inf equals _count

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry(enabled=True)
        counter = registry.counter("odd_total", labelnames=("path",))
        counter.inc(path='a"b\\c\nd')
        text = registry.render_prometheus()
        assert 'path="a\\"b\\\\c\\nd"' in text

    def test_json_rendering(self):
        document = self._populated().render_json()
        assert document["requests_total"]["type"] == "counter"
        series = document["requests_total"]["series"]
        assert {"labels": {"outcome": "ok"}, "value": 3.0} in series
        hist = document["latency_ms"]["series"][0]
        assert hist["count"] == 3
        assert hist["buckets"]["+Inf"] == 3

    def test_empty_registry_renders_empty(self):
        registry = MetricsRegistry()
        assert registry.render_prometheus() == ""
        assert registry.render_json() == {}


# ----------------------------------------------------------------------
# The process-wide registry the instrumented modules declare against
# ----------------------------------------------------------------------
class TestProcessWideRegistry:
    def test_instrumented_modules_share_metric_families(self):
        # importing the layers declares their instruments on METRICS;
        # execution.py and master/worker.py redeclare the same executor
        # family, which get-or-create must unify rather than duplicate
        import repro.core.execution  # noqa: F401
        import repro.master.worker  # noqa: F401
        import repro.serve.server  # noqa: F401
        import repro.api.pipeline  # noqa: F401

        names = METRICS.names()
        for expected in (
            "repro_executor_tasks_total",
            "repro_executor_map_seconds",
            "repro_executor_queue_wait_seconds",
            "repro_pipeline_stages_total",
            "repro_pipeline_stage_seconds",
            "repro_serve_requests_total",
            "repro_serve_request_latency_ms",
            "repro_serve_batch_rows",
            "repro_serve_queue_depth",
            "repro_master_runs_total",
            "repro_master_queue_depth",
            "repro_distributed_supervision_total",
            "repro_distributed_task_bytes_total",
            "repro_search_batches_total",
            "repro_search_episodes_total",
            "repro_search_task_bytes_total",
        ):
            assert expected in names
        assert names.count("repro_executor_tasks_total") == 1

    def test_global_registry_is_disabled_by_default(self):
        assert METRICS.enabled is False

    def test_serve_latency_buckets_are_the_deterministic_defaults(self):
        hist = METRICS.get("repro_serve_request_latency_ms")
        assert hist.buckets == DEFAULT_LATENCY_BUCKETS_MS
        assert all(
            b > 0 and not math.isinf(b) and not math.isnan(b) for b in hist.buckets
        )

"""Tests of the staged MuffinPipeline executor: artifacts, caching, resume."""

import pytest

from repro.api import (
    DatasetSpec,
    FinalizeSpec,
    MuffinPipeline,
    PipelineResult,
    PoolSpec,
    RunSpec,
    SearchSpec,
    run_spec,
)

ARCHS = ("MobileNet_V3_Small", "ResNet-18", "DenseNet121")


def tiny_spec(**search_overrides) -> RunSpec:
    search = dict(
        attributes=("age", "site"),
        base_model="MobileNet_V3_Small",
        episodes=4,
        episode_batch=2,
        head_epochs=5,
        seed=0,
    )
    search.update(search_overrides)
    return RunSpec(
        name="pipeline-test",
        dataset=DatasetSpec(name="synthetic_isic", num_samples=1200, seed=11, split_seed=2),
        pool=PoolSpec(architectures=ARCHS, epochs=10, batch_size=256, seed=4),
        search=SearchSpec(**search),
        finalize=FinalizeSpec(selection="reward", name="Muffin-test"),
    )


@pytest.fixture(scope="module")
def cache_dir(tmp_path_factory):
    return tmp_path_factory.mktemp("pipeline-cache")


@pytest.fixture(scope="module")
def first_run(cache_dir):
    return MuffinPipeline(tiny_spec(), cache_dir=cache_dir).run()


class TestPipelineRun:
    def test_all_stages_execute_in_order(self, first_run):
        assert [t.stage for t in first_run.timings] == [
            "dataset",
            "split",
            "pool",
            "search",
            "metrics",  # vectorized-engine share of the search wall-clock
            "training",  # head-training share of the search wall-clock
            "finalize",
            "export",
            "report",
        ]
        assert all(t.status == "ran" for t in first_run.timings)
        assert all(t.seconds >= 0 for t in first_run.timings)

    def test_artifacts_are_typed(self, first_run):
        assert len(first_run.result) == 4
        assert first_run.muffin.name == "Muffin-test"
        assert first_run.muffin.test_evaluation is not None
        assert set(first_run.pool.names) == set(ARCHS)
        assert first_run.report["run"] == "pipeline-test"
        assert len(first_run.report["top_episodes"]) <= 5

    def test_mapping_access_backward_compatible(self, first_run):
        assert first_run["muffin"] is first_run.muffin
        assert first_run["pool"] is first_run.pool
        assert first_run["result"] is first_run.result
        assert first_run["dataset"] is first_run.dataset
        assert first_run["split"] is first_run.split
        assert isinstance(first_run, PipelineResult)
        assert dict(first_run)["report"] is first_run.report
        with pytest.raises(KeyError):
            first_run["nonsense"]

    def test_report_contains_pool_and_search_sections(self, first_run):
        assert any(row["model"] == "ResNet-18" for row in first_run.report["pool"])
        assert first_run.report["search"]["episodes"] == 4


class TestResume:
    def test_second_run_resumes_from_cache(self, cache_dir, first_run):
        second = MuffinPipeline(tiny_spec(), cache_dir=cache_dir).run()
        status = {t.stage: t.status for t in second.timings}
        assert status["pool"] == "cached"
        assert status["search"] == "cached"
        assert status["finalize"] == "cached"
        assert status["export"] == "cached"
        assert status["report"] == "cached"
        # Deterministic cheap stages are rebuilt, not persisted.
        assert status["dataset"] == "rebuilt"
        assert second.resumed_stages == ["pool", "search", "finalize", "export", "report"]
        assert second.muffin.test_evaluation.accuracy == pytest.approx(
            first_run.muffin.test_evaluation.accuracy
        )
        assert [r.reward for r in second.result.records] == pytest.approx(
            [r.reward for r in first_run.result.records]
        )

    def test_editing_search_spec_keeps_pool_cache(self, cache_dir, first_run):
        edited = tiny_spec(episodes=6, seed=1)
        result = MuffinPipeline(edited, cache_dir=cache_dir).run()
        status = {t.stage: t.status for t in result.timings}
        assert status["pool"] == "cached"
        assert status["search"] == "ran"
        assert len(result.result) == 6

    def test_rerun_from_forces_recompute(self, cache_dir, first_run):
        result = MuffinPipeline(tiny_spec(), cache_dir=cache_dir).run(rerun_from="search")
        status = {t.stage: t.status for t in result.timings}
        assert status["pool"] == "cached"
        assert status["search"] == "ran"

    def test_resume_false_recomputes_everything(self, cache_dir, first_run):
        result = MuffinPipeline(tiny_spec(), cache_dir=cache_dir).run(resume=False)
        # "rebuilt" marks deterministic recomputation; nothing is loaded from cache.
        assert all(t.status in {"ran", "rebuilt"} for t in result.timings)
        assert result.resumed_stages == []

    def test_no_cache_dir_runs_in_memory(self):
        result = MuffinPipeline(tiny_spec(episodes=2)).run()
        assert result.cache_dir is None
        assert all(t.status == "ran" for t in result.timings)

    def test_repeated_run_on_one_instance_is_reproducible(self):
        """run() must not reuse a mutated search (trained controller, advanced RNG)."""
        pipeline = MuffinPipeline(tiny_spec(episodes=2))
        first = pipeline.run()
        second = pipeline.run(resume=False)
        fresh = MuffinPipeline(tiny_spec(episodes=2)).run()
        rewards = lambda r: [rec.reward for rec in r.result.records]
        assert rewards(second) == pytest.approx(rewards(first))
        assert rewards(second) == pytest.approx(rewards(fresh))

    def test_shared_cache_dir_alternating_specs_hits_cache(self, tmp_path):
        """Hash-keyed artifacts stay valid even after another spec used the dir."""
        a, b = tiny_spec(episodes=2), tiny_spec(episodes=3)
        MuffinPipeline(a, cache_dir=tmp_path).run()
        MuffinPipeline(b, cache_dir=tmp_path).run()
        third = MuffinPipeline(a, cache_dir=tmp_path).run()
        status = {t.stage: t.status for t in third.timings}
        assert status["pool"] == "cached"
        assert status["search"] == "cached"


class TestExportStage:
    def test_artifact_written_and_deployable(self, cache_dir, first_run):
        """The export stage yields a bundle that serves bit-identical predictions."""
        import numpy as np

        from repro.data import FeatureSchema
        from repro.zoo import load_fused_model

        assert first_run.artifact is not None
        assert first_run.artifact_path is not None
        assert first_run.artifact_path.exists()
        assert first_run.report["artifact"] == first_run.artifact_path.name

        loaded = load_fused_model(first_run.artifact_path)
        assert loaded.name == first_run.muffin.name
        assert loaded.metadata["spec_hash"] == first_run.spec.spec_hash()
        features = loaded.schema.features(first_run.split.test)
        np.testing.assert_array_equal(
            loaded.predict_features(features),
            first_run.muffin.fused.predict(first_run.split.test),
        )

    def test_save_artifact_to_custom_path(self, first_run, tmp_path):
        from repro.zoo import load_fused_model

        path = first_run.save_artifact(tmp_path / "bundle.json")
        assert load_fused_model(path).schema is not None
        with pytest.raises(FileExistsError):
            first_run.save_artifact(path)
        first_run.save_artifact(path, overwrite=True)

    def test_custom_filename_never_serves_stale_artifact(self, tmp_path):
        """A fixed export filename must not resurrect a bundle from an older spec."""
        from repro.api import ExportSpec

        spec = tiny_spec(episodes=2)
        spec.export = ExportSpec(filename="muffin.json")
        MuffinPipeline(spec, cache_dir=tmp_path).run()
        edited = tiny_spec(episodes=3)
        edited.export = ExportSpec(filename="muffin.json")
        second = MuffinPipeline(edited, cache_dir=tmp_path).run()
        status = {t.stage: t.status for t in second.timings}
        # The file exists under the same name but came from the old spec, so
        # the export stage must recompute, not report 'cached'.
        assert status["export"] == "ran"
        assert second.artifact["spec_hash"] == edited.spec_hash()

    def test_disabled_export_produces_no_artifact(self):
        from repro.api import ExportSpec

        spec = tiny_spec(episodes=2)
        spec.export = ExportSpec(enabled=False)
        result = MuffinPipeline(spec).run()
        assert result.artifact is None
        assert result.artifact_path is None
        assert "artifact" not in result.report
        with pytest.raises(Exception):
            result.save_artifact("nowhere.json")


class TestRunSpecHelper:
    def test_run_spec_accepts_path(self, tmp_path):
        path = tmp_path / "spec.json"
        tiny_spec(episodes=2).to_json(path)
        result = run_spec(path)
        assert len(result.result) == 2

    def test_unknown_stage_rejected(self):
        from repro.api import SpecError

        with pytest.raises(SpecError):
            MuffinPipeline(tiny_spec()).run(rerun_from="trainig")


class TestCustomDatasetPlugin:
    def test_registered_dataset_drives_pipeline(self):
        """A dataset plugin registered by name is addressable from a spec."""
        from repro.data import DATASETS
        from repro.data.attributes import AttributeSet, AttributeSpec
        from repro.data.synthetic import SyntheticConfig, sample_dataset

        @DATASETS.register("test_screening", overwrite=True)
        def build_screening(num_samples=600, seed=0, **params):
            camera = AttributeSpec(
                name="camera",
                groups=("modern", "legacy"),
                unprivileged=("legacy",),
                difficulty={"modern": 0.05, "legacy": 0.5},
                proportions={"modern": 0.7, "legacy": 0.3},
            )
            config = SyntheticConfig(num_samples=num_samples, feature_dim=24)
            return sample_dataset(
                name="test-screening",
                num_classes=3,
                attributes=AttributeSet([camera]),
                config=config,
                seed=seed,
            )

        try:
            spec = RunSpec(
                name="plugin-dataset",
                dataset=DatasetSpec(name="test_screening", num_samples=700, seed=5),
                pool=PoolSpec(architectures=("MobileNet_V3_Small", "ResNet-18"), epochs=6),
                search=SearchSpec(
                    attributes=("camera",), episodes=2, episode_batch=2, head_epochs=3
                ),
            )
            result = MuffinPipeline(spec).run()
            assert result.dataset.name == "test-screening"
            assert len(result.dataset) == 700
            assert result.muffin.test_evaluation is not None
        finally:
            DATASETS.unregister("test_screening")


class TestExperimentConfigBridge:
    def test_experiment_config_exports_run_spec(self):
        from repro.experiments import smoke_config

        config = smoke_config()
        spec = config.run_spec(base_model="MobileNet_V3_Small")
        assert spec.dataset.num_samples == config.isic_samples
        assert spec.search.episodes == config.search_episodes
        assert spec.search.attributes == config.isic_attributes
        assert RunSpec.from_json(spec.to_json()) == spec

        fitz = config.run_spec(dataset="fitzpatrick")
        assert fitz.dataset.name == "synthetic_fitzpatrick"
        assert fitz.search.attributes == config.fitzpatrick_attributes
        assert fitz.pool.architectures is not None

"""Equivalence suite: fused closed-form kernels vs the autograd oracle.

The fused fast path (:mod:`repro.nn.fused`) promises **bit-identical**
trained weights and loss curves to the closure-based autograd reference for
every eligible head.  These tests enforce that promise:

* a seeded property sweep across random hidden sizes, odd batch sizes,
  class counts, both losses and both optimisers (hypothesis drives the
  configuration space; every comparison is exact equality, not allclose);
* the batched multi-candidate trainer vs per-head reference runs, including
  mixed shape groups and non-ReLU fallback heads inside one batch;
* the search-level batch evaluator vs executor-mapped single evaluations;
* an end-to-end :class:`~repro.core.MuffinSearch` run with the fast path on
  vs off;
* structural eligibility of :func:`~repro.nn.fused.extract_fused_stack`.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import nn
from repro.core import HeadTrainConfig, MuffinSearch, SearchConfig
from repro.core.fusing import MuffinHead
from repro.core.search import evaluate_task, evaluate_task_batch
from repro.core.trainer import train_head_on_outputs, train_heads_batched
from repro.nn.fused import extract_fused_stack


def _proxy(rng, n, num_classes, dim):
    return (
        rng.random((n, dim)),
        rng.integers(0, num_classes, n),
        rng.random(n) + 0.05,
    )


def _assert_heads_identical(reference: nn.Module, fused: nn.Module) -> None:
    ref_state = reference.state_dict()
    fused_state = fused.state_dict()
    assert set(ref_state) == set(fused_state)
    for key in ref_state:
        assert np.array_equal(ref_state[key], fused_state[key]), key


# ---------------------------------------------------------------------------
# Property sweep: fused vs autograd, bit-exact
# ---------------------------------------------------------------------------
@given(
    hidden=st.lists(st.integers(2, 24), min_size=0, max_size=3),
    batch_size=st.integers(16, 96),
    num_classes=st.integers(2, 9),
    n=st.integers(33, 200),
    loss=st.sampled_from(["weighted_mse", "weighted_ce"]),
    optimizer=st.sampled_from(["adam", "sgd"]),
    weight_decay=st.sampled_from([0.0, 1e-4]),
    seed=st.integers(0, 2**31 - 1),
)
@settings(max_examples=25, deadline=None)
def test_fused_training_matches_autograd_bit_exactly(
    hidden, batch_size, num_classes, n, loss, optimizer, weight_decay, seed
):
    rng = np.random.default_rng(seed)
    dim = int(rng.integers(2, 30))
    outputs, labels, weights = _proxy(rng, n, num_classes, dim)
    base = dict(
        epochs=3,
        batch_size=batch_size,
        lr=5e-3,
        weight_decay=weight_decay,
        optimizer=optimizer,
        loss=loss,
        seed=seed % 1000,
    )
    head_seed = int(rng.integers(0, 2**31 - 1))

    reference = MuffinHead(dim, num_classes, hidden, "relu", seed=head_seed)
    fused = MuffinHead(dim, num_classes, hidden, "relu", seed=head_seed)
    ref_result = train_head_on_outputs(
        reference, outputs, labels, weights, num_classes,
        HeadTrainConfig(use_fused=False, **base),
    )
    fused_result = train_head_on_outputs(
        fused, outputs, labels, weights, num_classes,
        HeadTrainConfig(use_fused=True, **base),
    )

    assert ref_result.losses == fused_result.losses
    _assert_heads_identical(reference, fused)


# ---------------------------------------------------------------------------
# Batched trainer
# ---------------------------------------------------------------------------
class TestBatchedTrainer:
    NUM_CLASSES = 6

    def _batch(self, specs, seed=0):
        rng = np.random.default_rng(seed)
        n = 157
        labels = rng.integers(0, self.NUM_CLASSES, n)
        weights = rng.random(n) + 0.05
        outputs = [rng.random((n, dim)) for _, dim, _ in specs]
        heads = lambda: [  # noqa: E731 - two identical sets of fresh heads
            MuffinHead(dim, self.NUM_CLASSES, hidden, activation, seed=100 + i)
            for i, (hidden, dim, activation) in enumerate(specs)
        ]
        return heads, outputs, labels, weights

    def test_mixed_shape_groups_match_per_head_runs(self):
        specs = [
            ((16,), 12, "relu"),
            ((16,), 12, "relu"),
            ((8, 4), 12, "relu"),
            ((), 18, "relu"),
            ((16,), 18, "relu"),
        ]
        make_heads, outputs, labels, weights = self._batch(specs)
        config = HeadTrainConfig(epochs=4, batch_size=32, seed=3)
        reference_config = HeadTrainConfig(epochs=4, batch_size=32, seed=3, use_fused=False)

        reference_heads = make_heads()
        reference_results = [
            train_head_on_outputs(
                head, matrix, labels, weights, self.NUM_CLASSES, reference_config
            )
            for head, matrix in zip(reference_heads, outputs)
        ]
        batched_heads = make_heads()
        batched_results = train_heads_batched(
            batched_heads, outputs, labels, weights, self.NUM_CLASSES, config
        )

        assert len(batched_results) == len(specs)
        for ref_head, ref_result, fused_head, fused_result in zip(
            reference_heads, reference_results, batched_heads, batched_results
        ):
            assert ref_result.losses == fused_result.losses
            assert ref_result.proxy_size == fused_result.proxy_size
            _assert_heads_identical(ref_head, fused_head)

    def test_non_relu_heads_fall_back_inside_the_batch(self):
        specs = [((16,), 12, "relu"), ((16,), 12, "tanh"), ((8,), 12, "sigmoid")]
        make_heads, outputs, labels, weights = self._batch(specs, seed=5)
        config = HeadTrainConfig(epochs=3, batch_size=64, seed=1)
        reference_config = HeadTrainConfig(epochs=3, batch_size=64, seed=1, use_fused=False)

        reference_heads = make_heads()
        for head, matrix in zip(reference_heads, outputs):
            train_head_on_outputs(
                head, matrix, labels, weights, self.NUM_CLASSES, reference_config
            )
        batched_heads = make_heads()
        train_heads_batched(batched_heads, outputs, labels, weights, self.NUM_CLASSES, config)
        for ref_head, fused_head in zip(reference_heads, batched_heads):
            _assert_heads_identical(ref_head, fused_head)

    def test_use_fused_false_forces_the_reference_path_for_all(self):
        specs = [((16,), 12, "relu"), ((16,), 12, "relu")]
        make_heads, outputs, labels, weights = self._batch(specs, seed=9)
        config = HeadTrainConfig(epochs=2, batch_size=64, seed=2, use_fused=False)
        reference_heads = make_heads()
        for head, matrix in zip(reference_heads, outputs):
            train_head_on_outputs(head, matrix, labels, weights, self.NUM_CLASSES, config)
        batched_heads = make_heads()
        train_heads_batched(batched_heads, outputs, labels, weights, self.NUM_CLASSES, config)
        for ref_head, fused_head in zip(reference_heads, batched_heads):
            _assert_heads_identical(ref_head, fused_head)

    def test_validates_misaligned_inputs(self):
        make_heads, outputs, labels, weights = self._batch([((16,), 12, "relu")])
        with pytest.raises(ValueError, match="align one-to-one"):
            train_heads_batched(
                make_heads(), outputs + outputs, labels, weights, self.NUM_CLASSES
            )


# ---------------------------------------------------------------------------
# Search-level batch evaluation and end-to-end identity
# ---------------------------------------------------------------------------
class TestSearchIntegration:
    def _search(self, pool, use_fused, seed=0, episodes=6, episode_batch=3):
        return MuffinSearch(
            pool,
            attributes=["age", "site"],
            base_model="MobileNet_V3_Small",
            search_config=SearchConfig(
                episodes=episodes, episode_batch=episode_batch, seed=seed
            ),
            head_config=HeadTrainConfig(epochs=5, seed=seed, use_fused=use_fused),
        )

    def test_evaluate_task_batch_matches_mapped_evaluate_task(self, pool):
        from repro.core.search_space import FusingCandidate

        search = self._search(pool, use_fused=True)
        candidates = [
            FusingCandidate(("MobileNet_V3_Small", "ResNet-18"), (16,), "relu"),
            FusingCandidate(("MobileNet_V3_Small", "DenseNet121"), (16,), "relu"),
            FusingCandidate(("MobileNet_V3_Small", "ResNet-18"), (8, 4), "relu"),
            FusingCandidate(("MobileNet_V3_Small", "ResNet-18"), (16,), "tanh"),
        ]
        tasks = [
            search._task_for(candidate, search.candidate_seed(candidate))
            for candidate in candidates
        ]
        batched = evaluate_task_batch(tasks)
        mapped = [evaluate_task(task) for task in tasks]
        assert len(batched) == len(mapped)
        for got, expected in zip(batched, mapped):
            assert np.array_equal(got.predictions, expected.predictions)
            assert got.losses == expected.losses
            assert got.head_parameters == expected.head_parameters
            for key in expected.head_state:
                assert np.array_equal(got.head_state[key], expected.head_state[key])

    def test_end_to_end_search_identical_fused_on_and_off(self, pool):
        fused_result = self._search(pool, use_fused=True).run()
        reference_result = self._search(pool, use_fused=False).run()
        assert [r.reward for r in fused_result.records] == [
            r.reward for r in reference_result.records
        ]
        assert [r.candidate for r in fused_result.records] == [
            r.candidate for r in reference_result.records
        ]
        assert [r.train_losses for r in fused_result.records] == [
            r.train_losses for r in reference_result.records
        ]
        for fused_record, reference_record in zip(
            fused_result.records, reference_result.records
        ):
            for key in reference_record.head_state:
                assert np.array_equal(
                    fused_record.head_state[key], reference_record.head_state[key]
                )

    def test_mixed_batches_split_between_fused_path_and_executor(self, pool):
        """ReLU heads take the batched kernels; other activations keep the
        executor — and both halves stay bit-identical to the fused-off run."""
        from repro.core.search_space import FusingCandidate

        class CountingExecutor:
            max_workers = 1

            def __init__(self):
                self.mapped = 0

            def map(self, fn, items):
                items = list(items)
                self.mapped += len(items)
                return [fn(item) for item in items]

            def shutdown(self):
                pass

        candidates = [
            FusingCandidate(("MobileNet_V3_Small", "ResNet-18"), (16,), "relu"),
            FusingCandidate(("MobileNet_V3_Small", "ResNet-18"), (16,), "tanh"),
            FusingCandidate(("MobileNet_V3_Small", "ResNet-18"), (8,), "sigmoid"),
            FusingCandidate(("MobileNet_V3_Small", "ResNet-18"), (8,), "relu"),
        ]
        fused_executor = CountingExecutor()
        fused_records = self._search(pool, use_fused=True).evaluate_batch(
            candidates, executor=fused_executor
        )
        assert fused_executor.mapped == 2  # tanh + sigmoid only
        reference_executor = CountingExecutor()
        reference_records = self._search(pool, use_fused=False).evaluate_batch(
            candidates, executor=reference_executor
        )
        assert reference_executor.mapped == 4  # everything
        for fused_record, reference_record in zip(fused_records, reference_records):
            assert fused_record.reward == reference_record.reward
            for key in reference_record.head_state:
                assert np.array_equal(
                    fused_record.head_state[key], reference_record.head_state[key]
                )

    def test_train_seconds_recorded(self, pool):
        result = self._search(pool, use_fused=True).run()
        stats = result.execution_stats
        assert stats.train_seconds > 0.0
        assert stats.train_seconds <= stats.eval_seconds
        assert "train_seconds" in stats.to_dict()


# ---------------------------------------------------------------------------
# Backend/precision layer: float64 identity, float32 tolerance contract
# ---------------------------------------------------------------------------
class TestBackends:
    NUM_CLASSES = 5

    def _workload(self, seed=7, n=300, dim=14):
        rng = np.random.default_rng(seed)
        labels = rng.integers(0, self.NUM_CLASSES, n)
        weights = rng.random(n) + 0.05
        outputs = [rng.random((n, dim)) for _ in range(3)]
        make_heads = lambda: [  # noqa: E731 - fresh identical head sets
            MuffinHead(dim, self.NUM_CLASSES, (16,), "relu", seed=40 + i)
            for i in range(3)
        ]
        return make_heads, outputs, labels, weights

    def _train(self, backend):
        make_heads, outputs, labels, weights = self._workload()
        config = HeadTrainConfig(epochs=6, batch_size=64, seed=2, backend=backend)
        heads = make_heads()
        results = train_heads_batched(
            heads, outputs, labels, weights, self.NUM_CLASSES, config
        )
        return heads, results

    def test_backend_aliases_resolve_at_config_time(self):
        assert HeadTrainConfig(backend="fp32").backend == "numpy-float32"
        assert HeadTrainConfig(backend="float64").backend == "numpy-float64"

    def test_unknown_backend_fails_at_config_time_with_suggestion(self):
        with pytest.raises(KeyError, match="numpy-float32"):
            HeadTrainConfig(backend="numpy-float3")

    def test_explicit_float64_backend_is_bit_identical_to_default(self):
        default_heads, default_results = self._train("numpy-float64")
        implicit_heads, implicit_results = self._train(None)
        for a, b in zip(default_results, implicit_results):
            assert a.losses == b.losses
        for a, b in zip(default_heads, implicit_heads):
            _assert_heads_identical(a, b)

    def test_float32_backend_satisfies_the_tolerance_contract(self):
        from repro.core import assert_backend_close

        oracle_heads, oracle_results = self._train("numpy-float64")
        fp32_heads, fp32_results = self._train("numpy-float32")
        for oracle, fp32 in zip(oracle_results, fp32_results):
            assert_backend_close(
                "numpy-float32", "loss_curve", fp32.losses, oracle.losses
            )
        for oracle_head, fp32_head in zip(oracle_heads, fp32_heads):
            oracle_state = oracle_head.state_dict()
            fp32_state = fp32_head.state_dict()
            assert set(oracle_state) == set(fp32_state)
            for key in oracle_state:
                # parameters are widened back to one canonical float64 dtype
                assert fp32_state[key].dtype == np.float64
                assert_backend_close(
                    "numpy-float32", "head_weights", fp32_state[key], oracle_state[key]
                )

    def test_float32_backend_must_actually_diverge(self):
        """Guards the contract test against accidentally running float64."""
        oracle_heads, _ = self._train("numpy-float64")
        fp32_heads, _ = self._train("numpy-float32")
        drifted = any(
            not np.array_equal(a.state_dict()[key], b.state_dict()[key])
            for a, b in zip(oracle_heads, fp32_heads)
            for key in a.state_dict()
        )
        assert drifted, "float32 training reproduced float64 bits exactly"

    def test_identity_assertion_rejects_drift(self):
        from repro.core import assert_backend_close

        with pytest.raises(AssertionError, match="identity backend"):
            assert_backend_close(
                "numpy-float64", "head_weights", np.array([1.0]), np.array([1.0 + 1e-12])
            )


# ---------------------------------------------------------------------------
# Structural eligibility
# ---------------------------------------------------------------------------
class TestEligibility:
    def test_relu_muffin_head_is_eligible(self):
        head = MuffinHead(12, 4, (16, 8), "relu", seed=0)
        stack = extract_fused_stack(head)
        assert stack is not None
        assert stack.shapes == ((12, 16), (16, 8), (8, 4))
        assert stack.num_parameters == head.num_parameters()

    def test_linear_only_head_is_eligible(self):
        stack = extract_fused_stack(MuffinHead(12, 4, (), "relu", seed=0))
        assert stack is not None
        assert stack.shapes == ((12, 4),)

    @pytest.mark.parametrize("activation", ["tanh", "sigmoid", "leaky_relu"])
    def test_other_activations_are_not_eligible(self, activation):
        assert extract_fused_stack(MuffinHead(12, 4, (16,), activation, seed=0)) is None

    def test_dropout_is_not_eligible(self):
        mlp = nn.MLP(12, [16], 4, activation="relu", dropout=0.5)
        assert extract_fused_stack(mlp) is None

    def test_bias_free_linear_is_not_eligible(self):
        net = nn.Sequential(nn.Linear(12, 4, bias=False))
        assert extract_fused_stack(net) is None

    def test_unknown_wrapper_without_delegate_is_not_eligible(self):
        class Opaque(nn.Module):
            def __init__(self):
                super().__init__()
                self.inner = nn.Linear(4, 2)

            def forward(self, x):
                return self.inner(x) * 2.0

        assert extract_fused_stack(Opaque()) is None

"""Unit tests for the simulated backbones."""

import numpy as np
import pytest

from repro.zoo import SimulatedBackbone, get_architecture


class TestSimulatedBackbone:
    def test_output_dimension_is_capacity(self, isic_dataset):
        spec = get_architecture("ResNet-18")
        backbone = SimulatedBackbone(spec, isic_dataset.feature_dim, seed=0)
        features = backbone.extract(isic_dataset, indices=np.arange(10))
        assert features.shape == (10, spec.capacity)

    def test_output_bounded_by_tanh(self, isic_dataset):
        backbone = SimulatedBackbone(get_architecture("DenseNet121"), isic_dataset.feature_dim, seed=0)
        features = backbone.extract(isic_dataset, indices=np.arange(50))
        assert np.abs(features).max() <= 1.0

    def test_deterministic_given_seed(self, isic_dataset):
        spec = get_architecture("ResNet-18")
        a = SimulatedBackbone(spec, isic_dataset.feature_dim, seed=3)
        b = SimulatedBackbone(spec, isic_dataset.feature_dim, seed=3)
        idx = np.arange(20)
        np.testing.assert_allclose(a.extract(isic_dataset, idx), b.extract(isic_dataset, idx))

    def test_different_architectures_have_different_projections(self, isic_dataset):
        idx = np.arange(20)
        a = SimulatedBackbone(get_architecture("ResNet-18"), isic_dataset.feature_dim, seed=1)
        b = SimulatedBackbone(get_architecture("DenseNet121"), isic_dataset.feature_dim, seed=2)
        assert a.extract(isic_dataset, idx).shape != b.extract(isic_dataset, idx).shape or not np.allclose(
            a.extract(isic_dataset, idx)[:, : min(a.output_dim, b.output_dim)],
            b.extract(isic_dataset, idx)[:, : min(a.output_dim, b.output_dim)],
        )

    def test_sensitivity_profile_matches_spec(self, isic_dataset):
        spec = get_architecture("ResNet-18")
        backbone = SimulatedBackbone(spec, isic_dataset.feature_dim, seed=0)
        profile = backbone.sensitivity_profile(isic_dataset)
        assert set(profile) == {"age", "site", "gender"}
        assert profile["age"] == spec.sensitivity_for("age")

    def test_perceive_uses_sensitivity(self, isic_dataset):
        """A fully-robust backbone perceives less distortion energy than a fragile one."""
        from repro.zoo.architectures import ArchitectureSpec

        idx = isic_dataset.group_indices("site", "oral/genital")[:30]
        robust = ArchitectureSpec(
            name="robust-test", family="t", num_parameters=1, capacity=16,
            sensitivity={"age": 0.0, "site": 0.0, "gender": 0.0},
        )
        fragile = ArchitectureSpec(
            name="fragile-test", family="t", num_parameters=1, capacity=16,
            sensitivity={"age": 1.0, "site": 1.0, "gender": 1.0},
        )
        robust_view = SimulatedBackbone(robust, isic_dataset.feature_dim, seed=0).perceive(
            isic_dataset, idx
        )
        fragile_view = SimulatedBackbone(fragile, isic_dataset.feature_dim, seed=0).perceive(
            isic_dataset, idx
        )
        clean = isic_dataset.components["signal"][idx] + isic_dataset.components["noise"][idx]
        assert np.linalg.norm(fragile_view - clean) > np.linalg.norm(robust_view - clean)

    def test_transform_validates_shape(self, isic_dataset):
        backbone = SimulatedBackbone(get_architecture("ResNet-18"), isic_dataset.feature_dim, seed=0)
        with pytest.raises(ValueError):
            backbone.transform(np.zeros((5, isic_dataset.feature_dim + 1)))

    def test_invalid_feature_dim(self):
        with pytest.raises(ValueError):
            SimulatedBackbone(get_architecture("ResNet-18"), 0)

"""Unit tests for repro.data.transforms (feature-space augmentation)."""

import numpy as np
import pytest

from repro.data import AugmentationConfig, augment_subset, concatenate_datasets
from repro.data.transforms import jitter, mixup_within_group, rotate, scale


class TestPrimitives:
    def test_jitter_changes_values_but_keeps_shape(self):
        rng = np.random.default_rng(0)
        x = np.zeros((10, 4))
        out = jitter(x, 0.5, rng)
        assert out.shape == x.shape
        assert not np.allclose(out, x)

    def test_jitter_zero_std_identity(self):
        x = np.ones((3, 3))
        np.testing.assert_allclose(jitter(x, 0.0, np.random.default_rng(0)), x)

    def test_jitter_negative_std_rejected(self):
        with pytest.raises(ValueError):
            jitter(np.ones((2, 2)), -0.1, np.random.default_rng(0))

    def test_scale_within_range(self):
        rng = np.random.default_rng(1)
        x = np.ones((50, 3))
        out = scale(x, 0.2, rng)
        assert (out >= 0.8 - 1e-9).all() and (out <= 1.2 + 1e-9).all()

    def test_scale_validation(self):
        with pytest.raises(ValueError):
            scale(np.ones((2, 2)), 1.5, np.random.default_rng(0))

    def test_rotation_preserves_norm(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(20, 6))
        out = rotate(x, 0.7, rng)
        np.testing.assert_allclose(
            np.linalg.norm(out, axis=1), np.linalg.norm(x, axis=1), rtol=1e-9
        )

    def test_rotation_needs_two_dims(self):
        with pytest.raises(ValueError):
            rotate(np.ones((3, 1)), 0.5, np.random.default_rng(0))

    def test_mixup_stays_within_group_and_label(self):
        rng = np.random.default_rng(3)
        features = np.vstack([np.zeros((5, 2)), np.ones((5, 2)) * 10])
        labels = np.array([0] * 5 + [1] * 5)
        groups = np.array([0] * 5 + [1] * 5)
        mixed = mixup_within_group(features, labels, groups, alpha=0.5, rng=rng)
        # Group 0 samples (value 0) can only mix with other zeros.
        assert np.abs(mixed[:5]).max() < 1e-9
        assert mixed[5:].min() > 5.0

    def test_mixup_alpha_validation(self):
        with pytest.raises(ValueError):
            mixup_within_group(np.ones((2, 2)), np.zeros(2, dtype=int), np.zeros(2, dtype=int), 2.0, np.random.default_rng(0))


class TestAugmentSubset:
    def test_labels_and_groups_preserved(self, isic_dataset):
        indices = np.arange(50)
        augmented = augment_subset(isic_dataset, indices, seed=0, attribute="site")
        np.testing.assert_array_equal(augmented.labels, isic_dataset.labels[indices])
        for attr in isic_dataset.attributes.names:
            np.testing.assert_array_equal(
                augmented.group_ids(attr), isic_dataset.group_ids(attr)[indices]
            )

    def test_signal_changes_but_distortion_kept(self, isic_dataset):
        from repro.data import distortion_key

        indices = np.arange(30)
        augmented = augment_subset(isic_dataset, indices, seed=1)
        assert not np.allclose(
            augmented.components["signal"], isic_dataset.components["signal"][indices]
        )
        np.testing.assert_allclose(
            augmented.components[distortion_key("age")],
            isic_dataset.components[distortion_key("age")][indices],
        )

    def test_empty_indices_rejected(self, isic_dataset):
        with pytest.raises(ValueError):
            augment_subset(isic_dataset, np.array([], dtype=int))

    def test_deterministic_given_seed(self, isic_dataset):
        indices = np.arange(20)
        a = augment_subset(isic_dataset, indices, seed=5)
        b = augment_subset(isic_dataset, indices, seed=5)
        np.testing.assert_allclose(a.components["signal"], b.components["signal"])


class TestConcatenate:
    def test_concatenation_lengths(self, isic_dataset):
        part_a = isic_dataset.subset(np.arange(100))
        part_b = isic_dataset.subset(np.arange(100, 250))
        combined = concatenate_datasets([part_a, part_b])
        assert len(combined) == 250
        np.testing.assert_array_equal(combined.labels[:100], part_a.labels)

    def test_single_dataset_ok(self, isic_dataset):
        part = isic_dataset.subset(np.arange(10))
        assert len(concatenate_datasets([part])) == 10

    def test_empty_list_rejected(self):
        with pytest.raises(ValueError):
            concatenate_datasets([])

    def test_schema_mismatch_rejected(self, isic_dataset, fitz_dataset):
        with pytest.raises(ValueError):
            concatenate_datasets(
                [isic_dataset.subset(np.arange(5)), fitz_dataset.subset(np.arange(5))]
            )

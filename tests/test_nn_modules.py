"""Unit tests for repro.nn.modules."""

import numpy as np
import pytest

from repro.nn import (
    ACTIVATIONS,
    MLP,
    Dropout,
    LeakyReLU,
    Linear,
    Module,
    Parameter,
    ReLU,
    Sequential,
    Sigmoid,
    SoftmaxClassifier,
    Tanh,
    Tensor,
    make_activation,
)


class TestModuleRegistration:
    def test_parameters_are_registered(self):
        layer = Linear(4, 2)
        names = dict(layer.named_parameters())
        assert set(names) == {"weight", "bias"}
        assert all(isinstance(p, Parameter) for p in layer.parameters())

    def test_submodules_are_registered(self):
        class Net(Module):
            def __init__(self):
                super().__init__()
                self.a = Linear(3, 3)
                self.b = Linear(3, 2)

            def forward(self, x):
                return self.b(self.a(x))

        net = Net()
        names = [name for name, _ in net.named_parameters()]
        assert "a.weight" in names and "b.bias" in names
        assert len(list(net.modules())) == 3

    def test_num_parameters(self):
        layer = Linear(4, 3)
        assert layer.num_parameters() == 4 * 3 + 3

    def test_train_eval_propagates(self):
        net = Sequential(Linear(2, 2), Dropout(0.5))
        net.eval()
        assert all(not m.training for m in net.modules())
        net.train()
        assert all(m.training for m in net.modules())

    def test_zero_grad_clears_all(self):
        layer = Linear(2, 2)
        out = layer(Tensor(np.ones((1, 2))))
        out.sum().backward()
        assert layer.weight.grad is not None
        layer.zero_grad()
        assert layer.weight.grad is None


class TestStateDict:
    def test_roundtrip(self):
        net = MLP(4, [8], 3, rng=np.random.default_rng(0))
        state = net.state_dict()
        other = MLP(4, [8], 3, rng=np.random.default_rng(99))
        other.load_state_dict(state)
        x = Tensor(np.random.default_rng(1).normal(size=(5, 4)))
        np.testing.assert_allclose(net(x).data, other(x).data)

    def test_state_dict_is_a_copy(self):
        layer = Linear(2, 2)
        state = layer.state_dict()
        state["weight"][:] = 0.0
        assert not np.allclose(layer.weight.data, 0.0)

    def test_missing_key_raises(self):
        layer = Linear(2, 2)
        state = layer.state_dict()
        del state["bias"]
        with pytest.raises(KeyError):
            layer.load_state_dict(state)

    def test_unexpected_key_raises(self):
        layer = Linear(2, 2)
        state = layer.state_dict()
        state["extra"] = np.zeros(1)
        with pytest.raises(KeyError):
            layer.load_state_dict(state)

    def test_shape_mismatch_raises(self):
        layer = Linear(2, 2)
        state = layer.state_dict()
        state["weight"] = np.zeros((3, 3))
        with pytest.raises(ValueError):
            layer.load_state_dict(state)


class TestLinear:
    def test_forward_shape(self):
        layer = Linear(5, 3)
        assert layer(Tensor(np.zeros((7, 5)))).shape == (7, 3)

    def test_no_bias(self):
        layer = Linear(3, 2, bias=False)
        assert layer.bias is None
        assert layer.num_parameters() == 6

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            Linear(0, 2)

    def test_gradients_flow_to_weights(self):
        layer = Linear(3, 2)
        out = layer(Tensor(np.ones((4, 3))))
        out.sum().backward()
        assert layer.weight.grad.shape == (3, 2)
        assert layer.bias.grad.shape == (2,)

    def test_repr(self):
        assert "Linear(in=3, out=2" in repr(Linear(3, 2))


class TestActivations:
    @pytest.mark.parametrize("name", sorted(ACTIVATIONS))
    def test_make_activation(self, name):
        module = make_activation(name)
        out = module(Tensor(np.array([-1.0, 1.0])))
        assert out.shape == (2,)

    def test_unknown_activation(self):
        with pytest.raises(KeyError):
            make_activation("gelu")

    def test_relu_module(self):
        np.testing.assert_allclose(ReLU()(Tensor([-2.0, 3.0])).data, [0.0, 3.0])

    def test_leaky_relu_slope(self):
        np.testing.assert_allclose(LeakyReLU(0.2)(Tensor([-1.0])).data, [-0.2])

    def test_sigmoid_tanh_modules(self):
        assert Sigmoid()(Tensor([0.0])).data[0] == pytest.approx(0.5)
        assert Tanh()(Tensor([0.0])).data[0] == pytest.approx(0.0)


class TestDropout:
    def test_eval_mode_is_identity(self):
        drop = Dropout(0.9)
        drop.eval()
        x = np.random.default_rng(0).normal(size=(10, 10))
        np.testing.assert_allclose(drop(Tensor(x)).data, x)

    def test_train_mode_zeroes_some_entries(self):
        drop = Dropout(0.5, rng=np.random.default_rng(0))
        out = drop(Tensor(np.ones((100, 10))))
        assert (out.data == 0).any()
        # Inverted dropout keeps the expectation roughly constant.
        assert out.data.mean() == pytest.approx(1.0, abs=0.15)

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            Dropout(1.0)

    def test_zero_probability_is_identity(self):
        x = np.ones((3, 3))
        np.testing.assert_allclose(Dropout(0.0)(Tensor(x)).data, x)

    def test_default_constructed_layers_draw_distinct_masks(self):
        # Regression: both layers used to default to a fresh
        # np.random.default_rng(0), so they dropped *identical* masks.
        first, second = Dropout(0.5), Dropout(0.5)
        x = Tensor(np.ones((64, 32)))
        assert not np.array_equal(first(x).data, second(x).data)

    def test_dropout_layers_in_one_network_drop_distinct_masks(self):
        net = Sequential(Dropout(0.5), Dropout(0.5))
        x = np.ones((64, 32))
        first_mask = net[0](Tensor(x)).data
        second_mask = net[1](Tensor(x)).data
        assert not np.array_equal(first_mask, second_mask)

    def test_explicit_generator_still_reproducible(self):
        a = Dropout(0.5, rng=np.random.default_rng(7))(Tensor(np.ones((16, 16)))).data
        b = Dropout(0.5, rng=np.random.default_rng(7))(Tensor(np.ones((16, 16)))).data
        np.testing.assert_array_equal(a, b)


class TestSequentialAndMLP:
    def test_sequential_applies_in_order(self):
        net = Sequential(Linear(2, 2), ReLU(), Linear(2, 1))
        assert net(Tensor(np.zeros((3, 2)))).shape == (3, 1)
        assert len(net) == 3
        assert isinstance(net[1], ReLU)
        assert len(list(iter(net))) == 3

    def test_mlp_structure(self):
        mlp = MLP(6, [16, 8], 4, activation="tanh")
        assert mlp(Tensor(np.zeros((2, 6)))).shape == (2, 4)
        assert mlp.hidden_sizes == (16, 8)
        # parameters: 6*16+16 + 16*8+8 + 8*4+4
        assert mlp.num_parameters() == 6 * 16 + 16 + 16 * 8 + 8 + 8 * 4 + 4

    def test_mlp_no_hidden_layers(self):
        mlp = MLP(5, [], 3)
        assert mlp(Tensor(np.zeros((1, 5)))).shape == (1, 3)

    def test_mlp_rejects_bad_widths(self):
        with pytest.raises(ValueError):
            MLP(5, [0], 3)
        with pytest.raises(ValueError):
            MLP(5, [4], 0)

    def test_mlp_dropout_layers_present(self):
        mlp = MLP(5, [4], 2, dropout=0.3)
        assert any(isinstance(layer, Dropout) for layer in mlp.body)

    def test_default_constructed_linears_initialise_distinct_weights(self):
        # Regression: two default-constructed Linear layers used to share
        # one np.random.default_rng(0) stream and thus identical weights.
        assert not np.array_equal(Linear(8, 8).weight.data, Linear(8, 8).weight.data)

    def test_mlp_dropout_layers_have_independent_streams(self):
        mlp = MLP(6, [8, 8], 3, dropout=0.5, rng=np.random.default_rng(0))
        dropouts = [layer for layer in mlp.body if isinstance(layer, Dropout)]
        assert len(dropouts) == 2
        # Per-layer streams are derived from the construction generator, so
        # equal-shape draws from the two layers must differ...
        x = np.ones((32, 8))
        first = dropouts[0](Tensor(x)).data
        second = dropouts[1](Tensor(x)).data
        assert not np.array_equal(first, second)
        # ...and the whole network stays reproducible from the seed.
        clone = MLP(6, [8, 8], 3, dropout=0.5, rng=np.random.default_rng(0))
        clone_dropouts = [layer for layer in clone.body if isinstance(layer, Dropout)]
        np.testing.assert_array_equal(first, clone_dropouts[0](Tensor(x)).data)

    def test_repr_mentions_structure(self):
        assert "hidden=[16, 8]" in repr(MLP(6, [16, 8], 4))


class TestSoftmaxClassifier:
    def test_predict_proba_rows_sum_to_one(self):
        clf = SoftmaxClassifier(10, 4)
        probs = clf.predict_proba(np.random.default_rng(0).normal(size=(6, 10)))
        np.testing.assert_allclose(probs.sum(axis=1), np.ones(6), atol=1e-10)
        assert (probs >= 0).all()

    def test_forward_shape(self):
        clf = SoftmaxClassifier(3, 2)
        assert clf(Tensor(np.zeros((5, 3)))).shape == (5, 2)

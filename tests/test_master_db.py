"""Run-database and episode-journal tests: durability, transitions, resume."""

import json
import threading

import numpy as np
import pytest

from repro.api import RunSpec
from repro.core import EpisodeRecord, FusingCandidate
from repro.fairness.metrics import FairnessEvaluation
from repro.master.db import (
    EpisodeJournal,
    RunDatabase,
    StatusTransitionError,
)


def _tiny_spec(name="db-test"):
    return RunSpec.from_dict(
        {
            "name": name,
            "dataset": {"num_samples": 600},
            "pool": {"architectures": ["ResNet-18", "MobileNet_V3_Small"], "epochs": 2},
            "search": {"episodes": 4, "episode_batch": 2},
        }
    )


def _record(episode=0, seed=11):
    rng = np.random.default_rng(seed)
    return EpisodeRecord(
        episode=episode,
        candidate=FusingCandidate(
            model_names=("ResNet-18", "MobileNet_V3_Small"),
            hidden_sizes=(16,),
            activation="relu",
        ),
        reward=float(rng.normal()),
        evaluation=FairnessEvaluation(
            accuracy=float(rng.uniform()),
            unfairness={"age": float(rng.uniform()), "site": float(rng.uniform())},
            gaps={"age": 0.1, "site": 0.2},
        ),
        head_state={"w": rng.normal(size=(3, 4)), "b": rng.normal(size=(4,))},
        train_losses=[float(x) for x in rng.normal(size=3)],
        num_parameters=123,
        trainable_parameters=45,
    )


def _keys(records):
    return [{"candidate": r.candidate.to_dict(), "seed": 7} for r in records]


class TestRidCounter:
    def test_monotonic_and_persistent(self, tmp_path):
        db = RunDatabase(tmp_path)
        assert [db.next_rid() for _ in range(3)] == [1, 2, 3]
        # A fresh instance over the same root continues, never reuses.
        assert RunDatabase(tmp_path).next_rid() == 4

    def test_thread_unique(self, tmp_path):
        db = RunDatabase(tmp_path)
        rids, lock = [], threading.Lock()

        def allocate():
            for _ in range(10):
                rid = db.next_rid()
                with lock:
                    rids.append(rid)

        threads = [threading.Thread(target=allocate) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(set(rids)) == 40


class TestRunLifecycle:
    def test_submit_and_load(self, tmp_path):
        db = RunDatabase(tmp_path)
        spec = _tiny_spec()
        rid = db.submit(spec, priority=3)
        assert db.spec(rid).to_dict() == spec.to_dict()
        status = db.status(rid)
        assert status["status"] == "pending"
        assert status["priority"] == 3
        assert status["spec_hash"] == spec.spec_hash()

    def test_valid_transitions(self, tmp_path):
        db = RunDatabase(tmp_path)
        rid = db.submit(_tiny_spec())
        db.set_status(rid, "running")
        db.set_status(rid, "pending", requeued=True)  # the requeue edge
        db.set_status(rid, "running")
        db.set_status(rid, "done", result_hash="abc")
        assert db.status(rid)["result_hash"] == "abc"

    def test_invalid_transitions_raise(self, tmp_path):
        db = RunDatabase(tmp_path)
        rid = db.submit(_tiny_spec())
        with pytest.raises(StatusTransitionError):
            db.set_status(rid, "done")  # pending -> done skips running
        db.set_status(rid, "cancelled")
        with pytest.raises(StatusTransitionError):
            db.set_status(rid, "running")  # terminal statuses are final
        with pytest.raises(ValueError):
            db.set_status(rid, "exploded")

    def test_unknown_run_raises(self, tmp_path):
        db = RunDatabase(tmp_path)
        with pytest.raises(KeyError):
            db.status(99)
        with pytest.raises(KeyError):
            db.spec(99)

    def test_pending_order_priority_then_rid(self, tmp_path):
        db = RunDatabase(tmp_path)
        low = db.submit(_tiny_spec("low"), priority=0)
        high = db.submit(_tiny_spec("high"), priority=5)
        low2 = db.submit(_tiny_spec("low2"), priority=0)
        order = [entry["rid"] for entry in db.pending_runs()]
        assert order == [high, low, low2]

    def test_requeue_running(self, tmp_path):
        db = RunDatabase(tmp_path)
        rid = db.submit(_tiny_spec())
        other = db.submit(_tiny_spec("other"))
        db.set_status(rid, "running")
        assert db.requeue_running() == [rid]
        assert db.status(rid)["status"] == "pending"
        assert db.status(rid)["requeued"] is True
        assert db.status(other)["status"] == "pending"

    def test_results_roundtrip(self, tmp_path):
        db = RunDatabase(tmp_path)
        rid = db.submit(_tiny_spec())
        assert db.result(rid) is None
        db.store_result(rid, {"result_hash": "ff", "episodes": 4})
        assert db.result(rid)["result_hash"] == "ff"


class TestEpisodeJournal:
    def test_roundtrip_bit_exact(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        records = [_record(0), _record(1, seed=12)]
        with EpisodeJournal(path) as journal:
            journal.append(0, _keys(records), records)
        reopened = EpisodeJournal(path)
        assert reopened.batches == 1
        assert reopened.episodes == 2
        replayed = reopened.lookup(0, _keys(records))
        for original, copy in zip(records, replayed):
            assert copy.reward == original.reward
            assert copy.evaluation.accuracy == original.evaluation.accuracy
            assert copy.evaluation.unfairness == original.evaluation.unfairness
            assert copy.train_losses == original.train_losses
            for key in original.head_state:
                np.testing.assert_array_equal(copy.head_state[key], original.head_state[key])
                assert copy.head_state[key].dtype == original.head_state[key].dtype

    def test_sequential_append_enforced(self, tmp_path):
        with EpisodeJournal(tmp_path / "j.jsonl") as journal:
            records = [_record(0)]
            journal.append(0, _keys(records), records)
            with pytest.raises(ValueError, match="expects batch 1"):
                journal.append(2, _keys(records), records)

    def test_truncated_tail_tolerated(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with EpisodeJournal(path) as journal:
            journal.append(0, _keys([_record(0)]), [_record(0)])
            journal.append(1, _keys([_record(1)]), [_record(1)])
        # Simulate a SIGKILL mid-append: chop bytes off the last line.
        raw = path.read_bytes()
        path.write_bytes(raw[:-40])
        reopened = EpisodeJournal(path)
        assert reopened.batches == 1  # lost only the batch being written
        assert reopened.lookup(0, _keys([_record(0)])) is not None

    def test_key_mismatch_truncates_stale_tail(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with EpisodeJournal(path) as journal:
            journal.append(0, _keys([_record(0)]), [_record(0)])
            journal.append(1, _keys([_record(1)]), [_record(1)])
        reopened = EpisodeJournal(path)
        wrong_keys = [{"candidate": _record(0).candidate.to_dict(), "seed": 999}]
        assert reopened.lookup(0, wrong_keys) is None
        assert reopened.batches == 0  # the stale tail is gone, on disk too
        assert EpisodeJournal.progress(path)["batches"] == 0

    def test_fingerprint_mismatch_resets(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with EpisodeJournal(path, fingerprint={"search": "aaa"}) as journal:
            journal.append(0, _keys([_record(0)]), [_record(0)])
        other = EpisodeJournal(path, fingerprint={"search": "bbb"})
        assert other.batches == 0

    def test_garbage_file_resets(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text("this is not a journal\n{}\n")
        with EpisodeJournal(path) as journal:
            assert journal.batches == 0
            journal.append(0, _keys([_record(0)]), [_record(0)])
        assert EpisodeJournal(path).batches == 1

    def test_progress_probe(self, tmp_path):
        path = tmp_path / "j.jsonl"
        assert EpisodeJournal.progress(path) == {"batches": 0, "episodes": 0}
        with EpisodeJournal(path) as journal:
            records = [_record(0), _record(1, seed=5)]
            journal.append(0, _keys(records), records)
        assert EpisodeJournal.progress(path) == {"batches": 1, "episodes": 2}

    def test_header_written_on_creation(self, tmp_path):
        path = tmp_path / "j.jsonl"
        EpisodeJournal(path, fingerprint={"search": "x"})
        header = json.loads(path.read_text().splitlines()[0])
        assert header["format"].startswith("muffin-episode-journal")
        assert header["fingerprint"] == {"search": "x"}

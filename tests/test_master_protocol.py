"""Wire-protocol tests: framing, payload codec, EOF and error handling."""

import socket
import struct
import threading

import numpy as np
import pytest

from repro.master.protocol import (
    MAX_MESSAGE_BYTES,
    ProtocolError,
    decode_payload,
    encode_payload,
    recv_message,
    send_message,
)


@pytest.fixture()
def pair():
    a, b = socket.socketpair()
    yield a, b
    a.close()
    b.close()


class TestFraming:
    def test_roundtrip(self, pair):
        a, b = pair
        message = {"type": "task", "task_id": 3, "fn": "m:f", "nested": {"x": [1, 2, 3]}}
        send_message(a, message)
        assert recv_message(b) == message

    def test_multiple_messages_in_order(self, pair):
        a, b = pair
        for index in range(5):
            send_message(a, {"i": index})
        assert [recv_message(b)["i"] for _ in range(5)] == list(range(5))

    def test_clean_eof_returns_none(self, pair):
        a, b = pair
        a.close()
        assert recv_message(b) is None

    def test_eof_mid_frame_raises(self, pair):
        a, b = pair
        a.sendall(struct.pack(">I", 100) + b'{"partial"')
        a.close()
        with pytest.raises(ProtocolError, match="mid-frame|header and body"):
            recv_message(b)

    def test_oversized_announcement_raises(self, pair):
        a, b = pair
        a.sendall(struct.pack(">I", MAX_MESSAGE_BYTES + 1))
        with pytest.raises(ProtocolError, match="limit"):
            recv_message(b)

    def test_garbage_body_raises(self, pair):
        a, b = pair
        body = b"not json at all"
        a.sendall(struct.pack(">I", len(body)) + body)
        with pytest.raises(ProtocolError, match="not valid JSON"):
            recv_message(b)

    def test_non_object_frame_raises(self, pair):
        a, b = pair
        body = b"[1, 2, 3]"
        a.sendall(struct.pack(">I", len(body)) + body)
        with pytest.raises(ProtocolError, match="JSON object"):
            recv_message(b)

    def test_concurrent_sends_do_not_interleave(self, pair):
        """Framing survives many threads writing to one socket (worker
        heartbeats share the socket with task replies under a lock; this
        guards the weaker no-lock assumption for small frames)."""
        a, b = pair
        lock = threading.Lock()

        def sender(value):
            with lock:
                send_message(a, {"v": value})

        threads = [threading.Thread(target=sender, args=(i,)) for i in range(20)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        seen = sorted(recv_message(b)["v"] for _ in range(20))
        assert seen == list(range(20))


class TestPayloadCodec:
    def test_numpy_bit_exact(self):
        rng = np.random.default_rng(0)
        arrays = {
            "f64": rng.normal(size=(7, 3)),
            "f32": rng.normal(size=(4,)).astype(np.float32),
            "i64": rng.integers(0, 100, size=(5,)),
            "tiny": np.array([np.nextafter(0.1, 1.0), -0.0, np.inf]),
        }
        decoded = decode_payload(encode_payload(arrays))
        for key, original in arrays.items():
            assert decoded[key].dtype == original.dtype
            np.testing.assert_array_equal(decoded[key], original)

    def test_roundtrip_inside_json_frame(self, pair):
        a, b = pair
        payload = np.linspace(0, 1, 17)
        send_message(a, {"type": "result", "payload": encode_payload(payload)})
        received = recv_message(b)
        np.testing.assert_array_equal(decode_payload(received["payload"]), payload)

    def test_corrupt_payload_raises(self):
        with pytest.raises(ProtocolError, match="decode"):
            decode_payload("definitely-not-base64-pickle!")

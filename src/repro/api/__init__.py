"""Declarative Pipeline API: specs, registries and the staged executor.

The public entry point of the library.  A run is described by a
:class:`RunSpec` (JSON-serialisable nested dataclasses), every component the
spec names resolves through a :class:`~repro.registry.Registry`, and
:class:`MuffinPipeline` executes the staged dataset → split → pool → search
→ finalize → report flow with per-stage artifact caching and resume::

    from repro.api import RunSpec, MuffinPipeline

    spec = RunSpec.from_json("examples/specs/quickstart.json")
    result = MuffinPipeline(spec, cache_dir=".repro_cache/quickstart").run()
    print(result.muffin.test_evaluation.accuracy)
"""

from .pipeline import (
    MuffinPipeline,
    PipelineError,
    PipelineResult,
    StageTiming,
    run_spec,
)
from .registries import (
    ARCHITECTURES,
    CONTROLLERS,
    DATASETS,
    EXECUTORS,
    PROXY_BUILDERS,
    REWARDS,
    SELECTION_STRATEGIES,
    available_components,
)


def __getattr__(name: str):
    # Lazy re-exports: resolving these pulls in the experiment harness.
    if name in ("EXPERIMENTS", "ALL_REGISTRIES"):
        from . import registries

        return getattr(registries, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
from .spec import (
    PIPELINE_STAGES,
    DatasetSpec,
    ExecutionSpec,
    ExportSpec,
    FinalizeSpec,
    PoolSpec,
    ReportSpec,
    RunSpec,
    SearchSpec,
    SpecError,
)

__all__ = [
    "RunSpec",
    "DatasetSpec",
    "PoolSpec",
    "SearchSpec",
    "ExecutionSpec",
    "FinalizeSpec",
    "ExportSpec",
    "ReportSpec",
    "SpecError",
    "PIPELINE_STAGES",
    "MuffinPipeline",
    "PipelineResult",
    "PipelineError",
    "StageTiming",
    "run_spec",
    "ALL_REGISTRIES",
    "ARCHITECTURES",
    "CONTROLLERS",
    "DATASETS",
    "EXECUTORS",
    "EXPERIMENTS",
    "PROXY_BUILDERS",
    "REWARDS",
    "SELECTION_STRATEGIES",
    "available_components",
]

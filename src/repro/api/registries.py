"""One-stop access to every pluggable component registry.

Each registry lives next to the components it serves; this module re-exports
them so plugin authors and spec writers have a single import point::

    from repro.api.registries import CONTROLLERS, DATASETS

    @CONTROLLERS.register("my_controller")
    def build_my_controller(search_space, config):
        ...

:func:`available_components` summarises every registry for CLI / debugging
output (``python -m repro components``).
"""

from __future__ import annotations

from typing import Dict, List

from ..core.backend import BACKENDS
from ..core.controller import CONTROLLERS
from ..core.execution import EXECUTORS
from ..core.proxy import PROXY_BUILDERS
from ..core.results import SELECTION_STRATEGIES
from ..core.reward import REWARDS
from ..data.registry import DATASETS
from ..registry import Registry
from ..zoo.architectures import ARCHITECTURE_REGISTRY

ARCHITECTURES = ARCHITECTURE_REGISTRY

_CORE_REGISTRIES: Dict[str, Registry] = {
    "datasets": DATASETS,
    "architectures": ARCHITECTURES,
    "controllers": CONTROLLERS,
    "proxy_builders": PROXY_BUILDERS,
    "rewards": REWARDS,
    "selection_strategies": SELECTION_STRATEGIES,
    "executors": EXECUTORS,
    "backends": BACKENDS,
}


def __getattr__(name: str):
    # ``EXPERIMENTS`` (and the ``ALL_REGISTRIES`` view including it) are
    # resolved lazily so that ``import repro`` does not drag in the whole
    # experiment harness (nine fig*/table1 modules) for library users.
    if name == "EXPERIMENTS":
        from ..experiments.runner import EXPERIMENTS

        return EXPERIMENTS
    if name == "ALL_REGISTRIES":
        return dict(_CORE_REGISTRIES, experiments=__getattr__("EXPERIMENTS"))
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def available_components() -> Dict[str, List[str]]:
    """Registered names per component family (aliases excluded)."""
    return {family: registry.names() for family, registry in __getattr__("ALL_REGISTRIES").items()}


__all__ = [
    "DATASETS",
    "ARCHITECTURES",
    "ARCHITECTURE_REGISTRY",
    "BACKENDS",
    "CONTROLLERS",
    "EXECUTORS",
    "PROXY_BUILDERS",
    "REWARDS",
    "SELECTION_STRATEGIES",
    "EXPERIMENTS",
    "ALL_REGISTRIES",
    "available_components",
]

"""Staged executor turning a :class:`~repro.api.RunSpec` into artifacts.

``MuffinPipeline`` runs the seven stages of a Muffin run —

    dataset -> split -> pool -> search -> finalize -> export -> report

— resolving every component through the registries, sharing one
:class:`~repro.core.BodyOutputCache` across the search and finalisation
stages, and recording structured per-stage timings.

With a ``cache_dir`` the expensive stages persist their artifacts keyed by
the spec's per-stage hash (:meth:`RunSpec.stage_hash`): a repeated run loads
the trained pool and the search history from disk instead of recomputing
them, and editing one sub-spec only invalidates the stages downstream of it.
The dataset and split stages are deterministic and cheap, so they are always
rebuilt rather than persisted.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Mapping, Optional, Union

from ..core import (
    BodyOutputCache,
    MuffinNet,
    MuffinSearch,
    MuffinSearchResult,
    rebuild_fused_model,
)
from ..data import DATASETS, split_dataset
from ..data.dataset import FairnessDataset
from ..data.schema import FeatureSchema
from ..data.splits import DataSplit
from ..fairness.metrics import FairnessEvaluation
from ..obs import METRICS, session as obs_session, span
from ..utils.logging import RunLogger
from ..utils.serialization import load_json, save_json
from ..zoo import ModelPool, load_pool, save_pool
from ..zoo.persistence import FUSED_ARTIFACT_FORMAT, artifact_checksum, fused_model_payload
from .spec import PIPELINE_STAGES, RunSpec, SpecError

PathLike = Union[str, Path]

_MANIFEST = "manifest.json"

#: Stages executed, labelled by stage name and outcome (ran/cached/rebuilt).
_STAGES_TOTAL = METRICS.counter(
    "repro_pipeline_stages_total",
    "Pipeline stages executed, by stage and cache status.",
    labelnames=("stage", "status"),
)
_STAGE_SECONDS = METRICS.histogram(
    "repro_pipeline_stage_seconds",
    "Wall time per executed pipeline stage.",
    labelnames=("stage",),
)


class PipelineError(RuntimeError):
    """A pipeline stage that cannot be executed."""


@dataclass
class StageTiming:
    """Structured record of one executed pipeline stage."""

    stage: str
    status: str  # "ran" | "cached" | "rebuilt"
    seconds: float
    hash: str = ""
    detail: str = ""

    def to_dict(self) -> Dict[str, object]:
        return {
            "stage": self.stage,
            "status": self.status,
            "seconds": round(self.seconds, 4),
            "hash": self.hash,
            "detail": self.detail,
        }


class PipelineResult(Mapping):
    """Typed result of one pipeline run.

    Attribute access (``result.muffin``) is the primary API; mapping access
    (``result["muffin"]``) is kept for backward compatibility with the
    dictionary :func:`repro.quick_muffin_search` used to return.
    """

    _KEYS = ("spec", "dataset", "split", "pool", "result", "muffin", "report")

    def __init__(
        self,
        spec: RunSpec,
        dataset: FairnessDataset,
        split: DataSplit,
        pool: ModelPool,
        result: MuffinSearchResult,
        muffin: MuffinNet,
        report: Dict[str, object],
        timings: List[StageTiming],
        cache_dir: Optional[Path] = None,
        artifact: Optional[Dict[str, object]] = None,
        artifact_path: Optional[Path] = None,
    ) -> None:
        self.spec = spec
        self.dataset = dataset
        self.split = split
        self.pool = pool
        self.result = result
        self.muffin = muffin
        self.report = report
        self.timings = list(timings)
        self.cache_dir = cache_dir
        #: deployable fused-model bundle built by the export stage (if enabled)
        self.artifact = artifact
        #: where the bundle was persisted (cache runs only)
        self.artifact_path = artifact_path

    @property
    def search_result(self) -> MuffinSearchResult:
        """Alias for :attr:`result` (the search history)."""
        return self.result

    @property
    def resumed_stages(self) -> List[str]:
        """Stages that were loaded from the artifact cache."""
        return [t.stage for t in self.timings if t.status == "cached"]

    def save_artifact(self, path: PathLike, overwrite: bool = False) -> Path:
        """Write the deployable fused-model bundle to ``path``.

        The bundle is what ``python -m repro serve`` and
        :func:`~repro.zoo.persistence.load_fused_model` consume.
        """
        if self.artifact is None:
            raise PipelineError(
                "this run produced no serving artifact (export.enabled is false)"
            )
        path = Path(path)
        if path.exists() and not overwrite:
            raise FileExistsError(
                f"artifact '{path}' already exists; pass overwrite=True to replace it"
            )
        return save_json(self.artifact, path)

    def summary(self) -> Dict[str, object]:
        return {
            "run": self.spec.name,
            "spec_hash": self.spec.spec_hash(),
            "muffin": self.muffin.name,
            "test_accuracy": (
                self.muffin.test_evaluation.accuracy if self.muffin.test_evaluation else None
            ),
            "episodes": len(self.result),
            "stages": [t.to_dict() for t in self.timings],
        }

    # Mapping protocol (legacy ``outcome["muffin"]`` access).
    def __getitem__(self, key: str):
        if key in self._KEYS:
            return getattr(self, key)
        raise KeyError(f"unknown result key '{key}'; available: {list(self._KEYS)}")

    def __iter__(self) -> Iterator[str]:
        return iter(self._KEYS)

    def __len__(self) -> int:
        return len(self._KEYS)


class MuffinPipeline:
    """Executes a :class:`RunSpec` stage by stage with artifact caching."""

    STAGES = PIPELINE_STAGES

    def __init__(
        self,
        spec: RunSpec,
        cache_dir: Optional[PathLike] = None,
        verbose: bool = False,
        should_stop=None,
    ) -> None:
        self.spec = spec
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        #: zero-argument callable polled at search batch boundaries; returning
        #: True raises :class:`~repro.core.SearchInterrupted` (graceful
        #: shutdown / cancellation hook — the master and the CLI wire it)
        self.should_stop = should_stop
        self.logger = RunLogger(name=f"pipeline:{spec.name}", verbose=verbose)
        self.timings: List[StageTiming] = []
        self.body_cache: Optional[BodyOutputCache] = None
        self._artifacts: Dict[str, object] = {}
        self._search: Optional[MuffinSearch] = None
        self._manifest: Dict[str, Dict[str, object]] = self._load_manifest()
        self._validate_spec()

    def _validate_spec(self) -> None:
        """Fail fast on unresolvable component names.

        Every registry name the spec uses is checked up front, so a typo'd
        controller fails in milliseconds instead of after the pool has
        trained.  Plugins must therefore be registered before the pipeline
        is constructed.
        """
        from ..core import REWARDS, SELECTION_STRATEGIES
        from ..registry import UnknownComponentError
        from ..zoo import get_architecture

        spec = self.spec
        try:
            DATASETS.canonical_name(spec.dataset.name)
            REWARDS.canonical_name(spec.search.reward)
            # Validates controller / proxy / partition / executor names.
            spec.search.search_config(spec.execution)
            for name in spec.pool.architectures or ():
                get_architecture(name)
            for model in (spec.search.base_model, spec.finalize.reference_model):
                if model is not None:
                    get_architecture(model)
        except (UnknownComponentError, KeyError, ValueError) as exc:
            raise SpecError(str(exc)) from exc
        selection = spec.finalize.selection
        if selection not in SELECTION_STRATEGIES and selection not in spec.search.attributes:
            suggestions = SELECTION_STRATEGIES.suggest(selection)
            hint = f"; did you mean '{suggestions[0]}'?" if suggestions else ""
            raise SpecError(
                f"unknown selection strategy '{selection}'{hint} Available: "
                f"{SELECTION_STRATEGIES.names()} or an attribute of "
                f"{list(spec.search.attributes)}"
            )

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    @classmethod
    def default_cache_dir(cls, spec: RunSpec) -> Path:
        """The conventional cache location for ``spec``: ``.repro_cache/<name>-<hash>``."""
        return Path(".repro_cache") / f"{spec.name}-{spec.spec_hash()}"

    def run(self, resume: bool = True, rerun_from: Optional[str] = None) -> PipelineResult:
        """Execute every stage and return the typed result.

        ``resume=True`` (default) loads any cached stage whose spec hash
        matches; ``rerun_from`` forces that stage and everything after it to
        recompute even when cached.
        """
        if rerun_from is not None and rerun_from not in self.STAGES:
            raise SpecError(
                f"unknown stage '{rerun_from}'; expected one of {list(self.STAGES)}"
            )
        self.timings = []
        # A MuffinSearch carries mutable state (trained controller, advanced
        # RNG) and is bound to one pool object; every run() gets a fresh one
        # so repeated runs are reproducible and never see a stale pool.
        self._search = None
        force_from = self.STAGES.index(rerun_from) if rerun_from is not None else len(self.STAGES)
        # Telemetry (spec.obs) is scoped to this run and hash-excluded:
        # spans/metrics observe the stages without entering any cache key.
        with obs_session(
            trace_path=self.spec.obs.trace_path,
            metrics_enabled=self.spec.obs.metrics_enabled,
        ):
            with span("pipeline/run", run=self.spec.name, spec_hash=self.spec.spec_hash()):
                for index, stage in enumerate(self.STAGES):
                    self._execute(stage, use_cache=resume and index < force_from)
        artifact = self._artifacts.get("export")
        artifact_path = None
        if artifact is not None and self.cache_dir is not None:
            artifact_path = self.cache_dir / self._artifact_name(
                "export", self.spec.stage_hash("export")
            )
        return PipelineResult(
            spec=self.spec,
            dataset=self._artifacts["dataset"],
            split=self._artifacts["split"],
            pool=self._artifacts["pool"],
            result=self._artifacts["search"],
            muffin=self._artifacts["finalize"],
            report=self._artifacts["report"],
            timings=self.timings,
            cache_dir=self.cache_dir,
            artifact=artifact,
            artifact_path=artifact_path,
        )

    @property
    def search(self) -> MuffinSearch:
        """The search driver (available once the pool stage has run).

        Exposes the full :class:`~repro.core.MuffinSearch` API — e.g.
        ``named_muffin_nets`` for the paper's per-attribute specialists —
        on top of the pipeline's shared body-output cache.
        """
        if "pool" not in self._artifacts:
            raise PipelineError("run() the pipeline (at least through 'pool') first")
        return self._build_search()

    # ------------------------------------------------------------------
    # Stage driver
    # ------------------------------------------------------------------
    def _execute(self, stage: str, use_cache: bool) -> None:
        stage_hash = self.spec.stage_hash(stage)
        with span(f"pipeline/stage/{stage}", hash=stage_hash):
            self._execute_timed(stage, stage_hash, use_cache)

    def _execute_timed(self, stage: str, stage_hash: str, use_cache: bool) -> None:
        start = time.perf_counter()
        status, detail = "ran", ""
        loader = getattr(self, f"_load_{stage}", None)
        cached_entry = self._manifest.get(stage, {})
        # Artifacts are keyed by stage hash on disk, so a matching artifact is
        # valid regardless of what the (last-run) manifest says — a shared
        # cache_dir alternating between specs still hits every cache.
        if use_cache and loader is not None and self.cache_dir is not None:
            try:
                self._artifacts[stage] = loader(stage_hash)
                status = "cached"
                detail = self._artifact_name(stage, stage_hash)
            except (FileNotFoundError, KeyError, ValueError) as exc:
                detail = f"cache miss ({exc.__class__.__name__}); recomputed"
                status = "ran"
        if status != "cached":
            builder = getattr(self, f"_stage_{stage}")
            self._artifacts[stage] = builder()
            if loader is None and cached_entry.get("hash") == stage_hash:
                status = "rebuilt"  # deterministic stage, cheap to rebuild
            artifact = self._persist(stage, stage_hash)
            if artifact:
                detail = artifact
            if stage == "search":
                stats = getattr(self._artifacts["search"], "execution_stats", None)
                if stats is not None:
                    memo = (
                        f"executor={stats.executor} backend={stats.backend} "
                        f"memo={stats.memo_hits}h/{stats.memo_misses}m"
                    )
                    if stats.task_bytes_shipped and stats.task_bytes_raw:
                        memo += (
                            f" shipped={stats.task_bytes_shipped}B"
                            f"/{stats.task_bytes_raw}B raw"
                        )
                    detail = f"{detail}; {memo}" if detail else memo
        seconds = time.perf_counter() - start
        self.timings.append(
            StageTiming(stage=stage, status=status, seconds=seconds, hash=stage_hash, detail=detail)
        )
        _STAGES_TOTAL.inc(stage=stage, status=status)
        _STAGE_SECONDS.observe(seconds, stage=stage)
        self.logger.log(stage=stage, status=status, seconds=round(seconds, 3))
        if stage == "search" and status == "ran":
            # Surface the vectorized-engine and head-training shares of the
            # search wall-clock as their own timings buckets (both are
            # subsets of the search seconds).
            stats = getattr(self._artifacts["search"], "execution_stats", None)
            if stats is not None:
                self.timings.append(
                    StageTiming(
                        stage="metrics",
                        status="ran",
                        seconds=float(stats.metrics_seconds),
                        hash=stage_hash,
                        detail="vectorized fairness evaluation inside the search stage",
                    )
                )
                self.timings.append(
                    StageTiming(
                        stage="training",
                        status="ran",
                        seconds=float(stats.train_seconds),
                        hash=stage_hash,
                        detail="muffin-head training inside the search stage "
                        "(fused batched kernels unless use_fused is disabled; "
                        f"backend={stats.backend})",
                    )
                )
        self._manifest[stage] = {
            "hash": stage_hash,
            "seconds": round(seconds, 4),
            "artifact": detail,
        }
        self._save_manifest()

    # ------------------------------------------------------------------
    # Stage builders
    # ------------------------------------------------------------------
    def _stage_dataset(self) -> FairnessDataset:
        spec = self.spec.dataset
        builder = DATASETS.get(spec.name)
        return builder(num_samples=spec.num_samples, seed=spec.seed, **spec.params)

    def _stage_split(self) -> DataSplit:
        spec = self.spec.dataset
        return split_dataset(
            self._artifacts["dataset"], fractions=spec.split_fractions, seed=spec.split_seed
        )

    def _stage_pool(self) -> ModelPool:
        spec = self.spec.pool
        return ModelPool(
            self._artifacts["split"],
            architecture_names=list(spec.architectures) if spec.architectures else None,
            train_config=spec.train_config(),
            seed=spec.seed,
        ).build()

    def _build_search(self) -> MuffinSearch:
        if self._search is None:
            pool: ModelPool = self._artifacts["pool"]
            if self.body_cache is None or self.body_cache.pool is not pool:
                self.body_cache = BodyOutputCache(pool)
            spec = self.spec.search
            base_model = pool.get(spec.base_model).label if spec.base_model else None
            self._search = MuffinSearch(
                pool,
                attributes=list(spec.attributes),
                base_model=base_model,
                num_paired=spec.num_paired,
                search_config=spec.search_config(self.spec.execution),
                reward_config=spec.reward_config(),
                head_config=spec.head_config(self.spec.execution, self.spec.backend),
                reward_builder=spec.reward,
                body_cache=self.body_cache,
            )
        return self._search

    def _stage_search(self) -> MuffinSearchResult:
        journal = None
        if self.spec.execution.journal is not None:
            from ..master.db import EpisodeJournal

            # The fingerprint ties the journal to the result-determining
            # sub-specs; a journal written by a different spec resets itself
            # instead of replaying foreign batches.
            journal = EpisodeJournal(
                self.spec.execution.journal,
                fingerprint={"search": self.spec.stage_hash("search")},
            )
        try:
            return self._build_search().run(journal=journal, should_stop=self.should_stop)
        finally:
            if journal is not None:
                journal.close()

    def _stage_finalize(self) -> MuffinNet:
        spec = self.spec.finalize
        return self._build_search().finalize(
            self._artifacts["search"],
            metric=spec.selection,
            name=spec.name,
            evaluate_on_test=spec.evaluate_on_test,
            reference_model=spec.reference_model,
        )

    def _stage_export(self) -> Optional[Dict[str, object]]:
        """Bundle the finalised model as a deployable serving artifact."""
        if not self.spec.export.enabled:
            return None
        muffin: MuffinNet = self._artifacts["finalize"]
        schema = FeatureSchema.from_dataset(self._artifacts["dataset"])
        return fused_model_payload(
            muffin.fused,
            schema=schema,
            spec_hash=self.spec.spec_hash(),
            name=muffin.name,
        )

    def _stage_report(self) -> Dict[str, object]:
        spec = self.spec.report
        pool: ModelPool = self._artifacts["pool"]
        result: MuffinSearchResult = self._artifacts["search"]
        muffin: MuffinNet = self._artifacts["finalize"]
        report: Dict[str, object] = {
            "run": self.spec.name,
            "spec_hash": self.spec.spec_hash(),
            "muffin": muffin.to_dict(),
        }
        if self._artifacts.get("export") is not None:
            report["artifact"] = self._artifact_name(
                "export", self.spec.stage_hash("export")
            )
        if spec.include_pool:
            report["pool"] = pool.summary()
        if spec.include_search:
            report["search"] = result.summary()
            top = sorted(result.records, key=lambda r: r.reward, reverse=True)[: spec.top_k]
            report["top_episodes"] = [record.to_dict() for record in top]
        report["timings"] = [t.to_dict() for t in self.timings]
        return report

    # ------------------------------------------------------------------
    # Persistence (cache_dir only)
    # ------------------------------------------------------------------
    def _artifact_name(self, stage: str, stage_hash: str) -> str:
        if stage == "export":
            return self.spec.export.filename or f"muffin-{stage_hash}.json"
        return {
            "pool": f"pool-{stage_hash}",
            "search": f"search-{stage_hash}.json",
            "finalize": f"finalize-{stage_hash}.json",
            "report": f"report-{stage_hash}.json",
        }.get(stage, "")

    def _persist(self, stage: str, stage_hash: str) -> str:
        if self.cache_dir is None:
            return ""
        name = self._artifact_name(stage, stage_hash)
        if stage == "pool":
            # The pipeline intentionally replaces its own cache artifacts
            # (e.g. after a forced rerun or a failed cache load).
            save_pool(self._artifacts["pool"], self.cache_dir / name, overwrite=True)
            return name
        if stage == "export":
            payload = self._artifacts.get("export")
            if payload is None:
                return ""
            save_json(payload, self.cache_dir / name)
            return name
        if stage == "search":
            result: MuffinSearchResult = self._artifacts["search"]
            save_json(result.to_dict(include_state=True), self.cache_dir / name)
            return name
        if stage == "finalize":
            muffin: MuffinNet = self._artifacts["finalize"]
            payload: Dict[str, object] = {
                "name": muffin.name,
                "episode": muffin.record.episode,
                "test_evaluation": (
                    muffin.test_evaluation.to_dict() if muffin.test_evaluation else None
                ),
            }
            save_json(payload, self.cache_dir / name)
            return name
        if stage == "report":
            save_json(self._artifacts["report"], self.cache_dir / name)
            return name
        return ""

    def _load_pool(self, stage_hash: str) -> ModelPool:
        directory = self._require_cache() / self._artifact_name("pool", stage_hash)
        if not directory.exists():
            raise FileNotFoundError(directory)
        return load_pool(
            directory, self._artifacts["split"], train_config=self.spec.pool.train_config()
        )

    def _load_search(self, stage_hash: str) -> MuffinSearchResult:
        path = self._require_cache() / self._artifact_name("search", stage_hash)
        if not path.exists():
            raise FileNotFoundError(path)
        return MuffinSearchResult.from_dict(load_json(path))

    def _load_finalize(self, stage_hash: str) -> MuffinNet:
        path = self._require_cache() / self._artifact_name("finalize", stage_hash)
        if not path.exists():
            raise FileNotFoundError(path)
        payload = load_json(path)
        result: MuffinSearchResult = self._artifacts["search"]
        matches = [r for r in result.records if r.episode == int(payload["episode"])]
        if not matches:
            raise ValueError(f"cached finalize points at unknown episode {payload['episode']}")
        record = matches[0]
        pool: ModelPool = self._artifacts["pool"]
        if record.head_state is not None:
            fused = rebuild_fused_model(
                record, pool.models(record.candidate.model_names), name=payload["name"]
            )
            muffin = MuffinNet(name=payload["name"], fused=fused, record=record)
        else:
            muffin = self._build_search().materialize_record(
                record, name=payload["name"], evaluate_on_test=False
            )
        if payload.get("test_evaluation") is not None:
            muffin.test_evaluation = FairnessEvaluation.from_dict(payload["test_evaluation"])
        return muffin

    def _load_export(self, stage_hash: str) -> Optional[Dict[str, object]]:
        if not self.spec.export.enabled:
            # A disabled export "loads" instantly as absent; returning here
            # (instead of raising) keeps the stage cached-status-free noise
            # out of reruns.
            raise FileNotFoundError("export disabled")
        path = self._require_cache() / self._artifact_name("export", stage_hash)
        if not path.exists():
            raise FileNotFoundError(path)
        payload = load_json(path)
        if (
            not isinstance(payload, dict)
            or payload.get("format") != FUSED_ARTIFACT_FORMAT
            or payload.get("checksum") != artifact_checksum(payload)
        ):
            raise ValueError(f"cached artifact '{path.name}' is corrupt; re-exporting")
        # The checksum proves integrity, not provenance.  With a custom
        # export.filename the artifact name no longer embeds the stage hash,
        # so a bundle exported from an earlier spec would otherwise be served
        # as 'cached'; the stored spec hash ties it to this exact spec.
        if payload.get("spec_hash") != self.spec.spec_hash():
            raise ValueError(
                f"cached artifact '{path.name}' was exported from a different "
                "spec; re-exporting"
            )
        return payload

    def _load_report(self, stage_hash: str) -> Dict[str, object]:
        path = self._require_cache() / self._artifact_name("report", stage_hash)
        if not path.exists():
            raise FileNotFoundError(path)
        return load_json(path)

    def _require_cache(self) -> Path:
        if self.cache_dir is None:
            raise FileNotFoundError("no cache directory configured")
        return self.cache_dir

    def _load_manifest(self) -> Dict[str, Dict[str, object]]:
        if self.cache_dir is None:
            return {}
        path = self.cache_dir / _MANIFEST
        if not path.exists():
            return {}
        try:
            manifest = load_json(path)
        except ValueError:
            return {}
        return manifest if isinstance(manifest, dict) else {}

    def _save_manifest(self) -> None:
        if self.cache_dir is None:
            return
        save_json(self._manifest, self.cache_dir / _MANIFEST)


def run_spec(
    spec: Union[RunSpec, PathLike],
    cache_dir: Optional[PathLike] = None,
    resume: bool = True,
    rerun_from: Optional[str] = None,
    verbose: bool = False,
) -> PipelineResult:
    """One-call execution of a spec (object, JSON string or file path)."""
    if not isinstance(spec, RunSpec):
        spec = RunSpec.from_json(spec)
    pipeline = MuffinPipeline(spec, cache_dir=cache_dir, verbose=verbose)
    return pipeline.run(resume=resume, rerun_from=rerun_from)

"""Declarative run specifications for the Muffin pipeline.

A :class:`RunSpec` is a nested, JSON-serialisable description of one full
Muffin run — dataset, split, model pool, search, finalisation and report.
It round-trips losslessly through JSON (``spec == RunSpec.from_json(spec.to_json())``)
and every component it names (dataset, controller, proxy builder, reward,
selection strategy, architectures) resolves through a registry, so plugins
are addressable from a spec file without touching library code.

Stage hashes (:meth:`RunSpec.stage_hash`) cover exactly the sub-specs that
influence a stage's artifact, which is what the pipeline's resume-from-cache
logic keys on: editing ``search.episodes`` invalidates the search stage but
leaves the trained pool cache intact.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Mapping, Optional, Tuple, Union

from ..core import EXECUTORS, HeadTrainConfig, RewardConfig, SearchConfig
from ..core.backend import BACKENDS, DEFAULT_BACKEND
from ..data.splits import PAPER_SPLIT
from ..zoo import TrainConfig

PathLike = Union[str, Path]

#: Pipeline stages in execution order (also the resume-from targets).
PIPELINE_STAGES: Tuple[str, ...] = (
    "dataset",
    "split",
    "pool",
    "search",
    "finalize",
    "export",
    "report",
)


class SpecError(ValueError):
    """A run spec that cannot be built or parsed."""


def _tuple_or_none(value):
    return None if value is None else tuple(value)


@dataclass
class DatasetSpec:
    """Which dataset to build (a :data:`~repro.data.DATASETS` entry) and how to split it."""

    name: str = "synthetic_isic"
    num_samples: int = 6000
    seed: int = 2019
    #: extra keyword arguments forwarded to the registered dataset builder
    params: Dict[str, object] = field(default_factory=dict)
    split_fractions: Tuple[float, float, float] = PAPER_SPLIT
    split_seed: int = 1

    def __post_init__(self) -> None:
        self.split_fractions = tuple(float(f) for f in self.split_fractions)
        if self.num_samples <= 0:
            raise SpecError("dataset.num_samples must be positive")
        if len(self.split_fractions) != 3:
            raise SpecError("dataset.split_fractions must have three entries")


@dataclass
class PoolSpec:
    """Which architectures to train into the model pool, and how."""

    #: architecture names / aliases; ``None`` = the paper's default ten-model pool
    architectures: Optional[Tuple[str, ...]] = None
    epochs: int = 40
    batch_size: int = 256
    lr: float = 0.1
    seed: int = 0

    def __post_init__(self) -> None:
        self.architectures = _tuple_or_none(self.architectures)
        if self.epochs <= 0:
            raise SpecError("pool.epochs must be positive")

    def train_config(self) -> TrainConfig:
        return TrainConfig(
            epochs=self.epochs, batch_size=self.batch_size, lr=self.lr, seed=self.seed
        )


@dataclass
class SearchSpec:
    """The Muffin search: attributes, search space anchors and all component names."""

    attributes: Tuple[str, ...] = ("age", "site")
    base_model: Optional[str] = None
    num_paired: int = 1
    episodes: int = 40
    episode_batch: int = 5
    #: registered controller name (:data:`repro.core.CONTROLLERS`)
    controller: str = "rnn"
    #: registered proxy-builder name (:data:`repro.core.PROXY_BUILDERS`)
    proxy: str = "weighted"
    #: registered reward name (:data:`repro.core.REWARDS`)
    reward: str = "multi_fairness"
    eval_partition: str = "val"
    head_epochs: int = 25
    head_batch_size: int = 128
    store_heads: bool = True
    seed: int = 0
    #: 'episode' (paper formulation: every episode retrains) or 'derived'
    #: (per-candidate seeds: re-sampled structures hit the evaluation memo).
    #: Result-affecting, hence part of the search stage hash — unlike the
    #: ``execution`` section.
    candidate_seeds: str = "episode"

    def __post_init__(self) -> None:
        self.attributes = tuple(self.attributes)
        if not self.attributes:
            raise SpecError("search.attributes must name at least one unfair attribute")
        if self.episodes <= 0 or self.episode_batch <= 0:
            raise SpecError("search.episodes and search.episode_batch must be positive")

    def search_config(self, execution: Optional["ExecutionSpec"] = None) -> SearchConfig:
        kwargs: Dict[str, object] = {}
        if execution is not None:
            kwargs = {
                "executor": execution.executor,
                "max_workers": execution.max_workers,
                "memoize": execution.memoize,
                # Forwarded only to factories that accept them (the
                # distributed executor); see build_executor's filtering.
                "executor_options": {
                    "task_retries": execution.task_retries,
                    "heartbeat_seconds": execution.heartbeat_seconds,
                },
            }
        return SearchConfig(
            episodes=self.episodes,
            episode_batch=self.episode_batch,
            eval_partition=self.eval_partition,
            controller=self.controller,
            proxy_builder=self.proxy,
            store_heads=self.store_heads,
            seed=self.seed,
            candidate_seeds=self.candidate_seeds,
            **kwargs,
        )

    def head_config(
        self,
        execution: Optional["ExecutionSpec"] = None,
        backend: Optional["BackendSpec"] = None,
    ) -> HeadTrainConfig:
        return HeadTrainConfig(
            epochs=self.head_epochs,
            batch_size=self.head_batch_size,
            use_fused=execution.use_fused if execution is not None else True,
            backend=backend.name if backend is not None else DEFAULT_BACKEND,
        )

    def reward_config(self) -> RewardConfig:
        return RewardConfig(attributes=self.attributes)


@dataclass
class ExecutionSpec:
    """How candidate evaluations are dispatched — never *what* they compute.

    Seeded results are bit-identical across executors, so this section is
    deliberately excluded from every stage hash: switching ``serial`` to
    ``process`` reuses all cached artifacts.
    """

    #: registered executor name (:data:`repro.core.EXECUTORS`):
    #: 'serial', 'thread', 'process' or 'distributed'
    executor: str = "serial"
    #: worker count for parallel executors (``None`` = one per CPU core)
    max_workers: Optional[int] = None
    #: memoise evaluations on their (candidate, seed) key
    memoize: bool = True
    #: train eligible muffin heads through the fused closed-form kernels
    #: (bit-identical to the autograd path, much faster); ``False`` restores
    #: the per-candidate autograd loop dispatched through the executor
    use_fused: bool = True
    #: path of the run's episode journal (``None`` = not journalled); the
    #: search appends every completed batch there and resumes from it
    journal: Optional[str] = None
    #: distributed executor: re-dispatches allowed per lost task before the
    #: run fails
    task_retries: int = 2
    #: distributed executor: worker heartbeat interval (seconds)
    heartbeat_seconds: float = 0.5

    def __post_init__(self) -> None:
        if self.executor not in EXECUTORS:
            suggestions = EXECUTORS.suggest(self.executor)
            hint = f" (did you mean {suggestions[0]!r}?)" if suggestions else ""
            raise SpecError(
                f"execution.executor must be one of {EXECUTORS.names()}, got "
                f"'{self.executor}'{hint}"
            )
        if self.max_workers is not None:
            self.max_workers = int(self.max_workers)
            if self.max_workers <= 0:
                raise SpecError("execution.max_workers must be positive (or null for auto)")
        if self.journal is not None:
            self.journal = str(self.journal)
        self.task_retries = int(self.task_retries)
        if self.task_retries < 0:
            raise SpecError("execution.task_retries must be non-negative")
        self.heartbeat_seconds = float(self.heartbeat_seconds)
        if self.heartbeat_seconds <= 0:
            raise SpecError("execution.heartbeat_seconds must be positive")


@dataclass
class BackendSpec:
    """Which array backend the hot paths (fused kernels, metrics engine) use.

    The default ``numpy-float64`` backend is bit-identical to the autograd
    oracle; ``numpy-float32`` trades bit-identity for float32 GEMMs under
    the tolerance contract of :data:`repro.core.backend.TOLERANCES`.  Like
    ``execution``, this section is a precision/performance knob rather than
    a semantic one, so it is excluded from every stage hash: a float32 rerun
    reuses the float64 run's cached pool and dataset artifacts.
    """

    #: registered backend name (:data:`repro.core.backend.BACKENDS`) or one
    #: of its aliases ('float64'/'fp64', 'float32'/'fp32', ...)
    name: str = DEFAULT_BACKEND

    def __post_init__(self) -> None:
        if self.name not in BACKENDS:
            suggestions = BACKENDS.suggest(self.name)
            hint = f" (did you mean {suggestions[0]!r}?)" if suggestions else ""
            raise SpecError(
                f"backend.name must be one of {BACKENDS.names()}, got "
                f"'{self.name}'{hint}"
            )
        # Canonicalise aliases so specs hash and report consistently.
        self.name = BACKENDS.canonical_name(self.name)


@dataclass
class ObsSpec:
    """Telemetry for the run: tracing sink and the metrics registry switch.

    Observability reads results, it never shapes them: spans and metrics
    are recorded around the computation on monotonic clocks and touch no
    RNG state, so a run with telemetry on is bit-identical to the same run
    with it off (the test suite asserts this on ``result_hash()``).  Like
    ``execution`` and ``backend``, the section is therefore excluded from
    every stage hash — turning tracing on reuses all cached artifacts.
    """

    #: JSONL file the pipeline appends hierarchical spans to
    #: (``None`` = tracing off); render with ``python -m repro trace``
    trace_path: Optional[str] = None
    #: record counters/gauges/histograms into the process-wide registry
    #: (:data:`repro.obs.METRICS`)
    metrics_enabled: bool = False

    def __post_init__(self) -> None:
        if self.trace_path is not None:
            self.trace_path = str(self.trace_path)
        self.metrics_enabled = bool(self.metrics_enabled)


@dataclass
class FinalizeSpec:
    """How to pick and materialise the reported Muffin-Net."""

    #: registered selection strategy (:data:`repro.core.SELECTION_STRATEGIES`)
    #: or the name of a searched attribute
    selection: str = "reward"
    name: str = "Muffin"
    #: restrict selection to candidates dominating this pool model
    reference_model: Optional[str] = None
    evaluate_on_test: bool = True


@dataclass
class ExportSpec:
    """Whether (and as what) to bundle the finalised Muffin-Net for serving.

    The export stage turns the finalize stage's model into a deployable
    fused-model artifact (member specs + head weights + serving feature
    schema + spec hash, checksummed) that ``python -m repro serve`` and
    :func:`~repro.zoo.persistence.load_fused_model` consume.
    """

    enabled: bool = True
    #: artifact filename inside the cache dir (default: ``muffin-<hash>.json``)
    filename: Optional[str] = None


@dataclass
class ReportSpec:
    """What the report stage assembles."""

    include_pool: bool = True
    include_search: bool = True
    #: how many top-reward episodes to list
    top_k: int = 5

    def __post_init__(self) -> None:
        if self.top_k < 0:
            raise SpecError("report.top_k must be non-negative")


_SECTION_TYPES = {
    "dataset": DatasetSpec,
    "pool": PoolSpec,
    "search": SearchSpec,
    "execution": ExecutionSpec,
    "backend": BackendSpec,
    "obs": ObsSpec,
    "finalize": FinalizeSpec,
    "export": ExportSpec,
    "report": ReportSpec,
}


@dataclass
class RunSpec:
    """One declarative, serialisable Muffin run."""

    name: str = "muffin-run"
    dataset: DatasetSpec = field(default_factory=DatasetSpec)
    pool: PoolSpec = field(default_factory=PoolSpec)
    search: SearchSpec = field(default_factory=SearchSpec)
    execution: ExecutionSpec = field(default_factory=ExecutionSpec)
    backend: BackendSpec = field(default_factory=BackendSpec)
    obs: ObsSpec = field(default_factory=ObsSpec)
    finalize: FinalizeSpec = field(default_factory=FinalizeSpec)
    export: ExportSpec = field(default_factory=ExportSpec)
    report: ReportSpec = field(default_factory=ReportSpec)

    def __post_init__(self) -> None:
        for section, section_type in _SECTION_TYPES.items():
            value = getattr(self, section)
            if isinstance(value, Mapping):
                setattr(self, section, _section_from_dict(section, value))
            elif not isinstance(value, section_type):
                raise SpecError(
                    f"'{section}' must be a {section_type.__name__} or a mapping, "
                    f"got {type(value).__name__}"
                )

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {"name": self.name}
        for section in _SECTION_TYPES:
            payload[section] = dataclasses.asdict(getattr(self, section))
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "RunSpec":
        unknown = set(payload) - ({"name"} | set(_SECTION_TYPES))
        if unknown:
            raise SpecError(
                f"unknown run-spec section(s) {sorted(unknown)}; "
                f"expected {['name'] + sorted(_SECTION_TYPES)}"
            )
        kwargs: Dict[str, object] = {"name": str(payload.get("name", "muffin-run"))}
        for section in _SECTION_TYPES:
            if section in payload:
                kwargs[section] = _section_from_dict(section, payload[section])
        return cls(**kwargs)

    def to_json(self, path: Optional[PathLike] = None, indent: int = 2) -> str:
        """Serialise to a JSON string, optionally also writing ``path``."""
        text = json.dumps(self.to_dict(), indent=indent)
        if path is not None:
            Path(path).parent.mkdir(parents=True, exist_ok=True)
            Path(path).write_text(text + "\n")
        return text

    @classmethod
    def from_json(cls, source: PathLike) -> "RunSpec":
        """Parse a spec from a JSON string or a path to a JSON file."""
        text = str(source)
        if not text.lstrip().startswith("{"):
            path = Path(text)
            if not path.exists():
                raise SpecError(f"spec file '{path}' does not exist")
            text = path.read_text()
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SpecError(f"spec is not valid JSON: {exc}") from exc
        if not isinstance(payload, dict):
            raise SpecError("a run spec must be a JSON object")
        return cls.from_dict(payload)

    # ------------------------------------------------------------------
    # Hashing (the pipeline's cache keys)
    # ------------------------------------------------------------------
    def spec_hash(self) -> str:
        """Stable short hash of the spec's result-determining sections.

        The ``execution`` section only changes *how fast* a run computes,
        never what it computes, so it is excluded — two specs differing only
        in executor share one default cache directory.  The ``backend``
        section is excluded for the same reason: precision is an
        execution-style knob with a documented tolerance contract, not a
        semantic change, so a float32 rerun reuses the float64 caches.
        The ``obs`` section is pure observation — spans and metrics around
        the computation, bit-identical results either way — so it is
        excluded too.
        """
        payload = self.to_dict()
        payload.pop("execution", None)
        payload.pop("backend", None)
        payload.pop("obs", None)
        return _hash_payload(payload)

    def stage_hash(self, stage: str) -> str:
        """Hash of the sub-specs influencing ``stage``'s artifact."""
        sections = {
            "dataset": ("dataset",),
            "split": ("dataset",),
            "pool": ("dataset", "pool"),
            "search": ("dataset", "pool", "search"),
            "finalize": ("dataset", "pool", "search", "finalize"),
            "export": ("dataset", "pool", "search", "finalize", "export"),
            "report": ("dataset", "pool", "search", "finalize", "export", "report"),
        }
        if stage not in sections:
            raise SpecError(f"unknown stage '{stage}'; expected one of {list(PIPELINE_STAGES)}")
        payload = {
            section: dataclasses.asdict(getattr(self, section)) for section in sections[stage]
        }
        return _hash_payload(payload)


#: The **hash-contract manifest**: every field of every spec section,
#: explicitly marked ``"hashed"`` (it enters the stage hashes and therefore
#: invalidates cached artifacts when edited) or ``"excluded"`` (execution-
#: only: it may change *how* a run computes, never *what*).
#:
#: ``repro lint`` (rule RL2, :mod:`repro.analysis.hash_contract`) checks this
#: table against the dataclasses above — adding a spec field without
#: declaring it here is a lint error, which forces every new knob through
#: the same question PR 6's ``task_retries`` had to answer: does this belong
#: in the cache key?  Two invariants are enforced on top of coverage:
#: every ``execution`` field must be ``"excluded"`` (the whole section is
#: popped from :meth:`RunSpec.spec_hash`), and every other section's field
#: must be ``"hashed"`` (result-affecting knobs may not dodge the cache key;
#: an execution-only knob belongs in :class:`ExecutionSpec`).
HASH_MANIFEST: Dict[str, Dict[str, str]] = {
    "dataset": {
        "name": "hashed",
        "num_samples": "hashed",
        "seed": "hashed",
        "params": "hashed",
        "split_fractions": "hashed",
        "split_seed": "hashed",
    },
    "pool": {
        "architectures": "hashed",
        "epochs": "hashed",
        "batch_size": "hashed",
        "lr": "hashed",
        "seed": "hashed",
    },
    "search": {
        "attributes": "hashed",
        "base_model": "hashed",
        "num_paired": "hashed",
        "episodes": "hashed",
        "episode_batch": "hashed",
        "controller": "hashed",
        "proxy": "hashed",
        "reward": "hashed",
        "eval_partition": "hashed",
        "head_epochs": "hashed",
        "head_batch_size": "hashed",
        "store_heads": "hashed",
        "seed": "hashed",
        "candidate_seeds": "hashed",
    },
    "execution": {
        "executor": "excluded",
        "max_workers": "excluded",
        "memoize": "excluded",
        "use_fused": "excluded",
        "journal": "excluded",
        "task_retries": "excluded",
        "heartbeat_seconds": "excluded",
    },
    "backend": {
        "name": "excluded",
    },
    "obs": {
        "trace_path": "excluded",
        "metrics_enabled": "excluded",
    },
    "finalize": {
        "selection": "hashed",
        "name": "hashed",
        "reference_model": "hashed",
        "evaluate_on_test": "hashed",
    },
    "export": {
        "enabled": "hashed",
        "filename": "hashed",
    },
    "report": {
        "include_pool": "hashed",
        "include_search": "hashed",
        "top_k": "hashed",
    },
}


def _section_from_dict(section: str, payload: object):
    section_type = _SECTION_TYPES[section]
    if isinstance(payload, section_type):
        return payload
    if not isinstance(payload, Mapping):
        raise SpecError(f"'{section}' must be a mapping, got {type(payload).__name__}")
    valid = {f.name for f in dataclasses.fields(section_type)}
    unknown = set(payload) - valid
    if unknown:
        raise SpecError(
            f"unknown key(s) {sorted(unknown)} in '{section}' spec; valid keys: {sorted(valid)}"
        )
    return section_type(**payload)


def _hash_payload(payload: object) -> str:
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:12]

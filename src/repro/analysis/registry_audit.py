"""RL5 — registry consistency, and the shared registry-introspection layer.

Both ``python -m repro components`` and ``repro lint`` need the same walk
over every component registry (names, aliases, resolvability), so it lives
here once:

* :func:`registry_families` / :func:`registry_summary` back the CLI listing;
* :func:`audit_registries` checks the registries themselves (alias targets
  resolvable, names non-empty and unique case-insensitively — two entries
  differing only in case are a spec-file typo factory);
* :func:`spec_component_references` extracts every registry-resolved name a
  :class:`~repro.api.RunSpec` carries (dataset, architectures, controller,
  proxy builder, reward, selection strategy, executor) and resolves each,
  attaching a did-you-mean hint on failure;
* :func:`audit_spec_file` applies that to an ``examples/specs/*.json`` file,
  reporting parse failures and unresolvable names with line anchors into
  the JSON text.

The RL5 rule class at the bottom is a thin adapter from these audits to
lint :class:`~repro.analysis.core.Finding`\\ s.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Union

from ..registry import Registry
from .core import LINT_RULES, Finding, Project, ProjectRule

PathLike = Union[str, Path]


# ----------------------------------------------------------------------
# Registry walking (shared with ``python -m repro components``)
# ----------------------------------------------------------------------
def registry_families(include_experiments: bool = False) -> Dict[str, Registry]:
    """Every component-registry family, keyed by its CLI/plugin name.

    ``include_experiments`` pulls in the experiment harness registry, which
    imports all nine fig*/table1 modules — the CLI listing wants it, the
    linter does not need the weight.
    """
    from ..api import registries as api_registries

    families: Dict[str, Registry] = dict(api_registries._CORE_REGISTRIES)
    if include_experiments:
        families["experiments"] = api_registries.EXPERIMENTS
    return families


def registry_summary(include_experiments: bool = True) -> Dict[str, Dict[str, List[str]]]:
    """``family -> {name -> sorted aliases}`` in registration order."""
    summary: Dict[str, Dict[str, List[str]]] = {}
    for family, registry in registry_families(include_experiments).items():
        aliases: Dict[str, List[str]] = {}
        for alias, target in registry.aliases().items():
            aliases.setdefault(target, []).append(alias)
        summary[family] = {
            name: sorted(aliases.get(name, [])) for name in registry.names()
        }
    return summary


def unknown_component_hint(registry: Registry, name: str) -> str:
    """A did-you-mean sentence for an unresolvable component name."""
    suggestions = registry.suggest(str(name))
    if suggestions:
        quoted = ", ".join(f"'{s}'" for s in suggestions)
        return f"did you mean {quoted}? available: {registry.names()}"
    return f"available {registry.kind}s: {registry.names()}"


@dataclass
class AuditIssue:
    """One registry/spec consistency problem (pre-lint representation)."""

    message: str
    hint: str = ""
    #: a string to locate the issue in a spec file (line-anchor needle)
    needle: Optional[str] = None


def audit_registries(include_experiments: bool = False) -> List[AuditIssue]:
    """Consistency problems inside the registries themselves."""
    issues: List[AuditIssue] = []
    for family, registry in registry_families(include_experiments).items():
        seen_lower: Dict[str, str] = {}
        for name in registry.names() + list(registry.aliases()):
            if not str(name).strip():
                issues.append(
                    AuditIssue(
                        message=f"{family} registry contains an empty/blank name",
                        hint="register components under non-empty stable names",
                    )
                )
                continue
            lowered = str(name).lower()
            if lowered in seen_lower and seen_lower[lowered] != name:
                issues.append(
                    AuditIssue(
                        message=(
                            f"{family} names '{seen_lower[lowered]}' and '{name}' "
                            "differ only in case"
                        ),
                        hint="case-twin names are a spec-file typo factory; rename "
                        "or alias one onto the other",
                    )
                )
            seen_lower.setdefault(lowered, str(name))
        for alias, target in registry.aliases().items():
            if target not in registry:
                issues.append(
                    AuditIssue(
                        message=f"{family} alias '{alias}' points at unregistered "
                        f"'{target}'",
                        hint="aliases must resolve to a registered canonical name",
                    )
                )
                continue
            try:
                registry.get(alias)
            except Exception as exc:
                issues.append(
                    AuditIssue(
                        message=f"{family} alias '{alias}' fails to resolve: {exc}",
                        hint="aliases must resolve to a registered canonical name",
                    )
                )
    return issues


# ----------------------------------------------------------------------
# Spec-file auditing
# ----------------------------------------------------------------------
@dataclass
class ComponentRef:
    """One registry-resolved name carried by a RunSpec."""

    family: str
    spec_path: str  #: dotted spec location, e.g. ``search.controller``
    name: str
    ok: bool
    hint: str = ""


def spec_component_references(spec) -> List[ComponentRef]:
    """Resolve every component name a :class:`~repro.api.RunSpec` carries."""
    families = registry_families()

    def check(family: str, spec_path: str, name: Optional[str], extra_ok: Sequence[str] = ()) -> Optional[ComponentRef]:
        if name is None:
            return None
        registry = families[family]
        if str(name) in registry or str(name) in extra_ok:
            return ComponentRef(family, spec_path, str(name), ok=True)
        return ComponentRef(
            family, spec_path, str(name), ok=False,
            hint=unknown_component_hint(registry, str(name)),
        )

    refs: List[ComponentRef] = []
    refs.append(check("datasets", "dataset.name", spec.dataset.name))
    for index, arch in enumerate(spec.pool.architectures or ()):
        refs.append(check("architectures", f"pool.architectures[{index}]", arch))
    refs.append(check("architectures", "search.base_model", spec.search.base_model))
    refs.append(check("controllers", "search.controller", spec.search.controller))
    refs.append(check("proxy_builders", "search.proxy", spec.search.proxy))
    refs.append(check("rewards", "search.reward", spec.search.reward))
    # finalize.selection may be a registered strategy OR a searched attribute
    refs.append(
        check(
            "selection_strategies",
            "finalize.selection",
            spec.finalize.selection,
            extra_ok=tuple(spec.search.attributes),
        )
    )
    refs.append(
        check("architectures", "finalize.reference_model", spec.finalize.reference_model)
    )
    refs.append(check("executors", "execution.executor", spec.execution.executor))
    refs.append(check("backends", "backend.name", spec.backend.name))
    return [ref for ref in refs if ref is not None]


def audit_spec_file(path: PathLike) -> List[AuditIssue]:
    """Parse one spec JSON into a RunSpec and resolve every component name."""
    from ..api.spec import RunSpec, SpecError

    path = Path(path)
    try:
        text = path.read_text()
    except OSError as exc:
        return [AuditIssue(message=f"cannot read spec: {exc}")]
    try:
        spec = RunSpec.from_json(text)
    except SpecError as exc:
        return [
            AuditIssue(
                message=f"spec does not parse into a RunSpec: {exc}",
                hint="every examples/specs/*.json must stay loadable by "
                "`python -m repro run`",
            )
        ]
    issues: List[AuditIssue] = []
    for ref in spec_component_references(spec):
        if ref.ok:
            continue
        issues.append(
            AuditIssue(
                message=(
                    f"{ref.spec_path} names unknown "
                    f"{ref.family.rstrip('s').replace('_', ' ')} '{ref.name}'"
                ),
                hint=ref.hint,
                needle=f'"{ref.name}"',
            )
        )
    return issues


def _needle_line(text: str, needle: Optional[str]) -> int:
    if needle:
        for lineno, line in enumerate(text.splitlines(), start=1):
            if needle in line:
                return lineno
    return 1


# ----------------------------------------------------------------------
# The lint rule
# ----------------------------------------------------------------------
@LINT_RULES.register("RL5")
class RegistryConsistencyRule(ProjectRule):
    """Registries self-consistent; every example spec resolvable."""

    code = "RL5"
    name = "registry-consistency"
    description = (
        "every registered component name unique and resolvable; every "
        "examples/specs/*.json parses into a RunSpec naming only existing "
        "registry entries"
    )

    REGISTRIES_REL = "src/repro/api/registries.py"

    def check_project(self, project: Project) -> Iterable[Finding]:
        findings: List[Finding] = []
        try:
            registry_issues = audit_registries()
        except Exception as exc:
            return [
                Finding(
                    path=self.REGISTRIES_REL, line=1, col=1, code=self.code,
                    message=f"cannot import the component registries: "
                    f"{type(exc).__name__}: {exc}",
                    hint="fix the import error; RL5 cannot run without the registries",
                )
            ]
        for issue in registry_issues:
            findings.append(
                Finding(
                    path=self.REGISTRIES_REL, line=1, col=1, code=self.code,
                    message=issue.message, hint=issue.hint,
                )
            )
        for spec_path in project.spec_paths:
            try:
                text = Path(spec_path).read_text()
            except OSError:
                text = ""
            for issue in audit_spec_file(spec_path):
                findings.append(
                    Finding(
                        path=project.rel(spec_path),
                        line=_needle_line(text, issue.needle),
                        col=1,
                        code=self.code,
                        message=issue.message,
                        hint=issue.hint,
                    )
                )
        return findings

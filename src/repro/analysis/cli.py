"""Argument handling for ``python -m repro lint``.

Kept separate from :mod:`repro.__main__` so the lint CLI is importable and
testable without going through the top-level dispatcher, and so the
dispatcher stays a thin table of subcommands.
"""

from __future__ import annotations

import argparse
from typing import List, Optional, Sequence

from .core import LintConfigError, run_lint


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the ``repro lint`` options to ``parser``."""
    parser.add_argument(
        "paths",
        nargs="*",
        help="specific files to lint (default: the whole tree per --scope); "
        ".json paths are treated as run-spec files",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--select",
        action="append",
        default=None,
        metavar="CODES",
        help="comma-separated rule codes to run (default: all); "
        "repeatable",
    )
    parser.add_argument(
        "--ignore",
        action="append",
        default=None,
        metavar="CODES",
        help="comma-separated rule codes to skip; applied after --select",
    )
    parser.add_argument(
        "--scope",
        choices=("all", "src", "examples"),
        default="all",
        help="what to lint: python sources, example specs, or both (default)",
    )
    parser.add_argument(
        "--root",
        default=None,
        help="repository root (default: derived from the package location)",
    )


def lint_command(args: argparse.Namespace) -> int:
    """Run the linter per parsed CLI args; returns the process exit code."""
    try:
        report = run_lint(
            root=args.root,
            select=args.select,
            ignore=args.ignore,
            scope=args.scope,
            paths=args.paths or None,
        )
    except LintConfigError as exc:
        print(f"repro lint: {exc}")
        return 2
    if args.format == "json":
        print(report.to_json())
    else:
        print(report.render_text())
    return 0 if report.ok else 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Standalone entry point (``python -m repro.analysis.cli``)."""
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="repo-specific static analysis: determinism, hash "
        "contract, executor safety, atomic persistence, registry "
        "consistency, lock hygiene",
    )
    add_lint_arguments(parser)
    return lint_command(parser.parse_args(list(argv) if argv is not None else None))


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

"""Runtime concurrency checking (``REPRO_TSAN=1``) for serve/master threads.

Static lock hygiene (lint rule RL6) catches blocking calls *inside* critical
sections; what it cannot see is the dynamic interaction of several locks —
the order threads actually acquire them in, and whether state documented as
lock-protected is really only touched with the lock held.  This module is
the dynamic half:

* :func:`install` replaces ``threading.Lock`` with :class:`TsanLock`, a
  recording wrapper.  Every lock gets a lockdep-style **lock class** keyed
  by its creation site (``file:line``), so the two ``RunScheduler`` locks of
  two different test servers count as one class and ordering evidence
  accumulates across instances.
* Each acquisition while other locks are held records a directed
  ``held-class -> acquired-class`` edge; :func:`report` runs a cycle search
  over that graph.  A cycle (A taken under B somewhere, B taken under A
  somewhere else) is a latent deadlock even if the schedule never actually
  interleaved — exactly the bug class unit tests cannot catch by timing.
* :func:`register_shared_state` / :func:`touch_shared_state` let a class
  declare its mutation discipline: ``lock=...`` means *every* touch must
  hold that lock; no lock means **single-writer** — only one thread (the
  first toucher, e.g. the micro-batcher worker) may ever mutate it.

Everything is a no-op until :func:`install` runs, and every hook starts
with one boolean check — the instrumented classes in ``repro.serve`` and
``repro.master`` pay nothing in production.  The module is deliberately
stdlib-only: it is imported by the serving stack at module load.

Wiring: the root ``conftest.py`` calls :func:`install` when ``REPRO_TSAN=1``
and a session fixture in ``tests/conftest.py`` asserts :func:`report`
returns no problems at the end of the run.
"""

from __future__ import annotations

import sys
import threading
from typing import Dict, List, Optional, Tuple

__all__ = [
    "TsanLock",
    "install",
    "uninstall",
    "is_active",
    "reset",
    "report",
    "register_shared_state",
    "touch_shared_state",
]

#: the real lock factory, captured before any monkeypatching
_REAL_LOCK_FACTORY = threading.Lock

_ACTIVE = False
#: guards the recorder's cross-thread structures (a *real* lock, never a
#: TsanLock — instrumenting the instrumentation would recurse)
_STATE_LOCK = _REAL_LOCK_FACTORY()

_THIS_FILE = __file__


class _Recorder:
    """Everything observed since the last :func:`reset`."""

    def __init__(self) -> None:
        #: (held-class, acquired-class) -> human-readable example
        self.edges: Dict[Tuple[str, str], str] = {}
        #: immediate violations (shared-state discipline breaches)
        self.violations: List[str] = []
        #: per-thread stack of currently held TsanLocks
        self.held = threading.local()
        #: (state-name, id(owner)) -> {"lock": Optional[TsanLock],
        #:                              "writer": Optional[(ident, name)]}
        self.shared: Dict[Tuple[str, int], Dict[str, object]] = {}

    def held_stack(self) -> List["TsanLock"]:
        stack = getattr(self.held, "stack", None)
        if stack is None:
            stack = []
            self.held.stack = stack
        return stack


_RECORDER = _Recorder()


def _creation_site() -> str:
    """``file:line`` of the first caller frame outside this module.

    This is the lock's *class* in the lockdep sense: every
    ``InferenceServer._lock`` shares one site, so ordering evidence from
    different instances (and different tests) composes.
    """
    frame = sys._getframe(1)
    while frame is not None:
        filename = frame.f_code.co_filename
        if filename != _THIS_FILE:
            return f"{filename}:{frame.f_lineno}"
        frame = frame.f_back
    return "<unknown>"


class TsanLock:
    """Drop-in ``threading.Lock`` recording acquisition order and ownership.

    Implements the full duck type ``threading.Condition`` relies on
    (``acquire``/``release``/``locked``/``_is_owned``/``_at_fork_reinit``),
    so conditions and events built on instrumented locks keep working.
    """

    __slots__ = ("_inner", "site", "_owner")

    def __init__(self, site: Optional[str] = None) -> None:
        self._inner = _REAL_LOCK_FACTORY()
        self.site = site if site is not None else _creation_site()
        self._owner: Optional[int] = None

    # -- the Lock protocol ---------------------------------------------
    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        acquired = self._inner.acquire(blocking, timeout)
        if acquired:
            self._owner = threading.get_ident()
            if _ACTIVE:
                _note_acquire(self)
        return acquired

    def release(self) -> None:
        if _ACTIVE:
            _note_release(self)
        self._owner = None
        self._inner.release()

    def __enter__(self) -> bool:
        self.acquire()
        return True

    def __exit__(self, *exc_info: object) -> None:
        self.release()

    def locked(self) -> bool:
        return self._inner.locked()

    # -- the extras Condition / fork handling probe for ----------------
    def _is_owned(self) -> bool:
        return self._owner == threading.get_ident()

    def _at_fork_reinit(self) -> None:
        reinit = getattr(self._inner, "_at_fork_reinit", None)
        if reinit is not None:
            reinit()
        else:  # pragma: no cover - ancient interpreters
            self._inner = _REAL_LOCK_FACTORY()
        self._owner = None

    def __repr__(self) -> str:
        state = "locked" if self.locked() else "unlocked"
        return f"<TsanLock {state} site={self.site}>"


def _note_acquire(lock: TsanLock) -> None:
    stack = _RECORDER.held_stack()
    for held in stack:
        if held.site == lock.site:
            continue
        key = (held.site, lock.site)
        if key not in _RECORDER.edges:
            with _STATE_LOCK:
                _RECORDER.edges.setdefault(
                    key,
                    f"thread '{threading.current_thread().name}' took "
                    f"{lock.site} while holding {held.site}",
                )
    stack.append(lock)


def _note_release(lock: TsanLock) -> None:
    # Releases are not always LIFO (Condition.wait releases its lock while
    # later-acquired locks stay held), so remove by identity.
    stack = _RECORDER.held_stack()
    for index in range(len(stack) - 1, -1, -1):
        if stack[index] is lock:
            del stack[index]
            break


# ----------------------------------------------------------------------
# Shared-state discipline
# ----------------------------------------------------------------------
def register_shared_state(name: str, owner: object, lock: Optional[TsanLock] = None) -> None:
    """Declare ``owner``'s mutation discipline for the state called ``name``.

    With ``lock``, every :func:`touch_shared_state` must hold it
    (*lock-protected* mode).  Without, the first touching thread becomes the
    only thread allowed to mutate (*single-writer* mode — the micro-batcher
    pattern).  No-op unless the checker is installed.
    """
    if not _ACTIVE:
        return
    with _STATE_LOCK:
        # Keyed by id(owner): re-registration on construction also resets a
        # recycled id left behind by a garbage-collected previous owner.
        _RECORDER.shared[(name, id(owner))] = {"lock": lock, "writer": None}


def touch_shared_state(name: str, owner: object) -> None:
    """Record one mutation of registered state; flags discipline breaches."""
    if not _ACTIVE:
        return
    entry = _RECORDER.shared.get((name, id(owner)))
    if entry is None:
        return
    lock = entry["lock"]
    if lock is not None:
        if isinstance(lock, TsanLock) and not lock._is_owned():
            _violation(
                f"state '{name}' of {type(owner).__name__} mutated by thread "
                f"'{threading.current_thread().name}' without holding its "
                f"declared lock ({lock.site})"
            )
        return
    ident = threading.get_ident()
    writer = entry["writer"]
    if writer is None:
        with _STATE_LOCK:
            if entry["writer"] is None:
                entry["writer"] = (ident, threading.current_thread().name)
            writer = entry["writer"]
    if writer[0] != ident:
        _violation(
            f"single-writer state '{name}' of {type(owner).__name__} mutated "
            f"by thread '{threading.current_thread().name}' but owned by "
            f"thread '{writer[1]}'"
        )


def _violation(message: str) -> None:
    with _STATE_LOCK:
        if message not in _RECORDER.violations:
            _RECORDER.violations.append(message)


# ----------------------------------------------------------------------
# Lifecycle and reporting
# ----------------------------------------------------------------------
def install() -> None:
    """Replace ``threading.Lock`` with the recording wrapper (idempotent)."""
    global _ACTIVE
    threading.Lock = TsanLock  # type: ignore[misc]
    _ACTIVE = True


def uninstall() -> None:
    """Restore the real ``threading.Lock`` and stop recording."""
    global _ACTIVE
    _ACTIVE = False
    threading.Lock = _REAL_LOCK_FACTORY  # type: ignore[misc]


def is_active() -> bool:
    return _ACTIVE


def reset() -> None:
    """Drop all recorded evidence (edges, violations, shared-state table)."""
    global _RECORDER
    with _STATE_LOCK:
        _RECORDER = _Recorder()


def _lock_cycles() -> List[List[str]]:
    """Elementary cycles in the held->acquired lock-class graph."""
    adjacency: Dict[str, List[str]] = {}
    for before, after in _RECORDER.edges:
        adjacency.setdefault(before, []).append(after)
    cycles: List[List[str]] = []
    seen_keys: set = set()

    def dfs(node: str, path: List[str], on_path: set) -> None:
        for successor in adjacency.get(node, ()):
            if successor in on_path:
                cycle = path[path.index(successor):] + [successor]
                # canonicalise so each rotation reports once
                body = cycle[:-1]
                pivot = body.index(min(body))
                key = tuple(body[pivot:] + body[:pivot])
                if key not in seen_keys:
                    seen_keys.add(key)
                    cycles.append(cycle)
            elif successor not in visited:
                path.append(successor)
                on_path.add(successor)
                dfs(successor, path, on_path)
                on_path.discard(successor)
                path.pop()
        visited.add(node)

    visited: set = set()
    for start in sorted(adjacency):
        if start not in visited:
            dfs(start, [start], {start})
    return cycles


def report(reset_after: bool = False) -> List[str]:
    """Every problem observed so far: lock-order cycles + state violations."""
    with _STATE_LOCK:
        problems = list(_RECORDER.violations)
        edges = dict(_RECORDER.edges)
    for cycle in _lock_cycles():
        steps = " -> ".join(cycle)
        examples = "; ".join(
            edges[(cycle[i], cycle[i + 1])]
            for i in range(len(cycle) - 1)
            if (cycle[i], cycle[i + 1]) in edges
        )
        problems.append(f"lock-order cycle (potential deadlock): {steps}  [{examples}]")
    if reset_after:
        reset()
    return problems

"""The ``repro lint`` rule engine.

A lint run is deliberately boring machinery so the interesting parts — the
rules in :mod:`repro.analysis.rules`, :mod:`repro.analysis.hash_contract`
and :mod:`repro.analysis.registry_audit` — stay small:

* every python file under ``src/repro`` is parsed once into a
  :class:`SourceFile` (AST + per-line suppression table);
* **file rules** (:class:`FileRule`) visit each file's AST and yield
  :class:`Finding`\\ s;
* **project rules** (:class:`ProjectRule`) see the whole :class:`Project`
  at once — the hash-contract check introspects the live spec dataclasses,
  the registry audit resolves every ``examples/specs/*.json``;
* findings pass through suppression (``# repro-lint: disable=CODE`` on the
  reported line, ``# repro-lint: disable-file=CODE`` anywhere in the file)
  and ``--select`` / ``--ignore`` filtering, then come back sorted in one
  :class:`LintReport` that renders as human text or stable JSON.

Selection semantics (mirroring flake8): ``--select`` first narrows the rule
set to exactly the listed codes, then ``--ignore`` removes codes — so a
code in both lists is ignored.  Rules outside the selection never run at
all, which keeps ``--select RL1`` fast even though RL2/RL5 import the spec
layer.

The rule table itself is a :class:`repro.registry.Registry`, the same
component-registry machinery the linter audits — the linter is a client of
the code it checks.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

from ..registry import Registry

PathLike = Union[str, Path]

#: JSON report schema version; bump when the payload shape changes.
REPORT_SCHEMA_VERSION = 1

#: code reported for files the engine cannot parse at all
PARSE_ERROR_CODE = "RL0"

#: registry of lint-rule classes, keyed by error code
LINT_RULES: Registry = Registry("lint rule")

_SUPPRESSION_RE = re.compile(
    r"#\s*repro-lint:\s*(disable|disable-file)\s*=\s*([A-Za-z0-9_,\s]+)"
)


@dataclass(frozen=True, order=True)
class Finding:
    """One lint finding, sortable into a stable report order."""

    path: str  #: repo-relative posix path
    line: int
    col: int
    code: str
    message: str
    #: the fix-it: what to change (or how to suppress with justification)
    hint: str = ""

    def to_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
            "hint": self.hint,
        }

    def render(self) -> str:
        text = f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"
        if self.hint:
            text += f"  [{self.hint}]"
        return text


class SourceFile:
    """One parsed python file plus its suppression table."""

    def __init__(self, path: Path, rel: str, text: Optional[str] = None) -> None:
        self.path = Path(path)
        self.rel = rel
        self.text = self.path.read_text() if text is None else text
        self.lines = self.text.splitlines()
        self.parse_error: Optional[SyntaxError] = None
        try:
            self.tree: Optional[ast.AST] = ast.parse(self.text, filename=str(path))
        except SyntaxError as exc:
            self.tree = None
            self.parse_error = exc
        self.line_suppressions: Dict[int, Set[str]] = {}
        self.file_suppressions: Set[str] = set()
        for lineno, line in enumerate(self.lines, start=1):
            if "repro-lint" not in line:
                continue
            match = _SUPPRESSION_RE.search(line)
            if match is None:
                continue
            codes = {
                token.strip().upper()
                for token in match.group(2).split(",")
                if token.strip()
            }
            if match.group(1) == "disable-file":
                self.file_suppressions |= codes
            else:
                self.line_suppressions.setdefault(lineno, set()).update(codes)

    def is_suppressed(self, code: str, line: int) -> bool:
        """Whether ``code`` is disabled for ``line`` (or the whole file)."""
        if code in self.file_suppressions or "ALL" in self.file_suppressions:
            return True
        codes = self.line_suppressions.get(line, ())
        return code in codes or "ALL" in codes


@dataclass
class Project:
    """What a project rule sees: the repo root plus the scanned file sets."""

    root: Path
    files: List[SourceFile] = field(default_factory=list)
    spec_paths: List[Path] = field(default_factory=list)

    def rel(self, path: PathLike) -> str:
        path = Path(path).resolve()
        try:
            return path.relative_to(self.root).as_posix()
        except ValueError:
            return path.as_posix()


class Rule:
    """Base of all lint rules; subclasses set the class attributes."""

    code: str = ""
    name: str = ""
    description: str = ""


class FileRule(Rule):
    """A rule that inspects one python file at a time."""

    def check_file(self, source: SourceFile, project: Project) -> Iterable[Finding]:
        raise NotImplementedError


class ProjectRule(Rule):
    """A rule that needs the whole project (spec layer, registries, specs)."""

    def check_project(self, project: Project) -> Iterable[Finding]:
        raise NotImplementedError


def _normalise_codes(codes: Optional[Sequence[str]]) -> Optional[Tuple[str, ...]]:
    if codes is None:
        return None
    flat: List[str] = []
    for chunk in codes:
        flat.extend(token.strip().upper() for token in str(chunk).split(",") if token.strip())
    return tuple(flat)


class LintConfigError(ValueError):
    """A lint invocation that cannot be honoured (unknown code, bad scope)."""


@dataclass
class LintReport:
    """The outcome of one lint run."""

    findings: List[Finding]
    files_checked: int
    specs_checked: int
    codes_run: Tuple[str, ...]

    @property
    def ok(self) -> bool:
        return not self.findings

    def counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.code] = counts.get(finding.code, 0) + 1
        return dict(sorted(counts.items()))

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema_version": REPORT_SCHEMA_VERSION,
            "codes_run": list(self.codes_run),
            "files_checked": self.files_checked,
            "specs_checked": self.specs_checked,
            "counts": self.counts(),
            "findings": [finding.to_dict() for finding in self.findings],
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def render_text(self) -> str:
        lines = [finding.render() for finding in self.findings]
        checked = f"{self.files_checked} file(s), {self.specs_checked} spec(s)"
        if self.findings:
            summary = ", ".join(f"{code}: {n}" for code, n in self.counts().items())
            lines.append(f"{len(self.findings)} finding(s) in {checked} ({summary})")
        else:
            lines.append(f"clean: 0 findings in {checked}")
        return "\n".join(lines)


class LintEngine:
    """Collect files, run the selected rules, filter, sort, report."""

    def __init__(
        self,
        root: Optional[PathLike] = None,
        select: Optional[Sequence[str]] = None,
        ignore: Optional[Sequence[str]] = None,
        scope: str = "all",
        paths: Optional[Sequence[PathLike]] = None,
    ) -> None:
        self.root = Path(root) if root is not None else default_root()
        self.scope = scope
        if scope not in ("all", "src", "examples"):
            raise LintConfigError(
                f"unknown scope '{scope}'; expected 'all', 'src' or 'examples'"
            )
        self.paths = [Path(p) for p in paths] if paths else None
        select_codes = _normalise_codes(select)
        ignore_codes = _normalise_codes(ignore) or ()
        known = set(LINT_RULES.names()) | {PARSE_ERROR_CODE}
        for code in (select_codes or ()) + tuple(ignore_codes):
            if code not in known:
                suggestions = LINT_RULES.suggest(code)
                hint = f" (did you mean {suggestions[0]!r}?)" if suggestions else ""
                raise LintConfigError(
                    f"unknown rule code '{code}'{hint}; known codes: {sorted(known)}"
                )
        # --select narrows first, then --ignore removes: a code in both is off.
        selected = select_codes if select_codes is not None else tuple(LINT_RULES.names())
        self.codes: Tuple[str, ...] = tuple(
            code for code in selected if code not in ignore_codes
        )
        self.report_parse_errors = PARSE_ERROR_CODE not in ignore_codes and (
            select_codes is None or PARSE_ERROR_CODE in select_codes
        )

    # ------------------------------------------------------------------
    # File collection
    # ------------------------------------------------------------------
    def _collect(self) -> Tuple[List[SourceFile], List[Path]]:
        sources: List[SourceFile] = []
        specs: List[Path] = []
        if self.paths is not None:
            for path in self.paths:
                resolved = (self.root / path if not path.is_absolute() else path).resolve()
                if not resolved.exists():
                    raise LintConfigError(f"path '{path}' does not exist")
                if resolved.suffix == ".json":
                    specs.append(resolved)
                else:
                    sources.append(
                        SourceFile(resolved, self._rel(resolved))
                    )
            return sources, specs
        if self.scope in ("all", "src"):
            package_dir = self.root / "src" / "repro"
            for path in sorted(package_dir.rglob("*.py")):
                if "__pycache__" in path.parts:
                    continue
                sources.append(SourceFile(path, self._rel(path)))
        if self.scope in ("all", "examples"):
            specs_dir = self.root / "examples" / "specs"
            if specs_dir.is_dir():
                specs.extend(sorted(specs_dir.glob("*.json")))
        return sources, specs

    def _rel(self, path: Path) -> str:
        try:
            return path.resolve().relative_to(self.root.resolve()).as_posix()
        except ValueError:
            return path.as_posix()

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------
    def run(self) -> LintReport:
        sources, spec_paths = self._collect()
        project = Project(root=self.root.resolve(), files=sources, spec_paths=spec_paths)
        findings: List[Finding] = []
        for source in sources:
            if source.parse_error is not None and self.report_parse_errors:
                exc = source.parse_error
                findings.append(
                    Finding(
                        path=source.rel,
                        line=int(exc.lineno or 1),
                        col=int(exc.offset or 1),
                        code=PARSE_ERROR_CODE,
                        message=f"file does not parse: {exc.msg}",
                        hint="fix the syntax error; no other rule can run on this file",
                    )
                )
        by_file: Dict[str, SourceFile] = {source.rel: source for source in sources}
        for code in self.codes:
            rule = LINT_RULES.get(code)()
            if isinstance(rule, FileRule):
                for source in sources:
                    if source.tree is None:
                        continue
                    findings.extend(rule.check_file(source, project))
            elif isinstance(rule, ProjectRule):
                findings.extend(rule.check_project(project))
        kept = []
        for finding in findings:
            source = by_file.get(finding.path)
            if source is not None and source.is_suppressed(finding.code, finding.line):
                continue
            kept.append(finding)
        return LintReport(
            findings=sorted(set(kept)),
            files_checked=len(sources),
            specs_checked=len(spec_paths),
            codes_run=self.codes,
        )


def default_root() -> Path:
    """The repository root, derived from the installed package location.

    ``src/repro/analysis/core.py`` → three parents up is the repo root; this
    keeps ``python -m repro lint`` working from any working directory of a
    source checkout.
    """
    return Path(__file__).resolve().parent.parent.parent.parent


def run_lint(
    root: Optional[PathLike] = None,
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
    scope: str = "all",
    paths: Optional[Sequence[PathLike]] = None,
) -> LintReport:
    """Run the linter programmatically (the pytest-importable entry point)."""
    _ensure_rules_registered()
    return LintEngine(root=root, select=select, ignore=ignore, scope=scope, paths=paths).run()


def _ensure_rules_registered() -> None:
    """Import the rule modules so their ``@LINT_RULES.register`` calls run."""
    from . import hash_contract, registry_audit, rules  # noqa: F401

"""Static analysis and runtime concurrency checking for the repro stack.

Two halves:

* the **linter** (:func:`repro.analysis.run_lint`, ``python -m repro lint``)
  — AST/introspection rules RL1-RL8 enforcing the repo's standing
  invariants (seeded randomness, the spec hash contract, picklable executor
  tasks, atomic persistence, registry consistency, lock hygiene, dtype
  discipline, telemetry discipline);
* the **runtime checker** (:mod:`repro.analysis.runtime`) — a
  ``REPRO_TSAN=1`` lock instrumentation layer recording acquisition order
  across serve/master threads and flagging lock-order cycles and
  unsynchronised shared-state mutation during the test suite.

Attribute access is lazy: ``repro.serve``/``repro.master`` import
:mod:`repro.analysis.runtime` (stdlib-only) at module load, and eagerly
importing the rule modules here would drag the spec/registry layers into
that path.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - static typing only
    from .core import Finding, LintReport, run_lint  # noqa: F401

_CORE_EXPORTS = (
    "run_lint",
    "LintEngine",
    "LintReport",
    "LintConfigError",
    "Finding",
    "LINT_RULES",
    "PARSE_ERROR_CODE",
    "REPORT_SCHEMA_VERSION",
)

__all__ = list(_CORE_EXPORTS) + ["runtime"]


def __getattr__(name: str):
    if name in _CORE_EXPORTS:
        from . import core

        return getattr(core, name)
    if name == "runtime":
        from . import runtime

        return runtime
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

"""RL2 — the stage-hash contract between spec fields and cached artifacts.

The pipeline's resume-from-cache correctness rests on one sentence: *a spec
field either enters the stage hashes or is execution-only, and everyone
knows which*.  PR 6 added ``task_retries``/``heartbeat_seconds`` and PR 2
added ``memoize`` to :class:`~repro.api.spec.ExecutionSpec` precisely so
they would stay out of the cache keys; a future field added to
:class:`~repro.api.spec.SearchSpec` but (by bug) excluded from hashing
would silently serve stale cached artifacts for changed runs.

This checker introspects the live spec dataclasses against the declared
:data:`~repro.api.spec.HASH_MANIFEST` and reports:

* a spec field missing from the manifest (the headline check: you cannot
  add a field without declaring its hash status);
* a stale manifest entry naming a removed field or section;
* an ``execution`` field marked ``hashed`` (the execution section is popped
  from every hash — marking it hashed is a lie);
* a non-execution field marked ``excluded`` (exclusion is only implemented
  section-wise; an execution-only knob must live in ``ExecutionSpec``);
* a behavioural cross-check that the implementation still honours the
  manifest: two specs differing only in an execution field must share
  ``spec_hash``/``stage_hash``, and editing a hashed search field must
  change both.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, List, Optional

from .core import LINT_RULES, Finding, Project, ProjectRule

SPEC_MODULE_REL = "src/repro/api/spec.py"

_VALID_STATUSES = ("hashed", "excluded")

#: spec sections popped wholesale from ``spec_hash`` — every field of these
#: must be 'excluded', every field elsewhere must be 'hashed'.  ``backend``
#: joined ``execution`` when the precision seam landed: which dtype the
#: GEMMs run in is a performance knob with a tolerance contract, not a
#: semantic change, so it must not invalidate cached artifacts.  ``obs``
#: joined with the telemetry layer: spans and metrics observe the
#: computation without shaping it (bit-identity is test-enforced), so
#: turning tracing on must not invalidate caches either.
EXCLUDED_SECTIONS = ("execution", "backend", "obs")


def _manifest_line(project: Project, needle: str) -> int:
    """Best-effort line anchor inside ``api/spec.py`` for a finding."""
    for source in project.files:
        if source.rel == SPEC_MODULE_REL:
            for lineno, line in enumerate(source.lines, start=1):
                if needle in line:
                    return lineno
    return 1


@LINT_RULES.register("RL2")
class HashContractRule(ProjectRule):
    """Every spec field explicitly declared hashed or excluded — and truly so."""

    code = "RL2"
    name = "hash-contract"
    description = (
        "every RunSpec section field must be declared in HASH_MANIFEST, and "
        "the declaration must match how spec_hash/stage_hash actually treat it"
    )

    def check_project(self, project: Project) -> Iterable[Finding]:
        try:
            from ..api import spec as spec_module
        except Exception as exc:  # the spec layer failing to import IS a finding
            return [
                self._finding(
                    project,
                    "HASH_MANIFEST",
                    f"cannot import repro.api.spec to check the hash contract: "
                    f"{type(exc).__name__}: {exc}",
                    "fix the import error; RL2 cannot run without the spec layer",
                )
            ]
        findings: List[Finding] = []
        manifest = getattr(spec_module, "HASH_MANIFEST", None)
        if not isinstance(manifest, dict):
            return [
                self._finding(
                    project,
                    "HASH_MANIFEST",
                    "repro.api.spec.HASH_MANIFEST is missing",
                    "declare the hash-contract manifest next to the spec dataclasses",
                )
            ]
        section_types = spec_module._SECTION_TYPES

        for section in section_types:
            if section not in manifest:
                findings.append(
                    self._finding(
                        project,
                        "HASH_MANIFEST",
                        f"spec section '{section}' has no HASH_MANIFEST entry",
                        f"add a '{section}' block declaring every field hashed/excluded",
                    )
                )
        for section in manifest:
            if section not in section_types:
                findings.append(
                    self._finding(
                        project,
                        f'"{section}"',
                        f"HASH_MANIFEST declares unknown spec section '{section}'",
                        "remove the stale manifest block",
                    )
                )

        for section, section_type in section_types.items():
            declared = manifest.get(section)
            if not isinstance(declared, dict):
                continue
            actual = {f.name for f in dataclasses.fields(section_type)}
            for field_name in sorted(actual - set(declared)):
                findings.append(
                    self._finding(
                        project,
                        f"class {section_type.__name__}",
                        f"spec field '{section}.{field_name}' is not declared in "
                        "HASH_MANIFEST — is it part of the cache key or not?",
                        f"add '{field_name}': "
                        f"'{'excluded' if section in EXCLUDED_SECTIONS else 'hashed'}' "
                        f"to HASH_MANIFEST['{section}']",
                    )
                )
            for field_name in sorted(set(declared) - actual):
                findings.append(
                    self._finding(
                        project,
                        f'"{field_name}"',
                        f"HASH_MANIFEST declares '{section}.{field_name}' but "
                        f"{section_type.__name__} has no such field",
                        "remove the stale manifest entry",
                    )
                )
            for field_name, status in declared.items():
                if status not in _VALID_STATUSES:
                    findings.append(
                        self._finding(
                            project,
                            f'"{field_name}"',
                            f"'{section}.{field_name}' has invalid hash status "
                            f"{status!r}",
                            f"use one of {list(_VALID_STATUSES)}",
                        )
                    )
                elif section in EXCLUDED_SECTIONS and status != "excluded":
                    findings.append(
                        self._finding(
                            project,
                            f'"{field_name}"',
                            f"'{section}.{field_name}' is marked 'hashed' but the "
                            f"whole {section} section is popped from spec_hash()",
                            f"{section} fields are excluded by construction; move "
                            "result-affecting knobs to another section",
                        )
                    )
                elif section not in EXCLUDED_SECTIONS and status != "hashed":
                    findings.append(
                        self._finding(
                            project,
                            f'"{field_name}"',
                            f"'{section}.{field_name}' is marked 'excluded' but "
                            f"every '{section}' field enters the stage hashes",
                            "execution-only knobs belong in ExecutionSpec (or "
                            "BackendSpec); anything else must be hashed",
                        )
                    )

        behaviour = self._behaviour_check(project, spec_module)
        if behaviour is not None:
            findings.append(behaviour)
        return findings

    # ------------------------------------------------------------------
    def _behaviour_check(self, project: Project, spec_module) -> Optional[Finding]:
        """Cross-check that the implementation still honours the manifest."""
        try:
            base = spec_module.RunSpec()
            exec_variant = dataclasses.replace(
                base,
                execution=dataclasses.replace(
                    base.execution,
                    executor="thread" if base.execution.executor != "thread" else "serial",
                    memoize=not base.execution.memoize,
                ),
                backend=dataclasses.replace(
                    base.backend,
                    name="numpy-float32"
                    if base.backend.name != "numpy-float32"
                    else "numpy-float64",
                ),
                obs=dataclasses.replace(
                    base.obs,
                    trace_path="trace.jsonl",
                    metrics_enabled=not base.obs.metrics_enabled,
                ),
            )
            hashed_variant = dataclasses.replace(
                base,
                search=dataclasses.replace(base.search, episodes=base.search.episodes + 1),
            )
            if base.spec_hash() != exec_variant.spec_hash() or any(
                base.stage_hash(stage) != exec_variant.stage_hash(stage)
                for stage in spec_module.PIPELINE_STAGES
            ):
                return self._finding(
                    project,
                    "def spec_hash",
                    "editing only execution/backend/obs fields changed a "
                    "spec/stage hash — the manifest says those sections are "
                    "excluded but the implementation hashes them",
                    "keep the execution, backend and obs sections popped from "
                    "every hash payload",
                )
            if (
                base.spec_hash() == hashed_variant.spec_hash()
                or base.stage_hash("search") == hashed_variant.stage_hash("search")
            ):
                return self._finding(
                    project,
                    "def stage_hash",
                    "editing a hashed search field left the spec/search-stage "
                    "hash unchanged — cached artifacts would be served for a "
                    "different run",
                    "ensure stage_hash('search') covers the search section",
                )
        except Exception as exc:
            return self._finding(
                project,
                "def spec_hash",
                f"hash-contract behaviour check crashed: {type(exc).__name__}: {exc}",
                "RunSpec() defaults must stay constructible for RL2's cross-check",
            )
        return None

    def _finding(self, project: Project, needle: str, message: str, hint: str) -> Finding:
        return Finding(
            path=SPEC_MODULE_REL,
            line=_manifest_line(project, needle),
            col=1,
            code=self.code,
            message=message,
            hint=hint,
        )

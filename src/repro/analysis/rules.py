"""AST rule families RL1/RL3/RL4/RL6/RL7/RL8/RL9 — the repo-specific invariants.

Each rule encodes a contract the fast paths of PRs 2–6 are sold on but the
interpreter cannot enforce:

* **RL1 determinism** — seeded searches are bit-identical across executors
  only because no code path consults hidden global or wall-clock entropy.
* **RL3 executor safety** — the process and distributed executors resolve
  task functions by ``module:qualname`` and pickle their payloads, so a
  lambda or closure handed to ``.map``/``.submit`` works under the serial
  executor and explodes the moment someone flips ``--executor process``.
* **RL4 atomic persistence** — the crash-safety story (torn-tail-tolerant
  journals, resume-from-cache, artifact serving) assumes every durable JSON
  document is written atomically; one bare ``open(path, "w")`` silently
  reintroduces truncated-file corruption.
* **RL6 lock hygiene** — the serve/master threads may never block on I/O
  while holding a ``threading.Lock``: a slow socket under a hot lock turns
  into a convoy, and in the worst case a deadlock.  Locks whose *name*
  declares them I/O-serialisation guards (``send_lock``, ``io_lock``,
  ``write_lock``) are exempt — serialising writes on one socket is exactly
  what such a lock is for.
* **RL7 dtype discipline** — the precision-critical hot modules (the fused
  kernels, the metrics engine, the backend layer itself) promise their
  results per array backend: float64 bit-identity or the float32 tolerance
  contract.  ``np.asarray``/``np.zeros``/``np.empty`` without an explicit
  ``dtype`` inherits whatever dtype the caller happened to pass and
  silently drifts a hot path out of its contract.
* **RL8 telemetry discipline** — every duration in the tree comes off the
  monotonic clock (``time.perf_counter``); ``time.time()`` is wall-clock,
  steps under NTP, and is reserved for row *timestamps*.  And the
  performance-critical hot modules may not ``print`` or use stdlib
  ``logging`` directly — operational output routes through ``RunLogger``
  rows and the :mod:`repro.obs` metrics/span layer, which are structured,
  off-by-default-cheap and TSAN-audited.
* **RL9 failure discipline** — the fault-tolerant serve/master tiers are
  only as good as their failure handling: a broad ``except`` that swallows
  without logging or re-raising turns a crash the supervisor would recover
  from into silent corruption, and an *unbounded* ``queue.Queue()`` turns
  overload into unbounded latency instead of fast, typed rejection.

All rules are purely syntactic (no imports of the checked code), so they
run on broken trees, fixtures and work-in-progress branches alike.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set, Tuple

from .core import LINT_RULES, FileRule, Finding, Project, SourceFile

__all__ = [
    "DeterminismRule",
    "ExecutorSafetyRule",
    "AtomicPersistenceRule",
    "LockHygieneRule",
    "DtypeDisciplineRule",
    "TelemetryDisciplineRule",
    "FailureDisciplineRule",
]


# ----------------------------------------------------------------------
# Import-alias resolution shared by the AST rules
# ----------------------------------------------------------------------
def collect_import_aliases(tree: ast.AST) -> Dict[str, str]:
    """Map local names to the dotted module/attribute path they refer to.

    ``import numpy as np`` → ``{"np": "numpy"}``;
    ``from numpy import random as npr`` → ``{"npr": "numpy.random"}``;
    ``from numpy.random import default_rng`` →
    ``{"default_rng": "numpy.random.default_rng"}``.
    """
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for name in node.names:
                aliases[name.asname or name.name.split(".")[0]] = (
                    name.name if name.asname else name.name.split(".")[0]
                )
                if name.asname is None and "." in name.name:
                    # ``import numpy.random`` binds ``numpy``; the dotted
                    # access resolves through the attribute chain anyway.
                    aliases[name.name.split(".")[0]] = name.name.split(".")[0]
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for name in node.names:
                if name.name == "*":
                    continue
                aliases[name.asname or name.name] = f"{node.module}.{name.name}"
    return aliases


def resolve_dotted(node: ast.AST, aliases: Dict[str, str]) -> Optional[str]:
    """The canonical dotted path of a Name/Attribute chain, if resolvable."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    base = aliases.get(node.id, node.id)
    parts.append(base)
    return ".".join(reversed(parts))


def _finding(
    source: SourceFile, node: ast.AST, code: str, message: str, hint: str
) -> Finding:
    return Finding(
        path=source.rel,
        line=getattr(node, "lineno", 1),
        col=getattr(node, "col_offset", 0) + 1,
        code=code,
        message=message,
        hint=hint,
    )


# ----------------------------------------------------------------------
# RL1 — determinism
# ----------------------------------------------------------------------
#: numpy.random module-level functions that mutate/consult the hidden
#: global RandomState (the bug class PR 5 eradicated from the modules)
_NUMPY_GLOBAL_FNS = {
    "seed", "rand", "randn", "randint", "random", "random_sample", "ranf",
    "sample", "choice", "shuffle", "permutation", "normal", "uniform",
    "standard_normal", "binomial", "beta", "gamma", "poisson", "exponential",
    "get_state", "set_state",
}

#: numpy.random constructors that are fine *when seeded*
_NUMPY_SEEDED_CTORS = {"default_rng", "SeedSequence", "Generator", "PCG64", "RandomState"}

#: call targets whose appearance inside a seed expression means the seed is
#: wall-clock / entropy derived and the run is unreproducible
_WALLCLOCK_SOURCES = {
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow", "datetime.now",
    "os.urandom", "os.getrandom", "uuid.uuid1", "uuid.uuid4",
    "secrets.token_bytes", "secrets.token_hex", "secrets.randbits",
}


@LINT_RULES.register("RL1")
class DeterminismRule(FileRule):
    """Unseeded, global-state or wall-clock randomness under ``src/repro``."""

    code = "RL1"
    name = "determinism"
    description = (
        "no unseeded np.random.default_rng(), numpy/stdlib global RNG state, "
        "or wall-clock-derived seeds anywhere in the library"
    )

    def check_file(self, source: SourceFile, project: Project) -> Iterable[Finding]:
        aliases = collect_import_aliases(source.tree)
        findings: List[Finding] = []
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = resolve_dotted(node.func, aliases)
            if dotted is None:
                continue
            findings.extend(self._check_call(source, node, dotted, aliases))
        return findings

    def _check_call(
        self,
        source: SourceFile,
        node: ast.Call,
        dotted: str,
        aliases: Dict[str, str],
    ) -> Iterable[Finding]:
        tail = dotted.rsplit(".", 1)[-1]
        is_np_random = dotted.startswith("numpy.random.")
        # 1. unseeded Generator construction
        if is_np_random and tail == "default_rng" and not node.args and not node.keywords:
            yield _finding(
                source, node, self.code,
                "unseeded np.random.default_rng() — every run draws a different stream",
                "pass an explicit seed or thread a Generator through "
                "(repro.utils.rng.get_rng / spawn_rng)",
            )
            return
        # 2. hidden global RandomState
        if is_np_random and tail in _NUMPY_GLOBAL_FNS:
            yield _finding(
                source, node, self.code,
                f"np.random.{tail}() uses numpy's hidden global RandomState; "
                "results depend on unrelated call order",
                "use an explicit np.random.Generator (repro.utils.rng.get_rng)",
            )
            return
        # 3. stdlib random module (any use: the library threads numpy
        #    Generators everywhere; stdlib random is always a smell here)
        if dotted.startswith("random.") and dotted.count(".") == 1:
            yield _finding(
                source, node, self.code,
                f"stdlib random.{tail}() bypasses the seeded numpy Generator "
                "streams the reproduction is built on",
                "use an explicit np.random.Generator (repro.utils.rng.get_rng)",
            )
            return
        # 4. wall-clock / entropy-derived seeds
        if is_np_random and tail in _NUMPY_SEEDED_CTORS or dotted in (
            "random.seed", "random.Random"
        ):
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                clock = self._wallclock_source(arg, aliases)
                if clock is not None:
                    yield _finding(
                        source, node, self.code,
                        f"seed derived from {clock} — reruns cannot reproduce this stream",
                        "derive seeds from the spec/config seed "
                        "(repro.utils.rng.derive_seeds)",
                    )
                    return

    @staticmethod
    def _wallclock_source(arg: ast.AST, aliases: Dict[str, str]) -> Optional[str]:
        for sub in ast.walk(arg):
            target: Optional[ast.AST] = None
            if isinstance(sub, ast.Call):
                target = sub.func
            elif isinstance(sub, (ast.Attribute, ast.Name)):
                target = sub
            if target is None:
                continue
            dotted = resolve_dotted(target, aliases)
            if dotted in _WALLCLOCK_SOURCES:
                return dotted
        return None


# ----------------------------------------------------------------------
# RL3 — executor task safety
# ----------------------------------------------------------------------
@LINT_RULES.register("RL3")
class ExecutorSafetyRule(FileRule):
    """Lambdas/closures/bound methods handed to executor ``map``/``submit``."""

    code = "RL3"
    name = "executor-safety"
    description = (
        "callables passed to executor map()/submit() must be module-level "
        "functions so process and distributed workers can pickle/resolve them"
    )

    _DISPATCH_ATTRS = ("map", "submit")

    def check_file(self, source: SourceFile, project: Project) -> Iterable[Finding]:
        nested = self._nested_function_names(source.tree)
        findings: List[Finding] = []
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (isinstance(func, ast.Attribute) and func.attr in self._DISPATCH_ATTRS):
                continue
            if not node.args:
                continue
            task = node.args[0]
            if isinstance(task, ast.Lambda):
                findings.append(
                    _finding(
                        source, task, self.code,
                        f"lambda passed to executor .{func.attr}(); lambdas cannot "
                        "be pickled for the process executor or resolved by "
                        "module:qualname for distributed workers",
                        "hoist the task to a module-level function",
                    )
                )
            elif isinstance(task, ast.Name) and task.id in nested:
                findings.append(
                    _finding(
                        source, task, self.code,
                        f"closure '{task.id}' passed to executor .{func.attr}(); "
                        "functions defined inside another function cannot be "
                        "pickled or resolved by distributed workers",
                        "hoist the task to a module-level function",
                    )
                )
            elif self._is_self_bound(task):
                findings.append(
                    _finding(
                        source, task, self.code,
                        f"bound method passed to executor .{func.attr}(); the "
                        "instance (locks, sockets, caches) rides along in the "
                        "pickle — or fails to",
                        "hoist the task to a module-level function taking the "
                        "needed state as a picklable argument",
                    )
                )
        return findings

    @staticmethod
    def _nested_function_names(tree: ast.AST) -> Set[str]:
        nested: Set[str] = set()

        def visit(node: ast.AST, inside_function: bool) -> None:
            for child in ast.iter_child_nodes(node):
                is_fn = isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
                if is_fn and inside_function:
                    nested.add(child.name)
                visit(child, inside_function or is_fn)

        visit(tree, False)
        return nested

    @staticmethod
    def _is_self_bound(task: ast.AST) -> bool:
        return (
            isinstance(task, ast.Attribute)
            and isinstance(task.value, ast.Name)
            and task.value.id == "self"
        )


# ----------------------------------------------------------------------
# RL4 — atomic persistence
# ----------------------------------------------------------------------
@LINT_RULES.register("RL4")
class AtomicPersistenceRule(FileRule):
    """Bare truncating writes to durable paths in the persistence modules."""

    code = "RL4"
    name = "atomic-persistence"
    description = (
        "durable JSON/artifact writes must route through "
        "repro.utils.serialization (atomic temp file + fsync + os.replace)"
    )

    #: modules whose on-disk artifacts must survive a crash mid-write;
    #: ``utils/serialization.py`` is the registered idiom, not a client
    DURABLE_MODULES = (
        "src/repro/zoo/persistence.py",
        "src/repro/master/db.py",
        "src/repro/api/pipeline.py",
    )

    _HINT = (
        "use repro.utils.serialization.save_json / atomic_write_text "
        "(temp file + fsync + os.replace)"
    )

    def check_file(self, source: SourceFile, project: Project) -> Iterable[Finding]:
        if not any(source.rel.endswith(module) or source.rel == module
                   for module in self.DURABLE_MODULES):
            return []
        aliases = collect_import_aliases(source.tree)
        findings: List[Finding] = []
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = resolve_dotted(node.func, aliases)
            if dotted in ("open", "io.open", "builtins.open"):
                mode = self._open_mode(node)
                if mode is not None and "w" in mode:
                    findings.append(
                        _finding(
                            source, node, self.code,
                            f"bare open(..., {mode!r}) in a durable-persistence "
                            "module truncates in place; a crash mid-write leaves "
                            "a corrupt artifact behind",
                            self._HINT,
                        )
                    )
            elif dotted == "json.dump":
                findings.append(
                    _finding(
                        source, node, self.code,
                        "json.dump() streams into an already-truncated handle; "
                        "a crash mid-dump leaves a torn JSON document",
                        self._HINT,
                    )
                )
            elif isinstance(node.func, ast.Attribute) and node.func.attr in (
                "write_text", "write_bytes"
            ):
                findings.append(
                    _finding(
                        source, node, self.code,
                        f"Path.{node.func.attr}() is a non-atomic truncating "
                        "write in a durable-persistence module",
                        self._HINT,
                    )
                )
        return findings

    @staticmethod
    def _open_mode(node: ast.Call) -> Optional[str]:
        mode: Optional[ast.AST] = None
        if len(node.args) >= 2:
            mode = node.args[1]
        for kw in node.keywords:
            if kw.arg == "mode":
                mode = kw.value
        if mode is None:
            return None  # default "r": reads are always fine
        if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
            return mode.value
        return None  # dynamic mode: cannot judge statically


# ----------------------------------------------------------------------
# RL6 — lock hygiene
# ----------------------------------------------------------------------
@LINT_RULES.register("RL6")
class LockHygieneRule(FileRule):
    """Blocking calls while holding a ``threading.Lock`` in serve/ or master/."""

    code = "RL6"
    name = "lock-hygiene"
    description = (
        "no socket I/O, subprocess waits, sleeps or fsyncs inside a held "
        "threading lock in the concurrent serve/master modules"
    )

    #: only the genuinely multithreaded packages are in scope
    SCOPE_DIRS = ("src/repro/serve/", "src/repro/master/")

    #: lock-name substrings that declare an I/O-serialisation lock (exempt:
    #: serialising writes on one socket/file is the lock's whole purpose)
    IO_LOCK_MARKERS = ("send_lock", "io_lock", "write_lock")

    #: resolved dotted call targets that block
    _BLOCKING_DOTTED = {
        "time.sleep",
        "os.fsync",
        "select.select",
        "subprocess.Popen",
        "subprocess.run",
        "subprocess.check_call",
        "subprocess.check_output",
        "socket.create_connection",
    }
    #: bare/imported function names that block (the wire protocol helpers)
    _BLOCKING_NAMES = {"send_message", "recv_message", "sleep"}
    #: attribute calls that block regardless of receiver
    _BLOCKING_ATTRS = {
        "recv", "recv_into", "recvfrom", "sendall", "accept", "connect",
        "communicate", "fsync", "makefile",
    }
    #: ``.wait()`` / ``.join()`` block only on processes and threads; the
    #: receiver name has to say so (Condition.wait releases the lock)
    _WAIT_RECEIVER_MARKERS = ("process", "proc", "popen", "thread", "worker")

    def check_file(self, source: SourceFile, project: Project) -> Iterable[Finding]:
        if not any(marker in source.rel for marker in (d.rstrip("/") + "/" for d in self.SCOPE_DIRS)):
            return []
        aliases = collect_import_aliases(source.tree)
        findings: List[Finding] = []
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.With):
                continue
            lock_names = [
                name
                for item in node.items
                if (name := self._lock_expr_name(item.context_expr)) is not None
            ]
            guarded = [name for name in lock_names if not self._is_io_lock(name)]
            if not guarded:
                continue
            for body_node in self._walk_without_nested_defs(node.body):
                if isinstance(body_node, ast.Call):
                    reason = self._blocking_reason(body_node, aliases)
                    if reason is not None:
                        findings.append(
                            _finding(
                                source, body_node, self.code,
                                f"{reason} while holding lock "
                                f"'{guarded[0]}' — blocks every thread "
                                "contending for it (convoy / deadlock risk)",
                                "move the blocking call outside the critical "
                                "section, or rename the lock *send_lock/"
                                "*io_lock if serialising this I/O is its "
                                "declared purpose",
                            )
                        )
        return findings

    # -- helpers -------------------------------------------------------
    @classmethod
    def _lock_expr_name(cls, expr: ast.AST) -> Optional[str]:
        """The name of a with-item if it looks like a threading lock."""
        name: Optional[str] = None
        if isinstance(expr, ast.Name):
            name = expr.id
        elif isinstance(expr, ast.Attribute):
            name = expr.attr
        if name is not None and "lock" in name.lower():
            return name
        return None

    @classmethod
    def _is_io_lock(cls, name: str) -> bool:
        lowered = name.lower()
        return any(marker in lowered for marker in cls.IO_LOCK_MARKERS)

    @staticmethod
    def _walk_without_nested_defs(body: List[ast.stmt]) -> Iterable[ast.AST]:
        """Walk statements, skipping code that only *defines* deferred work."""
        stack: List[ast.AST] = list(body)
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            yield node
            stack.extend(ast.iter_child_nodes(node))

    def _blocking_reason(
        self, node: ast.Call, aliases: Dict[str, str]
    ) -> Optional[str]:
        dotted = resolve_dotted(node.func, aliases)
        if dotted is not None:
            if dotted in self._BLOCKING_DOTTED:
                return f"blocking call {dotted}()"
            if "." not in dotted and dotted in self._BLOCKING_NAMES:
                # bare names cover relative imports (from .protocol import
                # send_message), which alias collection deliberately skips
                return f"blocking call {dotted}()"
        func = node.func
        if isinstance(func, ast.Attribute):
            if func.attr in self._BLOCKING_ATTRS:
                return f"blocking .{func.attr}() call"
            if func.attr in ("wait", "join"):
                receiver = resolve_dotted(func.value, aliases) or ""
                lowered = receiver.lower()
                if any(marker in lowered for marker in self._WAIT_RECEIVER_MARKERS):
                    return f"blocking {receiver}.{func.attr}()"
        return None


# ----------------------------------------------------------------------
# RL7 — dtype discipline
# ----------------------------------------------------------------------
@LINT_RULES.register("RL7")
class DtypeDisciplineRule(FileRule):
    """Array factories without an explicit dtype in the precision hot paths."""

    code = "RL7"
    name = "dtype-discipline"
    description = (
        "np.asarray/np.zeros/np.empty in the precision-critical hot modules "
        "(fused kernels, metrics engine, backend layer) must pin an explicit "
        "dtype= so results stay inside the per-backend precision contract"
    )

    #: modules whose numeric results are promised per array backend —
    #: float64 bit-identity or the float32 tolerance contract
    HOT_MODULES = (
        "src/repro/nn/fused.py",
        "src/repro/fairness/engine.py",
        "src/repro/core/backend.py",
    )

    #: dtype-inheriting factories: the result dtype silently follows the
    #: input (asarray) or defaults to float64 regardless of backend
    _FACTORIES = {"numpy.asarray", "numpy.zeros", "numpy.empty"}

    _HINT = (
        "pass dtype= explicitly (backend.compute_dtype for hot-path compute, "
        "np.float64 for accumulators), or route through the ArrayBackend "
        "helpers; add '# repro-lint: disable=RL7' with a reason if the dtype "
        "is genuinely dynamic"
    )

    def check_file(self, source: SourceFile, project: Project) -> Iterable[Finding]:
        if not any(source.rel.endswith(module) or source.rel == module
                   for module in self.HOT_MODULES):
            return []
        aliases = collect_import_aliases(source.tree)
        findings: List[Finding] = []
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = resolve_dotted(node.func, aliases)
            if dotted not in self._FACTORIES:
                continue
            if any(kw.arg == "dtype" for kw in node.keywords):
                continue
            if len(node.args) >= 2:  # dtype passed positionally
                continue
            tail = dotted.rsplit(".", 1)[-1]
            findings.append(
                _finding(
                    source, node, self.code,
                    f"np.{tail}() without an explicit dtype in a "
                    "precision-critical hot module; the result dtype follows "
                    "the input and can drift the path out of its backend "
                    "precision contract",
                    self._HINT,
                )
            )
        return findings


# ----------------------------------------------------------------------
# RL8 — telemetry discipline
# ----------------------------------------------------------------------
@LINT_RULES.register("RL8")
class TelemetryDisciplineRule(FileRule):
    """Wall-clock durations, and print/stdlib-logging in the hot paths."""

    code = "RL8"
    name = "telemetry-discipline"
    description = (
        "durations must come off time.perf_counter(), never the steppable "
        "wall clock; and the performance hot paths must emit operational "
        "output through RunLogger/repro.obs, not print() or stdlib logging"
    )

    #: the telemetry layer itself is exempt — it is the one place that
    #: measures clocks by design and renders the ``repro trace`` CLI output
    EXEMPT_PREFIX = "src/repro/obs/"

    #: modules on the measured hot paths (executor dispatch, search inner
    #: loop, fused forward, fairness kernels, the serve batcher, distributed
    #: dispatch): a stray print() here costs syscalls per task and bypasses
    #: the structured RunLogger/metrics surface operators actually watch
    HOT_MODULES = (
        "src/repro/core/execution.py",
        "src/repro/core/search.py",
        "src/repro/nn/fused.py",
        "src/repro/fairness/engine.py",
        "src/repro/serve/server.py",
        "src/repro/serve/supervisor.py",
        "src/repro/master/worker.py",
    )

    _STDLIB_LOG_FNS = {
        "debug", "info", "warning", "warn", "error", "exception", "critical", "log",
    }

    _DURATION_HINT = (
        "use time.perf_counter() for durations; time.time() is only for "
        "row timestamps (submitted_at/finished_at fields)"
    )
    _OUTPUT_HINT = (
        "route operational output through RunLogger.event()/log() or the "
        "repro.obs metrics and spans (structured, off-by-default-cheap)"
    )

    def check_file(self, source: SourceFile, project: Project) -> Iterable[Finding]:
        if source.rel.startswith(self.EXEMPT_PREFIX):
            return []
        aliases = collect_import_aliases(source.tree)
        findings: List[Finding] = []
        hot = any(source.rel.endswith(module) or source.rel == module
                  for module in self.HOT_MODULES)
        for node in ast.walk(source.tree):
            if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Sub):
                if self._contains_walltime_call(node, aliases):
                    findings.append(
                        _finding(
                            source, node, self.code,
                            "time.time() inside a subtraction — this is a "
                            "duration, and the wall clock steps (NTP) so it "
                            "can jump or go negative mid-run",
                            self._DURATION_HINT,
                        )
                    )
            elif hot and isinstance(node, ast.Call):
                dotted = resolve_dotted(node.func, aliases)
                if dotted in ("print", "builtins.print"):
                    findings.append(
                        _finding(
                            source, node, self.code,
                            "print() on a performance hot path; unstructured "
                            "stdout bypasses RunLogger rows and the metrics "
                            "surface, and costs a syscall per call",
                            self._OUTPUT_HINT,
                        )
                    )
                elif dotted is not None and dotted.startswith("logging."):
                    tail = dotted.rsplit(".", 1)[-1]
                    if tail in self._STDLIB_LOG_FNS or tail == "getLogger":
                        findings.append(
                            _finding(
                                source, node, self.code,
                                f"stdlib logging.{tail}() on a performance hot "
                                "path; the library's operational output is "
                                "structured RunLogger rows and obs metrics, "
                                "not the global logging tree",
                                self._OUTPUT_HINT,
                            )
                        )
        return findings

    @staticmethod
    def _contains_walltime_call(node: ast.BinOp, aliases: Dict[str, str]) -> bool:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Call):
                dotted = resolve_dotted(sub.func, aliases)
                if dotted == "time.time":
                    return True
        return False


# ----------------------------------------------------------------------
# RL9 — failure-handling discipline in the fault-tolerant tiers
# ----------------------------------------------------------------------
@LINT_RULES.register("RL9")
class FailureDisciplineRule(FileRule):
    """Swallowed broad excepts and unbounded queues in serve/ and master/."""

    code = "RL9"
    name = "failure-discipline"
    description = (
        "in the fault-tolerant serve/master tiers a bare 'except:' / "
        "'except Exception' must log, re-raise or use the caught error — "
        "never swallow it silently — and every queue.Queue must be bounded "
        "(overload is shed with a typed error, not absorbed into latency)"
    )

    #: only the supervised concurrent tiers are in scope — everywhere else a
    #: broad except is an application-level judgement call
    SCOPE_DIRS = ("src/repro/serve/", "src/repro/master/")

    #: constructors that buffer work; unbounded means overload turns into
    #: unbounded memory + latency instead of fast rejection
    _QUEUE_CTORS = {"queue.Queue", "queue.LifoQueue", "queue.PriorityQueue"}

    #: call attribute names that count as surfacing the failure (RunLogger
    #: .event rows, stdlib-ish logger methods, metric counters)
    _SURFACE_ATTRS = {
        "event", "log", "debug", "info", "warning", "warn", "error",
        "exception", "critical", "fail", "inc",
    }

    _EXCEPT_HINT = (
        "re-raise (possibly as a typed error 'from exc'), log the failure "
        "through RunLogger.event(...), or at minimum consult the bound "
        "exception — a silently swallowed crash defeats the supervisor"
    )
    _QUEUE_HINT = (
        "construct queue.Queue(maxsize=<bound>) and shed overflow with a "
        "typed error (ServerOverloaded); unbounded buffering hides overload "
        "as latency"
    )

    def check_file(self, source: SourceFile, project: Project) -> Iterable[Finding]:
        if not any(
            marker in source.rel
            for marker in (d.rstrip("/") + "/" for d in self.SCOPE_DIRS)
        ):
            return []
        aliases = collect_import_aliases(source.tree)
        findings: List[Finding] = []
        for node in ast.walk(source.tree):
            if isinstance(node, ast.ExceptHandler):
                if self._is_broad(node.type) and self._swallows(node):
                    caught = (
                        "bare except"
                        if node.type is None
                        else f"except {ast.unparse(node.type)}"
                    )
                    findings.append(
                        _finding(
                            source, node, self.code,
                            f"{caught} swallows the failure: the handler "
                            "neither re-raises, nor logs, nor uses the "
                            "caught exception",
                            self._EXCEPT_HINT,
                        )
                    )
            elif isinstance(node, ast.Call):
                dotted = resolve_dotted(node.func, aliases)
                if dotted == "queue.SimpleQueue":
                    findings.append(
                        _finding(
                            source, node, self.code,
                            "queue.SimpleQueue() cannot be bounded; overload "
                            "must be shed, not buffered without limit",
                            self._QUEUE_HINT,
                        )
                    )
                elif dotted in self._QUEUE_CTORS and self._is_unbounded(node):
                    findings.append(
                        _finding(
                            source, node, self.code,
                            f"{dotted}() constructed without a positive "
                            "maxsize: an unbounded queue turns overload into "
                            "unbounded latency and memory",
                            self._QUEUE_HINT,
                        )
                    )
        return findings

    # -- broad-ness -----------------------------------------------------
    @classmethod
    def _is_broad(cls, annotation: Optional[ast.expr]) -> bool:
        if annotation is None:  # bare except:
            return True
        if isinstance(annotation, ast.Tuple):
            return any(cls._is_broad(elt) for elt in annotation.elts)
        name = None
        if isinstance(annotation, ast.Name):
            name = annotation.id
        elif isinstance(annotation, ast.Attribute):
            name = annotation.attr
        return name in ("Exception", "BaseException")

    # -- does the handler surface the failure? --------------------------
    def _swallows(self, handler: ast.ExceptHandler) -> bool:
        bound = handler.name
        for stmt in handler.body:
            for sub in ast.walk(stmt):
                if isinstance(sub, ast.Raise):
                    return False
                if bound is not None and isinstance(sub, ast.Name) and sub.id == bound:
                    return False
                if isinstance(sub, ast.Call) and isinstance(sub.func, ast.Attribute):
                    if sub.func.attr in self._SURFACE_ATTRS:
                        return False
        return True

    # -- queue bound ----------------------------------------------------
    @staticmethod
    def _is_unbounded(call: ast.Call) -> bool:
        size: Optional[ast.expr] = None
        if call.args:
            size = call.args[0]
        for kw in call.keywords:
            if kw.arg == "maxsize":
                size = kw.value
        if size is None:
            return True
        # a constant bound must be positive; a computed bound is trusted
        if isinstance(size, ast.Constant) and isinstance(size.value, (int, float)):
            return size.value <= 0
        if (
            isinstance(size, ast.UnaryOp)
            and isinstance(size.op, ast.USub)
            and isinstance(size.operand, ast.Constant)
        ):
            return True  # negative literal, e.g. maxsize=-1
        return False

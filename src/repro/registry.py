"""Generic component registry backing the declarative Pipeline API.

Every pluggable component family of the library — datasets, controllers,
rewards, proxy builders, selection strategies, architectures, experiments —
is a :class:`Registry` instance living next to the components it serves
(e.g. ``repro.core.controller.CONTROLLERS``).  A registry maps stable string
names (plus optional aliases) to objects or factory callables, so that a
:class:`~repro.api.RunSpec` loaded from JSON can name any component, built-in
or user-registered, without the library hard-coding string conditionals.

Registration is decorator-friendly::

    CONTROLLERS = Registry("controller")

    @CONTROLLERS.register("rnn")
    def _build_rnn(search_space, config):
        return RNNController(search_space, config)

Lookups of unknown names raise :class:`UnknownComponentError` (a
``KeyError``) carrying did-you-mean suggestions; duplicate registrations
raise :class:`DuplicateComponentError` (a ``ValueError``) unless
``overwrite=True``.
"""

from __future__ import annotations

import difflib
from typing import (
    Callable,
    Dict,
    Generic,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
)

T = TypeVar("T")

__all__ = [
    "Registry",
    "RegistryError",
    "UnknownComponentError",
    "DuplicateComponentError",
]


class RegistryError(Exception):
    """Base class of registry failures."""


class UnknownComponentError(RegistryError, KeyError):
    """Lookup of a name that is not registered (with suggestions)."""

    def __init__(self, kind: str, name: str, available: Sequence[str], suggestions: Sequence[str]):
        self.kind = kind
        self.name = name
        self.available = list(available)
        self.suggestions = list(suggestions)
        message = f"unknown {kind} '{name}'"
        if self.suggestions:
            quoted = ", ".join(f"'{s}'" for s in self.suggestions)
            message += f"; did you mean {quoted}?"
        message += f" Available {kind}s: {self.available}"
        super().__init__(message)

    def __str__(self) -> str:  # KeyError.__str__ would repr() the message
        return self.args[0]


class DuplicateComponentError(RegistryError, ValueError):
    """Registration under a name that is already taken."""

    def __init__(self, kind: str, name: str):
        super().__init__(
            f"{kind} '{name}' is already registered; pass overwrite=True to replace it"
        )


class Registry(Generic[T]):
    """An ordered name -> component mapping with aliases and fuzzy errors."""

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._entries: Dict[str, T] = {}
        self._aliases: Dict[str, str] = {}

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(
        self,
        name: Optional[str] = None,
        obj: Optional[T] = None,
        *,
        aliases: Sequence[str] = (),
        overwrite: bool = False,
    ):
        """Register ``obj`` under ``name``; usable directly or as a decorator.

        ``registry.register("x", thing)`` registers immediately and returns
        ``thing``.  ``@registry.register("x")`` (or bare ``@registry.register``,
        which uses ``__name__``) registers the decorated callable.
        """
        if callable(name) and obj is None:
            # Bare @register usage: ``name`` is actually the decorated object.
            return self.register(name.__name__, name, aliases=aliases, overwrite=overwrite)
        if obj is not None:
            if name is None:
                raise ValueError("register() needs a name when given an object")
            self._insert(name, obj, overwrite=overwrite)
            for alias in aliases:
                self.alias(alias, name, overwrite=overwrite)
            return obj

        def decorator(target: T) -> T:
            return self.register(
                name if name is not None else getattr(target, "__name__", str(target)),
                target,
                aliases=aliases,
                overwrite=overwrite,
            )

        return decorator

    def _insert(self, name: str, obj: T, overwrite: bool) -> None:
        if not overwrite and (name in self._entries or name in self._aliases):
            raise DuplicateComponentError(self.kind, name)
        self._aliases.pop(name, None)
        self._entries[name] = obj

    def alias(self, alias: str, target: str, overwrite: bool = False) -> None:
        """Register ``alias`` as an alternative name for ``target``."""
        if target not in self._entries:
            raise UnknownComponentError(self.kind, target, self.names(), self.suggest(target))
        if not overwrite and (alias in self._entries or alias in self._aliases):
            raise DuplicateComponentError(self.kind, alias)
        self._aliases[alias] = target

    def unregister(self, name: str) -> None:
        """Remove an entry and every alias pointing at it."""
        canonical = self._aliases.get(name, name)
        if canonical not in self._entries:
            raise UnknownComponentError(self.kind, name, self.names(), self.suggest(name))
        del self._entries[canonical]
        for alias in [a for a, t in self._aliases.items() if t == canonical]:
            del self._aliases[alias]

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def get(self, name: str) -> T:
        """Resolve ``name`` (or one of its aliases) to the registered object."""
        canonical = self._aliases.get(name, name)
        try:
            return self._entries[canonical]
        except KeyError:
            raise UnknownComponentError(
                self.kind, name, self.names(), self.suggest(name)
            ) from None

    def canonical_name(self, name: str) -> str:
        """The canonical registered name behind ``name`` (resolving aliases)."""
        canonical = self._aliases.get(name, name)
        if canonical not in self._entries:
            raise UnknownComponentError(self.kind, name, self.names(), self.suggest(name))
        return canonical

    def suggest(self, name: str, cutoff: float = 0.5) -> List[str]:
        """Close matches to ``name`` among registered names and aliases."""
        candidates = self.names() + list(self._aliases)
        return difflib.get_close_matches(name, candidates, n=3, cutoff=cutoff)

    def names(self) -> List[str]:
        """Canonical names in registration order (aliases excluded)."""
        return list(self._entries)

    def aliases(self) -> Dict[str, str]:
        """alias -> canonical name mapping."""
        return dict(self._aliases)

    def items(self) -> List[Tuple[str, T]]:
        return list(self._entries.items())

    def values(self) -> List[T]:
        return list(self._entries.values())

    def keys(self) -> List[str]:
        return self.names()

    # Mapping protocol, so a registry can drop in for a plain dict.
    def __getitem__(self, name: str) -> T:
        return self.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._entries or name in self._aliases

    def __iter__(self) -> Iterator[str]:
        return iter(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:
        return f"Registry({self.kind!r}, {len(self)} entries)"

"""Persistent run database and per-run episode journals.

Durability model:

* **RIDs** come from an on-disk counter guarded by an ``fcntl`` file lock,
  so concurrent submitters (several clients, a master restart racing a
  late client) never mint the same run id twice.
* **Run state** lives in one directory per RID (``runs/<rid>/``) holding
  the submitted spec, a status document and — once finished — the result
  summary.  Every JSON document is written atomically
  (:func:`~repro.utils.serialization.save_json`), so a crash never leaves
  a half-written status behind.  Status transitions are validated
  (``pending → running → done/failed/cancelled``, plus ``running →
  pending`` for a requeue) so a bug cannot silently resurrect a finished
  run.
* **Episode journals** are append-only JSONL files: one header line, then
  one self-contained line per completed episode batch (the batch's
  ``(candidate, seed)`` keys plus the full serialised
  :class:`~repro.core.EpisodeRecord` list, trained head weights included).
  Each line is appended with a single ``write`` + ``fsync``, and the
  reader tolerates a truncated final line — a SIGKILL mid-append costs at
  most the batch being written, never the batches before it.  On resume
  the search replays its (cheap, deterministic) sampling and answers every
  journalled batch from disk instead of retraining, which is what makes a
  resumed run **bit-identical** to an uninterrupted one: JSON float
  round-trips are exact and the controller update sees the same rewards in
  the same order.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Union

from ..api.spec import RunSpec
from ..core.results import EpisodeRecord
from ..utils.serialization import atomic_write_text, load_json, save_json

PathLike = Union[str, Path]

#: every status a run can be in, in rough lifecycle order
RUN_STATUSES = ("pending", "running", "done", "failed", "cancelled")
#: statuses a run can never leave
TERMINAL_STATUSES = ("done", "failed", "cancelled")

_TRANSITIONS = {
    "pending": {"running", "cancelled"},
    # ``running -> pending`` is the requeue edge: a crashed or gracefully
    # stopped master puts its in-flight run back on the queue.
    "running": {"pending", "done", "failed", "cancelled"},
    "done": set(),
    "failed": set(),
    "cancelled": set(),
}

JOURNAL_FORMAT = "muffin-episode-journal-v1"


class StatusTransitionError(RuntimeError):
    """An attempted run-status transition the lifecycle forbids."""


class RunDatabase:
    """On-disk database of submitted runs (specs, statuses, results)."""

    def __init__(self, root: PathLike) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        (self.root / "runs").mkdir(exist_ok=True)
        self._counter_path = self.root / "rid_counter"

    # ------------------------------------------------------------------
    # RID allocation
    # ------------------------------------------------------------------
    def next_rid(self) -> int:
        """Allocate the next run id (file-locked, monotonic, persistent)."""
        import fcntl

        fd = os.open(self._counter_path, os.O_RDWR | os.O_CREAT, 0o644)
        try:
            fcntl.flock(fd, fcntl.LOCK_EX)
            raw = os.read(fd, 64).decode("ascii").strip()
            rid = int(raw) + 1 if raw else 1
            os.lseek(fd, 0, os.SEEK_SET)
            os.ftruncate(fd, 0)
            os.write(fd, f"{rid}\n".encode("ascii"))
            os.fsync(fd)
            return rid
        finally:
            os.close(fd)  # releases the flock

    # ------------------------------------------------------------------
    # Run lifecycle
    # ------------------------------------------------------------------
    def run_dir(self, rid: int) -> Path:
        return self.root / "runs" / str(int(rid))

    def journal_path(self, rid: int) -> Path:
        return self.run_dir(rid) / "journal.jsonl"

    def submit(self, spec: RunSpec, priority: int = 0) -> int:
        """Persist a new pending run and return its RID."""
        rid = self.next_rid()
        run_dir = self.run_dir(rid)
        run_dir.mkdir(parents=True, exist_ok=True)
        save_json(spec.to_dict(), run_dir / "spec.json")
        save_json(
            {
                "rid": rid,
                "name": spec.name,
                "spec_hash": spec.spec_hash(),
                "status": "pending",
                "priority": int(priority),
                "submitted_at": time.time(),
            },
            run_dir / "status.json",
        )
        return rid

    def spec(self, rid: int) -> RunSpec:
        path = self.run_dir(rid) / "spec.json"
        if not path.exists():
            raise KeyError(f"unknown run {rid}")
        return RunSpec.from_dict(load_json(path))

    def status(self, rid: int) -> Dict[str, object]:
        path = self.run_dir(rid) / "status.json"
        if not path.exists():
            raise KeyError(f"unknown run {rid}")
        return load_json(path)

    def set_status(self, rid: int, status: str, **fields: object) -> Dict[str, object]:
        """Transition a run's status (validated) and merge extra fields."""
        if status not in RUN_STATUSES:
            raise ValueError(f"unknown status '{status}'; expected one of {list(RUN_STATUSES)}")
        payload = self.status(rid)
        current = str(payload.get("status", "pending"))
        if status != current and status not in _TRANSITIONS.get(current, set()):
            raise StatusTransitionError(
                f"run {rid} cannot move from '{current}' to '{status}'"
            )
        payload["status"] = status
        payload.update(fields)
        save_json(payload, self.run_dir(rid) / "status.json")
        return payload

    def store_result(self, rid: int, payload: Mapping[str, object]) -> Path:
        return save_json(dict(payload), self.run_dir(rid) / "result.json")

    def result(self, rid: int) -> Optional[Dict[str, object]]:
        path = self.run_dir(rid) / "result.json"
        return load_json(path) if path.exists() else None

    def rids(self) -> List[int]:
        runs = self.root / "runs"
        return sorted(int(p.name) for p in runs.iterdir() if p.name.isdigit())

    def list_runs(self) -> List[Dict[str, object]]:
        """Status documents of every known run, ordered by RID."""
        entries = []
        for rid in self.rids():
            try:
                entries.append(self.status(rid))
            except (KeyError, ValueError):
                continue
        return entries

    def pending_runs(self) -> List[Dict[str, object]]:
        """Pending runs in claim order: priority descending, then RID."""
        pending = [entry for entry in self.list_runs() if entry.get("status") == "pending"]
        return sorted(pending, key=lambda e: (-int(e.get("priority", 0)), int(e["rid"])))

    def requeue_running(self) -> List[int]:
        """Put crashed ``running`` runs back on the queue (master restart)."""
        requeued = []
        for entry in self.list_runs():
            if entry.get("status") == "running":
                rid = int(entry["rid"])
                self.set_status(rid, "pending", requeued=True)
                requeued.append(rid)
        return requeued


# ----------------------------------------------------------------------
# Episode journal
# ----------------------------------------------------------------------
class EpisodeJournal:
    """Append-only, crash-tolerant record of a search's completed batches.

    The search loop (:meth:`repro.core.MuffinSearch.run`) calls
    :meth:`lookup` before evaluating each batch and :meth:`append` after.
    A lookup hit replays the stored :class:`~repro.core.EpisodeRecord`\\ s
    (bit-identical through the JSON round trip) instead of retraining; a
    key mismatch — the journal was written by a different spec or seed —
    discards the stale tail so the run falls back to live evaluation.
    """

    def __init__(
        self,
        path: PathLike,
        fingerprint: Optional[Mapping[str, object]] = None,
    ) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.fingerprint = dict(fingerprint or {})
        self._entries: List[Dict[str, object]] = []
        self._handle = None
        self.replayed_batches = 0
        self._load()

    # ------------------------------------------------------------------
    def _load(self) -> None:
        """Parse the file, tolerating a truncated trailing line."""
        entries: List[Dict[str, object]] = []
        header_ok = False
        if self.path.exists():
            with open(self.path, "r", encoding="utf-8", errors="replace") as handle:
                for index, line in enumerate(handle):
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        payload = json.loads(line)
                    except json.JSONDecodeError:
                        break  # truncated mid-append: drop this and anything after
                    if index == 0:
                        header_ok = (
                            isinstance(payload, dict)
                            and payload.get("format") == JOURNAL_FORMAT
                            and payload.get("fingerprint") == self.fingerprint
                        )
                        if not header_ok:
                            break
                        continue
                    if (
                        not isinstance(payload, dict)
                        or payload.get("batch") != len(entries)
                        or "keys" not in payload
                        or "records" not in payload
                    ):
                        break  # out-of-order or foreign line: drop the tail
                    entries.append(payload)
        if header_ok:
            self._entries = entries
            # The on-disk tail may hold lines the parse rejected; rewrite so
            # the append offset is consistent with what we will trust.
            self._rewrite()
        else:
            self._entries = []
            self._rewrite()

    def _open_append(self):
        if self._handle is None:
            self._handle = open(self.path, "a", encoding="utf-8")
        return self._handle

    def _rewrite(self) -> None:
        """Atomically rewrite the file as header + trusted entries."""
        self.close()
        lines = [json.dumps({"format": JOURNAL_FORMAT, "fingerprint": self.fingerprint})]
        lines.extend(json.dumps(entry, separators=(",", ":")) for entry in self._entries)
        atomic_write_text(self.path, "\n".join(lines) + "\n", fsync=True)

    # ------------------------------------------------------------------
    @property
    def batches(self) -> int:
        """Number of completed batches the journal holds."""
        return len(self._entries)

    @property
    def episodes(self) -> int:
        """Number of completed episodes the journal holds."""
        return sum(len(entry["records"]) for entry in self._entries)

    def lookup(
        self, batch_index: int, keys: Sequence[Mapping[str, object]]
    ) -> Optional[List[EpisodeRecord]]:
        """Stored records of ``batch_index`` if the journal matches, else ``None``.

        A key mismatch (same index, different candidates/seeds — a changed
        spec or search seed) truncates the journal from that batch on, so a
        stale tail can never be replayed into a fresh run.
        """
        if batch_index >= len(self._entries):
            return None
        entry = self._entries[batch_index]
        if entry["keys"] != [dict(key) for key in keys]:
            self._entries = self._entries[:batch_index]
            self._rewrite()
            return None
        self.replayed_batches += 1
        return [EpisodeRecord.from_dict(payload) for payload in entry["records"]]

    def append(
        self,
        batch_index: int,
        keys: Sequence[Mapping[str, object]],
        records: Sequence[EpisodeRecord],
    ) -> None:
        """Durably record one completed batch (single write + fsync)."""
        if batch_index != len(self._entries):
            raise ValueError(
                f"journal expects batch {len(self._entries)} next, got {batch_index}"
            )
        entry = {
            "batch": batch_index,
            "keys": [dict(key) for key in keys],
            "records": [record.to_dict(include_state=True) for record in records],
        }
        handle = self._open_append()
        handle.write(json.dumps(entry, separators=(",", ":")) + "\n")
        handle.flush()
        os.fsync(handle.fileno())
        self._entries.append(entry)

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "EpisodeJournal":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    @classmethod
    def progress(cls, path: PathLike) -> Dict[str, int]:
        """Cheap read-only progress probe (batches/episodes completed)."""
        path = Path(path)
        batches = episodes = 0
        if path.exists():
            with open(path, "r", encoding="utf-8", errors="replace") as handle:
                for index, line in enumerate(handle):
                    if index == 0 or not line.strip():
                        continue
                    try:
                        payload = json.loads(line)
                    except json.JSONDecodeError:
                        break
                    if isinstance(payload, dict) and "records" in payload:
                        batches += 1
                        episodes += len(payload["records"])
        return {"batches": batches, "episodes": episodes}

"""The priority run queue and the master daemon that drives it.

A :class:`MasterServer` owns one :class:`~repro.master.db.RunDatabase` and
executes submitted runs one at a time in priority order, farming each run's
episode-batch evaluations out to supervised worker subprocesses through the
``distributed`` executor.  Clients (``python -m repro submit/status/watch/
cancel``) talk to it over the length-prefixed JSON protocol of
:mod:`repro.master.protocol`; the control channel is **pure JSON** — a
client can submit specs and query statuses but never ships pickled code to
the master.

Crash story, end to end:

* a worker dies → the :class:`~repro.master.worker.DistributedExecutor`
  requeues its batch and restarts it (bounded retries);
* the master dies mid-run → on the next start-up
  :meth:`~repro.master.db.RunDatabase.requeue_running` puts the in-flight
  run back on the queue and its episode journal resumes the search from the
  last completed batch, bit-identical to an uninterrupted run;
* the operator hits Ctrl-C → the run loop drains the in-flight batch
  (:class:`~repro.core.SearchInterrupted` fires *between* batches, after
  the journal fsync), requeues the run as ``pending`` and exits.
"""

from __future__ import annotations

import dataclasses
import heapq
import os
import socket
import threading
import time
import traceback
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Set, Union

from ..analysis.runtime import register_shared_state, touch_shared_state
from ..api.pipeline import MuffinPipeline
from ..api.spec import RunSpec, SpecError
from ..core.search import SearchInterrupted
from ..obs import METRICS
from ..utils.logging import RunLogger
from ..utils.serialization import save_json
from .db import TERMINAL_STATUSES, EpisodeJournal, RunDatabase
from .protocol import ProtocolError, recv_message, send_message

PathLike = Union[str, Path]

#: name of the endpoint file the master writes inside its database root so
#: clients can discover the host/port from ``--db`` alone
ENDPOINT_FILE = "master.json"

#: Run-lifecycle events, labelled exactly like the RunLogger event names
#: (run-submitted / run-claimed / run-requeued / run-finished / run-failed /
#: run-cancelled), so log rows and metrics cross-reference one-to-one.
_RUN_EVENTS_TOTAL = METRICS.counter(
    "repro_master_runs_total",
    "Run-lifecycle events processed by the master, by event.",
    labelnames=("event",),
)
_QUEUE_DEPTH = METRICS.gauge(
    "repro_master_queue_depth",
    "Pending runs waiting on the master's priority queue.",
)


class RunScheduler:
    """Thread-safe priority queue of pending RIDs with cancellation.

    Claim order is priority descending, then RID ascending (FIFO within a
    priority level).  Cancellation is two-phase: a queued run is dequeued
    outright; the currently executing run is flagged, and the run loop's
    ``should_stop`` hook turns the flag into a
    :class:`~repro.core.SearchInterrupted` at the next batch boundary.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._available = threading.Condition(self._lock)
        self._heap: List[tuple] = []  # (-priority, rid)
        self._queued: Set[int] = set()
        self._cancelled: Set[int] = set()
        self._active: Optional[int] = None
        # REPRO_TSAN contract: every queue mutation holds _lock (directly or
        # through the _available condition wrapping it).
        register_shared_state("run-queue", self, lock=self._lock)

    def submit(self, rid: int, priority: int = 0) -> None:
        with self._available:
            if rid in self._queued:
                return
            touch_shared_state("run-queue", self)
            heapq.heappush(self._heap, (-int(priority), int(rid)))
            self._queued.add(int(rid))
            self._available.notify()

    def claim(self, timeout: Optional[float] = None) -> Optional[int]:
        """Pop the highest-priority pending RID (blocking up to ``timeout``)."""
        with self._available:
            if not self._heap:
                self._available.wait(timeout)
            if not self._heap:
                return None
            touch_shared_state("run-queue", self)
            _, rid = heapq.heappop(self._heap)
            self._queued.discard(rid)
            self._active = rid
            return rid

    def release(self, rid: int) -> None:
        """Mark ``rid`` as no longer executing (done, failed or requeued)."""
        with self._lock:
            touch_shared_state("run-queue", self)
            if self._active == rid:
                self._active = None
            self._cancelled.discard(rid)

    def cancel(self, rid: int) -> str:
        """Cancel ``rid``: ``'dequeued'`` | ``'flagged'`` | ``'unknown'``."""
        rid = int(rid)
        with self._available:
            touch_shared_state("run-queue", self)
            if rid in self._queued:
                self._heap = [entry for entry in self._heap if entry[1] != rid]
                heapq.heapify(self._heap)
                self._queued.discard(rid)
                return "dequeued"
            if self._active == rid:
                self._cancelled.add(rid)
                return "flagged"
            return "unknown"

    def is_cancelled(self, rid: int) -> bool:
        with self._lock:
            return int(rid) in self._cancelled

    def pending(self) -> List[int]:
        """Queued RIDs in claim order (does not include the active run)."""
        with self._lock:
            return [rid for _, rid in sorted(self._heap)]

    def __len__(self) -> int:
        with self._lock:
            return len(self._heap)


@dataclass
class MasterConfig:
    """Configuration of one :class:`MasterServer`."""

    #: root of the persistent run database (specs, statuses, journals)
    db_root: PathLike = ".repro_master"
    host: str = "127.0.0.1"
    #: 0 = let the OS pick a free port (written to the endpoint file)
    port: int = 0
    #: executor override applied to every executed run (``None`` keeps the
    #: spec's own ``execution.executor``)
    executor: Optional[str] = "distributed"
    max_workers: Optional[int] = None
    #: how long the run loop waits for work before re-checking shutdown
    poll_seconds: float = 0.2
    verbose: bool = True

    def __post_init__(self) -> None:
        self.db_root = Path(self.db_root)
        if self.max_workers is not None and int(self.max_workers) <= 0:
            raise ValueError("max_workers must be positive (or None for auto)")


class MasterServer:
    """The master daemon: run database + scheduler + client listener."""

    def __init__(self, config: Optional[MasterConfig] = None) -> None:
        self.config = config or MasterConfig()
        self.db = RunDatabase(self.config.db_root)
        self.scheduler = RunScheduler()
        self.logger = RunLogger(name="muffin-master", verbose=self.config.verbose)
        self._listener: Optional[socket.socket] = None
        self._threads: List[threading.Thread] = []
        self._stopping = threading.Event()
        self._started = False
        self.host: Optional[str] = None
        self.port: Optional[int] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def endpoint_path(self) -> Path:
        return Path(self.config.db_root) / ENDPOINT_FILE

    def start(self) -> None:
        """Recover the database, bind the listener and start the loops."""
        if self._started:
            return
        for rid in self.db.requeue_running():
            self._run_event("run-requeued", rid=rid, reason="master restart")
        for entry in self.db.pending_runs():
            self.scheduler.submit(int(entry["rid"]), int(entry.get("priority", 0)))
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.config.host, self.config.port))
        listener.listen(16)
        listener.settimeout(0.2)
        self._listener = listener
        self.host, self.port = listener.getsockname()[:2]
        save_json(
            {"host": self.host, "port": self.port, "pid": os.getpid(), "started_at": time.time()},
            self.endpoint_path,
        )
        self._stopping.clear()
        self._threads = [
            threading.Thread(target=self._accept_loop, name="muffin-master-accept", daemon=True),
            threading.Thread(target=self._run_loop, name="muffin-master-runs", daemon=True),
        ]
        for thread in self._threads:
            thread.start()
        self._started = True
        self.logger.event(
            "master-started", host=self.host, port=self.port, queued=len(self.scheduler)
        )

    def stop(self) -> None:
        """Graceful shutdown: drain the in-flight batch, requeue, exit."""
        if not self._started:
            return
        self._stopping.set()
        for thread in self._threads:
            thread.join(timeout=60.0)
        self._threads = []
        if self._listener is not None:
            self._listener.close()
            self._listener = None
        try:
            self.endpoint_path.unlink()
        except FileNotFoundError:
            pass
        self._started = False
        self.logger.event("master-stopped")

    def serve_forever(self, stop_event: Optional[threading.Event] = None) -> None:
        """Run until ``stop_event`` is set (or forever)."""
        self.start()
        try:
            if stop_event is None:
                while not self._stopping.wait(1.0):
                    pass
            else:
                stop_event.wait()
        finally:
            self.stop()

    def __enter__(self) -> "MasterServer":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Submission / queries (used by the listener AND callable in-process)
    # ------------------------------------------------------------------
    def _run_event(self, event: str, **fields) -> None:
        """Log one run-lifecycle event and mirror it into the metrics layer."""
        self.logger.event(event, **fields)
        _RUN_EVENTS_TOTAL.inc(event=event)
        _QUEUE_DEPTH.set(len(self.scheduler))

    def submit(self, spec: RunSpec, priority: int = 0) -> int:
        rid = self.db.submit(spec, priority=priority)
        self.scheduler.submit(rid, priority)
        self._run_event("run-submitted", rid=rid, name=spec.name, priority=priority)
        return rid

    def run_status(self, rid: int) -> Dict[str, object]:
        """One run's status document plus live journal progress."""
        payload = dict(self.db.status(rid))
        payload["journal"] = EpisodeJournal.progress(self.db.journal_path(rid))
        result = self.db.result(rid)
        if result is not None:
            payload["result"] = result
        return payload

    def cancel(self, rid: int) -> Dict[str, object]:
        outcome = self.scheduler.cancel(rid)
        if outcome == "dequeued":
            self.db.set_status(rid, "cancelled", cancelled_at=time.time())
        elif outcome == "unknown":
            # Not queued, not active: either already terminal or a bad RID.
            try:
                status = str(self.db.status(rid).get("status"))
            except KeyError:
                return {"rid": int(rid), "outcome": "unknown"}
            if status == "pending":
                # Pending on disk but missing from the queue (e.g. submitted
                # while a previous master owned the db); cancel it directly.
                self.db.set_status(rid, "cancelled", cancelled_at=time.time())
                outcome = "dequeued"
            else:
                outcome = f"already-{status}" if status in TERMINAL_STATUSES else outcome
        self._run_event("run-cancelled", rid=int(rid), outcome=outcome)
        return {"rid": int(rid), "outcome": outcome}

    # ------------------------------------------------------------------
    # Run execution
    # ------------------------------------------------------------------
    def _execution_spec(self, spec: RunSpec, rid: int):
        """The spec's execution section with the master's overrides applied.

        ``execution`` is excluded from every stage hash, so pointing the run
        at its journal and the distributed executor cannot change what the
        search computes — only how (and how durably) it computes it.
        """
        overrides: Dict[str, object] = {"journal": str(self.db.journal_path(rid))}
        if self.config.executor is not None:
            overrides["executor"] = self.config.executor
        if self.config.max_workers is not None:
            overrides["max_workers"] = int(self.config.max_workers)
        return dataclasses.replace(spec.execution, **overrides)

    def _execute_run(self, rid: int) -> None:
        try:
            spec = self.db.spec(rid)
        except (KeyError, SpecError) as exc:
            self.db.set_status(rid, "failed", error=str(exc), finished_at=time.time())
            self._run_event("run-failed", rid=rid, error=str(exc))
            return
        self.db.set_status(rid, "running", started_at=time.time())
        self._run_event("run-claimed", rid=rid, name=spec.name)
        run_spec = dataclasses.replace(spec, execution=self._execution_spec(spec, rid))

        def should_stop() -> bool:
            return self._stopping.is_set() or self.scheduler.is_cancelled(rid)

        try:
            pipeline = MuffinPipeline(
                run_spec,
                cache_dir=self.db.run_dir(rid) / "cache",
                verbose=False,
                should_stop=should_stop,
            )
            outcome = pipeline.run()
        except SearchInterrupted:
            if self.scheduler.is_cancelled(rid):
                self.db.set_status(rid, "cancelled", cancelled_at=time.time())
                self._run_event("run-cancelled", rid=rid, outcome="interrupted")
            else:  # master shutting down: the journal makes the requeue cheap
                self.db.set_status(rid, "pending", requeued=True)
                self._run_event("run-requeued", rid=rid, reason="shutdown")
            return
        except Exception as exc:
            self.db.set_status(
                rid,
                "failed",
                error=f"{type(exc).__name__}: {exc}",
                traceback=traceback.format_exc(),
                finished_at=time.time(),
            )
            self._run_event("run-failed", rid=rid, error=f"{type(exc).__name__}: {exc}")
            return
        finally:
            self.scheduler.release(rid)
        result_hash = outcome.result.result_hash()
        self.db.store_result(
            rid,
            {
                "rid": rid,
                "result_hash": result_hash,
                "summary": outcome.summary(),
                "episodes": len(outcome.result),
            },
        )
        self.db.set_status(rid, "done", finished_at=time.time(), result_hash=result_hash)
        self._run_event("run-finished", rid=rid, result_hash=result_hash)

    def _run_loop(self) -> None:
        while not self._stopping.is_set():
            rid = self.scheduler.claim(timeout=self.config.poll_seconds)
            if rid is None:
                continue
            if self._stopping.is_set():
                # Claimed during shutdown: leave it pending for the next master.
                self.scheduler.release(rid)
                return
            try:
                self._execute_run(rid)
            except Exception as exc:  # _execute_run is defensive; belt and braces
                self._run_event("run-failed", rid=rid, error=f"{type(exc).__name__}: {exc}")
                self.scheduler.release(rid)

    # ------------------------------------------------------------------
    # Client protocol
    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        while not self._stopping.is_set():
            try:
                conn, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            threading.Thread(
                target=self._serve_client, args=(conn,), name="muffin-master-client", daemon=True
            ).start()

    def _serve_client(self, conn: socket.socket) -> None:
        conn.settimeout(30.0)
        try:
            while True:
                try:
                    request = recv_message(conn)
                except (ProtocolError, socket.timeout, OSError):
                    return
                if request is None:
                    return
                try:
                    response = self._handle_request(request)
                except Exception as exc:
                    response = {"type": "error", "error": f"{type(exc).__name__}: {exc}"}
                try:
                    send_message(conn, response)
                except OSError:
                    return
        finally:
            try:
                conn.close()
            except OSError:
                pass

    def _handle_request(self, request: Dict[str, object]) -> Dict[str, object]:
        kind = request.get("type")
        if kind == "ping":
            return {
                "type": "pong",
                "pid": os.getpid(),
                "queued": len(self.scheduler),
                "db": str(self.config.db_root),
            }
        if kind == "submit":
            spec_payload = request.get("spec")
            if not isinstance(spec_payload, dict):
                return {"type": "error", "error": "submit requires a 'spec' object"}
            try:
                spec = RunSpec.from_dict(spec_payload)
            except SpecError as exc:
                return {"type": "error", "error": str(exc)}
            rid = self.submit(spec, priority=int(request.get("priority", 0)))
            return {"type": "ok", "rid": rid}
        if kind == "status":
            rid = request.get("rid")
            if rid is None:
                return {"type": "ok", "runs": self.db.list_runs()}
            try:
                return {"type": "ok", "run": self.run_status(int(rid))}
            except KeyError:
                return {"type": "error", "error": f"unknown run {rid}"}
        if kind == "cancel":
            rid = request.get("rid")
            if rid is None:
                return {"type": "error", "error": "cancel requires a 'rid'"}
            return {"type": "ok", **self.cancel(int(rid))}
        return {"type": "error", "error": f"unknown request type {kind!r}"}

"""Length-prefixed JSON message framing for the master/worker sockets.

Every connection in the distributed-search subsystem — client to master,
master to worker — speaks the same trivially debuggable wire format: a
4-byte big-endian payload length followed by a UTF-8 JSON object.  Control
fields (message type, task ids, heartbeats, statuses) are plain JSON;
numpy-bearing payloads (an :class:`~repro.core.EvaluationTask`, an
:class:`~repro.core.EvaluationOutcome`) ride inside the JSON envelope as a
base64-encoded pickle produced by :func:`encode_payload`, which preserves
dtypes and float64 bit patterns exactly — the bit-identity guarantee of the
``distributed`` executor rests on this round trip being lossless.

Payloads are only ever exchanged between a master and the worker
subprocesses *it spawned itself* on a loopback socket guarded by a random
session token (see :mod:`repro.master.worker`), so the pickle surface is
not exposed to untrusted peers.
"""

from __future__ import annotations

import base64
import json
import pickle
import socket
import struct
from typing import Any, Dict, Optional

#: frame-size guard: a single message beyond this is a protocol bug, not a
#: workload (the largest legitimate payloads are episode-batch task arrays)
MAX_MESSAGE_BYTES = 512 * 1024 * 1024

_LENGTH = struct.Struct(">I")


class ProtocolError(RuntimeError):
    """A malformed, oversized or truncated wire message."""


def encode_payload(obj: Any) -> str:
    """Encode an arbitrary picklable object for embedding in a JSON message."""
    return base64.b64encode(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)).decode("ascii")


def decode_payload(text: str) -> Any:
    """Inverse of :func:`encode_payload`."""
    try:
        return pickle.loads(base64.b64decode(text.encode("ascii")))
    except Exception as exc:  # corrupt base64 / pickle
        raise ProtocolError(f"cannot decode message payload: {exc}") from exc


def send_message(sock: socket.socket, message: Dict[str, Any]) -> None:
    """Write one length-prefixed JSON message to ``sock``."""
    body = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_MESSAGE_BYTES:
        raise ProtocolError(
            f"refusing to send a {len(body)}-byte message (limit {MAX_MESSAGE_BYTES})"
        )
    sock.sendall(_LENGTH.pack(len(body)) + body)


def _recv_exactly(sock: socket.socket, count: int) -> Optional[bytes]:
    """Read exactly ``count`` bytes; ``None`` on a clean EOF before any byte."""
    chunks = []
    remaining = count
    while remaining > 0:
        chunk = sock.recv(remaining)
        if not chunk:
            if remaining == count:
                return None
            raise ProtocolError(
                f"connection closed mid-frame ({count - remaining}/{count} bytes read)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_message(sock: socket.socket) -> Optional[Dict[str, Any]]:
    """Read one framed message; ``None`` when the peer closed the connection."""
    header = _recv_exactly(sock, _LENGTH.size)
    if header is None:
        return None
    (length,) = _LENGTH.unpack(header)
    if length > MAX_MESSAGE_BYTES:
        raise ProtocolError(f"peer announced a {length}-byte message (limit {MAX_MESSAGE_BYTES})")
    body = _recv_exactly(sock, length)
    if body is None:
        raise ProtocolError("connection closed between frame header and body")
    try:
        message = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"frame body is not valid JSON: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError(f"expected a JSON object frame, got {type(message).__name__}")
    return message


def connect(host: str, port: int, timeout: Optional[float] = 10.0) -> socket.socket:
    """Open a TCP connection to a master or executor listener."""
    sock = socket.create_connection((host, port), timeout=timeout)
    sock.settimeout(timeout)
    return sock

"""Client for talking to a running :class:`~repro.master.scheduler.MasterServer`.

Backs the ``python -m repro submit/status/watch/cancel`` subcommands.  The
endpoint is resolved from an explicit ``host``/``port``, or discovered from
the database root: a running master writes ``<db>/master.json`` with its
address (see :data:`~repro.master.scheduler.ENDPOINT_FILE`), so every client
command only needs ``--db``.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

from ..api.spec import RunSpec
from ..utils.serialization import load_json
from .db import TERMINAL_STATUSES
from .protocol import ProtocolError, connect, recv_message, send_message
from .scheduler import ENDPOINT_FILE

PathLike = Union[str, Path]


class MasterError(RuntimeError):
    """A master that cannot be reached, or a request it rejected."""


class MasterUnreachable(MasterError):
    """Every connect attempt to the master failed (transient ``OSError``).

    Raised only after the bounded retry schedule is exhausted; the message
    names the attempt count so operators can tell a flaky network (message
    mentions several attempts) from a dead master at first glance.
    """

    def __init__(self, message: str, attempts: int) -> None:
        super().__init__(message)
        self.attempts = int(attempts)


def _retry_jitter(attempt: int, host: str, port: int) -> float:
    """Deterministic jitter fraction in [0, 1) for a given attempt.

    A pure integer hash of (attempt, endpoint) — no RNG draw — so retry
    timing replays identically run-to-run while still decorrelating two
    clients hammering different endpoints.
    """
    acc = 0x9E3779B97F4A7C15
    for value in (attempt, port, *(ord(c) for c in host)):
        acc = (acc ^ (value & 0xFFFFFFFFFFFFFFFF)) * 0xBF58476D1CE4E5B9
        acc &= 0xFFFFFFFFFFFFFFFF
        acc ^= acc >> 31
    return (acc & 0xFF) / 256.0


def resolve_endpoint(db_root: PathLike) -> Tuple[str, int]:
    """Read a running master's address from its database root."""
    path = Path(db_root) / ENDPOINT_FILE
    if not path.exists():
        raise MasterError(
            f"no master endpoint file at '{path}' — is a master running on this "
            f"database? Start one with: python -m repro master --db {db_root}"
        )
    try:
        payload = load_json(path)
        return str(payload["host"]), int(payload["port"])
    except (ValueError, KeyError, TypeError) as exc:
        raise MasterError(f"endpoint file '{path}' is corrupt: {exc}") from exc


class MasterClient:
    """Thin request/response client over the length-prefixed JSON protocol."""

    def __init__(
        self,
        host: Optional[str] = None,
        port: Optional[int] = None,
        db: Optional[PathLike] = None,
        timeout: float = 10.0,
        retries: int = 3,
        backoff_s: float = 0.1,
        backoff_max_s: float = 2.0,
    ) -> None:
        if host is None or port is None:
            if db is None:
                raise MasterError("MasterClient needs host+port or a database root (db=...)")
            host, port = resolve_endpoint(db)
        if retries < 0:
            raise MasterError("retries must be non-negative")
        self.host = host
        self.port = int(port)
        self.timeout = float(timeout)
        self.retries = int(retries)
        self.backoff_s = float(backoff_s)
        self.backoff_max_s = float(backoff_max_s)

    # ------------------------------------------------------------------
    def _connect_with_retry(self):
        """Connect, surviving up to ``retries`` transient ``OSError`` s.

        A refused or timed-out connect is retried with exponential backoff
        plus deterministic jitter (a pure hash of attempt+endpoint, so the
        schedule replays identically); exhaustion raises
        :class:`MasterUnreachable` naming the attempt count.
        """
        attempts = self.retries + 1
        last_error: Optional[OSError] = None
        for attempt in range(attempts):
            if attempt > 0:
                delay = min(
                    self.backoff_s * (2.0 ** (attempt - 1)), self.backoff_max_s
                )
                time.sleep(delay * (1.0 + _retry_jitter(attempt, self.host, self.port)))
            try:
                return connect(self.host, self.port, timeout=self.timeout)
            except OSError as exc:
                last_error = exc
        raise MasterUnreachable(
            f"cannot reach master at {self.host}:{self.port} after "
            f"{attempts} attempt(s) ({last_error})",
            attempts=attempts,
        ) from last_error

    def _request(self, message: Dict[str, object]) -> Dict[str, object]:
        """One connect → request → response round trip.

        Per-request connections keep the client stateless: a master restart
        between two ``watch`` polls is invisible to the caller.
        """
        sock = self._connect_with_retry()
        try:
            send_message(sock, message)
            response = recv_message(sock)
        except (OSError, ProtocolError) as exc:
            raise MasterError(f"master connection failed mid-request: {exc}") from exc
        finally:
            try:
                sock.close()
            except OSError:
                pass
        if response is None:
            raise MasterError("master closed the connection without answering")
        if response.get("type") == "error":
            raise MasterError(str(response.get("error", "unknown master error")))
        return response

    # ------------------------------------------------------------------
    def ping(self) -> Dict[str, object]:
        return self._request({"type": "ping"})

    def submit(self, spec: Union[RunSpec, PathLike], priority: int = 0) -> int:
        """Submit a run spec (object, JSON string or file path); returns the RID."""
        if not isinstance(spec, RunSpec):
            spec = RunSpec.from_json(spec)
        response = self._request(
            {"type": "submit", "spec": spec.to_dict(), "priority": int(priority)}
        )
        return int(response["rid"])

    def status(self, rid: Optional[int] = None):
        """One run's status document, or every run's when ``rid`` is None."""
        if rid is None:
            response = self._request({"type": "status"})
            return list(response.get("runs", []))
        response = self._request({"type": "status", "rid": int(rid)})
        return dict(response["run"])

    def cancel(self, rid: int) -> Dict[str, object]:
        response = self._request({"type": "cancel", "rid": int(rid)})
        return {"rid": int(response["rid"]), "outcome": str(response["outcome"])}

    def watch(
        self,
        rid: int,
        poll_seconds: float = 1.0,
        timeout: Optional[float] = None,
        on_progress=None,
    ) -> Dict[str, object]:
        """Poll ``rid`` until it reaches a terminal status; returns the last one.

        ``on_progress`` (if given) is called with each polled status document
        — the CLI uses it to print journal progress lines.
        """
        deadline = None if timeout is None else time.monotonic() + float(timeout)
        while True:
            status = self.status(rid)
            if on_progress is not None:
                on_progress(status)
            if status.get("status") in TERMINAL_STATUSES:
                return status
            if deadline is not None and time.monotonic() >= deadline:
                raise MasterError(
                    f"run {rid} did not finish within {timeout:.0f}s "
                    f"(last status: {status.get('status')})"
                )
            time.sleep(max(float(poll_seconds), 0.05))

"""Distributed search: master daemon, run database, workers and clients.

The master subsystem turns a single-process search into a supervised,
resumable, multi-process one:

* :mod:`repro.master.db` — the persistent run database (on-disk RID
  counter, submitted :class:`~repro.api.RunSpec`\\ s, status transitions,
  results) and the append-only per-run :class:`EpisodeJournal` that lets an
  interrupted search resume from its last completed batch bit-identically;
* :mod:`repro.master.protocol` — the length-prefixed JSON message framing
  every socket in the subsystem speaks;
* :mod:`repro.master.worker` — the worker subprocess entry point plus the
  ``distributed`` executor (registered in :data:`repro.core.EXECUTORS`)
  that spawns, feeds and watchdog-supervises those workers;
* :mod:`repro.master.scheduler` — the priority run queue with cancellation
  and the :class:`MasterServer` daemon driving it;
* :mod:`repro.master.client` — the client used by ``python -m repro
  submit/status/watch/cancel``.
"""

from .client import MasterClient, MasterError, MasterUnreachable, resolve_endpoint
from .db import (
    RUN_STATUSES,
    TERMINAL_STATUSES,
    EpisodeJournal,
    RunDatabase,
    StatusTransitionError,
)
from .protocol import ProtocolError, decode_payload, encode_payload, recv_message, send_message
from .scheduler import MasterConfig, MasterServer, RunScheduler
from .worker import DistributedExecutor, worker_main

__all__ = [
    "DistributedExecutor",
    "EpisodeJournal",
    "MasterClient",
    "MasterConfig",
    "MasterError",
    "MasterUnreachable",
    "MasterServer",
    "ProtocolError",
    "RUN_STATUSES",
    "RunDatabase",
    "RunScheduler",
    "StatusTransitionError",
    "TERMINAL_STATUSES",
    "decode_payload",
    "encode_payload",
    "recv_message",
    "resolve_endpoint",
    "send_message",
    "worker_main",
]

"""Worker subprocesses and the supervised ``distributed`` executor.

The worker side (``python -m repro.master.worker``) is deliberately dumb:
connect back to the executor that spawned it, authenticate with the session
token, then loop — receive a task frame, resolve the named module-level
function, run it on the decoded payload, send the result back.  A daemon
thread heartbeats over the same socket the whole time (numpy kernels
release the GIL, so heartbeats keep flowing while a task computes), which
is what lets the master side tell "busy" from "hung".

The master side, :class:`DistributedExecutor`, plugs into the
:data:`repro.core.EXECUTORS` registry so ``SearchConfig.executor =
"distributed"`` (or ``--executor distributed``) farms episode-batch
evaluations out to supervised subprocesses with **no structural change** to
:class:`~repro.core.MuffinSearch`:

* workers are spawned lazily on the first multi-task ``map`` and reused
  across batches;
* a watchdog kills workers whose heartbeat goes silent, and any worker
  death (crash, SIGKILL, hang) requeues its in-flight task onto a healthy
  worker — bounded by ``task_retries`` re-dispatches per task, after which
  an :class:`~repro.core.execution.ExecutorWorkerError` names the failed
  task;
* results always return in submission order, and every task is a pure
  function of its payload, so retries and worker churn can never change
  what a seeded search computes — only how long it takes.
"""

from __future__ import annotations

import os
import secrets
import select
import socket
import subprocess
import sys
import threading
import time
import traceback
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Sequence, TypeVar

from ..core.execution import ExecutorWorkerError, default_max_workers
from ..obs import DEFAULT_SECONDS_BUCKETS, METRICS, span
from ..utils.logging import RunLogger
from .protocol import ProtocolError, decode_payload, encode_payload, recv_message, send_message

T = TypeVar("T")
R = TypeVar("R")

#: Shares the executor metric family of :mod:`repro.core.execution`
#: (declarations are get-or-create, so identical schemas unify).
_TASKS_TOTAL = METRICS.counter(
    "repro_executor_tasks_total",
    "Tasks dispatched through executor.map, by executor.",
    labelnames=("executor",),
)
_MAP_SECONDS = METRICS.histogram(
    "repro_executor_map_seconds",
    "Wall time of one executor.map batch.",
    labelnames=("executor",),
)
_QUEUE_WAIT_SECONDS = METRICS.histogram(
    "repro_executor_queue_wait_seconds",
    "Time a task waited between submission and execution start.",
    labelnames=("executor",),
    buckets=DEFAULT_SECONDS_BUCKETS,
)
_SUPERVISION_TOTAL = METRICS.counter(
    "repro_distributed_supervision_total",
    "Supervision interventions of the distributed executor, by event "
    "(worker-restarted / task-requeued / heartbeat-missed).",
    labelnames=("event",),
)
_TASK_SHIP_BYTES = METRICS.counter(
    "repro_distributed_task_bytes_total",
    "Encoded task-frame bytes shipped to distributed workers.",
)


# ----------------------------------------------------------------------
# Worker subprocess side
# ----------------------------------------------------------------------
def _resolve_function(spec: str) -> Callable:
    """Resolve a ``module:qualname`` task-function reference."""
    import importlib

    module_name, _, qualname = spec.partition(":")
    if not module_name or not qualname:
        raise ProtocolError(f"malformed function reference '{spec}'")
    obj = importlib.import_module(module_name)
    for part in qualname.split("."):
        obj = getattr(obj, part)
    if not callable(obj):
        raise ProtocolError(f"'{spec}' is not callable")
    return obj


def _heartbeat_loop(
    sock: socket.socket, send_lock: threading.Lock, interval: float, stop: threading.Event
) -> None:
    # ``send_lock`` serialises socket writes with the main loop; holding it
    # across send_message is the lock's declared purpose (RL6 IO-lock idiom).
    while not stop.wait(interval):
        try:
            with send_lock:
                send_message(sock, {"type": "heartbeat", "pid": os.getpid()})
        except OSError:
            return  # connection gone; the main loop is exiting too


def worker_main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point of one worker subprocess (``python -m repro.master.worker``)."""
    import argparse

    parser = argparse.ArgumentParser(prog="python -m repro.master.worker")
    parser.add_argument("--connect", required=True, metavar="HOST:PORT")
    parser.add_argument("--token", required=True)
    parser.add_argument("--heartbeat-seconds", type=float, default=0.5)
    args = parser.parse_args(list(argv) if argv is not None else None)

    host, _, port = args.connect.rpartition(":")
    sock = socket.create_connection((host, int(port)), timeout=30.0)
    sock.settimeout(None)
    send_lock = threading.Lock()
    with send_lock:
        send_message(
            sock, {"type": "hello", "role": "worker", "token": args.token, "pid": os.getpid()}
        )
    welcome = recv_message(sock)
    if welcome is None or welcome.get("type") != "welcome":
        return 1

    stop = threading.Event()
    threading.Thread(
        target=_heartbeat_loop,
        args=(sock, send_lock, max(args.heartbeat_seconds, 0.05), stop),
        name="muffin-worker-heartbeat",
        daemon=True,
    ).start()
    try:
        while True:
            message = recv_message(sock)
            if message is None or message.get("type") == "shutdown":
                return 0
            if message.get("type") != "task":
                continue
            task_id = message.get("task_id")
            try:
                fn = _resolve_function(message["fn"])
                result = fn(decode_payload(message["payload"]))
                reply = {"type": "result", "task_id": task_id, "payload": encode_payload(result)}
            except BaseException as exc:  # report, don't die: the master decides what's fatal
                reply = {
                    "type": "task-error",
                    "task_id": task_id,
                    "error": f"{type(exc).__name__}: {exc}",
                    "traceback": traceback.format_exc(),
                }
            with send_lock:
                send_message(sock, reply)
    except (OSError, ProtocolError):
        return 1
    finally:
        stop.set()
        # Detach (never unlink) any shared-memory task arrays this worker
        # attached.  The master owns the segments, which is what keeps the
        # watchdog's SIGTERM/SIGKILL path safe too: a killed worker skips
        # this block, but its mappings die with the process and the
        # master-side registry still unlinks the segments on shutdown.
        from ..core.sharedmem import detach_all

        detach_all()
        try:
            sock.close()
        except OSError:
            pass


# ----------------------------------------------------------------------
# Self-test task functions (module-level so every executor can import them)
# ----------------------------------------------------------------------
def echo_task(payload: object) -> object:
    """Identity task used by the protocol self-tests and the quickstart."""
    return payload


def slow_echo_task(payload: Dict[str, object]) -> Dict[str, object]:
    """Echo after ``payload['sleep']`` seconds (worker-supervision tests)."""
    time.sleep(float(payload.get("sleep", 0.0)))
    return payload


def failing_task(payload: object) -> object:
    """Deterministically raise (error-propagation tests)."""
    raise ValueError(f"failing_task failed on purpose: {payload!r}")


def die_task(payload: object) -> object:
    """Kill the worker process abruptly (crash-supervision tests)."""
    os._exit(3)


# ----------------------------------------------------------------------
# Master side: the supervised executor
# ----------------------------------------------------------------------
@dataclass
class _WorkerHandle:
    """One spawned worker subprocess and its control connection."""

    process: subprocess.Popen
    conn: socket.socket
    pid: int
    last_heartbeat: float = field(default_factory=time.monotonic)
    #: index of the task this worker is computing (None = idle)
    task_index: Optional[int] = None

    def close(self) -> None:
        try:
            self.conn.close()
        except OSError:
            pass
        if self.process.poll() is None:
            self.process.terminate()
            try:
                self.process.wait(timeout=5.0)
            except subprocess.TimeoutExpired:
                self.process.kill()
                self.process.wait()


class DistributedExecutor:
    """Order-preserving ``map`` over watchdog-supervised worker subprocesses.

    Registered as ``'distributed'`` in :data:`repro.core.EXECUTORS`.  Task
    functions must be module-level (resolved by ``module:qualname`` in the
    worker); task payloads and results cross the wire via the lossless
    codec of :mod:`repro.master.protocol`, so seeded searches stay
    bit-identical to the ``serial`` executor.

    Not thread-safe: one ``map`` at a time, like the pooled executors.
    """

    name = "distributed"
    #: task payloads cross a process boundary (pickled over the socket), so
    #: the search ships large arrays as shared-memory descriptors instead
    ships_tasks_across_processes = True

    def __init__(
        self,
        max_workers: Optional[int] = None,
        task_retries: int = 2,
        heartbeat_seconds: float = 0.5,
        heartbeat_timeout: Optional[float] = None,
        spawn_timeout: float = 60.0,
        logger: Optional[RunLogger] = None,
    ) -> None:
        if max_workers is not None and max_workers <= 0:
            raise ValueError("max_workers must be positive (or None for auto)")
        if task_retries < 0:
            raise ValueError("task_retries must be non-negative")
        if heartbeat_seconds <= 0:
            raise ValueError("heartbeat_seconds must be positive")
        self.max_workers = max_workers or default_max_workers()
        self.task_retries = int(task_retries)
        self.heartbeat_seconds = float(heartbeat_seconds)
        # Workers heartbeat even while computing, so the timeout only needs
        # to absorb scheduling jitter — but a busy machine can stall a fresh
        # worker's interpreter start-up, hence the generous floor.
        self.heartbeat_timeout = (
            float(heartbeat_timeout)
            if heartbeat_timeout is not None
            else max(20 * heartbeat_seconds, 10.0)
        )
        self.spawn_timeout = float(spawn_timeout)
        self.logger = logger or RunLogger(name="muffin-distributed", verbose=False)
        self._listener: Optional[socket.socket] = None
        self._token = secrets.token_hex(16)
        self._workers: List[_WorkerHandle] = []
        self.worker_restarts = 0
        self.tasks_requeued = 0

    # ------------------------------------------------------------------
    # Worker lifecycle
    # ------------------------------------------------------------------
    def _ensure_listener(self) -> socket.socket:
        if self._listener is None:
            listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            listener.bind(("127.0.0.1", 0))
            listener.listen(self.max_workers + 4)
            self._listener = listener
        return self._listener

    def _spawn_worker(self) -> _WorkerHandle:
        listener = self._ensure_listener()
        port = listener.getsockname()[1]
        env = os.environ.copy()
        # Workers must import repro even when it is not installed (tests,
        # fresh checkouts): prepend this package's src directory.
        src_dir = str(Path(__file__).resolve().parent.parent.parent)
        existing = env.get("PYTHONPATH", "")
        env["PYTHONPATH"] = src_dir + (os.pathsep + existing if existing else "")
        # ``-c`` instead of ``-m repro.master.worker``: runpy would import
        # the package (whose __init__ imports .worker) before executing the
        # module as __main__, double-importing it with a warning.
        process = subprocess.Popen(
            [
                sys.executable,
                "-c",
                "from repro.master.worker import worker_main; raise SystemExit(worker_main())",
                "--connect",
                f"127.0.0.1:{port}",
                "--token",
                self._token,
                "--heartbeat-seconds",
                str(self.heartbeat_seconds),
            ],
            env=env,
            stdout=subprocess.DEVNULL,
        )
        deadline = time.monotonic() + self.spawn_timeout
        while True:
            listener.settimeout(max(deadline - time.monotonic(), 0.1))
            try:
                conn, _ = listener.accept()
            except socket.timeout:
                process.kill()
                process.wait()
                raise ExecutorWorkerError(
                    f"distributed worker (pid {process.pid}) did not connect within "
                    f"{self.spawn_timeout:.0f}s"
                )
            conn.settimeout(self.spawn_timeout)
            try:
                hello = recv_message(conn)
            except ProtocolError:
                conn.close()
                continue
            if hello is None or hello.get("type") != "hello" or hello.get("token") != self._token:
                conn.close()
                continue
            send_message(conn, {"type": "welcome"})
            conn.setblocking(False)
            return _WorkerHandle(
                process=process, conn=conn, pid=int(hello.get("pid", process.pid))
            )

    def _ensure_workers(self) -> None:
        while len(self._workers) < self.max_workers:
            self._workers.append(self._spawn_worker())

    def _replace_worker(self, worker: _WorkerHandle, reason: str) -> None:
        self.logger.event("worker-restarted", pid=worker.pid, reason=reason)
        _SUPERVISION_TOTAL.inc(event="worker-restarted")
        index = self._workers.index(worker)
        worker.close()
        self.worker_restarts += 1
        self._workers[index] = self._spawn_worker()

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> List[R]:
        items = list(items)
        with span("executor/map", executor=self.name, tasks=len(items)):
            start = time.perf_counter()
            results = self._map_supervised(fn, items)
            _TASKS_TOTAL.inc(len(items), executor=self.name)
            _MAP_SECONDS.observe(time.perf_counter() - start, executor=self.name)
            return results

    def _map_supervised(self, fn: Callable[[T], R], items: List[T]) -> List[R]:
        if len(items) <= 1 or self.max_workers == 1:
            return [fn(item) for item in items]
        fn_ref = f"{fn.__module__}:{fn.__qualname__}"
        self._ensure_workers()

        results: List[Optional[R]] = [None] * len(items)
        done = [False] * len(items)
        attempts = [0] * len(items)
        pending: List[int] = list(range(len(items)))
        remaining = len(items)
        # Queue wait = submission (map entry, or re-entry after a requeue)
        # to dispatch onto a worker; one clock, master-side only.
        enqueued_at = [time.perf_counter()] * len(items)

        def dispatch(worker: _WorkerHandle, index: int) -> None:
            attempts[index] += 1
            worker.task_index = index
            _QUEUE_WAIT_SECONDS.observe(
                time.perf_counter() - enqueued_at[index], executor=self.name
            )
            payload = encode_payload(items[index])
            _TASK_SHIP_BYTES.inc(len(payload))
            worker.conn.setblocking(True)
            try:
                send_message(
                    worker.conn,
                    {
                        "type": "task",
                        "task_id": index,
                        "fn": fn_ref,
                        "payload": payload,
                    },
                )
            finally:
                try:
                    worker.conn.setblocking(False)
                except OSError:
                    pass

        def requeue(worker: _WorkerHandle, reason: str) -> None:
            """Put a dead worker's in-flight task back on the queue (bounded)."""
            index = worker.task_index
            worker.task_index = None
            if index is None or done[index]:
                return
            self.tasks_requeued += 1
            self.logger.event("task-requeued", task=index, reason=reason)
            _SUPERVISION_TOTAL.inc(event="task-requeued")
            enqueued_at[index] = time.perf_counter()
            if attempts[index] > self.task_retries:
                raise ExecutorWorkerError(
                    f"distributed task {index} of {len(items)} was lost {attempts[index]} "
                    f"times (last worker {reason}); giving up after task_retries="
                    f"{self.task_retries} — rerun with --executor serial to debug"
                )
            pending.insert(0, index)

        def worker_died(worker: _WorkerHandle, reason: str) -> None:
            requeue(worker, reason)  # may raise after exhausted retries
            self._replace_worker(worker, reason)

        try:
            while remaining > 0:
                for worker in self._workers:
                    if not pending:
                        break
                    if worker.task_index is None:
                        index = pending.pop(0)
                        try:
                            dispatch(worker, index)
                        except OSError:
                            worker_died(worker, "connection lost on dispatch")

                readable, _, _ = select.select(
                    [worker.conn for worker in self._workers], [], [], 0.2
                )
                now = time.monotonic()
                for worker in list(self._workers):
                    if worker.conn in readable:
                        try:
                            worker.conn.setblocking(True)
                            message = recv_message(worker.conn)
                        except (ProtocolError, OSError):
                            message = None
                        finally:
                            try:
                                worker.conn.setblocking(False)
                            except OSError:
                                pass
                        if message is None:  # crash / SIGKILL / garbage on the wire
                            worker_died(worker, "connection lost")
                            continue
                        worker.last_heartbeat = now
                        kind = message.get("type")
                        if kind == "task-error":
                            index = int(message.get("task_id", -1))
                            worker.task_index = None
                            raise ExecutorWorkerError(
                                f"distributed task {index} of {len(items)} raised "
                                f"{message.get('error')} in worker pid {worker.pid}; "
                                f"remote traceback:\n{message.get('traceback', '')}"
                            )
                        if kind == "result":
                            index = int(message["task_id"])
                            results[index] = decode_payload(message["payload"])
                            if not done[index]:
                                done[index] = True
                                remaining -= 1
                            worker.task_index = None
                        continue  # heartbeats just refresh last_heartbeat
                    # Watchdog: only busy workers are expected to be talking.
                    if worker.task_index is not None:
                        dead = worker.process.poll() is not None
                        silent = now - worker.last_heartbeat > self.heartbeat_timeout
                        if dead or silent:
                            if silent and not dead:
                                self.logger.event(
                                    "heartbeat-missed",
                                    pid=worker.pid,
                                    silent_seconds=round(now - worker.last_heartbeat, 1),
                                )
                                _SUPERVISION_TOTAL.inc(event="heartbeat-missed")
                            worker_died(worker, "exited" if dead else "heartbeat missed")
        except BaseException:
            # A task error or exhausted retries leaves tasks in flight on
            # other workers; drop every busy or dead worker so a stale
            # result from this map can never bleed into the next one.
            alive = []
            for worker in self._workers:
                if worker.task_index is not None or worker.process.poll() is not None:
                    worker.close()
                else:
                    alive.append(worker)
            self._workers = alive
            raise
        return results  # type: ignore[return-value]

    # ------------------------------------------------------------------
    def shutdown(self) -> None:
        for worker in self._workers:
            try:
                worker.conn.setblocking(True)
                send_message(worker.conn, {"type": "shutdown"})
            except OSError:
                pass
            worker.close()
        self._workers = []
        if self._listener is not None:
            self._listener.close()
            self._listener = None

    def __enter__(self) -> "DistributedExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()


if __name__ == "__main__":
    raise SystemExit(worker_main())

"""Unified telemetry: metrics registry, hierarchical tracing, exposition.

``repro.obs`` is the one place the library measures itself.  It has two
halves — :mod:`repro.obs.metrics` (counters, gauges, fixed-bucket
histograms behind the process-wide :data:`METRICS` registry) and
:mod:`repro.obs.trace` (hierarchical :func:`span` regions written as
JSONL) — sharing the same ground rules: off by default and cheap when
off, monotonic clocks only for durations, no RNG access, and everything
hash-excluded from ``spec_hash()`` via ``ObsSpec``.  Results with
telemetry on and off are bit-identical, and the test suite enforces it.
"""

import contextlib
from typing import Iterator, Optional

from .metrics import (
    METRICS,
    Counter,
    Gauge,
    Histogram,
    LabelCardinalityError,
    MetricsError,
    MetricsRegistry,
    DEFAULT_LATENCY_BUCKETS_MS,
    DEFAULT_SECONDS_BUCKETS,
    DEFAULT_SIZE_BUCKETS,
)
from .trace import TraceWriter, active_writer, install, load_spans, render_tree, span, uninstall
from . import trace as _trace


@contextlib.contextmanager
def session(
    trace_path: Optional[str] = None, metrics_enabled: bool = False
) -> Iterator[None]:
    """Scope telemetry to one run: install a trace sink, flip the registry.

    This is what :class:`~repro.api.pipeline.MuffinPipeline` wraps around
    ``run()`` to honour the spec's ``obs`` section.  Previous state (an
    already-installed writer, the registry's enabled flag) is restored on
    exit, so nested sessions and test isolation behave.
    """
    previous_writer = _trace.active_writer()
    previous_enabled = METRICS.enabled
    writer: Optional[TraceWriter] = None
    if trace_path is not None:
        writer = TraceWriter(trace_path)
        _trace.install(writer)
    if metrics_enabled:
        METRICS.enable()
    try:
        yield
    finally:
        METRICS.enabled = previous_enabled
        if writer is not None:
            if previous_writer is not None:
                _trace.install(previous_writer)
            else:
                _trace.uninstall()
            writer.close()


__all__ = [
    "session",
    "METRICS",
    "Counter",
    "Gauge",
    "Histogram",
    "LabelCardinalityError",
    "MetricsError",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS_MS",
    "DEFAULT_SECONDS_BUCKETS",
    "DEFAULT_SIZE_BUCKETS",
    "TraceWriter",
    "active_writer",
    "install",
    "uninstall",
    "load_spans",
    "render_tree",
    "span",
]

"""Hierarchical tracing: ``span()`` context manager, JSONL sink, tree CLI.

A span measures one named region of work (``"pipeline/stage/search"``,
``"search/batch"``, ``"serve/batch"``) on the monotonic
``time.perf_counter()`` clock — never wall clock, so durations survive
NTP adjustments.  Nesting is tracked with a :mod:`contextvars` variable,
which makes parenthood follow the call stack in each thread and across
``contextvars.copy_context()`` boundaries.

Rows are append-only JSONL in the :class:`repro.utils.logging.RunLogger`
row shape — ``event`` key first, floats rounded, JSON-scalar values — so
trace files and run logs can share tooling::

    {"event": "span", "name": "search/batch", "span_id": 3, "parent_id": 1,
     "start_s": 0.1042, "duration_s": 0.0881, "batch": 2}

Spans are written at *exit*, so children precede their parents in the
file; :func:`build_tree` reorders by id.  ``python -m repro trace
<file>`` renders the tree with total and self (total minus children)
times.

Like the metrics layer, tracing is off by default and cheap when off:
:func:`span` reads one module attribute and yields immediately when no
writer is installed.  Span ids are sequential — the tracer never touches
RNG state.
"""

from __future__ import annotations

import contextlib
import contextvars
import io
import json
import sys
import threading
import time
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, TextIO

from ..analysis.runtime import register_shared_state, touch_shared_state

__all__ = [
    "TraceWriter",
    "span",
    "install",
    "uninstall",
    "active_writer",
    "load_spans",
    "build_tree",
    "render_tree",
    "main",
]

_parent_span = contextvars.ContextVar("repro_trace_parent", default=None)

#: The process-wide writer ``span()`` records into; ``None`` disables tracing.
_writer: Optional["TraceWriter"] = None


class TraceWriter:
    """Appends span rows as JSONL; thread-safe, ids sequential from 1."""

    def __init__(self, path_or_stream) -> None:
        if hasattr(path_or_stream, "write"):
            self._stream: TextIO = path_or_stream
            self._owns_stream = False
            self.path = getattr(path_or_stream, "name", "<stream>")
        else:
            self.path = str(path_or_stream)
            self._stream = open(self.path, "a", encoding="utf-8")
            self._owns_stream = True
        self._lock = threading.Lock()
        self._next_id = 1
        # Epoch on the monotonic clock: start_s is relative to writer creation.
        self._epoch = time.perf_counter()
        register_shared_state("obs-trace", self, lock=self._lock)

    def allocate_id(self) -> int:
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
            touch_shared_state("obs-trace", self)
            return span_id

    def write_row(self, row: Mapping[str, object]) -> None:
        line = json.dumps(row, sort_keys=False)
        with self._lock:
            self._stream.write(line + "\n")
            touch_shared_state("obs-trace", self)

    def flush(self) -> None:
        with self._lock:
            self._stream.flush()

    def close(self) -> None:
        with self._lock:
            self._stream.flush()
            if self._owns_stream:
                self._stream.close()

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def install(writer: TraceWriter) -> TraceWriter:
    """Make ``writer`` the process-wide span sink."""
    global _writer
    _writer = writer
    return writer


def uninstall() -> None:
    """Stop tracing; pending ``span()`` bodies still close cleanly."""
    global _writer
    if _writer is not None:
        _writer.flush()
    _writer = None


def active_writer() -> Optional[TraceWriter]:
    return _writer


@contextlib.contextmanager
def span(name: str, **attrs: object) -> Iterator[Optional[int]]:
    """Measure a named region; nests via the ambient context.

    No-op (one attribute read) when no writer is installed.  Attribute
    values must be JSON scalars; durations are recorded in seconds on the
    monotonic clock, rounded to microseconds.
    """
    writer = _writer
    if writer is None:
        yield None
        return
    span_id = writer.allocate_id()
    parent_id = _parent_span.get()
    token = _parent_span.set(span_id)
    start = time.perf_counter()
    try:
        yield span_id
    finally:
        duration = time.perf_counter() - start
        _parent_span.reset(token)
        row: Dict[str, object] = {
            "event": "span",
            "name": str(name),
            "span_id": span_id,
            "parent_id": parent_id,
            "start_s": round(start - writer._epoch, 6),
            "duration_s": round(duration, 6),
        }
        for key, value in attrs.items():
            row[key] = round(value, 6) if isinstance(value, float) else value
        # The writer installed at entry may have been uninstalled while the
        # body ran; fall back to it so the span is never silently dropped.
        (_writer or writer).write_row(row)


# ----------------------------------------------------------------------
# Reading and rendering
# ----------------------------------------------------------------------
def load_spans(path) -> List[Dict[str, object]]:
    """Parse a trace file, keeping only well-formed span rows."""
    rows: List[Dict[str, object]] = []
    if hasattr(path, "read"):
        stream = path
        lines = stream.read().splitlines()
    else:
        with open(path, "r", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
    for line in lines:
        line = line.strip()
        if not line:
            continue
        try:
            row = json.loads(line)
        except json.JSONDecodeError:
            continue
        if isinstance(row, dict) and row.get("event") == "span" and "span_id" in row:
            rows.append(row)
    return rows


def build_tree(rows: Sequence[Mapping[str, object]]) -> List[Dict[str, object]]:
    """Nest span rows into root nodes with ``children`` and ``self_s``.

    Orphans (parent id never written, e.g. a crashed run) are promoted to
    roots so the renderer never loses data.  Children are ordered by
    start time.
    """
    nodes: Dict[int, Dict[str, object]] = {}
    for row in rows:
        node = dict(row)
        node["children"] = []
        nodes[int(row["span_id"])] = node
    roots: List[Dict[str, object]] = []
    for node in nodes.values():
        parent_id = node.get("parent_id")
        parent = nodes.get(parent_id) if parent_id is not None else None
        if parent is None or parent is node:
            roots.append(node)
        else:
            parent["children"].append(node)

    def finalise(node: Dict[str, object]) -> None:
        children: List[Dict[str, object]] = node["children"]
        children.sort(key=lambda child: (child.get("start_s", 0.0), child["span_id"]))
        child_total = sum(float(child.get("duration_s", 0.0)) for child in children)
        node["self_s"] = max(0.0, float(node.get("duration_s", 0.0)) - child_total)
        for child in children:
            finalise(child)

    roots.sort(key=lambda node: (node.get("start_s", 0.0), node["span_id"]))
    for root in roots:
        finalise(root)
    return roots


_ROW_KEYS = {"event", "name", "span_id", "parent_id", "start_s", "duration_s", "children", "self_s"}


def render_tree(rows: Sequence[Mapping[str, object]]) -> str:
    """Plain-text span tree with total/self times and attributes."""
    roots = build_tree(rows)
    if not roots:
        return "(no spans)"
    out = io.StringIO()

    def emit(node: Mapping[str, object], depth: int) -> None:
        attrs = {k: v for k, v in node.items() if k not in _ROW_KEYS}
        attr_text = (
            "  " + " ".join(f"{k}={v}" for k, v in attrs.items()) if attrs else ""
        )
        indent = "  " * depth
        out.write(
            f"{indent}{node['name']}  total {float(node.get('duration_s', 0.0)):.6f}s"
            f"  self {float(node['self_s']):.6f}s{attr_text}\n"
        )
        for child in node["children"]:
            emit(child, depth + 1)

    for root in roots:
        emit(root, 0)
    return out.getvalue().rstrip("\n")


def main(argv: Optional[Sequence[str]] = None) -> int:
    """``python -m repro trace <file>`` — render a span tree."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro trace", description="Render a span trace file as a tree."
    )
    parser.add_argument("file", help="trace JSONL file written by TraceWriter")
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the nested tree as JSON instead of text",
    )
    args = parser.parse_args(argv)
    try:
        rows = load_spans(args.file)
    except OSError as exc:
        print(f"error: cannot read trace file: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(build_tree(rows), indent=2))
    else:
        count = len(rows)
        print(f"{args.file}: {count} span{'s' if count != 1 else ''}")
        print(render_tree(rows))
    return 0

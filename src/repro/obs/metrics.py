"""Process-wide metrics: counters, gauges, fixed-bucket histograms.

The telemetry layer mirrors the component registries of the rest of the
library: a :class:`MetricsRegistry` is a thin façade over
:class:`repro.registry.Registry`, so metric names get the same duplicate
detection and did-you-mean errors as controllers or executors.  Three
instrument kinds cover the pipeline, the executors, the master and the
serving tier:

* :class:`Counter` — monotonically increasing totals
  (``repro_serve_requests_total``).
* :class:`Gauge` — point-in-time values (``repro_serve_queue_depth``).
* :class:`Histogram` — fixed, deterministic bucket bounds with
  p50/p95/p99 summaries estimated by linear interpolation inside the
  matching bucket (``repro_serve_request_latency_ms``).

Design constraints, in force everywhere the library records telemetry:

* **Off by default, and cheap when off.**  Every mutation checks a single
  ``enabled`` attribute before touching any lock or dict — the disabled
  fast path is one attribute load and a branch, so instrumented hot loops
  stay bit-identical and benchmark-neutral when telemetry is off.
* **Never touches RNG state.**  No ``random``/``uuid`` anywhere in the
  observability layer; identifiers are sequential.
* **Hash-excluded.**  Telemetry settings ride in ``ObsSpec`` which, like
  ``execution`` and ``backend``, never enters ``spec_hash()``.
* **Bounded label cardinality.**  A metric rejects new label-value
  combinations past :data:`MAX_LABEL_SETS` with
  :class:`LabelCardinalityError`, so an unbounded label (user id, raw
  path) fails loudly instead of leaking memory.

Rendering is available as plain JSON (:meth:`MetricsRegistry.render_json`)
and as Prometheus text exposition format 0.0.4
(:meth:`MetricsRegistry.render_prometheus`), which backs the serving
tier's ``GET /metrics`` endpoint.
"""

from __future__ import annotations

import json
import threading
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..registry import Registry
from ..analysis.runtime import register_shared_state, touch_shared_state

__all__ = [
    "MetricsError",
    "LabelCardinalityError",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "METRICS",
    "DEFAULT_LATENCY_BUCKETS_MS",
    "DEFAULT_SIZE_BUCKETS",
    "DEFAULT_SECONDS_BUCKETS",
]

#: Default ceiling on distinct label-value combinations per metric.
MAX_LABEL_SETS = 64

#: Deterministic latency bounds (milliseconds), roughly log-spaced.
DEFAULT_LATENCY_BUCKETS_MS: Tuple[float, ...] = (
    0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0,
)

#: Deterministic count/size bounds (items, bytes/1024, batch sizes ...).
DEFAULT_SIZE_BUCKETS: Tuple[float, ...] = (
    1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0,
)

#: Deterministic duration bounds (seconds) for coarse phases.
DEFAULT_SECONDS_BUCKETS: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0,
)


class MetricsError(ValueError):
    """Invalid metric declaration or observation."""


class LabelCardinalityError(MetricsError):
    """A metric saw more distinct label-value sets than its ceiling allows.

    Raised instead of silently growing: an unbounded label value (request
    id, raw path, timestamp) would otherwise leak one series per value.
    """

    def __init__(self, metric: str, limit: int, labels: Mapping[str, str]):
        self.metric = metric
        self.limit = limit
        self.labels = dict(labels)
        super().__init__(
            f"metric '{metric}' exceeded its label-cardinality ceiling of "
            f"{limit} distinct label sets (rejected {self.labels}); label "
            "values must come from a bounded, enumerable set — move "
            "unbounded identifiers into span attributes instead"
        )


def _validate_labels(
    metric: str, labelnames: Tuple[str, ...], labels: Mapping[str, object]
) -> Tuple[str, ...]:
    if set(labels) != set(labelnames):
        raise MetricsError(
            f"metric '{metric}' declares labels {list(labelnames)} but was "
            f"observed with {sorted(labels)}"
        )
    return tuple(str(labels[name]) for name in labelnames)


class _Metric:
    """Shared plumbing: name, help text, label schema, series storage."""

    kind = "untyped"

    def __init__(
        self,
        name: str,
        help: str,
        labelnames: Sequence[str] = (),
        *,
        registry: "MetricsRegistry",
        max_label_sets: int = MAX_LABEL_SETS,
    ) -> None:
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self.max_label_sets = max_label_sets
        self._registry = registry
        self._series: Dict[Tuple[str, ...], object] = {}

    # The per-series payload; subclasses define the zero value.
    def _new_series(self) -> object:
        raise NotImplementedError

    def _series_for(self, labels: Mapping[str, object]) -> object:
        key = _validate_labels(self.name, self.labelnames, labels)
        series = self._series.get(key)
        if series is None:
            if len(self._series) >= self.max_label_sets:
                raise LabelCardinalityError(
                    self.name, self.max_label_sets, dict(zip(self.labelnames, key))
                )
            series = self._new_series()
            self._series[key] = series
        return series

    def series(self) -> List[Tuple[Dict[str, str], object]]:
        """Snapshot of ``(labels, payload)`` pairs in first-seen order."""
        with self._registry._lock:
            return [
                (dict(zip(self.labelnames, key)), _copy_payload(payload))
                for key, payload in self._series.items()
            ]


def _copy_payload(payload: object) -> object:
    if isinstance(payload, dict):
        copied = dict(payload)
        if isinstance(copied.get("buckets"), list):
            copied["buckets"] = list(copied["buckets"])
        return copied
    return payload


class Counter(_Metric):
    """A monotonically increasing total."""

    kind = "counter"

    def _new_series(self) -> object:
        return {"value": 0.0}

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        if not self._registry.enabled:
            return
        if amount < 0:
            raise MetricsError(f"counter '{self.name}' cannot decrease (got {amount})")
        with self._registry._lock:
            series = self._series_for(labels)
            series["value"] += amount
            touch_shared_state("obs-metrics", self._registry)

    def value(self, **labels: object) -> float:
        key = _validate_labels(self.name, self.labelnames, labels)
        with self._registry._lock:
            series = self._series.get(key)
            return float(series["value"]) if series else 0.0


class Gauge(_Metric):
    """A point-in-time value that can move both ways."""

    kind = "gauge"

    def _new_series(self) -> object:
        return {"value": 0.0}

    def set(self, value: float, **labels: object) -> None:
        if not self._registry.enabled:
            return
        with self._registry._lock:
            series = self._series_for(labels)
            series["value"] = float(value)
            touch_shared_state("obs-metrics", self._registry)

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        if not self._registry.enabled:
            return
        with self._registry._lock:
            series = self._series_for(labels)
            series["value"] += amount
            touch_shared_state("obs-metrics", self._registry)

    def dec(self, amount: float = 1.0, **labels: object) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: object) -> float:
        key = _validate_labels(self.name, self.labelnames, labels)
        with self._registry._lock:
            series = self._series.get(key)
            return float(series["value"]) if series else 0.0


class Histogram(_Metric):
    """Fixed-bucket histogram with interpolated quantile summaries.

    Bucket bounds are upper-inclusive (Prometheus ``le`` semantics) and an
    implicit ``+Inf`` bucket catches the tail.  Quantiles are estimated by
    locating the target rank's bucket and interpolating linearly between
    the bucket's bounds — deterministic given the same observations, and
    exact for observations sitting on a bound.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        labelnames: Sequence[str] = (),
        *,
        buckets: Sequence[float] = DEFAULT_SECONDS_BUCKETS,
        registry: "MetricsRegistry",
        max_label_sets: int = MAX_LABEL_SETS,
    ) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise MetricsError(f"histogram '{name}' needs at least one bucket bound")
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise MetricsError(
                f"histogram '{name}' bucket bounds must be strictly increasing: {bounds}"
            )
        super().__init__(
            name, help, labelnames, registry=registry, max_label_sets=max_label_sets
        )
        self.buckets = bounds

    def _new_series(self) -> object:
        # counts[i] pairs with buckets[i]; counts[-1] is the +Inf bucket.
        return {"buckets": [0] * (len(self.buckets) + 1), "sum": 0.0, "count": 0}

    def observe(self, value: float, **labels: object) -> None:
        if not self._registry.enabled:
            return
        value = float(value)
        with self._registry._lock:
            series = self._series_for(labels)
            index = len(self.buckets)
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    index = i
                    break
            series["buckets"][index] += 1
            series["sum"] += value
            series["count"] += 1
            touch_shared_state("obs-metrics", self._registry)

    def summary(self, **labels: object) -> Dict[str, object]:
        """``{count, sum, p50, p95, p99}``; quantiles are ``None`` when empty."""
        key = _validate_labels(self.name, self.labelnames, labels)
        with self._registry._lock:
            series = self._series.get(key)
            payload = _copy_payload(series) if series else None
        if payload is None or payload["count"] == 0:
            return {"count": 0, "sum": 0.0, "p50": None, "p95": None, "p99": None}
        return {
            "count": payload["count"],
            "sum": payload["sum"],
            "p50": self._quantile(payload, 0.50),
            "p95": self._quantile(payload, 0.95),
            "p99": self._quantile(payload, 0.99),
        }

    def _quantile(self, payload: Mapping[str, object], q: float) -> float:
        counts: List[int] = payload["buckets"]  # type: ignore[assignment]
        total: int = payload["count"]  # type: ignore[assignment]
        rank = q * total
        cumulative = 0
        for i, count in enumerate(counts):
            if count == 0:
                continue
            previous = cumulative
            cumulative += count
            if cumulative >= rank:
                if i >= len(self.buckets):
                    # +Inf bucket: no finite upper bound, report the last one.
                    return self.buckets[-1]
                upper = self.buckets[i]
                lower = self.buckets[i - 1] if i > 0 else 0.0
                fraction = (rank - previous) / count
                return lower + (upper - lower) * fraction
        return self.buckets[-1]  # pragma: no cover - rank <= total always hits


class MetricsRegistry:
    """The process-wide instrument table behind :data:`METRICS`.

    Wraps a :class:`repro.registry.Registry` so metric names inherit
    duplicate detection and fuzzy unknown-name errors, and guards all
    series mutation behind one lock whose discipline is declared to the
    REPRO_TSAN runtime checker.  ``counter()`` / ``gauge()`` /
    ``histogram()`` are get-or-create: a second declaration with the same
    name returns the existing instrument if the schema matches and raises
    :class:`MetricsError` if it does not.
    """

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        self._metrics: Registry[_Metric] = Registry("metric")
        self._lock = threading.Lock()
        register_shared_state("obs-metrics", self, lock=self._lock)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        """Drop all recorded series (declarations stay registered)."""
        with self._lock:
            for metric in self._metrics.values():
                metric._series.clear()
            touch_shared_state("obs-metrics", self)

    # ------------------------------------------------------------------
    # Declaration (get-or-create)
    # ------------------------------------------------------------------
    def counter(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Counter:
        return self._declare(Counter, name, help, labelnames)

    def gauge(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> Gauge:
        return self._declare(Gauge, name, help, labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_SECONDS_BUCKETS,
    ) -> Histogram:
        return self._declare(Histogram, name, help, labelnames, buckets=buckets)

    def _declare(self, cls, name: str, help: str, labelnames, **kwargs) -> _Metric:
        with self._lock:
            if name in self._metrics:
                existing = self._metrics.get(name)
                if not isinstance(existing, cls):
                    raise MetricsError(
                        f"metric '{name}' already registered as {existing.kind}, "
                        f"cannot redeclare as {cls.kind}"
                    )
                if existing.labelnames != tuple(labelnames):
                    raise MetricsError(
                        f"metric '{name}' already registered with labels "
                        f"{list(existing.labelnames)}, got {list(labelnames)}"
                    )
                wanted = kwargs.get("buckets")
                if wanted is not None and tuple(float(b) for b in wanted) != getattr(
                    existing, "buckets", None
                ):
                    raise MetricsError(
                        f"histogram '{name}' already registered with buckets "
                        f"{getattr(existing, 'buckets', ())}"
                    )
                return existing
            metric = cls(name, help, labelnames, registry=self, **kwargs)
            self._metrics.register(name, metric)
            return metric

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def get(self, name: str) -> _Metric:
        return self._metrics.get(name)

    def names(self) -> List[str]:
        return self._metrics.names()

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    # ------------------------------------------------------------------
    # Exposition
    # ------------------------------------------------------------------
    def render_json(self) -> Dict[str, object]:
        """``{metric: {type, help, series: [{labels, ...payload}]}}``."""
        document: Dict[str, object] = {}
        for name, metric in self._metrics.items():
            rows: List[Dict[str, object]] = []
            for labels, payload in metric.series():
                row: Dict[str, object] = {"labels": labels}
                if isinstance(metric, Histogram):
                    row["count"] = payload["count"]
                    row["sum"] = payload["sum"]
                    row["buckets"] = {
                        _format_bound(bound): count
                        for bound, count in _cumulative_buckets(metric, payload)
                    }
                else:
                    row["value"] = payload["value"]
                rows.append(row)
            document[name] = {"type": metric.kind, "help": metric.help, "series": rows}
        return document

    def render_prometheus(self) -> str:
        """Prometheus text exposition format 0.0.4."""
        lines: List[str] = []
        for name, metric in self._metrics.items():
            if metric.help:
                lines.append(f"# HELP {name} {metric.help}")
            lines.append(f"# TYPE {name} {metric.kind}")
            for labels, payload in metric.series():
                if isinstance(metric, Histogram):
                    for bound, count in _cumulative_buckets(metric, payload):
                        bucket_labels = dict(labels)
                        bucket_labels["le"] = _format_bound(bound)
                        lines.append(
                            f"{name}_bucket{_format_labels(bucket_labels)} {count}"
                        )
                    lines.append(
                        f"{name}_sum{_format_labels(labels)} {_format_value(payload['sum'])}"
                    )
                    lines.append(f"{name}_count{_format_labels(labels)} {payload['count']}")
                else:
                    lines.append(
                        f"{name}{_format_labels(labels)} {_format_value(payload['value'])}"
                    )
        return "\n".join(lines) + ("\n" if lines else "")


def _cumulative_buckets(
    metric: Histogram, payload: Mapping[str, object]
) -> Iterable[Tuple[float, int]]:
    cumulative = 0
    counts: List[int] = payload["buckets"]  # type: ignore[assignment]
    for bound, count in zip(metric.buckets, counts):
        cumulative += count
        yield bound, cumulative
    yield float("inf"), cumulative + counts[-1]


def _format_bound(bound: float) -> str:
    if bound == float("inf"):
        return "+Inf"
    return repr(bound) if bound != int(bound) else str(int(bound)) + ".0"


def _format_value(value: float) -> str:
    if value == int(value):
        return str(int(value)) + ".0"
    return repr(value)


def _format_labels(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    body = ",".join(f'{key}="{_escape(value)}"' for key, value in labels.items())
    return "{" + body + "}"


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


#: The process-wide registry every instrumented module declares against.
#: Disabled by default; ``ObsSpec(metrics_enabled=True)`` or
#: ``METRICS.enable()`` turns recording on.
METRICS = MetricsRegistry(enabled=False)


def render_json_string(registry: Optional[MetricsRegistry] = None) -> str:
    """Convenience: the JSON exposition serialised to a string."""
    return json.dumps((registry or METRICS).render_json(), indent=2, sort_keys=True)

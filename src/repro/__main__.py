"""Command-line entry point: ``python -m repro``.

Delegates to the experiment runner, so the package can regenerate the
paper's tables and figures directly::

    python -m repro fig1 table1 --scale fast --output-dir results/
"""

import sys

from .experiments.runner import main

if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))

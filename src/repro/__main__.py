"""Command-line entry point: ``python -m repro``.

Subcommand families:

* ``run <spec.json>`` — execute a declarative pipeline spec end to end with
  per-stage artifact caching (a repeated run resumes from cache)::

      python -m repro run examples/specs/quickstart.json
      python -m repro run spec.json --cache-dir .repro_cache/my-run --rerun-from search

* ``export <spec.json>`` — turn a finished (or resumable) run into a
  deployable fused-model bundle::

      python -m repro export examples/specs/quickstart.json --output muffin.json

* ``serve <artifact.json>`` — serve a bundle over HTTP with micro-batching
  and live fairness monitoring::

      python -m repro serve muffin.json --port 8000 --batch-window-ms 5 --max-batch 64

* ``master`` / ``submit`` / ``status`` / ``watch`` / ``cancel`` — the
  distributed-search daemon and its clients: a master owns a persistent run
  database and executes submitted specs in priority order on supervised
  worker subprocesses, with per-run episode journals making interrupted
  searches resume bit-identically::

      python -m repro master --db .repro_master
      python -m repro submit spec.json --priority 5
      python -m repro watch 1
      python -m repro cancel 1

* ``components`` — list every registered component (datasets, controllers,
  rewards, proxy builders, selection strategies, architectures, executors,
  backends, experiments); ``--check`` also audits registry consistency.

* ``bench`` — run the hot-path micro-benchmarks (head training, metrics
  engine) once per array backend and emit machine-readable records::

      python -m repro bench --json bench.json
      python -m repro bench --backend numpy-float32 --rounds 5

* ``trace`` — render a span trace file (written when a spec sets
  ``obs.trace_path``) as a tree with total/self times::

      python -m repro trace trace.jsonl
      python -m repro trace trace.jsonl --json

* ``lint`` — repo-specific static analysis (rules RL1-RL8: determinism,
  hash contract, executor safety, atomic persistence, registry consistency,
  lock hygiene, dtype discipline, telemetry discipline)::

      python -m repro lint
      python -m repro lint --format json --select RL1,RL4
      python -m repro lint --scope examples

Anything else is treated as experiment ids and delegated to the experiment
runner, preserving the historical interface::

    python -m repro fig1 table1 --scale fast --output-dir results/
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence


def _run_command(argv: Sequence[str]) -> int:
    import dataclasses

    from .api import MuffinPipeline, RunSpec, SpecError
    from .core import EXECUTORS
    from .utils.serialization import save_json

    parser = argparse.ArgumentParser(
        prog="python -m repro run",
        description="Execute a declarative Muffin pipeline spec",
    )
    parser.add_argument("spec", help="path to a RunSpec JSON file")
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="stage-artifact cache directory (default: .repro_cache/<name>-<hash>)",
    )
    parser.add_argument(
        "--no-cache", action="store_true", help="run fully in memory, persist nothing"
    )
    parser.add_argument(
        "--fresh", action="store_true", help="ignore cached stages and recompute everything"
    )
    parser.add_argument(
        "--rerun-from",
        default=None,
        metavar="STAGE",
        help="force this stage and everything after it to recompute",
    )
    parser.add_argument(
        "--executor",
        default=None,
        choices=EXECUTORS.names(),
        help="override the spec's candidate-evaluation executor "
        "(results are seed-identical across executors)",
    )
    parser.add_argument(
        "--max-workers",
        type=int,
        default=None,
        metavar="N",
        help="worker count for the thread/process executors (default: one per CPU core)",
    )
    parser.add_argument(
        "--no-memoize",
        action="store_true",
        help="disable the (candidate, seed) evaluation memo",
    )
    parser.add_argument(
        "--backend",
        default=None,
        metavar="NAME",
        help="override the spec's array backend for the fused hot paths "
        "('numpy-float64' is bit-identical; 'numpy-float32' runs float32 "
        "GEMMs under the documented tolerance contract)",
    )
    parser.add_argument(
        "--dtype",
        default=None,
        choices=("float64", "float32"),
        help="shorthand for --backend numpy-<dtype>",
    )
    parser.add_argument(
        "--no-fused",
        action="store_true",
        help="disable the fused head-training fast path (results are "
        "bit-identical either way; this forces the autograd reference loop)",
    )
    parser.add_argument(
        "--journal",
        default=None,
        metavar="PATH",
        help="append every completed episode batch to this journal file; an "
        "interrupted run resumes from it bit-identically",
    )
    parser.add_argument("--output", default=None, help="write the report JSON to this file")
    parser.add_argument("--quiet", action="store_true")
    args = parser.parse_args(list(argv))

    try:
        spec = RunSpec.from_json(args.spec)
        overrides = {}
        if args.executor is not None:
            overrides["executor"] = args.executor
        if args.max_workers is not None:
            overrides["max_workers"] = args.max_workers
        if args.no_memoize:
            overrides["memoize"] = False
        if args.no_fused:
            overrides["use_fused"] = False
        if args.journal is not None:
            overrides["journal"] = args.journal
        if overrides:
            # The execution section never enters stage hashes, so overriding
            # it keeps every cached artifact valid.
            spec.execution = dataclasses.replace(spec.execution, **overrides)
        if args.backend is not None and args.dtype is not None:
            raise SpecError("pass --backend or --dtype, not both")
        backend_name = args.backend or (f"numpy-{args.dtype}" if args.dtype else None)
        if backend_name is not None:
            # Like execution, the backend section is hash-excluded, so a
            # precision override also keeps every cached artifact valid.
            spec.backend = dataclasses.replace(spec.backend, name=backend_name)
    except SpecError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.no_cache:
        cache_dir = None
    elif args.cache_dir is not None:
        cache_dir = Path(args.cache_dir)
    else:
        cache_dir = MuffinPipeline.default_cache_dir(spec)

    from .core import SearchInterrupted
    from .utils.signals import GracefulShutdown

    try:
        with GracefulShutdown(note="draining the current episode batch") as shutdown:
            pipeline = MuffinPipeline(
                spec,
                cache_dir=cache_dir,
                verbose=not args.quiet,
                should_stop=shutdown.should_stop,
            )
            result = pipeline.run(resume=not args.fresh, rerun_from=args.rerun_from)
    except SearchInterrupted as exc:
        journal_hint = (
            f"; rerun with --journal {args.journal} to resume" if args.journal else ""
        )
        print(f"interrupted: {exc}{journal_hint}", file=sys.stderr)
        return 130
    except SpecError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.output is not None:
        save_json(result.report, args.output)
    if not args.quiet:
        muffin = result.muffin
        print(f"run '{spec.name}' ({spec.spec_hash()}) complete")
        for timing in result.timings:
            print(f"  {timing.stage:<10} {timing.status:<8} {timing.seconds:8.3f}s")
        stats = result.result.execution_stats
        if stats is not None:
            # A cache-hit search stage reports the stats stored with the
            # artifact, which may predate an --executor override.
            search_cached = any(
                t.stage == "search" and t.status == "cached" for t in result.timings
            )
            suffix = " [from cached search artifact]" if search_cached else ""
            print(
                f"search executor: {stats.executor} (workers={stats.max_workers}), "
                f"backend {stats.backend}, "
                f"memo {stats.memo_hits} hits / {stats.memo_misses} misses, "
                f"metrics {stats.metrics_seconds:.3f}s, "
                f"training {stats.train_seconds:.3f}s{suffix}"
            )
            if stats.task_bytes_raw:
                ratio = stats.task_bytes_raw / max(stats.task_bytes_shipped, 1)
                print(
                    f"task transport: {stats.task_bytes_shipped} bytes shipped "
                    f"(raw {stats.task_bytes_raw} bytes, {ratio:.1f}x saved via "
                    f"shared memory)"
                )
        if cache_dir is not None:
            print(f"cache: {cache_dir}")
        if muffin.test_evaluation is not None:
            unfairness = ", ".join(
                f"U({a})={u:.3f}" for a, u in muffin.test_evaluation.unfairness.items()
            )
            print(
                f"{muffin.name}: accuracy={muffin.test_evaluation.accuracy:.4f}, {unfairness}"
            )
    return 0


def _export_command(argv: Sequence[str]) -> int:
    from .api import MuffinPipeline, RunSpec, SpecError

    parser = argparse.ArgumentParser(
        prog="python -m repro export",
        description="Export a run's finalised Muffin-Net as a deployable serving bundle",
    )
    parser.add_argument("spec", help="path to a RunSpec JSON file")
    parser.add_argument(
        "--output",
        default=None,
        help="bundle destination (default: <run-name>-muffin.json)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="stage-artifact cache directory (default: .repro_cache/<name>-<hash>); "
        "a finished run's cache makes the export instant",
    )
    parser.add_argument(
        "--no-cache", action="store_true", help="run fully in memory, persist no stages"
    )
    parser.add_argument(
        "--fresh", action="store_true", help="ignore cached stages and recompute everything"
    )
    parser.add_argument(
        "--force", action="store_true", help="overwrite an existing output bundle"
    )
    parser.add_argument("--quiet", action="store_true")
    args = parser.parse_args(list(argv))

    try:
        spec = RunSpec.from_json(args.spec)
    except SpecError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if not spec.export.enabled:
        print("error: this spec disables the export stage (export.enabled)", file=sys.stderr)
        return 2
    if args.no_cache:
        cache_dir = None
    elif args.cache_dir is not None:
        cache_dir = Path(args.cache_dir)
    else:
        cache_dir = MuffinPipeline.default_cache_dir(spec)

    try:
        pipeline = MuffinPipeline(spec, cache_dir=cache_dir, verbose=not args.quiet)
        result = pipeline.run(resume=not args.fresh)
        output = Path(args.output or f"{spec.name}-muffin.json")
        path = result.save_artifact(output, overwrite=args.force)
    except (SpecError, FileExistsError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if not args.quiet:
        artifact = result.artifact
        members = [entry["label"] for entry in artifact["members"]]
        head = artifact["head"]
        print(f"exported '{artifact['name']}' -> {path}")
        print(f"  spec hash : {artifact['spec_hash']}")
        print(f"  body      : {members}")
        print(
            f"  head      : MLP{head['hidden_sizes']} ({head['activation']})"
        )
        schema = artifact["schema"]
        print(
            f"  schema    : {len(schema['component_keys'])} components x "
            f"{schema['feature_dim']} dims, classes={len(schema['class_names'])}, "
            f"attributes={schema['attribute_names']}"
        )
        print(f"serve it with: python -m repro serve {path} --port 8000")
    return 0


def _serve_command(argv: Sequence[str]) -> int:
    from .core import EXECUTORS
    from .serve import InferenceServer, ServeConfig, serve_forever
    from .zoo import load_fused_model

    parser = argparse.ArgumentParser(
        prog="python -m repro serve",
        description="Serve a fused-model bundle over HTTP with micro-batching "
        "and live fairness monitoring",
    )
    parser.add_argument("artifact", help="path to a bundle written by 'export'")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8000)
    parser.add_argument(
        "--batch-window-ms",
        type=float,
        default=5.0,
        help="how long the micro-batcher waits for more requests (default: 5)",
    )
    parser.add_argument(
        "--max-batch",
        type=int,
        default=64,
        help="maximum sample rows coalesced into one forward pass (default: 64)",
    )
    parser.add_argument(
        "--executor",
        default="serial",
        choices=EXECUTORS.names(),
        help="executor dispatching the independent body-member forwards",
    )
    parser.add_argument("--max-workers", type=int, default=None, metavar="N")
    parser.add_argument(
        "--monitor-window",
        type=int,
        default=512,
        help="sliding-window size of the online fairness monitor (default: 512)",
    )
    parser.add_argument(
        "--log-every",
        type=int,
        default=100,
        help="labelled samples between fairness log lines (0 disables; default: 100)",
    )
    parser.add_argument(
        "--backend",
        default=None,
        metavar="NAME",
        help="array backend for the feature batch ('numpy-float64' default; "
        "'numpy-float32' serves under the tolerance contract)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=1,
        metavar="N",
        help="independent micro-batcher shards over bit-identical model "
        "replicas (default: 1)",
    )
    parser.add_argument(
        "--queue-depth",
        type=int,
        default=128,
        metavar="N",
        help="bound of each shard's request queue; when every queue is full "
        "new requests are rejected with HTTP 429 (default: 128)",
    )
    parser.add_argument(
        "--deadline-ms",
        type=float,
        default=None,
        metavar="MS",
        help="default per-request deadline; expired requests are shed with "
        "HTTP 504 before their forward pass (default: none)",
    )
    parser.add_argument(
        "--fault-plan",
        default=None,
        metavar="JSON_OR_PATH",
        help="deterministic fault-injection plan (inline JSON or a .json "
        "path) for chaos testing the shard supervisor",
    )
    parser.add_argument("--quiet", action="store_true")
    args = parser.parse_args(list(argv))

    try:
        fused = load_fused_model(args.artifact)
        config = ServeConfig(
            batch_window_ms=args.batch_window_ms,
            max_batch=args.max_batch,
            executor=args.executor,
            max_workers=args.max_workers,
            monitor_window=args.monitor_window,
            log_every=args.log_every,
            num_shards=args.shards,
            queue_depth=args.queue_depth,
            default_deadline_ms=args.deadline_ms,
            fault_plan=args.fault_plan,
            **({"backend": args.backend} if args.backend else {}),
        )
        server = InferenceServer(fused, config, verbose=not args.quiet)
    except (OSError, ValueError, KeyError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    serve_forever(server, host=args.host, port=args.port, verbose=not args.quiet)
    return 0


def _master_command(argv: Sequence[str]) -> int:
    from .core import EXECUTORS
    from .master import MasterConfig, MasterServer
    from .utils.signals import GracefulShutdown

    parser = argparse.ArgumentParser(
        prog="python -m repro master",
        description="Run the distributed-search master daemon (persistent run "
        "database, priority queue, supervised workers)",
    )
    parser.add_argument(
        "--db",
        default=".repro_master",
        help="run-database root (specs, statuses, journals; default: .repro_master)",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port",
        type=int,
        default=0,
        help="client port (default: 0 = pick a free port, written to <db>/master.json)",
    )
    parser.add_argument(
        "--executor",
        default="distributed",
        choices=EXECUTORS.names(),
        help="executor applied to every run (default: distributed)",
    )
    parser.add_argument("--max-workers", type=int, default=None, metavar="N")
    parser.add_argument("--quiet", action="store_true")
    args = parser.parse_args(list(argv))

    server = MasterServer(
        MasterConfig(
            db_root=args.db,
            host=args.host,
            port=args.port,
            executor=args.executor,
            max_workers=args.max_workers,
            verbose=not args.quiet,
        )
    )
    with GracefulShutdown(note="draining the in-flight batch and requeueing") as shutdown:
        server.start()
        print(
            f"master listening on {server.host}:{server.port} (db: {args.db}) — "
            f"Ctrl-C to stop"
        )
        try:
            shutdown.stop_event.wait()
        finally:
            server.stop()
    return 0


def _client(args):
    """Build a MasterClient from the shared --db/--host/--port arguments."""
    from .master import MasterClient

    if args.host is not None and args.port is not None:
        return MasterClient(host=args.host, port=args.port)
    return MasterClient(db=args.db)


def _add_endpoint_arguments(parser) -> None:
    parser.add_argument(
        "--db",
        default=".repro_master",
        help="run-database root; the master's address is read from "
        "<db>/master.json (default: .repro_master)",
    )
    parser.add_argument("--host", default=None, help="master host (overrides --db discovery)")
    parser.add_argument("--port", type=int, default=None, help="master port")


def _submit_command(argv: Sequence[str]) -> int:
    from .api import SpecError
    from .master import MasterError

    parser = argparse.ArgumentParser(
        prog="python -m repro submit",
        description="Submit a run spec to a running master",
    )
    parser.add_argument("spec", help="path to a RunSpec JSON file")
    parser.add_argument(
        "--priority",
        type=int,
        default=0,
        help="queue priority (higher runs first; default: 0)",
    )
    _add_endpoint_arguments(parser)
    args = parser.parse_args(list(argv))
    try:
        rid = _client(args).submit(args.spec, priority=args.priority)
    except (MasterError, SpecError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"submitted run {rid} (priority {args.priority})")
    print(f"watch it with: python -m repro watch {rid} --db {args.db}")
    return 0


def _format_run_line(entry) -> str:
    rid = entry.get("rid", "?")
    status = entry.get("status", "?")
    name = entry.get("name", "")
    extra = ""
    journal = entry.get("journal") or {}
    if journal.get("episodes"):
        extra = f" [{journal['batches']} batches / {journal['episodes']} episodes journalled]"
    if entry.get("result_hash"):
        extra += f" result={entry['result_hash']}"
    if entry.get("error"):
        extra += f" error={entry['error']}"
    return f"  {rid:>5}  {status:<10} {name}{extra}"


def _status_command(argv: Sequence[str]) -> int:
    from .master import MasterError

    parser = argparse.ArgumentParser(
        prog="python -m repro status",
        description="Show the status of one run (or every run) on a master",
    )
    parser.add_argument("rid", nargs="?", type=int, default=None)
    _add_endpoint_arguments(parser)
    args = parser.parse_args(list(argv))
    try:
        client = _client(args)
        if args.rid is None:
            runs = client.status()
            if not runs:
                print("no runs submitted")
                return 0
            print(f"{'rid':>7}  {'status':<10} name")
            for entry in runs:
                print(_format_run_line(entry))
            return 0
        entry = client.status(args.rid)
    except MasterError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(_format_run_line(entry).strip())
    return 0


def _watch_command(argv: Sequence[str]) -> int:
    from .master import MasterError

    parser = argparse.ArgumentParser(
        prog="python -m repro watch",
        description="Follow a run until it reaches a terminal status",
    )
    parser.add_argument("rid", type=int)
    parser.add_argument("--poll", type=float, default=1.0, metavar="SECONDS")
    parser.add_argument("--timeout", type=float, default=None, metavar="SECONDS")
    _add_endpoint_arguments(parser)
    args = parser.parse_args(list(argv))

    last_line = [""]

    def on_progress(status) -> None:
        line = _format_run_line(status).strip()
        if line != last_line[0]:
            print(line, flush=True)
            last_line[0] = line

    try:
        final = _client(args).watch(
            args.rid, poll_seconds=args.poll, timeout=args.timeout, on_progress=on_progress
        )
    except MasterError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0 if final.get("status") == "done" else 1


def _cancel_command(argv: Sequence[str]) -> int:
    from .master import MasterError

    parser = argparse.ArgumentParser(
        prog="python -m repro cancel",
        description="Cancel a queued or running run",
    )
    parser.add_argument("rid", type=int)
    _add_endpoint_arguments(parser)
    args = parser.parse_args(list(argv))
    try:
        outcome = _client(args).cancel(args.rid)
    except MasterError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"run {outcome['rid']}: {outcome['outcome']}")
    return 0 if outcome["outcome"] in ("dequeued", "flagged") else 1


def _components_command(argv: Sequence[str]) -> int:
    from .analysis.registry_audit import audit_registries, registry_summary

    parser = argparse.ArgumentParser(
        prog="python -m repro components",
        description="List every registered pipeline component",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="also audit registry consistency (alias targets, case-twin "
        "names) and exit nonzero on problems",
    )
    args = parser.parse_args(list(argv))
    for family, names in registry_summary().items():
        print(f"{family} ({len(names)}):")
        for name, aliases in names.items():
            suffix = f" (aliases: {', '.join(aliases)})" if aliases else ""
            print(f"  {name}{suffix}")
    if args.check:
        issues = audit_registries(include_experiments=True)
        for issue in issues:
            line = f"problem: {issue.message}"
            if issue.hint:
                line += f"  [{issue.hint}]"
            print(line)
        if issues:
            return 1
        print("registries consistent")
    return 0


def _lint_command(argv: Sequence[str]) -> int:
    from .analysis.cli import main as lint_main

    return lint_main(argv)


def _bench_command(argv: Sequence[str]) -> int:
    from .bench import main as bench_main

    return bench_main(argv)


def _trace_command(argv: Sequence[str]) -> int:
    from .obs.trace import main as trace_main

    return trace_main(argv)


def main(argv: Optional[Sequence[str]] = None) -> int:
    argv = list(argv if argv is not None else sys.argv[1:])
    if argv and argv[0] == "run":
        return _run_command(argv[1:])
    if argv and argv[0] == "export":
        return _export_command(argv[1:])
    if argv and argv[0] == "serve":
        return _serve_command(argv[1:])
    if argv and argv[0] == "master":
        return _master_command(argv[1:])
    if argv and argv[0] == "submit":
        return _submit_command(argv[1:])
    if argv and argv[0] == "status":
        return _status_command(argv[1:])
    if argv and argv[0] == "watch":
        return _watch_command(argv[1:])
    if argv and argv[0] == "cancel":
        return _cancel_command(argv[1:])
    if argv and argv[0] == "components":
        return _components_command(argv[1:])
    if argv and argv[0] == "lint":
        return _lint_command(argv[1:])
    if argv and argv[0] == "bench":
        return _bench_command(argv[1:])
    if argv and argv[0] == "trace":
        return _trace_command(argv[1:])
    # Legacy interface: experiment ids for the paper harness.
    from .experiments.runner import main as experiments_main

    return experiments_main(argv)


if __name__ == "__main__":
    raise SystemExit(main())

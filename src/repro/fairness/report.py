"""Human-readable fairness reports.

Wraps :class:`~repro.fairness.metrics.FairnessEvaluation` objects with the
comparison logic the paper's tables use: relative fairness improvement
against a vanilla model (the "Age vs. Vil" / "Site vs. Vil." columns of
Table I) and accuracy improvement, plus text rendering.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from ..utils.logging import format_table
from .metrics import FairnessEvaluation


def relative_improvement(baseline: float, optimized: float) -> float:
    """Relative reduction of an unfairness score (positive = improvement).

    The paper quotes fairness improvements such as "26.32%" which correspond
    to ``(U_vanilla - U_muffin) / U_vanilla``.
    """
    if baseline <= 0:
        return 0.0
    return (baseline - optimized) / baseline


def accuracy_improvement(baseline: float, optimized: float) -> float:
    """Absolute accuracy gain in percentage points / fraction (paper's Acc.Imp.)."""
    return optimized - baseline


@dataclass
class ModelFairnessReport:
    """Evaluation of one model, optionally compared against a vanilla baseline."""

    model_name: str
    evaluation: FairnessEvaluation
    baseline: Optional[FairnessEvaluation] = None
    metadata: Dict[str, object] = field(default_factory=dict)

    def improvement(self, attribute: str) -> Optional[float]:
        """Relative unfairness improvement on ``attribute`` vs the baseline."""
        if self.baseline is None:
            return None
        return relative_improvement(
            self.baseline.unfairness[attribute], self.evaluation.unfairness[attribute]
        )

    def accuracy_gain(self) -> Optional[float]:
        """Absolute accuracy improvement vs the baseline."""
        if self.baseline is None:
            return None
        return accuracy_improvement(self.baseline.accuracy, self.evaluation.accuracy)

    def row(self) -> Dict[str, object]:
        """Flatten into a table row (used by Table I and EXPERIMENTS.md)."""
        row: Dict[str, object] = {"model": self.model_name, "accuracy": self.evaluation.accuracy}
        for attribute, score in self.evaluation.unfairness.items():
            row[f"U({attribute})"] = score
        row["U(multi)"] = self.evaluation.multi_dimensional_unfairness
        if self.baseline is not None:
            for attribute in self.evaluation.unfairness:
                improvement = self.improvement(attribute)
                row[f"imp({attribute})"] = improvement if improvement is not None else ""
            row["acc_imp"] = self.accuracy_gain()
        row.update(self.metadata)
        return row

    def to_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "model": self.model_name,
            "evaluation": self.evaluation.to_dict(),
            "metadata": dict(self.metadata),
        }
        if self.baseline is not None:
            payload["baseline"] = self.baseline.to_dict()
            payload["improvements"] = {
                attribute: self.improvement(attribute)
                for attribute in self.evaluation.unfairness
            }
            payload["accuracy_gain"] = self.accuracy_gain()
        return payload


@dataclass
class ComparisonReport:
    """A collection of model reports rendered as one comparison table."""

    title: str
    reports: List[ModelFairnessReport] = field(default_factory=list)

    def add(self, report: ModelFairnessReport) -> None:
        self.reports.append(report)

    def rows(self) -> List[Dict[str, object]]:
        return [report.row() for report in self.reports]

    def render(self, columns: Optional[Sequence[str]] = None) -> str:
        """Render the comparison as an aligned text table."""
        return format_table(self.rows(), columns=columns, title=self.title)

    def best_by(self, key: str, maximize: bool = True) -> ModelFairnessReport:
        """Return the report whose flattened row maximises/minimises ``key``."""
        if not self.reports:
            raise ValueError("comparison report is empty")
        rows = self.rows()
        values = [row.get(key) for row in rows]
        numeric = [(i, v) for i, v in enumerate(values) if isinstance(v, (int, float))]
        if not numeric:
            raise KeyError(f"no report defines numeric column '{key}'")
        index, _ = max(numeric, key=lambda iv: iv[1]) if maximize else min(
            numeric, key=lambda iv: iv[1]
        )
        return self.reports[index]

    def to_dict(self) -> Dict[str, object]:
        return {"title": self.title, "reports": [r.to_dict() for r in self.reports]}

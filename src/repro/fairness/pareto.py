"""Pareto-frontier utilities.

Figures 5 and 7 of the paper plot models in two objective planes —
(unfairness of attribute 1, unfairness of attribute 2) and
(overall unfairness, accuracy) — and compare the Pareto frontier of
Muffin-Nets against the frontier of the existing architectures.  These
helpers compute frontiers, dominance relations and hypervolume-style
summaries for arbitrary labelled points.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class ParetoPoint:
    """A named point in objective space.

    ``objectives`` maps objective name to value; ``minimize`` records, per
    objective, whether smaller is better (True for unfairness, False for
    accuracy).
    """

    name: str
    objectives: Mapping[str, float]
    minimize: Mapping[str, bool]

    def canonical(self, keys: Sequence[str]) -> Tuple[float, ...]:
        """Return objective values converted so that *smaller is better*."""
        values = []
        for key in keys:
            value = float(self.objectives[key])
            values.append(value if self.minimize.get(key, True) else -value)
        return tuple(values)


def make_point(
    name: str,
    objectives: Mapping[str, float],
    maximize: Sequence[str] = (),
) -> ParetoPoint:
    """Build a :class:`ParetoPoint`; objectives in ``maximize`` are maximised."""
    minimize = {key: key not in set(maximize) for key in objectives}
    return ParetoPoint(name=name, objectives=dict(objectives), minimize=minimize)


def resolve_objective_keys(
    points: Sequence[ParetoPoint], keys: Optional[Sequence[str]] = None
) -> List[str]:
    """Validate that every point defines the compared objectives.

    With ``keys=None`` the keys are taken from the first point — but only
    after checking that *all* points share exactly that objective set.
    Silently comparing points with mismatched objectives used to produce a
    wrong front (extra objectives ignored, missing ones a late
    ``KeyError``); now it fails up front with the offending point named.
    """
    if not points:
        return list(keys or [])
    if keys is None:
        reference = set(points[0].objectives)
        for point in points:
            if set(point.objectives) != reference:
                raise ValueError(
                    f"point '{point.name}' has objectives "
                    f"{sorted(point.objectives)} but '{points[0].name}' has "
                    f"{sorted(reference)}; all points must share one objective set "
                    "(or pass the keys to compare explicitly)"
                )
        return sorted(reference)
    keys = list(keys)
    for point in points:
        missing = set(keys) - set(point.objectives)
        if missing:
            raise ValueError(
                f"point '{point.name}' lacks compared objective(s) {sorted(missing)}; "
                f"it defines {sorted(point.objectives)}"
            )
    return keys


def dominates(a: ParetoPoint, b: ParetoPoint, keys: Optional[Sequence[str]] = None) -> bool:
    """True if ``a`` weakly dominates ``b`` and strictly improves one objective."""
    if keys is None:
        keys = sorted(a.objectives)
    if set(keys) - set(a.objectives) or set(keys) - set(b.objectives):
        raise KeyError("both points must define every compared objective")
    va, vb = a.canonical(keys), b.canonical(keys)
    not_worse = all(x <= y for x, y in zip(va, vb))
    strictly_better = any(x < y for x, y in zip(va, vb))
    return not_worse and strictly_better


def pareto_front(
    points: Sequence[ParetoPoint], keys: Optional[Sequence[str]] = None
) -> List[ParetoPoint]:
    """Return the non-dominated subset of ``points`` (stable order)."""
    if not points:
        return []
    keys = resolve_objective_keys(points, keys)
    front: List[ParetoPoint] = []
    for candidate in points:
        if any(dominates(other, candidate, keys) for other in points if other is not candidate):
            continue
        front.append(candidate)
    return front


def front_advancement(
    baseline: Sequence[ParetoPoint],
    challenger: Sequence[ParetoPoint],
    keys: Optional[Sequence[str]] = None,
) -> Dict[str, object]:
    """Quantify how far ``challenger`` pushes the frontier beyond ``baseline``.

    Reports how many challenger points are non-dominated by every baseline
    point, and how many baseline-front points are dominated by some
    challenger point — the two facts Figures 5 and 7 illustrate.
    """
    keys = resolve_objective_keys([*baseline, *challenger], keys)
    baseline_front = pareto_front(list(baseline), keys)
    challenger_front = pareto_front(list(challenger), keys)

    undominated_challengers = [
        point
        for point in challenger_front
        if not any(dominates(base, point, keys) for base in baseline)
    ]
    dominated_baseline = [
        base
        for base in baseline_front
        if any(dominates(point, base, keys) for point in challenger)
    ]
    return {
        "baseline_front": [p.name for p in baseline_front],
        "challenger_front": [p.name for p in challenger_front],
        "undominated_challengers": [p.name for p in undominated_challengers],
        "dominated_baseline": [p.name for p in dominated_baseline],
        "challenger_advances": len(undominated_challengers) > 0,
    }


def hypervolume_2d(
    points: Sequence[ParetoPoint],
    keys: Sequence[str],
    reference: Tuple[float, float],
) -> float:
    """Dominated hypervolume (area) of a 2-objective front w.r.t. ``reference``.

    Both objectives are converted to minimisation; the reference point must
    be given in the same converted space and be worse than every point.
    A larger hypervolume means a better front.
    """
    if len(keys) != 2:
        raise ValueError("hypervolume_2d needs exactly two objective keys")
    if not points:
        return 0.0
    front = pareto_front(list(points), keys)
    converted = sorted(p.canonical(keys) for p in front)
    ref_x, ref_y = reference
    area = 0.0
    previous_y = ref_y
    for x, y in converted:
        if x > ref_x or y > ref_y:
            raise ValueError("reference point must be worse than every front point")
        width = ref_x - x
        height = previous_y - y
        if height > 0:
            area += width * height
            previous_y = y
    return float(area)


def ideal_distance(point: ParetoPoint, keys: Sequence[str], ideal: Mapping[str, float]) -> float:
    """Euclidean distance from ``point`` to the 'ideal solution' marker."""
    deltas = []
    for key in keys:
        value = float(point.objectives[key])
        target = float(ideal[key])
        deltas.append(value - target)
    return float(np.sqrt(np.sum(np.square(deltas))))

"""Vectorized batch fairness evaluation.

The scalar helpers in :mod:`repro.fairness.metrics` score one model on one
attribute at a time, rebuilding group masks and looping over groups in
Python.  Every layer of the reproduction — the search reward, the figures,
the baselines — funnels through them, so with the candidate-evaluation
engine parallelised the metric loop became the dominant serial cost per
episode.

:class:`EvaluationEngine` replaces the loop with a handful of array ops.
For a stacked predictions matrix ``(num_candidates, num_samples)`` and a
precomputed :class:`~repro.data.groups.GroupIndexBank` it computes, for
*all* candidates and *all* attributes at once:

* overall accuracy — one exact correctness sum per candidate;
* per-group accuracy — one matmul of the correctness matrix against the
  bank's one-hot membership matrix (all attributes share it);
* the paper's Eq. 1 L1 unfairness score and the max-min accuracy gap;
* Eq. 3 rewards (via :meth:`rewards` or
  :meth:`~repro.core.reward.MultiFairnessReward.compute_batch`).

All results are **bit-identical** to the scalar loop: correctness counts
are exact integers in float64, divisions happen in the same order, and the
per-attribute unfairness sum accumulates group deviations sequentially in
spec order exactly as the scalar ``sum()`` did.  Empty groups inherit the
overall accuracy (zero deviation), matching the scalar fallback.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..data.attributes import AttributeSpec
from ..data.groups import GroupIndexBank
from .metrics import FairnessEvaluation

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.backend import ArrayBackend
    from ..data.dataset import FairnessDataset


def _resolve_backend(backend) -> "ArrayBackend":
    # Deferred import: ``repro.core`` imports this module (via the search),
    # so a module-level ``core.backend`` import would be circular.
    from ..core.backend import get_backend

    return get_backend(backend)


@dataclass
class BatchEvaluation:
    """Fairness metrics of a whole candidate batch, as aligned arrays.

    ``accuracy`` has shape ``(num_candidates,)``; ``group_accuracy`` maps
    each attribute to ``(num_candidates, num_groups)``; ``unfairness`` and
    ``gaps`` map each attribute to ``(num_candidates,)``.  Use
    :meth:`evaluation` / :meth:`evaluations` to materialise scalar
    :class:`~repro.fairness.metrics.FairnessEvaluation` objects with values
    bit-identical to the legacy per-model loop.
    """

    attributes: Tuple[str, ...]
    specs: Dict[str, AttributeSpec]
    accuracy: np.ndarray
    group_accuracy: Dict[str, np.ndarray] = field(default_factory=dict)
    unfairness: Dict[str, np.ndarray] = field(default_factory=dict)
    gaps: Dict[str, np.ndarray] = field(default_factory=dict)

    def __len__(self) -> int:
        return int(self.accuracy.shape[0])

    def __iter__(self) -> Iterator[FairnessEvaluation]:
        return (self.evaluation(i) for i in range(len(self)))

    def unfairness_matrix(self) -> np.ndarray:
        """Per-attribute unfairness stacked as ``(num_candidates, num_attributes)``."""
        return np.stack([self.unfairness[name] for name in self.attributes], axis=1)

    def multi_dimensional_unfairness(self) -> np.ndarray:
        """Equation 1 per candidate: the sum of per-attribute unfairness scores."""
        total = np.zeros(len(self), dtype=np.float64)
        for name in self.attributes:
            total = total + self.unfairness[name]
        return total

    def evaluation(self, index: int) -> FairnessEvaluation:
        """The ``index``-th candidate as a scalar :class:`FairnessEvaluation`."""
        group_accuracy: Dict[str, Dict[str, float]] = {}
        for name in self.attributes:
            groups = self.specs[name].groups
            row = self.group_accuracy[name][index]
            group_accuracy[name] = {group: float(row[g]) for g, group in enumerate(groups)}
        return FairnessEvaluation(
            accuracy=float(self.accuracy[index]),
            unfairness={name: float(self.unfairness[name][index]) for name in self.attributes},
            group_accuracy=group_accuracy,
            gaps={name: float(self.gaps[name][index]) for name in self.attributes},
        )

    def evaluations(self) -> List[FairnessEvaluation]:
        """All candidates as scalar evaluations (batch order preserved)."""
        return [self.evaluation(i) for i in range(len(self))]


#: Engines memoised per dataset object (weak keys: caching never extends a
#: dataset's lifetime), keyed by the attribute selection.
_DATASET_ENGINES: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


class EvaluationEngine:
    """Scores stacked candidate predictions against one fixed sample set."""

    def __init__(
        self,
        labels: np.ndarray,
        bank: GroupIndexBank,
        attributes: Optional[Sequence[str]] = None,
        backend: Optional[object] = None,
    ) -> None:
        labels = np.asarray(labels)  # repro-lint: disable=RL7 — dtype inspected before the int64 cast below
        if labels.dtype == np.object_ or np.issubdtype(labels.dtype, np.complexfloating):
            raise ValueError(f"labels must be integer-valued, got dtype {labels.dtype}")
        if np.issubdtype(labels.dtype, np.floating):
            if labels.size and not np.array_equal(labels, np.trunc(labels)):
                raise ValueError(
                    f"labels of dtype {labels.dtype} carry fractional values; "
                    "pass integer class labels (int32/int64) or integral floats"
                )
        self.labels = labels.astype(np.int64, copy=False)
        self.backend = _resolve_backend(backend)
        #: compute-dtype copy of the bank's membership matrix, built lazily
        #: (the identity backend uses the bank's float64 matrix directly)
        self._membership_compute: Optional[np.ndarray] = None
        if self.labels.ndim != 1:
            raise ValueError("labels must be a 1-D array")
        if self.labels.shape[0] != bank.num_samples:
            raise ValueError(
                f"labels have {self.labels.shape[0]} samples but the bank indexes "
                f"{bank.num_samples}"
            )
        names = tuple(attributes) if attributes is not None else bank.attribute_names
        unknown = [name for name in names if name not in bank.specs]
        if unknown:
            raise ValueError(
                f"unknown attribute(s) {unknown}; bank has {list(bank.attribute_names)}"
            )
        # An empty selection is a legal accuracy-only evaluation (the scalar
        # path always supported ``attributes=[]``); the bank is kept whole
        # and simply never consulted.
        self.bank = bank.subset(names) if names and names != bank.attribute_names else bank
        self.attributes: Tuple[str, ...] = names

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def for_dataset(
        cls,
        dataset: "FairnessDataset",
        attributes: Optional[Sequence[str]] = None,
        backend: Optional[object] = None,
    ) -> "EvaluationEngine":
        """Engine over ``dataset`` (memoised per dataset, attributes and backend).

        The underlying :class:`GroupIndexBank` is the dataset's cached bank,
        so repeated evaluations on the same partition — every controller
        batch of a search, every figure over the test split — share one set
        of membership matrices.
        """
        names = tuple(attributes) if attributes is not None else dataset.attributes.names
        resolved = _resolve_backend(backend)
        key = (names, resolved.name)
        per_dataset: Dict[Tuple, EvaluationEngine] = _DATASET_ENGINES.setdefault(
            dataset, {}
        )
        engine = per_dataset.get(key)
        if engine is None:
            for name in names:
                dataset.attributes[name]  # KeyError with the available names
            if names:
                engine = cls(dataset.labels, dataset.group_index_bank(names), backend=resolved)
            else:  # accuracy-only evaluation over the dataset's full bank
                engine = cls(
                    dataset.labels, dataset.group_index_bank(), attributes=(), backend=resolved
                )
            per_dataset[key] = engine
        return engine

    @classmethod
    def from_arrays(
        cls,
        labels: np.ndarray,
        group_ids: Mapping[str, np.ndarray],
        specs: Mapping[str, AttributeSpec],
    ) -> "EvaluationEngine":
        """Engine over raw arrays (the scalar wrappers' entry point)."""
        return cls(labels, GroupIndexBank(group_ids, specs))

    # ------------------------------------------------------------------
    @property
    def num_samples(self) -> int:
        return self.bank.num_samples

    def restrict(self, indices: np.ndarray) -> "EvaluationEngine":
        """Engine over the sample subset ``indices`` (bank slice memoised)."""
        indices = np.asarray(indices, dtype=np.int64)
        return EvaluationEngine(
            self.labels[indices], self.bank.slice(indices), self.attributes,
            backend=self.backend,
        )

    def _membership(self) -> np.ndarray:
        """The bank's membership matrix in the backend's compute dtype.

        The identity backend reads the bank's float64 matrix directly (no
        copy, no cast — bit-identity); mixed-precision backends cache one
        compute-dtype copy per engine.
        """
        if self.backend.is_identity:
            return self.bank.membership
        if self._membership_compute is None:
            self._membership_compute = self.bank.membership.astype(
                self.backend.compute_dtype
            )
        return self._membership_compute

    # ------------------------------------------------------------------
    # Batched metrics
    # ------------------------------------------------------------------
    def _as_batch(self, predictions: np.ndarray) -> np.ndarray:
        """Normalise input to a hard-prediction matrix ``(C, num_samples)``.

        Accepts ``(num_samples,)`` hard predictions, a stacked
        ``(num_candidates, num_samples)`` matrix, or a probability/logit
        tensor ``(num_candidates, num_samples, num_classes)`` (argmaxed once
        for the whole batch).  Probability tensors may be any real float
        dtype (float32 serving outputs included); *hard* predictions must be
        integer-valued — a float matrix with fractional entries is almost
        certainly a probability tensor missing its class axis, and silently
        truncating it would corrupt every metric, so it is rejected.
        """
        array = np.asarray(predictions)  # repro-lint: disable=RL7 — dtype inspected below, argmax/int casts follow
        if array.dtype == np.object_ or np.issubdtype(array.dtype, np.complexfloating):
            raise ValueError(
                f"predictions must be real-valued arrays, got dtype {array.dtype}"
            )
        if array.ndim == 3:
            array = array.argmax(axis=-1)
        elif array.ndim == 1:
            array = array[None, :]
        if array.ndim != 2 or array.shape[1] != self.num_samples:
            raise ValueError(
                f"expected predictions of shape (num_candidates, {self.num_samples}), "
                f"got {np.asarray(predictions).shape}"  # repro-lint: disable=RL7 — shape probe for the error message, no numeric result
            )
        if np.issubdtype(array.dtype, np.floating):
            if array.size and not np.array_equal(array, np.trunc(array)):
                raise ValueError(
                    f"hard predictions of dtype {array.dtype} carry fractional "
                    "values; pass integer class labels, or a 3-D "
                    "(num_candidates, num_samples, num_classes) probability "
                    "tensor to be argmaxed"
                )
        return array.astype(np.int64, copy=False)

    def accuracies(self, predictions: np.ndarray) -> np.ndarray:
        """Overall accuracy per candidate, ``(num_candidates,)``."""
        batch = self._as_batch(predictions)
        if self.num_samples == 0:
            return np.zeros(batch.shape[0], dtype=np.float64)
        correct = (batch == self.labels[None, :]).astype(self.backend.compute_dtype)
        # Float64 accumulation either way: on float64 input this is numpy's
        # plain pairwise sum (identical bits to the pre-backend code).
        return correct.sum(axis=1, dtype=np.float64) / self.num_samples

    def evaluate(self, predictions: np.ndarray) -> BatchEvaluation:
        """Score every candidate on every attribute in a handful of array ops."""
        batch = self._as_batch(predictions)
        num_candidates = batch.shape[0]
        correct = (batch == self.labels[None, :]).astype(self.backend.compute_dtype)
        if self.num_samples:
            # Boolean sums are exact integer counts accumulated in float64,
            # so this is bitwise the scalar ``(preds == labels).mean()``
            # under the identity backend — and still exact under float32
            # compute, because the accumulator stays float64.
            accuracy = correct.sum(axis=1, dtype=np.float64) / self.num_samples
        else:
            accuracy = np.zeros(num_candidates, dtype=np.float64)

        # One matmul yields every per-group correct count for every
        # candidate and attribute (columns are the bank's group blocks).
        # This is the backend's GEMM: float32 operands under mixed
        # precision — the products are 0/1 and every partial sum is an
        # integer below 2^24, so the counts remain exact — then everything
        # downstream (divisions, deviations) accumulates in float64.
        if self.attributes:
            group_correct = self.backend.matmul(correct, self._membership())
            group_correct = group_correct.astype(np.float64, copy=False)
        else:
            group_correct = None

        group_accuracy: Dict[str, np.ndarray] = {}
        unfairness: Dict[str, np.ndarray] = {}
        gaps: Dict[str, np.ndarray] = {}
        for name in self.attributes:
            block = self.bank.slices[name]
            counts = self.bank.counts[block]
            present = counts > 0
            safe_counts = np.where(present, counts, 1.0)
            per_group = group_correct[:, block] / safe_counts[None, :]
            # Empty groups inherit the overall accuracy: zero deviation,
            # exactly the scalar fallback.
            per_group = np.where(present[None, :], per_group, accuracy[:, None])
            group_accuracy[name] = per_group

            # Sequential accumulation over groups in spec order keeps the
            # floating-point addition order of the scalar ``sum()``.
            deviation = np.zeros(num_candidates, dtype=np.float64)
            for g in range(per_group.shape[1]):
                deviation = deviation + np.abs(per_group[:, g] - accuracy)
            unfairness[name] = deviation
            gaps[name] = per_group.max(axis=1) - per_group.min(axis=1)

        return BatchEvaluation(
            attributes=self.attributes,
            specs={name: self.bank.specs[name] for name in self.attributes},
            accuracy=accuracy,
            group_accuracy=group_accuracy,
            unfairness=unfairness,
            gaps=gaps,
        )

    def rewards(
        self,
        batch: BatchEvaluation,
        attributes: Optional[Sequence[str]] = None,
        epsilon: float = 1e-6,
    ) -> np.ndarray:
        """Equation 3 per candidate: ``sum_k A / max(U_{a_k}, epsilon)``.

        Mirrors :meth:`FairnessEvaluation.reward` (same default epsilon,
        same sequential accumulation order over attributes).
        """
        names = tuple(attributes) if attributes is not None else batch.attributes
        unknown = [name for name in names if name not in batch.unfairness]
        if unknown:
            raise ValueError(
                f"unknown attribute(s) {unknown}; batch has {list(batch.attributes)}"
            )
        totals = np.zeros(len(batch), dtype=np.float64)
        for name in names:
            totals = totals + batch.accuracy / np.maximum(batch.unfairness[name], epsilon)
        return totals

    def __repr__(self) -> str:
        return (
            f"EvaluationEngine(n={self.num_samples}, "
            f"attributes={list(self.attributes)})"
        )

"""Fairness metrics, the vectorized batch-evaluation engine,
Pareto-frontier tools and report objects."""

from .engine import BatchEvaluation, EvaluationEngine
from .metrics import (
    FairnessEvaluation,
    accuracy_gap,
    disagreement_breakdown,
    evaluate_predictions,
    group_accuracies,
    multi_dimensional_unfairness,
    overall_accuracy,
    unfairness_score,
)
from .pareto import (
    ParetoPoint,
    dominates,
    front_advancement,
    hypervolume_2d,
    ideal_distance,
    make_point,
    pareto_front,
    resolve_objective_keys,
)
from .report import (
    ComparisonReport,
    ModelFairnessReport,
    accuracy_improvement,
    relative_improvement,
)

__all__ = [
    "BatchEvaluation",
    "EvaluationEngine",
    "FairnessEvaluation",
    "overall_accuracy",
    "group_accuracies",
    "unfairness_score",
    "accuracy_gap",
    "evaluate_predictions",
    "multi_dimensional_unfairness",
    "disagreement_breakdown",
    "ParetoPoint",
    "make_point",
    "dominates",
    "pareto_front",
    "front_advancement",
    "resolve_objective_keys",
    "hypervolume_2d",
    "ideal_distance",
    "ModelFairnessReport",
    "ComparisonReport",
    "relative_improvement",
    "accuracy_improvement",
]

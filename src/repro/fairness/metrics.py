"""Fairness metrics used throughout the paper.

The paper's unfairness score for a model ``f'`` on dataset ``D`` and
attribute ``a_k`` is the L1 norm of the per-group accuracy deviations from
the overall accuracy:

``U(f', D)_{a_k} = sum_g | A(f', D_g)_{a_k} - A(f', D)_{a_k} |``

and the multi-dimensional unfairness score is the sum of the per-attribute
scores (Equation 1).  All functions below operate on *predictions* (or
logits), labels and the dataset's group ids, so they are agnostic to how the
model was produced (a single zoo model, a baseline-optimized model or a
fused Muffin-Net).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Sequence, Union

import numpy as np

from ..data.attributes import AttributeSpec
from ..data.dataset import FairnessDataset


def _as_predictions(predictions_or_logits: np.ndarray) -> np.ndarray:
    """Accept either hard predictions ``(N,)`` or logits ``(N, C)``."""
    array = np.asarray(predictions_or_logits)
    if array.ndim == 2:
        return array.argmax(axis=-1)
    if array.ndim == 1:
        return array.astype(np.int64)
    raise ValueError("expected predictions of shape (N,) or logits of shape (N, C)")


def overall_accuracy(predictions_or_logits: np.ndarray, labels: np.ndarray) -> float:
    """Fraction of correctly classified samples."""
    predictions = _as_predictions(predictions_or_logits)
    labels = np.asarray(labels, dtype=np.int64)
    if predictions.shape != labels.shape:
        raise ValueError("predictions and labels must have the same length")
    if labels.size == 0:
        return 0.0
    return float((predictions == labels).mean())


def _single_attribute_batch(
    predictions_or_logits: np.ndarray,
    labels: np.ndarray,
    group_ids: np.ndarray,
    spec: AttributeSpec,
):
    """Shared engine entry point of the single-attribute scalar wrappers.

    Group ids are validated against ``spec`` by the engine's index bank:
    out-of-range ids used to fall silently into no group mask (skewing
    every per-group accuracy) and now raise a ``ValueError``.
    """
    from .engine import EvaluationEngine

    predictions = _as_predictions(predictions_or_logits)
    labels = np.asarray(labels, dtype=np.int64)
    group_ids = np.asarray(group_ids, dtype=np.int64)
    if not (predictions.shape == labels.shape == group_ids.shape):
        raise ValueError("predictions, labels and group_ids must share their shape")
    engine = EvaluationEngine.from_arrays(labels, {spec.name: group_ids}, {spec.name: spec})
    return engine.evaluate(predictions)


def group_accuracies(
    predictions_or_logits: np.ndarray,
    labels: np.ndarray,
    group_ids: np.ndarray,
    spec: AttributeSpec,
) -> Dict[str, float]:
    """Per-group accuracy for one sensitive attribute.

    Empty groups are reported with the overall accuracy so they neither
    reward nor penalise the unfairness score (they contribute 0 deviation),
    matching how a group absent from a test split should be treated.
    Thin wrapper over :class:`~repro.fairness.engine.EvaluationEngine`
    (bit-identical to the original per-group mask loop).
    """
    batch = _single_attribute_batch(predictions_or_logits, labels, group_ids, spec)
    row = batch.group_accuracy[spec.name][0]
    return {group: float(row[index]) for index, group in enumerate(spec.groups)}


def unfairness_score(
    predictions_or_logits: np.ndarray,
    labels: np.ndarray,
    group_ids: np.ndarray,
    spec: AttributeSpec,
) -> float:
    """The paper's L1 unfairness score for a single attribute."""
    batch = _single_attribute_batch(predictions_or_logits, labels, group_ids, spec)
    return float(batch.unfairness[spec.name][0])


def accuracy_gap(
    predictions_or_logits: np.ndarray,
    labels: np.ndarray,
    group_ids: np.ndarray,
    spec: AttributeSpec,
) -> float:
    """Max-minus-min per-group accuracy (the "accuracy gap" quoted in Obs. 1)."""
    batch = _single_attribute_batch(predictions_or_logits, labels, group_ids, spec)
    return float(batch.gaps[spec.name][0])


@dataclass
class FairnessEvaluation:
    """Complete fairness evaluation of one model on one dataset.

    Attributes
    ----------
    accuracy:
        Overall test accuracy ``A(f', D)``.
    unfairness:
        Per-attribute unfairness score ``U(f', D)_{a_k}``.
    group_accuracy:
        Per-attribute, per-group accuracy (drives Figures 6 and 8).
    gaps:
        Per-attribute max-min accuracy gap.
    """

    accuracy: float
    unfairness: Dict[str, float] = field(default_factory=dict)
    group_accuracy: Dict[str, Dict[str, float]] = field(default_factory=dict)
    gaps: Dict[str, float] = field(default_factory=dict)

    @property
    def multi_dimensional_unfairness(self) -> float:
        """Equation 1: the sum of per-attribute unfairness scores."""
        return float(sum(self.unfairness.values()))

    def reward(self, attributes: Optional[Sequence[str]] = None, epsilon: float = 1e-6) -> float:
        """Equation 3: ``sum_k A / U_{a_k}`` over the selected attributes."""
        names = list(attributes) if attributes is not None else list(self.unfairness)
        unknown = [name for name in names if name not in self.unfairness]
        if unknown:
            raise ValueError(
                f"unknown attribute(s) {unknown}; evaluation has unfairness scores "
                f"for {list(self.unfairness)}"
            )
        return float(
            sum(self.accuracy / max(self.unfairness[name], epsilon) for name in names)
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "accuracy": self.accuracy,
            "unfairness": dict(self.unfairness),
            "multi_dimensional_unfairness": self.multi_dimensional_unfairness,
            "group_accuracy": {k: dict(v) for k, v in self.group_accuracy.items()},
            "gaps": dict(self.gaps),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "FairnessEvaluation":
        """Rebuild an evaluation serialised by :meth:`to_dict`."""
        return cls(
            accuracy=float(payload["accuracy"]),
            unfairness={k: float(v) for k, v in payload.get("unfairness", {}).items()},
            group_accuracy={
                attr: {g: float(a) for g, a in groups.items()}
                for attr, groups in payload.get("group_accuracy", {}).items()
            },
            gaps={k: float(v) for k, v in payload.get("gaps", {}).items()},
        )


def evaluate_predictions(
    predictions_or_logits: np.ndarray,
    dataset: FairnessDataset,
    attributes: Optional[Sequence[str]] = None,
) -> FairnessEvaluation:
    """Evaluate predictions on every (or the selected) sensitive attribute.

    Thin wrapper over :meth:`EvaluationEngine.for_dataset
    <repro.fairness.engine.EvaluationEngine.for_dataset>` — the engine (and
    the dataset's cached group-index bank) is shared across calls, and
    results are bit-identical to the original per-attribute loop.  Callers
    scoring many models on the same dataset should stack their predictions
    and call :meth:`EvaluationEngine.evaluate` once instead.
    """
    from .engine import EvaluationEngine

    names = tuple(attributes) if attributes is not None else dataset.attributes.names
    predictions = _as_predictions(predictions_or_logits)
    if predictions.shape != dataset.labels.shape:
        raise ValueError("predictions and labels must have the same length")
    engine = EvaluationEngine.for_dataset(dataset, names)
    return engine.evaluate(predictions).evaluation(0)


def multi_dimensional_unfairness(evaluation: FairnessEvaluation) -> float:
    """Convenience alias for Equation 1 on an existing evaluation."""
    return evaluation.multi_dimensional_unfairness


def disagreement_breakdown(
    predictions_a: np.ndarray,
    predictions_b: np.ndarray,
    labels: np.ndarray,
    mask: Optional[np.ndarray] = None,
) -> Dict[str, float]:
    """Figure 3's 00/01/10/11 decomposition for a pair of models.

    Returns the fraction of samples (within ``mask`` if given) where:

    * ``"00"`` — both models are wrong;
    * ``"01"`` — model A is correct, model B is wrong;
    * ``"10"`` — model B is correct, model A is wrong;
    * ``"11"`` — both models are correct.

    Also reports ``"disagreement"`` (01 + 10) and ``"oracle"`` (01 + 10 + 11),
    the accuracy an ideal arbiter could reach by always picking a correct
    model when one exists.
    """
    pred_a = _as_predictions(predictions_a)
    pred_b = _as_predictions(predictions_b)
    labels = np.asarray(labels, dtype=np.int64)
    if mask is not None:
        mask = np.asarray(mask, dtype=bool)
        pred_a, pred_b, labels = pred_a[mask], pred_b[mask], labels[mask]
    if labels.size == 0:
        return {"00": 0.0, "01": 0.0, "10": 0.0, "11": 0.0, "disagreement": 0.0, "oracle": 0.0}

    correct_a = pred_a == labels
    correct_b = pred_b == labels
    both_wrong = float((~correct_a & ~correct_b).mean())
    only_a = float((correct_a & ~correct_b).mean())
    only_b = float((~correct_a & correct_b).mean())
    both_right = float((correct_a & correct_b).mean())
    return {
        "00": both_wrong,
        "01": only_a,
        "10": only_b,
        "11": both_right,
        "disagreement": only_a + only_b,
        "oracle": only_a + only_b + both_right,
    }

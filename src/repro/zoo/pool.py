"""The model pool: a collection of trained off-the-shelf models.

The "muffin body" selects models from this pool (Figure 4, component ①).
``ModelPool`` owns the construction and training of every pool member on a
given dataset split, caches their test-set predictions (the backbones are
frozen, so predictions never change), and exposes the evaluation /
Pareto-point helpers the experiments use.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence

import numpy as np

from ..data.dataset import FairnessDataset
from ..data.splits import DataSplit
from ..fairness.metrics import FairnessEvaluation
from ..fairness.pareto import ParetoPoint, make_point
from ..utils.rng import derive_seeds
from .architectures import default_pool_names, get_architecture
from .model import ZooModel
from .training import TrainConfig, TrainResult, train_model


class ModelPool:
    """Builds, trains and serves a pool of off-the-shelf models."""

    def __init__(
        self,
        split: DataSplit,
        architecture_names: Optional[Sequence[str]] = None,
        train_config: Optional[TrainConfig] = None,
        seed: int = 0,
    ) -> None:
        self.split = split
        self.train_config = train_config or TrainConfig()
        self.architecture_names = (
            list(architecture_names) if architecture_names is not None else default_pool_names()
        )
        if not self.architecture_names:
            raise ValueError("the model pool needs at least one architecture")
        self.seed = seed
        self._models: Dict[str, ZooModel] = {}
        self._train_results: Dict[str, TrainResult] = {}
        self._prediction_cache: Dict[str, Dict[str, np.ndarray]] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def build(self, verbose: bool = False) -> "ModelPool":
        """Instantiate and train every architecture in the pool."""
        dataset = self.split.train
        seeds = derive_seeds(self.seed, len(self.architecture_names))
        for name, model_seed in zip(self.architecture_names, seeds):
            spec = get_architecture(name)
            model = ZooModel(
                spec,
                feature_dim=dataset.feature_dim,
                num_classes=dataset.num_classes,
                seed=model_seed,
            )
            config = self.train_config
            if verbose:
                print(f"[pool] training {spec.name} ({spec.num_parameters:,} parameters)")
            self._train_results[spec.name] = train_model(
                model, self.split.train, self.split.val, config
            )
            self._models[spec.name] = model
        return self

    def add_model(self, model: ZooModel, train_result: Optional[TrainResult] = None) -> None:
        """Add an externally trained model (e.g. a baseline-optimized one)."""
        if not model.is_trained:
            raise ValueError("only trained models can join the pool")
        self._models[model.label] = model
        if train_result is not None:
            self._train_results[model.label] = train_result
        self._prediction_cache.pop(model.label, None)

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    @property
    def names(self) -> List[str]:
        return list(self._models)

    def __len__(self) -> int:
        return len(self._models)

    def __iter__(self) -> Iterator[ZooModel]:
        return iter(self._models.values())

    def __contains__(self, name: str) -> bool:
        return name in self._models

    def get(self, name: str) -> ZooModel:
        """Return the pool model named ``name`` (accepts paper aliases)."""
        if name in self._models:
            return self._models[name]
        canonical = get_architecture(name).name
        try:
            return self._models[canonical]
        except KeyError as exc:
            raise KeyError(
                f"model '{name}' is not in the pool; available: {self.names}"
            ) from exc

    def models(self, names: Optional[Sequence[str]] = None) -> List[ZooModel]:
        """Return the selected models (or all of them)."""
        if names is None:
            return list(self._models.values())
        return [self.get(name) for name in names]

    def train_result(self, name: str) -> TrainResult:
        return self._train_results[self.get(name).label]

    # ------------------------------------------------------------------
    # Cached prediction / evaluation
    # ------------------------------------------------------------------
    def _cache_for(self, model: ZooModel) -> Dict[str, np.ndarray]:
        cache = self._prediction_cache.setdefault(model.label, {})
        return cache

    def predict_proba(self, name: str, partition: str = "test") -> np.ndarray:
        """Cached class probabilities of one model on a split partition."""
        model = self.get(name)
        dataset = self.partition(partition)
        cache = self._cache_for(model)
        key = f"proba:{partition}"
        if key not in cache:
            cache[key] = model.predict_proba(dataset)
        return cache[key]

    def predict(self, name: str, partition: str = "test") -> np.ndarray:
        """Cached hard predictions of one model on a split partition."""
        return self.predict_proba(name, partition).argmax(axis=-1)

    def partition(self, name: str) -> FairnessDataset:
        """Return one of the split partitions by name."""
        try:
            return {"train": self.split.train, "val": self.split.val, "test": self.split.test}[name]
        except KeyError as exc:
            raise KeyError("partition must be one of 'train', 'val', 'test'") from exc

    def evaluate(
        self,
        name: str,
        partition: str = "test",
        attributes: Optional[Sequence[str]] = None,
    ) -> FairnessEvaluation:
        """Fairness evaluation of one pool model on a partition."""
        model = self.get(name)
        dataset = self.partition(partition)
        from ..fairness.metrics import evaluate_predictions

        return evaluate_predictions(self.predict(model.label, partition), dataset, attributes)

    def evaluate_all(
        self,
        partition: str = "test",
        attributes: Optional[Sequence[str]] = None,
    ) -> Dict[str, FairnessEvaluation]:
        """Fairness evaluation of every pool model.

        All models are scored in one call of the vectorized
        :class:`~repro.fairness.engine.EvaluationEngine`: their cached hard
        predictions are stacked into a ``(num_models, N)`` matrix and every
        attribute's metrics come out of a handful of array ops —
        bit-identical to evaluating each model separately.
        """
        from ..fairness.engine import EvaluationEngine

        names = self.names
        if not names:
            return {}
        dataset = self.partition(partition)
        engine = EvaluationEngine.for_dataset(dataset, attributes)
        stacked = np.stack([self.predict(name, partition) for name in names])
        batch = engine.evaluate(stacked)
        return {name: batch.evaluation(index) for index, name in enumerate(names)}

    # ------------------------------------------------------------------
    # Pareto helpers (Figures 1, 5 and 7)
    # ------------------------------------------------------------------
    def pareto_points(
        self,
        attributes: Sequence[str],
        partition: str = "test",
        include_accuracy: bool = False,
    ) -> List[ParetoPoint]:
        """Each pool model as a point in unfairness(-and-accuracy) space."""
        points: List[ParetoPoint] = []
        for name, evaluation in self.evaluate_all(partition, attributes).items():
            objectives: Dict[str, float] = {
                f"U({attr})": evaluation.unfairness[attr] for attr in attributes
            }
            maximize: List[str] = []
            if include_accuracy:
                objectives["accuracy"] = evaluation.accuracy
                maximize.append("accuracy")
            points.append(make_point(name, objectives, maximize=maximize))
        return points

    def summary(self, partition: str = "test") -> List[Dict[str, object]]:
        """One row per model: parameters, accuracy and unfairness scores."""
        rows = []
        for name, evaluation in self.evaluate_all(partition).items():
            model = self.get(name)
            row: Dict[str, object] = {
                "model": name,
                "parameters": model.num_parameters,
                "accuracy": evaluation.accuracy,
            }
            for attr, value in evaluation.unfairness.items():
                row[f"U({attr})"] = value
            rows.append(row)
        return rows

"""Training loop for the classifier heads of zoo models.

The paper trains every competitor "from scratch with the same
hyper-parameters" — SGD, learning rate 0.1 with a 0.9 decay every 20 steps.
The simulated backbones are frozen, so only the softmax head is optimised
here.  The trainer also supports the two single-attribute baselines:

* per-sample weights (cost-sensitive variant of Method D);
* the fair-regularized loss of Method L, which needs the group ids of the
  attribute being optimised.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from .. import nn
from ..data.dataset import FairnessDataset
from ..utils.rng import get_rng
from .model import ZooModel


@dataclass
class TrainConfig:
    """Hyper-parameters of head training.

    The defaults mirror the paper's recipe scaled down to the numpy
    substrate: the paper uses lr=0.1 decayed by 0.9 every 20 steps, batch 64
    and 500 epochs on a GPU cluster; the synthetic task converges in a few
    dozen epochs.
    """

    epochs: int = 60
    batch_size: int = 128
    lr: float = 0.1
    lr_decay: float = 0.9
    lr_decay_every: int = 20
    momentum: float = 0.9
    weight_decay: float = 1e-4
    optimizer: str = "sgd"
    label_smoothing: float = 0.0
    #: weight of the group-disparity penalty when ``fair_attribute`` is set
    fairness_weight: float = 0.0
    #: attribute whose groups the fair loss regularises (Method L)
    fair_attribute: Optional[str] = None
    seed: int = 0
    verbose: bool = False


@dataclass
class TrainResult:
    """Loss / accuracy curves recorded during training."""

    losses: List[float] = field(default_factory=list)
    train_accuracy: List[float] = field(default_factory=list)
    val_accuracy: List[float] = field(default_factory=list)
    final_lr: float = 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "losses": list(self.losses),
            "train_accuracy": list(self.train_accuracy),
            "val_accuracy": list(self.val_accuracy),
            "final_lr": self.final_lr,
        }


def _make_optimizer(model: ZooModel, config: TrainConfig) -> nn.Optimizer:
    params = list(model.head.parameters())
    if config.optimizer == "sgd":
        return nn.SGD(
            params,
            lr=config.lr,
            momentum=config.momentum,
            weight_decay=config.weight_decay,
        )
    if config.optimizer == "adam":
        return nn.Adam(params, lr=config.lr, weight_decay=config.weight_decay)
    raise ValueError(f"unknown optimizer '{config.optimizer}'; expected 'sgd' or 'adam'")


def train_model(
    model: ZooModel,
    train_set: FairnessDataset,
    val_set: Optional[FairnessDataset] = None,
    config: Optional[TrainConfig] = None,
    sample_weights: Optional[np.ndarray] = None,
) -> TrainResult:
    """Train the classifier head of ``model`` on ``train_set``.

    Parameters
    ----------
    sample_weights:
        Optional per-sample weights for cost-sensitive training (used by the
        weighted variant of the data-balancing baseline).
    """
    config = config or TrainConfig()
    rng = get_rng(config.seed)
    result = TrainResult()

    # The backbone is frozen: extract features once.
    train_features = model.features(train_set)
    val_features = model.features(val_set) if val_set is not None else None

    if sample_weights is not None:
        sample_weights = np.asarray(sample_weights, dtype=np.float64)
        if sample_weights.shape != (len(train_set),):
            raise ValueError("sample_weights must have one entry per training sample")

    fair_loss: Optional[nn.FairRegularizedLoss] = None
    fair_groups: Optional[np.ndarray] = None
    if config.fair_attribute is not None:
        fair_loss = nn.FairRegularizedLoss(fairness_weight=config.fairness_weight)
        fair_groups = train_set.group_ids(config.fair_attribute)

    ce_loss = nn.CrossEntropyLoss(label_smoothing=config.label_smoothing)
    optimizer = _make_optimizer(model, config)
    scheduler = nn.StepLR(optimizer, step_size=config.lr_decay_every, gamma=config.lr_decay)

    for _epoch in range(config.epochs):
        epoch_losses = []
        for batch, weights in train_set.iter_batches(
            config.batch_size, train_features, shuffle=True, rng=rng, sample_weights=sample_weights
        ):
            logits = model.head(nn.Tensor(batch.features))
            if fair_loss is not None and fair_groups is not None:
                loss = fair_loss(logits, batch.labels, fair_groups[batch.indices])
            else:
                loss = ce_loss(logits, batch.labels, sample_weights=weights)
            model.head.zero_grad()
            loss.backward()
            optimizer.step()
            epoch_losses.append(loss.item())

        result.losses.append(float(np.mean(epoch_losses)))
        train_logits = model.head(nn.Tensor(train_features)).data
        result.train_accuracy.append(nn.functional.accuracy(train_logits, train_set.labels))
        if val_features is not None and val_set is not None:
            val_logits = model.head(nn.Tensor(val_features)).data
            result.val_accuracy.append(nn.functional.accuracy(val_logits, val_set.labels))
        result.final_lr = scheduler.step()

        if config.verbose:
            val_msg = (
                f", val_acc={result.val_accuracy[-1]:.4f}" if result.val_accuracy else ""
            )
            print(
                f"[{model.label}] epoch {_epoch + 1}/{config.epochs} "
                f"loss={result.losses[-1]:.4f} train_acc={result.train_accuracy[-1]:.4f}{val_msg}"
            )

    model.training_history["loss"].extend(result.losses)
    model.training_history["accuracy"].extend(result.train_accuracy)
    model.is_trained = True
    return result

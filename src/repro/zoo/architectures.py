"""Registry of the off-the-shelf architectures used by the paper.

The paper's model pool contains ten ImageNet-style CNNs (Figure 1 / Figure 4):
two ShuffleNetV2 variants, three MobileNet variants, two DenseNets and three
ResNets.  Each entry here records:

* ``num_parameters`` — the parameter count the paper reasons about (Table I
  quotes ShuffleNet_V2_X1_0 = 1,261,804 and MobileNet_V3_Small = 1,526,056;
  the remaining counts follow the standard torchvision models with an
  8-class head);
* ``capacity`` — the width of the simulated backbone's random feature layer;
  larger capacity yields higher accuracy, mirroring the accuracy ordering of
  small vs. large models in Table I;
* ``sensitivity`` — per-attribute robustness profile in ``[0, 1]``:
  how much of an attribute's distortion component leaks into the backbone's
  features.  Architectures with different profiles end up unfair on
  different attributes, which reproduces the rank disagreement of Figure 1(c)
  (DenseNet121 best on site, ResNet-18 best on age) and gives the model
  diversity Muffin exploits.

The profiles are *calibrated inputs to the simulation*, not claims about the
real CNNs; see DESIGN.md for the substitution rationale.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from ..registry import Registry


@dataclass(frozen=True)
class ArchitectureSpec:
    """Static description of one off-the-shelf architecture."""

    name: str
    family: str
    num_parameters: int
    capacity: int
    sensitivity: Mapping[str, float] = field(default_factory=dict)
    #: relative gain applied to the class-signal component (models with
    #: better features extract the diagnostic signal more cleanly)
    signal_gain: float = 1.0
    #: default sensitivity for attributes not listed explicitly
    default_sensitivity: float = 0.5

    def __post_init__(self) -> None:
        if self.num_parameters <= 0:
            raise ValueError("num_parameters must be positive")
        if self.capacity <= 0:
            raise ValueError("capacity must be positive")
        for attribute, value in self.sensitivity.items():
            if not 0.0 <= float(value) <= 1.5:
                raise ValueError(
                    f"sensitivity of '{attribute}' for {self.name} must be in [0, 1.5]"
                )

    def sensitivity_for(self, attribute: str) -> float:
        """Sensitivity of this architecture to one attribute's distortion."""
        return float(self.sensitivity.get(attribute, self.default_sensitivity))

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "family": self.family,
            "num_parameters": self.num_parameters,
            "capacity": self.capacity,
            "signal_gain": self.signal_gain,
            "sensitivity": dict(self.sensitivity),
        }


def _spec(
    name: str,
    family: str,
    params: int,
    capacity: int,
    signal_gain: float,
    age: float,
    site: float,
    gender: float,
    skin_tone: float,
    type_: float,
) -> ArchitectureSpec:
    return ArchitectureSpec(
        name=name,
        family=family,
        num_parameters=params,
        capacity=capacity,
        signal_gain=signal_gain,
        sensitivity={
            "age": age,
            "site": site,
            "gender": gender,
            "skin_tone": skin_tone,
            "type": type_,
        },
    )


#: The ten architectures of the paper's ISIC2019 model pool (Figure 1).
#: Short display aliases follow the paper: S_V2_X0_5, M_V3_Small, D121, R-18...
ARCHITECTURES: Tuple[ArchitectureSpec, ...] = (
    _spec("ShuffleNet_V2_X0_5", "ShuffleNet", 827_052, 36, 0.95, 0.82, 0.80, 0.55, 0.90, 0.80),
    _spec("ShuffleNet_V2_X1_0", "ShuffleNet", 1_261_804, 40, 0.96, 0.70, 0.78, 0.50, 0.84, 0.74),
    _spec("MobileNet_V3_Small", "MobileNet", 1_526_056, 40, 0.96, 0.78, 0.72, 0.52, 0.86, 0.70),
    _spec("MobileNet_V2", "MobileNet", 2_236_682, 44, 0.98, 0.68, 0.68, 0.48, 0.78, 0.66),
    _spec("MobileNet_V3_Large", "MobileNet", 4_214_842, 48, 1.00, 0.58, 0.62, 0.46, 0.60, 0.72),
    _spec("DenseNet121", "DenseNet", 6_961_928, 52, 1.02, 0.80, 0.34, 0.42, 0.70, 0.56),
    _spec("ResNet-18", "ResNet", 11_181_642, 52, 1.02, 0.48, 0.80, 0.44, 0.56, 0.78),
    _spec("DenseNet201", "DenseNet", 18_104_136, 56, 1.03, 0.74, 0.40, 0.40, 0.64, 0.52),
    _spec("ResNet-34", "ResNet", 21_289_802, 56, 1.03, 0.45, 0.70, 0.42, 0.52, 0.64),
    _spec("ResNet-50", "ResNet", 23_528_522, 60, 1.04, 0.52, 0.60, 0.40, 0.48, 0.58),
)

#: Mapping of the short aliases used in the paper's figures to registry names.
ALIASES: Dict[str, str] = {
    "S_V2_X0_5": "ShuffleNet_V2_X0_5",
    "S_V2_X1_0": "ShuffleNet_V2_X1_0",
    "M_V3_Small": "MobileNet_V3_Small",
    "M_V2": "MobileNet_V2",
    "M_V3_Large": "MobileNet_V3_Large",
    "D121": "DenseNet121",
    "R-18": "ResNet-18",
    "R18": "ResNet-18",
    "D201": "DenseNet201",
    "R-34": "ResNet-34",
    "R34": "ResNet-34",
    "R-50": "ResNet-50",
    "R50": "ResNet-50",
}

#: Generic registry behind every architecture lookup.  Built-ins and paper
#: aliases are pre-registered; plugins add entries via
#: :func:`register_architecture` (or directly on the registry).
ARCHITECTURE_REGISTRY: Registry = Registry("architecture")
for _spec_entry in ARCHITECTURES:
    ARCHITECTURE_REGISTRY.register(_spec_entry.name, _spec_entry)
for _alias, _target in ALIASES.items():
    ARCHITECTURE_REGISTRY.alias(_alias, _target)


def architecture_names() -> List[str]:
    """Names of the built-in paper architectures, in registry (size) order."""
    return [spec.name for spec in ARCHITECTURES]


def get_architecture(name: str) -> ArchitectureSpec:
    """Look up an architecture by canonical name or paper alias."""
    return ARCHITECTURE_REGISTRY.get(name)


def architectures_by_family(family: str) -> List[ArchitectureSpec]:
    """All registered architectures of one family (ResNet, DenseNet, ...)."""
    members = [spec for spec in ARCHITECTURES if spec.family.lower() == family.lower()]
    if not members:
        families = sorted({spec.family for spec in ARCHITECTURES})
        raise KeyError(f"unknown family '{family}'; available: {families}")
    return members


def default_pool_names() -> List[str]:
    """The full ten-architecture ISIC2019 pool of Figure 4."""
    return architecture_names()


def fitzpatrick_pool_names() -> List[str]:
    """The Fitzpatrick17K pool (Section 4.5: ResNet, ShuffleNet and MobileNet)."""
    return [
        spec.name
        for spec in ARCHITECTURES
        if spec.family in {"ResNet", "ShuffleNet", "MobileNet"}
    ]


def register_architecture(spec: ArchitectureSpec, overwrite: bool = False) -> None:
    """Register a custom architecture (used by the extensibility example)."""
    ARCHITECTURE_REGISTRY.register(spec.name, spec, overwrite=overwrite)

"""Saving and restoring trained model pools and fused models.

A real deployment of Muffin keeps a library of trained off-the-shelf models
and reuses them across searches; these helpers persist the trainable state
(classifier heads, muffin heads) plus enough metadata to rebuild the frozen
parts deterministically (architecture names, seeds, dataset schema).
Everything is stored as JSON via :mod:`repro.utils.serialization`, so the
artefacts are diffable and contain no pickled code.

Three artifact families live here:

* :func:`save_model` / :func:`load_model` — one trained zoo model;
* :func:`save_pool` / :func:`load_pool` — a whole pool plus its manifest;
* :func:`save_fused_model` / :func:`load_fused_model` — a **deployable
  Muffin-Net bundle**: the body member specs (architecture + seed + head
  weights), the muffin-head weights, the serving
  :class:`~repro.data.schema.FeatureSchema` and the producing run's spec
  hash, integrity-checked by an embedded content checksum.  Loading one
  rebuilds a :class:`~repro.core.fusing.FusedModel` whose
  ``predict_features`` is bit-identical to the model it was exported from.

Every ``save_*`` helper refuses to overwrite an existing artifact unless
``overwrite=True`` — a pipeline never silently clobbers a bundle a server
might be reading.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import TYPE_CHECKING, Dict, Optional, Union

import numpy as np

from ..data.schema import FeatureSchema
from ..data.splits import DataSplit
from ..utils.serialization import (
    decode_state_dict,
    encode_state_dict,
    load_json,
    save_json,
    to_jsonable,
)
from .model import ZooModel
from .pool import ModelPool
from .training import TrainConfig

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.fusing import FusedModel

PathLike = Union[str, Path]

_POOL_MANIFEST = "pool.json"

#: format tag of the deployable fused-model bundle
FUSED_ARTIFACT_FORMAT = "muffin-fused/v1"


def _guard_overwrite(path: Path, overwrite: bool, what: str) -> None:
    if path.exists() and not overwrite:
        raise FileExistsError(
            f"{what} '{path}' already exists; pass overwrite=True to replace it"
        )


def save_model(model: ZooModel, path: PathLike, overwrite: bool = False) -> Path:
    """Persist one trained zoo model (architecture metadata + head weights)."""
    if not model.is_trained:
        raise ValueError("refusing to save an untrained model")
    path = Path(path)
    _guard_overwrite(path, overwrite, "model artifact")
    payload = {
        "architecture": model.spec.name,
        "label": model.label,
        "seed": int(model.seed),
        "num_classes": model.num_classes,
        "feature_dim": model.backbone.feature_dim,
        "backbone_output_dim": model.backbone.output_dim,
        "head_state": encode_state_dict(model.head_state()),
    }
    return save_json(payload, path)


def load_model(path: PathLike) -> ZooModel:
    """Rebuild a zoo model saved by :func:`save_model`."""
    payload = load_json(path)
    model = ZooModel.from_name(
        payload["architecture"],
        feature_dim=int(payload["feature_dim"]),
        num_classes=int(payload["num_classes"]),
        seed=payload.get("seed"),
        label=payload.get("label"),
    )
    model.load_head_state(decode_state_dict(payload["head_state"]))
    return model


def save_pool(pool: ModelPool, directory: PathLike, overwrite: bool = False) -> Path:
    """Persist every trained model of a pool plus a manifest."""
    directory = Path(directory)
    _guard_overwrite(directory / _POOL_MANIFEST, overwrite, "pool manifest")
    directory.mkdir(parents=True, exist_ok=True)
    manifest: Dict[str, object] = {
        "architectures": pool.architecture_names,
        "seed": pool.seed,
        "models": {},
        "train_config": {
            "epochs": pool.train_config.epochs,
            "batch_size": pool.train_config.batch_size,
            "lr": pool.train_config.lr,
        },
    }
    for model in pool:
        filename = f"{model.label.replace('/', '_').replace(' ', '_')}.json"
        save_model(model, directory / filename, overwrite=overwrite)
        manifest["models"][model.label] = filename
    return save_json(manifest, directory / _POOL_MANIFEST)


def load_pool(
    directory: PathLike,
    split: DataSplit,
    train_config: Optional[TrainConfig] = None,
) -> ModelPool:
    """Rebuild a :class:`ModelPool` saved by :func:`save_pool`.

    The data split must be the same one the pool was originally built from
    (the frozen backbones are reconstructed from their architecture seeds,
    and predictions only make sense on the original feature schema).
    """
    directory = Path(directory)
    manifest = load_json(directory / _POOL_MANIFEST)
    pool = ModelPool(
        split,
        architecture_names=list(manifest["architectures"]),
        train_config=train_config or TrainConfig(**manifest.get("train_config", {})),
        seed=int(manifest.get("seed", 0)),
    )
    for label, filename in manifest["models"].items():
        model = load_model(directory / filename)
        expected_dim = split.train.feature_dim
        if model.backbone.feature_dim != expected_dim:
            raise ValueError(
                f"model '{label}' was trained on feature_dim={model.backbone.feature_dim}, "
                f"but the provided split has feature_dim={expected_dim}"
            )
        pool.add_model(model)
    return pool


# ----------------------------------------------------------------------
# Deployable fused-model bundles (the serving artifact)
# ----------------------------------------------------------------------
def artifact_checksum(payload: Dict[str, object]) -> str:
    """Content checksum of a fused-model payload (``checksum`` key excluded).

    Computed over the canonical JSON encoding, so a truncated or hand-edited
    bundle fails verification at load time instead of serving corrupt
    weights.
    """
    body = {key: value for key, value in payload.items() if key != "checksum"}
    canonical = json.dumps(to_jsonable(body), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def fused_model_payload(
    fused: "FusedModel",
    schema: Optional[FeatureSchema] = None,
    spec_hash: Optional[str] = None,
    name: Optional[str] = None,
) -> Dict[str, object]:
    """Assemble the JSON payload of a deployable fused-model bundle."""
    schema = schema if schema is not None else fused.schema
    if schema is None:
        raise ValueError(
            "a fused-model artifact needs a FeatureSchema (pass schema= or "
            "bind one with FusedModel.bind_schema)"
        )
    untrained = [m.label for m in fused.body.models if not m.is_trained]
    if untrained:
        raise ValueError(f"refusing to export untrained body members: {untrained}")
    payload: Dict[str, object] = {
        "format": FUSED_ARTIFACT_FORMAT,
        "name": name or fused.name,
        "spec_hash": spec_hash,
        "num_classes": fused.num_classes,
        "members": [
            {
                "architecture": model.spec.name,
                "label": model.label,
                "seed": int(model.seed),
                "num_classes": model.num_classes,
                "feature_dim": model.backbone.feature_dim,
                "head_state": encode_state_dict(model.head_state()),
            }
            for model in fused.body.models
        ],
        "head": {
            "hidden_sizes": list(fused.head.hidden_sizes),
            "activation": fused.head.activation,
            "state": encode_state_dict(fused.head.state_dict()),
        },
        "schema": schema.to_dict(),
    }
    payload["checksum"] = artifact_checksum(payload)
    return payload


def save_fused_model(
    fused: "FusedModel",
    path: PathLike,
    schema: Optional[FeatureSchema] = None,
    spec_hash: Optional[str] = None,
    name: Optional[str] = None,
    overwrite: bool = False,
) -> Path:
    """Export a fused model as a standalone, checksummed serving bundle."""
    path = Path(path)
    _guard_overwrite(path, overwrite, "fused-model artifact")
    return save_json(fused_model_payload(fused, schema, spec_hash, name), path)


def load_fused_model(source: Union[PathLike, Dict[str, object]]) -> "FusedModel":
    """Rebuild a deployable :class:`~repro.core.fusing.FusedModel`.

    ``source`` is a bundle path or an already-parsed payload dict.  The
    frozen backbones are reconstructed deterministically from their
    architecture names and seeds, the stored head weights are restored, the
    serving schema is bound and the embedded checksum is verified — a
    truncated or tampered bundle raises ``ValueError`` instead of silently
    serving wrong predictions.
    """
    from ..core.fusing import FusedModel, MuffinBody, MuffinHead

    if isinstance(source, (str, Path)):
        payload = load_json(source)
        origin = str(source)
    else:
        payload = source
        origin = "<payload>"
    if not isinstance(payload, dict) or payload.get("format") != FUSED_ARTIFACT_FORMAT:
        raise ValueError(
            f"'{origin}' is not a fused-model artifact "
            f"(expected format '{FUSED_ARTIFACT_FORMAT}', "
            f"got {payload.get('format') if isinstance(payload, dict) else type(payload).__name__!r})"
        )
    stored = payload.get("checksum")
    if stored != artifact_checksum(payload):
        raise ValueError(
            f"fused-model artifact '{origin}' failed its checksum — the file is "
            "truncated or was modified after export"
        )

    schema = FeatureSchema.from_dict(payload["schema"])
    members = []
    for entry in payload["members"]:
        model = ZooModel.from_name(
            entry["architecture"],
            feature_dim=int(entry["feature_dim"]),
            num_classes=int(entry["num_classes"]),
            seed=entry.get("seed"),
            label=entry.get("label"),
        )
        if model.backbone.feature_dim != schema.feature_dim:
            raise ValueError(
                f"member '{model.label}' expects feature_dim="
                f"{model.backbone.feature_dim}, schema has {schema.feature_dim}"
            )
        model.load_head_state(decode_state_dict(entry["head_state"]))
        members.append(model)

    body = MuffinBody(members)
    head_payload = payload["head"]
    head = MuffinHead(
        body_output_dim=body.output_dim,
        num_classes=int(payload["num_classes"]),
        hidden_sizes=tuple(int(w) for w in head_payload["hidden_sizes"]),
        activation=str(head_payload["activation"]),
    )
    head.load_state_dict(decode_state_dict(head_payload["state"]))
    fused = FusedModel(body, head, name=str(payload["name"]), schema=schema)
    fused.metadata = {
        "format": payload["format"],
        "spec_hash": payload.get("spec_hash"),
        "source": origin,
    }
    return fused

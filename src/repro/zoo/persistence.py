"""Saving and restoring trained model pools and fused models.

A real deployment of Muffin keeps a library of trained off-the-shelf models
and reuses them across searches; these helpers persist the trainable state
(classifier heads, muffin heads) plus enough metadata to rebuild the frozen
parts deterministically (architecture names, seeds, dataset schema).
Everything is stored as JSON via :mod:`repro.utils.serialization`, so the
artefacts are diffable and contain no pickled code.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Optional, Union

from ..data.splits import DataSplit
from ..utils.serialization import load_json, save_json
from .architectures import get_architecture
from .model import ZooModel
from .pool import ModelPool
from .training import TrainConfig

PathLike = Union[str, Path]

_POOL_MANIFEST = "pool.json"


def save_model(model: ZooModel, path: PathLike) -> Path:
    """Persist one trained zoo model (architecture metadata + head weights)."""
    if not model.is_trained:
        raise ValueError("refusing to save an untrained model")
    payload = {
        "architecture": model.spec.name,
        "label": model.label,
        "seed": int(model.seed),
        "num_classes": model.num_classes,
        "feature_dim": model.backbone.feature_dim,
        "backbone_output_dim": model.backbone.output_dim,
        "head_state": {
            name: {"shape": list(values.shape), "values": values.reshape(-1).tolist()}
            for name, values in model.head_state().items()
        },
    }
    return save_json(payload, path)


def load_model(path: PathLike) -> ZooModel:
    """Rebuild a zoo model saved by :func:`save_model`."""
    import numpy as np

    payload = load_json(path)
    model = ZooModel.from_name(
        payload["architecture"],
        feature_dim=int(payload["feature_dim"]),
        num_classes=int(payload["num_classes"]),
        seed=payload.get("seed"),
        label=payload.get("label"),
    )
    state = {
        name: np.asarray(entry["values"], dtype=float).reshape(entry["shape"])
        for name, entry in payload["head_state"].items()
    }
    model.load_head_state(state)
    return model


def save_pool(pool: ModelPool, directory: PathLike) -> Path:
    """Persist every trained model of a pool plus a manifest."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    manifest: Dict[str, object] = {
        "architectures": pool.architecture_names,
        "seed": pool.seed,
        "models": {},
        "train_config": {
            "epochs": pool.train_config.epochs,
            "batch_size": pool.train_config.batch_size,
            "lr": pool.train_config.lr,
        },
    }
    for model in pool:
        filename = f"{model.label.replace('/', '_').replace(' ', '_')}.json"
        save_model(model, directory / filename)
        manifest["models"][model.label] = filename
    return save_json(manifest, directory / _POOL_MANIFEST)


def load_pool(
    directory: PathLike,
    split: DataSplit,
    train_config: Optional[TrainConfig] = None,
) -> ModelPool:
    """Rebuild a :class:`ModelPool` saved by :func:`save_pool`.

    The data split must be the same one the pool was originally built from
    (the frozen backbones are reconstructed from their architecture seeds,
    and predictions only make sense on the original feature schema).
    """
    directory = Path(directory)
    manifest = load_json(directory / _POOL_MANIFEST)
    pool = ModelPool(
        split,
        architecture_names=list(manifest["architectures"]),
        train_config=train_config or TrainConfig(**manifest.get("train_config", {})),
        seed=int(manifest.get("seed", 0)),
    )
    for label, filename in manifest["models"].items():
        model = load_model(directory / filename)
        expected_dim = split.train.feature_dim
        if model.backbone.feature_dim != expected_dim:
            raise ValueError(
                f"model '{label}' was trained on feature_dim={model.backbone.feature_dim}, "
                f"but the provided split has feature_dim={expected_dim}"
            )
        pool.add_model(model)
    return pool

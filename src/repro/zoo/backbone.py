"""Simulated CNN backbones.

A real off-the-shelf CNN maps an image to a feature vector; how faithfully
group-specific artefacts (lighting on dark skin, rare anatomical sites,
elderly skin texture) survive into that feature vector depends on the
architecture.  The simulated backbone reproduces exactly that interface:

* it composes the dataset's latent components using the architecture's
  per-attribute sensitivity profile (robust architectures attenuate a
  group's distortion, fragile ones pass it through);
* it then applies a fixed random non-linear projection whose width is the
  architecture's ``capacity``.  The projection is frozen — exactly like the
  pre-trained, frozen feature extractor of the paper — and is different for
  every architecture, which is the source of cross-model disagreement.

Only the classifier head on top of these features is ever trained.
"""

from __future__ import annotations

import zlib
from typing import TYPE_CHECKING, Dict, Optional

import numpy as np

from ..data.dataset import FairnessDataset, distortion_key
from ..utils.rng import get_rng
from .architectures import ArchitectureSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..data.schema import FeatureSchema


class SimulatedBackbone:
    """Frozen feature extractor simulating one pre-trained CNN."""

    def __init__(
        self,
        spec: ArchitectureSpec,
        feature_dim: int,
        seed: Optional[int] = None,
        noise_gain: float = 1.0,
    ) -> None:
        if feature_dim <= 0:
            raise ValueError("feature_dim must be positive")
        self.spec = spec
        self.feature_dim = feature_dim
        self.output_dim = spec.capacity
        self.noise_gain = noise_gain
        # Seed the projection from the architecture name so two pools built
        # for the same architecture produce identical frozen weights.  A CRC
        # digest (not ``hash``) keeps the fallback stable across processes.
        base_seed = seed if seed is not None else zlib.crc32(spec.name.encode("utf-8"))
        self.seed = int(base_seed)
        rng = get_rng(base_seed)
        # Scale keeps the tanh pre-activations in their linear-ish regime so
        # the frozen projection preserves (rather than saturates away) the
        # class signal; capacity then governs how much of it survives.
        scale = 0.6 / np.sqrt(feature_dim)
        self._projection = rng.normal(0.0, scale, size=(feature_dim, spec.capacity))
        self._bias = rng.normal(0.0, 0.1, size=(spec.capacity,))

    # ------------------------------------------------------------------
    def sensitivity_profile(self, dataset: FairnessDataset) -> Dict[str, float]:
        """Sensitivity of this backbone to each attribute of ``dataset``."""
        return {
            attribute: self.spec.sensitivity_for(attribute)
            for attribute in dataset.attributes.names
        }

    def perceive(self, dataset: FairnessDataset, indices: Optional[np.ndarray] = None) -> np.ndarray:
        """Compose the dataset components as this architecture perceives them."""
        return dataset.compose_features(
            sensitivity=self.sensitivity_profile(dataset),
            signal_gain=self.spec.signal_gain,
            noise_gain=self.noise_gain,
            indices=indices,
        )

    def extract(self, dataset: FairnessDataset, indices: Optional[np.ndarray] = None) -> np.ndarray:
        """Return the frozen backbone features for ``dataset`` (or a subset)."""
        perceived = self.perceive(dataset, indices)
        return self.transform(perceived)

    def perceive_components(
        self, features: np.ndarray, schema: "FeatureSchema"
    ) -> np.ndarray:
        """Compose a stacked component matrix as this architecture perceives it.

        ``features`` is a raw serving matrix ``(n, schema.input_dim)`` whose
        column blocks are the dataset components in ``schema`` order (see
        :meth:`~repro.data.schema.FeatureSchema.features`).  The composition
        applies exactly the gains and float-addition order of
        :meth:`~repro.data.dataset.FairnessDataset.compose_features` via
        :meth:`perceive`, so the dataset-free path is bit-identical to the
        dataset path on the same samples.
        """
        features = np.asarray(features, dtype=np.float64)
        if features.ndim != 2 or features.shape[1] != schema.input_dim:
            raise ValueError(
                f"expected stacked components of shape (N, {schema.input_dim}), "
                f"got {features.shape}"
            )
        slices = schema.component_slices()
        composed = self.spec.signal_gain * features[:, slices["signal"]]
        if "noise" in slices:
            composed = composed + self.noise_gain * features[:, slices["noise"]]
        for attribute in schema.attribute_names:
            key = distortion_key(attribute)
            if key not in slices:
                continue
            weight = float(self.spec.sensitivity_for(attribute))
            if weight != 0.0:
                composed = composed + weight * features[:, slices[key]]
        return composed

    def extract_components(
        self, features: np.ndarray, schema: "FeatureSchema"
    ) -> np.ndarray:
        """Frozen backbone features from a raw stacked component matrix."""
        return self.transform(self.perceive_components(features, schema))

    def transform(self, features: np.ndarray) -> np.ndarray:
        """Apply the frozen non-linear projection to already-composed features."""
        features = np.asarray(features, dtype=np.float64)
        if features.ndim != 2 or features.shape[1] != self.feature_dim:
            raise ValueError(
                f"expected features of shape (N, {self.feature_dim}), got {features.shape}"
            )
        hidden = features @ self._projection + self._bias
        return np.tanh(hidden)

    def __repr__(self) -> str:
        return (
            f"SimulatedBackbone(arch='{self.spec.name}', in={self.feature_dim}, "
            f"out={self.output_dim})"
        )

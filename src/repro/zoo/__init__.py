"""Model zoo: simulated off-the-shelf architectures, training and pooling."""

from .architectures import (
    ALIASES,
    ARCHITECTURE_REGISTRY,
    ARCHITECTURES,
    ArchitectureSpec,
    architecture_names,
    architectures_by_family,
    default_pool_names,
    fitzpatrick_pool_names,
    get_architecture,
    register_architecture,
)
from .backbone import SimulatedBackbone
from .model import ZooModel
from .persistence import (
    FUSED_ARTIFACT_FORMAT,
    artifact_checksum,
    fused_model_payload,
    load_fused_model,
    load_model,
    load_pool,
    save_fused_model,
    save_model,
    save_pool,
)
from .pool import ModelPool
from .training import TrainConfig, TrainResult, train_model

__all__ = [
    "ArchitectureSpec",
    "ARCHITECTURES",
    "ARCHITECTURE_REGISTRY",
    "ALIASES",
    "architecture_names",
    "architectures_by_family",
    "get_architecture",
    "register_architecture",
    "default_pool_names",
    "fitzpatrick_pool_names",
    "SimulatedBackbone",
    "ZooModel",
    "ModelPool",
    "save_model",
    "load_model",
    "save_pool",
    "load_pool",
    "save_fused_model",
    "load_fused_model",
    "fused_model_payload",
    "artifact_checksum",
    "FUSED_ARTIFACT_FORMAT",
    "TrainConfig",
    "TrainResult",
    "train_model",
]

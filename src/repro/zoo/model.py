"""Off-the-shelf model = frozen simulated backbone + trainable softmax head.

A :class:`ZooModel` is the unit Muffin selects from the model pool.  Its
backbone is frozen (matching the paper: "we will freeze the parameters in
the pre-trained off-the-shelf models"), only the classifier head is trained,
and the model exposes the two things the rest of the system needs:

* ``predict_logits`` / ``predict_proba`` / ``predict`` on a dataset, used by
  the fairness metrics and by the muffin head (which consumes the pool
  models' output probabilities);
* ``evaluate`` producing a :class:`~repro.fairness.metrics.FairnessEvaluation`.
"""

from __future__ import annotations

import zlib
from typing import TYPE_CHECKING, Dict, Optional, Sequence

import numpy as np

from .. import nn
from ..data.dataset import FairnessDataset
from ..fairness.metrics import FairnessEvaluation, evaluate_predictions
from ..utils.rng import get_rng
from .architectures import ArchitectureSpec, get_architecture
from .backbone import SimulatedBackbone

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..data.schema import FeatureSchema


def softmax_probabilities(logits: np.ndarray) -> np.ndarray:
    """Numerically stable softmax over the last axis.

    The single implementation behind every probability output in the library
    (zoo models, the raw-feature serving path, the fused head), so the two
    inference paths cannot drift by a ulp.
    """
    shifted = logits - logits.max(axis=-1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=-1, keepdims=True)


class ZooModel:
    """One off-the-shelf model of the pool."""

    def __init__(
        self,
        spec: ArchitectureSpec,
        feature_dim: int,
        num_classes: int,
        seed: Optional[int] = None,
        label: Optional[str] = None,
    ) -> None:
        self.spec = spec
        self.num_classes = num_classes
        self.label = label or spec.name
        # CRC of the architecture name (not ``hash``, which is randomised per
        # process) keeps default-constructed models reproducible everywhere.
        self.seed = seed if seed is not None else zlib.crc32(spec.name.encode("utf-8"))
        rng = get_rng(self.seed)
        self.backbone = SimulatedBackbone(spec, feature_dim, seed=int(rng.integers(0, 2**31)))
        self.head = nn.SoftmaxClassifier(self.backbone.output_dim, num_classes, rng=rng)
        self.training_history: Dict[str, list] = {"loss": [], "accuracy": []}
        self.is_trained = False

    # ------------------------------------------------------------------
    @classmethod
    def from_name(
        cls,
        name: str,
        feature_dim: int,
        num_classes: int,
        seed: Optional[int] = None,
        label: Optional[str] = None,
    ) -> "ZooModel":
        """Build a model from an architecture name or paper alias."""
        return cls(get_architecture(name), feature_dim, num_classes, seed=seed, label=label)

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def num_parameters(self) -> int:
        """Nominal parameter count of the simulated architecture (paper's figure)."""
        return self.spec.num_parameters

    def clone_untrained(self, seed: Optional[int] = None, label: Optional[str] = None) -> "ZooModel":
        """Create a fresh, untrained model with the same architecture.

        Used by the single-attribute baselines, which retrain a model with
        modified data (Method D) or a modified loss (Method L).  The frozen
        pre-trained backbone is shared (it represents the same off-the-shelf
        feature extractor); only the classifier head is re-initialised.
        """
        clone = ZooModel(
            self.spec,
            self.backbone.feature_dim,
            self.num_classes,
            seed=seed,
            label=label or self.label,
        )
        clone.backbone = self.backbone
        return clone

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------
    def features(self, dataset: FairnessDataset, indices: Optional[np.ndarray] = None) -> np.ndarray:
        """Frozen backbone features for ``dataset``."""
        return self.backbone.extract(dataset, indices)

    def predict_logits(self, dataset: FairnessDataset, indices: Optional[np.ndarray] = None) -> np.ndarray:
        """Raw classification scores ``(N, C)``."""
        features = self.features(dataset, indices)
        return self.head(nn.Tensor(features)).data

    def predict_proba(self, dataset: FairnessDataset, indices: Optional[np.ndarray] = None) -> np.ndarray:
        """Class probabilities ``(N, C)`` (softmax of the logits)."""
        return softmax_probabilities(self.predict_logits(dataset, indices))

    def predict(self, dataset: FairnessDataset, indices: Optional[np.ndarray] = None) -> np.ndarray:
        """Hard class predictions ``(N,)``."""
        return self.predict_logits(dataset, indices).argmax(axis=-1)

    # ------------------------------------------------------------------
    # Raw-feature inference (the dataset-free serving path)
    # ------------------------------------------------------------------
    def predict_logits_features(
        self, features: np.ndarray, schema: "FeatureSchema"
    ) -> np.ndarray:
        """Raw classification scores from a stacked component matrix.

        ``features`` follows ``schema`` (see
        :meth:`~repro.data.schema.FeatureSchema.features`); the result is
        bit-identical to :meth:`predict_logits` on the samples the matrix
        was stacked from.
        """
        extracted = self.backbone.extract_components(features, schema)
        return self.head(nn.Tensor(extracted)).data

    def predict_proba_features(
        self, features: np.ndarray, schema: "FeatureSchema"
    ) -> np.ndarray:
        """Class probabilities from a stacked component matrix."""
        return softmax_probabilities(self.predict_logits_features(features, schema))

    def predict_features(
        self, features: np.ndarray, schema: "FeatureSchema"
    ) -> np.ndarray:
        """Hard class predictions from a stacked component matrix."""
        return self.predict_logits_features(features, schema).argmax(axis=-1)

    def evaluate(
        self,
        dataset: FairnessDataset,
        attributes: Optional[Sequence[str]] = None,
    ) -> FairnessEvaluation:
        """Accuracy + per-attribute unfairness of this model on ``dataset``."""
        return evaluate_predictions(self.predict(dataset), dataset, attributes)

    # ------------------------------------------------------------------
    # Head parameter management
    # ------------------------------------------------------------------
    def head_state(self) -> Dict[str, np.ndarray]:
        """State dict of the trainable head."""
        return self.head.state_dict()

    def load_head_state(self, state: Dict[str, np.ndarray]) -> None:
        """Restore the trainable head from a state dict."""
        self.head.load_state_dict(state)
        self.is_trained = True

    def __repr__(self) -> str:
        status = "trained" if self.is_trained else "untrained"
        return f"ZooModel('{self.label}', params={self.num_parameters:,}, {status})"

"""Sensitive-attribute and group taxonomy.

The paper studies datasets with several *sensitive attributes* (age, gender,
disease site, skin tone, lesion type); each attribute partitions the dataset
into *groups*, and some of those groups are *unprivileged* — the model
systematically under-performs on them.  This module defines the small value
objects that describe that structure and that every other subsystem (metrics,
baselines, proxy-dataset builder, experiments) consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class AttributeSpec:
    """Description of one sensitive attribute.

    Parameters
    ----------
    name:
        Attribute identifier, e.g. ``"age"`` or ``"site"``.
    groups:
        Ordered group names; a sample's group id indexes into this list.
    unprivileged:
        Names of the groups the paper treats as unprivileged (harder /
        under-represented).  The remaining groups are privileged.
    difficulty:
        Per-group difficulty in ``[0, 1]`` used by the synthetic generator:
        0 means the group's images are as easy as the privileged baseline,
        1 means maximally distorted.  Groups absent from the mapping default
        to 0.
    proportions:
        Optional per-group sampling proportions (normalised internally).
        Defaults to uniform.
    """

    name: str
    groups: Tuple[str, ...]
    unprivileged: Tuple[str, ...] = ()
    difficulty: Mapping[str, float] = field(default_factory=dict)
    proportions: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if len(self.groups) < 2:
            raise ValueError(f"attribute '{self.name}' needs at least two groups")
        if len(set(self.groups)) != len(self.groups):
            raise ValueError(f"attribute '{self.name}' has duplicate group names")
        unknown_unpriv = set(self.unprivileged) - set(self.groups)
        if unknown_unpriv:
            raise ValueError(
                f"unprivileged groups {sorted(unknown_unpriv)} are not groups of '{self.name}'"
            )
        unknown_diff = set(self.difficulty) - set(self.groups)
        if unknown_diff:
            raise ValueError(
                f"difficulty given for unknown groups {sorted(unknown_diff)} of '{self.name}'"
            )
        for group, value in self.difficulty.items():
            if not 0.0 <= float(value) <= 1.0:
                raise ValueError(f"difficulty of group '{group}' must be in [0, 1]")

    # ------------------------------------------------------------------
    @property
    def num_groups(self) -> int:
        return len(self.groups)

    @property
    def privileged(self) -> Tuple[str, ...]:
        return tuple(g for g in self.groups if g not in self.unprivileged)

    def group_index(self, group: str) -> int:
        """Return the integer id of ``group``."""
        try:
            return self.groups.index(group)
        except ValueError as exc:
            raise KeyError(f"'{group}' is not a group of attribute '{self.name}'") from exc

    def group_name(self, index: int) -> str:
        """Return the name of the group with integer id ``index``."""
        return self.groups[index]

    def is_unprivileged(self, group: str) -> bool:
        return group in self.unprivileged

    def unprivileged_indices(self) -> Tuple[int, ...]:
        """Integer ids of the unprivileged groups."""
        return tuple(self.group_index(g) for g in self.unprivileged)

    def privileged_indices(self) -> Tuple[int, ...]:
        """Integer ids of the privileged groups."""
        return tuple(self.group_index(g) for g in self.privileged)

    def difficulty_vector(self) -> np.ndarray:
        """Per-group difficulty as an array aligned with ``groups``."""
        return np.asarray([float(self.difficulty.get(g, 0.0)) for g in self.groups])

    def proportion_vector(self) -> np.ndarray:
        """Normalised per-group sampling proportions aligned with ``groups``."""
        raw = np.asarray([float(self.proportions.get(g, 1.0)) for g in self.groups])
        if (raw <= 0).any():
            raise ValueError(f"proportions of '{self.name}' must be positive")
        return raw / raw.sum()


class AttributeSet:
    """Ordered collection of the sensitive attributes of one dataset."""

    def __init__(self, specs: Sequence[AttributeSpec]) -> None:
        if not specs:
            raise ValueError("AttributeSet needs at least one attribute")
        names = [spec.name for spec in specs]
        if len(set(names)) != len(names):
            raise ValueError("attribute names must be unique")
        self._specs: Dict[str, AttributeSpec] = {spec.name: spec for spec in specs}
        self._order: List[str] = names

    # ------------------------------------------------------------------
    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(self._order)

    def __iter__(self):
        return (self._specs[name] for name in self._order)

    def __len__(self) -> int:
        return len(self._order)

    def __contains__(self, name: str) -> bool:
        return name in self._specs

    def __getitem__(self, name: str) -> AttributeSpec:
        try:
            return self._specs[name]
        except KeyError as exc:
            raise KeyError(
                f"unknown attribute '{name}'; available: {sorted(self._specs)}"
            ) from exc

    def subset(self, names: Sequence[str]) -> "AttributeSet":
        """Return a new :class:`AttributeSet` restricted to ``names`` (in order)."""
        return AttributeSet([self[name] for name in names])

    def to_dict(self) -> Dict[str, Dict[str, object]]:
        """JSON-friendly summary used by the experiment reports."""
        return {
            spec.name: {
                "groups": list(spec.groups),
                "unprivileged": list(spec.unprivileged),
                "difficulty": {g: float(spec.difficulty.get(g, 0.0)) for g in spec.groups},
            }
            for spec in self
        }


# ---------------------------------------------------------------------------
# The taxonomies of the two datasets used in the paper.
# ---------------------------------------------------------------------------
ISIC_AGE_GROUPS = ("0-20", "20-40", "40-60", "60-80", "80+", "unknown")
ISIC_SITE_GROUPS = (
    "anterior torso",
    "head/neck",
    "lateral torso",
    "lower extremity",
    "oral/genital",
    "palms/soles",
    "posterior torso",
    "unknown",
    "upper extremity",
)
ISIC_GENDER_GROUPS = ("male", "female")

FITZPATRICK_SKIN_TONE_GROUPS = ("light", "white", "medium", "olive", "brown", "black")
FITZPATRICK_TYPE_GROUPS = ("benign", "malignant", "non-neoplastic")


def isic_age_spec() -> AttributeSpec:
    """Age attribute of ISIC2019: 6 groups, elderly / unknown unprivileged."""
    return AttributeSpec(
        name="age",
        groups=ISIC_AGE_GROUPS,
        unprivileged=("60-80", "80+", "unknown"),
        difficulty={
            "0-20": 0.08,
            "20-40": 0.02,
            "40-60": 0.05,
            "60-80": 0.42,
            "80+": 0.62,
            "unknown": 0.50,
        },
        proportions={
            "0-20": 0.06,
            "20-40": 0.22,
            "40-60": 0.34,
            "60-80": 0.24,
            "80+": 0.06,
            "unknown": 0.08,
        },
    )


def isic_site_spec() -> AttributeSpec:
    """Disease-site attribute of ISIC2019: 9 groups, rare sites unprivileged."""
    return AttributeSpec(
        name="site",
        groups=ISIC_SITE_GROUPS,
        unprivileged=("head/neck", "lateral torso", "oral/genital", "palms/soles", "unknown"),
        difficulty={
            "anterior torso": 0.03,
            "head/neck": 0.40,
            "lateral torso": 0.68,
            "lower extremity": 0.06,
            "oral/genital": 0.74,
            "palms/soles": 0.58,
            "posterior torso": 0.04,
            "unknown": 0.46,
            "upper extremity": 0.08,
        },
        proportions={
            "anterior torso": 0.19,
            "head/neck": 0.13,
            "lateral torso": 0.05,
            "lower extremity": 0.17,
            "oral/genital": 0.04,
            "palms/soles": 0.05,
            "posterior torso": 0.19,
            "unknown": 0.06,
            "upper extremity": 0.12,
        },
    )


def isic_gender_spec() -> AttributeSpec:
    """Gender attribute of ISIC2019: two near-balanced, near-equal groups."""
    return AttributeSpec(
        name="gender",
        groups=ISIC_GENDER_GROUPS,
        unprivileged=("female",),
        difficulty={"male": 0.02, "female": 0.05},
        proportions={"male": 0.52, "female": 0.48},
    )


def fitzpatrick_skin_tone_spec() -> AttributeSpec:
    """Fitzpatrick-scale skin-tone attribute: 6 groups, darker tones unprivileged."""
    return AttributeSpec(
        name="skin_tone",
        groups=FITZPATRICK_SKIN_TONE_GROUPS,
        unprivileged=("olive", "brown", "black"),
        difficulty={
            "light": 0.04,
            "white": 0.08,
            "medium": 0.16,
            "olive": 0.36,
            "brown": 0.52,
            "black": 0.66,
        },
        proportions={
            "light": 0.18,
            "white": 0.28,
            "medium": 0.22,
            "olive": 0.14,
            "brown": 0.12,
            "black": 0.06,
        },
    )


def fitzpatrick_type_spec() -> AttributeSpec:
    """Lesion-type attribute of Fitzpatrick17K: 3 groups, malignant unprivileged."""
    return AttributeSpec(
        name="type",
        groups=FITZPATRICK_TYPE_GROUPS,
        unprivileged=("malignant",),
        difficulty={"benign": 0.06, "malignant": 0.68, "non-neoplastic": 0.30},
        proportions={"benign": 0.46, "malignant": 0.22, "non-neoplastic": 0.32},
    )


def isic_attribute_set() -> AttributeSet:
    """The three sensitive attributes of ISIC2019 (age, site, gender)."""
    return AttributeSet([isic_age_spec(), isic_site_spec(), isic_gender_spec()])


def fitzpatrick_attribute_set() -> AttributeSet:
    """The two sensitive attributes of Fitzpatrick17K (skin tone, type)."""
    return AttributeSet([fitzpatrick_skin_tone_spec(), fitzpatrick_type_spec()])

"""Serving-time feature schema of a :class:`~repro.data.dataset.FairnessDataset`.

A deployed Muffin-Net cannot receive a ``FairnessDataset`` object — an
inference request carries a plain feature matrix.  The schema pins down
exactly what that matrix is: the dataset's latent feature components stacked
column-wise in a fixed order (``signal``, ``noise``, one distortion block per
attribute), i.e. a ``(n, num_components * feature_dim)`` array produced by
:meth:`FeatureSchema.features`.

Keeping the components *separate* in the serving payload is what lets every
frozen body member re-apply its own per-attribute sensitivity profile at
request time — each backbone composes the blocks with its own gains, exactly
as :meth:`~repro.zoo.backbone.SimulatedBackbone.perceive` does on a dataset,
so the raw-feature inference path is **bit-identical** to the dataset path
on the same samples.

The schema also carries the class names and the sensitive-attribute
taxonomy (group names, unprivileged groups), which is what the live
fairness monitor of :mod:`repro.serve` needs to score incoming traffic with
the vectorized :class:`~repro.fairness.engine.EvaluationEngine`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Mapping, Optional, Tuple

import numpy as np

from .attributes import AttributeSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .dataset import FairnessDataset


@dataclass(frozen=True)
class FeatureSchema:
    """Immutable description of the raw feature matrix a fused model serves on."""

    dataset_name: str
    num_classes: int
    feature_dim: int
    #: component keys in stacking order (``signal`` first by construction)
    component_keys: Tuple[str, ...]
    #: attribute names in the dataset's declared order (composition order)
    attribute_names: Tuple[str, ...]
    class_names: Tuple[str, ...]
    #: per-attribute group taxonomy (for the serving-time fairness monitor)
    attributes: Tuple[AttributeSpec, ...] = ()

    def __post_init__(self) -> None:
        if self.num_classes <= 1:
            raise ValueError("num_classes must be at least 2")
        if self.feature_dim <= 0:
            raise ValueError("feature_dim must be positive")
        if "signal" not in self.component_keys:
            raise ValueError("component_keys must include 'signal'")
        if len(set(self.component_keys)) != len(self.component_keys):
            raise ValueError("component_keys must be unique")
        if len(self.class_names) != self.num_classes:
            raise ValueError("class_names length must equal num_classes")
        spec_names = tuple(spec.name for spec in self.attributes)
        if self.attributes and spec_names != self.attribute_names:
            raise ValueError(
                f"attribute specs {list(spec_names)} must match attribute_names "
                f"{list(self.attribute_names)} in order"
            )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_dataset(cls, dataset: "FairnessDataset") -> "FeatureSchema":
        """Schema of ``dataset``'s feature layout and attribute taxonomy."""
        specs = tuple(
            AttributeSpec(
                name=spec.name,
                groups=tuple(spec.groups),
                unprivileged=tuple(spec.unprivileged),
            )
            for spec in dataset.attributes
        )
        return cls(
            dataset_name=dataset.name,
            num_classes=dataset.num_classes,
            feature_dim=dataset.feature_dim,
            component_keys=tuple(dataset.components),
            attribute_names=dataset.attributes.names,
            class_names=tuple(dataset.class_names),
            attributes=specs,
        )

    # ------------------------------------------------------------------
    # Layout
    # ------------------------------------------------------------------
    @property
    def input_dim(self) -> int:
        """Width of the stacked serving feature matrix."""
        return len(self.component_keys) * self.feature_dim

    def component_slices(self) -> Dict[str, slice]:
        """Column block of each component in the stacked matrix."""
        return {
            key: slice(i * self.feature_dim, (i + 1) * self.feature_dim)
            for i, key in enumerate(self.component_keys)
        }

    def attribute_spec(self, name: str) -> AttributeSpec:
        """The group taxonomy of one monitored attribute."""
        for spec in self.attributes:
            if spec.name == name:
                return spec
        raise KeyError(
            f"schema has no attribute '{name}'; available: {list(self.attribute_names)}"
        )

    # ------------------------------------------------------------------
    # Feature extraction / validation
    # ------------------------------------------------------------------
    def features(
        self, dataset: "FairnessDataset", indices: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Stack ``dataset``'s components into the serving feature matrix.

        This is the payload a client sends to the inference server; feeding
        it to :meth:`~repro.core.fusing.FusedModel.predict_features` yields
        predictions bit-identical to ``FusedModel.predict(dataset, indices)``.
        """
        missing = [key for key in self.component_keys if key not in dataset.components]
        if missing:
            raise ValueError(
                f"dataset '{dataset.name}' lacks schema components {missing}"
            )
        if dataset.feature_dim != self.feature_dim:
            raise ValueError(
                f"dataset feature_dim={dataset.feature_dim} does not match the "
                f"schema's feature_dim={self.feature_dim}"
            )
        if indices is None:
            blocks = [dataset.components[key] for key in self.component_keys]
        else:
            indices = np.asarray(indices, dtype=np.int64)
            blocks = [dataset.components[key][indices] for key in self.component_keys]
        return np.concatenate(blocks, axis=1)

    def validate_features(self, features: np.ndarray) -> np.ndarray:
        """Return ``features`` as a validated ``(n, input_dim)`` float64 matrix."""
        array = np.asarray(features, dtype=np.float64)
        if array.ndim == 1:
            array = array[None, :]
        if array.ndim != 2 or array.shape[1] != self.input_dim:
            raise ValueError(
                f"expected features of shape (n, {self.input_dim}) "
                f"({len(self.component_keys)} components x {self.feature_dim} dims), "
                f"got {np.asarray(features).shape}"
            )
        return array

    def validate_groups(
        self, groups: Optional[Mapping[str, np.ndarray]], num_samples: int
    ) -> Dict[str, np.ndarray]:
        """Validate per-attribute group ids attached to a serving request."""
        if not groups:
            return {}
        validated: Dict[str, np.ndarray] = {}
        for name, ids in groups.items():
            spec = self.attribute_spec(name)
            ids = np.asarray(ids, dtype=np.int64).reshape(-1)
            if ids.shape[0] != num_samples:
                raise ValueError(
                    f"group ids of '{name}' must have one entry per sample "
                    f"({num_samples}), got {ids.shape[0]}"
                )
            if ids.size and (ids.min() < 0 or ids.max() >= spec.num_groups):
                raise ValueError(
                    f"group ids of '{name}' must be in [0, {spec.num_groups})"
                )
            validated[name] = ids
        return validated

    def validate_labels(
        self, labels: Optional[np.ndarray], num_samples: int
    ) -> Optional[np.ndarray]:
        """Validate optional true labels attached to a serving request."""
        if labels is None:
            return None
        labels = np.asarray(labels, dtype=np.int64).reshape(-1)
        if labels.shape[0] != num_samples:
            raise ValueError(
                f"labels must have one entry per sample ({num_samples}), "
                f"got {labels.shape[0]}"
            )
        if labels.size and (labels.min() < 0 or labels.max() >= self.num_classes):
            raise ValueError(f"labels must be in [0, {self.num_classes})")
        return labels

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        return {
            "dataset_name": self.dataset_name,
            "num_classes": self.num_classes,
            "feature_dim": self.feature_dim,
            "component_keys": list(self.component_keys),
            "attribute_names": list(self.attribute_names),
            "class_names": list(self.class_names),
            "attributes": [
                {
                    "name": spec.name,
                    "groups": list(spec.groups),
                    "unprivileged": list(spec.unprivileged),
                }
                for spec in self.attributes
            ],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "FeatureSchema":
        specs = tuple(
            AttributeSpec(
                name=str(entry["name"]),
                groups=tuple(entry["groups"]),
                unprivileged=tuple(entry.get("unprivileged", ())),
            )
            for entry in payload.get("attributes", [])
        )
        return cls(
            dataset_name=str(payload["dataset_name"]),
            num_classes=int(payload["num_classes"]),
            feature_dim=int(payload["feature_dim"]),
            component_keys=tuple(payload["component_keys"]),
            attribute_names=tuple(payload["attribute_names"]),
            class_names=tuple(payload["class_names"]),
            attributes=specs,
        )

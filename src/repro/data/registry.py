"""Dataset registry: named builders for every dataset the pipeline can load.

Entries are callables ``(num_samples=..., seed=..., **params) -> FairnessDataset``.
The built-in synthetic stand-ins register here; custom datasets plug in the
same way and immediately become addressable from a
:class:`~repro.api.DatasetSpec`::

    from repro.data import DATASETS

    @DATASETS.register("retinopathy")
    def build_retinopathy(num_samples=4000, seed=0, **params):
        return sample_dataset(...)

``params`` carries builder-specific keyword arguments straight from the
spec's ``params`` mapping (e.g. a custom ``SyntheticConfig`` field).
"""

from __future__ import annotations

from ..registry import Registry
from .dataset import FairnessDataset
from .fitzpatrick import SyntheticFitzpatrick17K
from .isic import SyntheticISIC2019

#: Registry of dataset builders, keyed by the names ``DatasetSpec`` uses.
DATASETS: Registry = Registry("dataset")


@DATASETS.register("synthetic_isic", aliases=("isic", "isic2019"))
def build_synthetic_isic(num_samples: int = 6000, seed: int = 2019, **params) -> FairnessDataset:
    """The synthetic ISIC2019 stand-in (8 classes; age / site / gender)."""
    return SyntheticISIC2019(num_samples=num_samples, seed=seed, **params)


@DATASETS.register("synthetic_fitzpatrick", aliases=("fitzpatrick", "fitzpatrick17k"))
def build_synthetic_fitzpatrick(
    num_samples: int = 5000, seed: int = 1717, **params
) -> FairnessDataset:
    """The synthetic Fitzpatrick17K stand-in (9 classes; skin tone / type)."""
    return SyntheticFitzpatrick17K(num_samples=num_samples, seed=seed, **params)

"""Data substrate: sensitive-attribute taxonomy, synthetic dermatology
datasets, splitting and augmentation utilities."""

from .attributes import (
    AttributeSet,
    AttributeSpec,
    fitzpatrick_attribute_set,
    fitzpatrick_skin_tone_spec,
    fitzpatrick_type_spec,
    isic_age_spec,
    isic_attribute_set,
    isic_gender_spec,
    isic_site_spec,
)
from .dataset import Batch, FairnessDataset, dataset_fingerprint, distortion_key
from .groups import GroupIndexBank, validate_group_ids
from .fitzpatrick import FITZPATRICK_CLASS_NAMES, SyntheticFitzpatrick17K, load_fitzpatrick17k
from .isic import ISIC_CLASS_NAMES, SyntheticISIC2019, load_isic2019
from .registry import DATASETS, build_synthetic_fitzpatrick, build_synthetic_isic
from .schema import FeatureSchema
from .splits import PAPER_SPLIT, DataSplit, split_dataset, stratified_split_indices
from .synthetic import SyntheticBlueprint, SyntheticConfig, build_blueprint, describe_difficulty, sample_dataset
from .transforms import AugmentationConfig, augment_subset, concatenate_datasets

__all__ = [
    "AttributeSpec",
    "AttributeSet",
    "isic_age_spec",
    "isic_site_spec",
    "isic_gender_spec",
    "isic_attribute_set",
    "fitzpatrick_skin_tone_spec",
    "fitzpatrick_type_spec",
    "fitzpatrick_attribute_set",
    "FairnessDataset",
    "Batch",
    "dataset_fingerprint",
    "distortion_key",
    "GroupIndexBank",
    "validate_group_ids",
    "FeatureSchema",
    "SyntheticConfig",
    "SyntheticBlueprint",
    "build_blueprint",
    "sample_dataset",
    "describe_difficulty",
    "SyntheticISIC2019",
    "load_isic2019",
    "ISIC_CLASS_NAMES",
    "SyntheticFitzpatrick17K",
    "load_fitzpatrick17k",
    "FITZPATRICK_CLASS_NAMES",
    "DataSplit",
    "PAPER_SPLIT",
    "split_dataset",
    "stratified_split_indices",
    "AugmentationConfig",
    "augment_subset",
    "concatenate_datasets",
    "DATASETS",
    "build_synthetic_isic",
    "build_synthetic_fitzpatrick",
]

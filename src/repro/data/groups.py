"""Precomputed group-membership indices for vectorized fairness metrics.

Every fairness metric in the library reduces to the same primitive: count,
per group of a sensitive attribute, how many samples a model classified
correctly.  The scalar helpers in :mod:`repro.fairness.metrics` used to
rebuild a boolean mask per group per call; a :class:`GroupIndexBank`
precomputes, once per dataset, everything those masks were derived from:

* the validated integer group ids of every attribute;
* a dense one-hot *membership matrix* ``(num_samples, total_groups)`` whose
  column blocks are the attributes' groups — one matmul against a stacked
  ``(num_candidates, num_samples)`` correctness matrix yields every
  per-group correct count for every candidate and every attribute;
* the exact per-group sample counts.

Banks are immutable.  :meth:`GroupIndexBank.slice` restricts a bank to an
index array (an evaluation split, an unprivileged subset, …) and memoises
the result in a small LRU keyed by the index array's content, so repeated
evaluations on the same partition share one set of matrices.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from .attributes import AttributeSet, AttributeSpec

#: Upper bound on memoised :meth:`GroupIndexBank.slice` results (evaluation
#: partitions recur; arbitrary one-off subsets should not accumulate).
MAX_SLICE_ENTRIES = 16


def validate_group_ids(ids: np.ndarray, spec: AttributeSpec) -> np.ndarray:
    """Return ``ids`` as a validated 1-D ``int64`` array.

    Out-of-range ids used to fall silently into *no* group mask, skewing
    every per-group accuracy they should have contributed to; they are now
    rejected up front with a clear error.  Integer inputs of any width
    (int32 included) are accepted and widened; float inputs must be
    integral-valued — a fractional group id is a data bug the int64 cast
    would silently truncate.
    """
    raw = np.asarray(ids)  # repro-lint: disable=RL7 — dtype inspected before the int64 cast below
    if raw.dtype == np.object_ or np.issubdtype(raw.dtype, np.complexfloating):
        raise ValueError(
            f"group ids of attribute '{spec.name}' must be integer-valued, "
            f"got dtype {raw.dtype}"
        )
    if np.issubdtype(raw.dtype, np.floating):
        if raw.size and not np.array_equal(raw, np.trunc(raw)):
            raise ValueError(
                f"group ids of attribute '{spec.name}' have dtype {raw.dtype} "
                "with fractional values; pass integer group ids"
            )
    ids = raw.astype(np.int64, copy=False) if raw.dtype != np.int64 else raw
    if ids.ndim != 1:
        raise ValueError(
            f"group ids of attribute '{spec.name}' must be 1-D, got shape {ids.shape}"
        )
    if ids.size and (ids.min() < 0 or ids.max() >= spec.num_groups):
        bad = ids[(ids < 0) | (ids >= spec.num_groups)]
        raise ValueError(
            f"group ids of attribute '{spec.name}' must be in [0, {spec.num_groups}) "
            f"(groups {list(spec.groups)}); found out-of-range values "
            f"{sorted(set(int(v) for v in bad[:8]))}"
        )
    return ids


class GroupIndexBank:
    """Per-attribute group-membership matrices of one fixed sample set."""

    def __init__(
        self,
        group_ids: Mapping[str, np.ndarray],
        specs: Mapping[str, AttributeSpec],
        order: Optional[Sequence[str]] = None,
    ) -> None:
        self.attribute_names: Tuple[str, ...] = tuple(order) if order is not None else tuple(specs)
        if not self.attribute_names:
            raise ValueError("GroupIndexBank needs at least one attribute")
        missing = [name for name in self.attribute_names if name not in group_ids]
        if missing:
            raise KeyError(f"missing group ids for attributes {missing}")

        self.specs: Dict[str, AttributeSpec] = {}
        self.group_ids: Dict[str, np.ndarray] = {}
        num_samples: Optional[int] = None
        for name in self.attribute_names:
            spec = specs[name]
            ids = validate_group_ids(group_ids[name], spec)
            if num_samples is None:
                num_samples = ids.shape[0]
            elif ids.shape[0] != num_samples:
                raise ValueError(
                    f"group ids of attribute '{name}' have {ids.shape[0]} samples, "
                    f"expected {num_samples}"
                )
            self.specs[name] = spec
            self.group_ids[name] = ids
        self.num_samples = int(num_samples or 0)

        # Column layout of the concatenated membership matrix.
        self.slices: Dict[str, slice] = {}
        offset = 0
        for name in self.attribute_names:
            width = self.specs[name].num_groups
            self.slices[name] = slice(offset, offset + width)
            offset += width
        self.total_groups = offset

        #: dense one-hot membership, ``(num_samples, total_groups)`` float64
        self.membership = np.zeros((self.num_samples, self.total_groups), dtype=np.float64)
        #: exact per-group sample counts aligned with the membership columns
        self.counts = np.zeros(self.total_groups, dtype=np.float64)
        rows = np.arange(self.num_samples)
        for name in self.attribute_names:
            ids = self.group_ids[name]
            block = self.slices[name]
            if self.num_samples:
                self.membership[rows, block.start + ids] = 1.0
            self.counts[block] = np.bincount(
                ids, minlength=self.specs[name].num_groups
            ).astype(np.float64)

        self._slices_lru: "OrderedDict[str, GroupIndexBank]" = OrderedDict()

    # ------------------------------------------------------------------
    @classmethod
    def from_attribute_set(
        cls,
        group_ids: Mapping[str, np.ndarray],
        attributes: AttributeSet,
        names: Optional[Sequence[str]] = None,
    ) -> "GroupIndexBank":
        """Build a bank for (a subset of) an :class:`AttributeSet`."""
        order = tuple(names) if names is not None else attributes.names
        specs = {name: attributes[name] for name in order}
        return cls(group_ids, specs, order=order)

    # ------------------------------------------------------------------
    def counts_for(self, attribute: str) -> np.ndarray:
        """Per-group sample counts of one attribute, aligned with its groups."""
        return self.counts[self.slices[self._check(attribute)]]

    def _check(self, attribute: str) -> str:
        if attribute not in self.specs:
            raise KeyError(
                f"bank has no attribute '{attribute}'; available: {list(self.attribute_names)}"
            )
        return attribute

    def subset(self, names: Sequence[str]) -> "GroupIndexBank":
        """A bank restricted to ``names`` (shares the underlying id arrays)."""
        for name in names:
            self._check(name)
        if tuple(names) == self.attribute_names:
            return self
        return GroupIndexBank(self.group_ids, self.specs, order=names)

    def slice(self, indices: np.ndarray) -> "GroupIndexBank":
        """A bank restricted to the samples in ``indices`` (LRU-memoised)."""
        indices = np.ascontiguousarray(np.asarray(indices, dtype=np.int64))
        key = hashlib.sha1(indices.tobytes()).hexdigest()[:16]
        cached = self._slices_lru.get(key)
        if cached is not None:
            self._slices_lru.move_to_end(key)
            return cached
        sliced = GroupIndexBank(
            {name: ids[indices] for name, ids in self.group_ids.items()},
            self.specs,
            order=self.attribute_names,
        )
        self._slices_lru[key] = sliced
        while len(self._slices_lru) > MAX_SLICE_ENTRIES:
            self._slices_lru.popitem(last=False)
        return sliced

    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        return (
            f"GroupIndexBank(n={self.num_samples}, attributes={list(self.attribute_names)}, "
            f"total_groups={self.total_groups})"
        )

"""Synthetic stand-in for the ISIC2019 dermatology dataset.

ISIC2019 is an 8-way skin-lesion classification benchmark whose metadata
includes patient age, gender and lesion (disease) site.  The paper's key
observations on it are:

* gender is nearly fair (unfairness score < 0.12 for all architectures);
* age (6 groups) and site (9 groups) are strongly unfair (score > 0.4) and
  different architectures trade them off differently (Figure 1);
* optimizing either attribute alone degrades the other (Figure 2).

The synthetic version keeps the class count, the group taxonomy, the group
imbalance and the difficulty ordering, and is calibrated so the model zoo
reproduces those observations (see ``tests/test_calibration.py``).
"""

from __future__ import annotations

from typing import Optional

from .attributes import isic_attribute_set
from .dataset import FairnessDataset
from .synthetic import SyntheticConfig, sample_dataset

#: The 8 diagnosis classes of the ISIC2019 challenge.
ISIC_CLASS_NAMES = (
    "melanoma",
    "melanocytic nevus",
    "basal cell carcinoma",
    "actinic keratosis",
    "benign keratosis",
    "dermatofibroma",
    "vascular lesion",
    "squamous cell carcinoma",
)


def default_isic_config(num_samples: int = 6000) -> SyntheticConfig:
    """Synthetic-generator configuration calibrated for the ISIC2019 stand-in."""
    return SyntheticConfig(
        num_samples=num_samples,
        feature_dim=48,
        class_separation=2.9,
        within_class_std=0.85,
        noise_std=0.5,
        group_shift_scale=3.2,
        group_noise_scale=1.7,
        class_balance_concentration=6.0,
    )


class SyntheticISIC2019(FairnessDataset):
    """Drop-in synthetic replacement for ISIC2019 (8 classes; age/site/gender)."""

    NUM_CLASSES = 8

    def __init__(
        self,
        num_samples: int = 6000,
        seed: int = 2019,
        config: Optional[SyntheticConfig] = None,
    ) -> None:
        config = config or default_isic_config(num_samples)
        if config.num_samples != num_samples:
            config.num_samples = num_samples
        base = sample_dataset(
            name="synthetic-isic2019",
            num_classes=self.NUM_CLASSES,
            attributes=isic_attribute_set(),
            config=config,
            seed=seed,
            class_names=ISIC_CLASS_NAMES,
        )
        super().__init__(
            name=base.name,
            num_classes=base.num_classes,
            labels=base.labels,
            attribute_groups=base.attribute_groups,
            attributes=base.attributes,
            components=base.components,
            class_names=base.class_names,
        )


def load_isic2019(
    num_samples: int = 6000,
    seed: int = 2019,
    config: Optional[SyntheticConfig] = None,
) -> SyntheticISIC2019:
    """Convenience loader mirroring a ``torchvision``-style dataset factory."""
    return SyntheticISIC2019(num_samples=num_samples, seed=seed, config=config)

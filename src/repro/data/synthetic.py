"""Synthetic latent-feature generator standing in for dermatology images.

The original paper trains CNNs on ISIC2019 / Fitzpatrick17K images.  Those
images (and the GPU cluster used to train on them) are not available here,
so this module produces a *behaviourally equivalent* synthetic substrate:

* every class has a latent prototype; a sample's ``signal`` component is its
  class prototype plus within-class variation, so any reasonable classifier
  can learn the task;
* every sensitive-attribute group has a *systematic* latent shift plus
  per-sample distortion noise, both scaled by the group's difficulty.  These
  are stored as separate ``distortion:<attribute>`` components;
* group membership is sampled from the per-group proportions of the
  attribute specs, reproducing the data imbalance of the real datasets.

What matters for reproducing the paper is preserved by construction:

1. groups with higher difficulty have systematically lower accuracy for any
   model whose features expose the distortion (unfairness exists, Obs. 1);
2. re-weighting / re-sampling a group lets a classifier adapt its boundary
   to that group's shift, improving its accuracy at the expense of groups
   shifted in other directions (the see-saw of Obs. 2);
3. two models that expose *different mixtures* of the distortion components
   make different mistakes on unprivileged data (the complementarity of
   Obs. 3 that Muffin exploits).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Sequence

import numpy as np

from ..utils.rng import get_rng
from .attributes import AttributeSet
from .dataset import FairnessDataset, distortion_key


@dataclass
class SyntheticConfig:
    """Tunable knobs of the synthetic generator.

    The defaults are calibrated (see ``tests/test_calibration.py``) so that
    the model zoo reproduces the unfairness landscape of Figure 1: gender
    nearly fair, age and site strongly unfair with architecture-dependent
    trade-offs.
    """

    num_samples: int = 6000
    feature_dim: int = 48
    class_separation: float = 2.9
    within_class_std: float = 0.85
    noise_std: float = 0.5
    #: magnitude of the systematic per-group latent shift at difficulty 1.0
    group_shift_scale: float = 3.2
    #: magnitude of the per-sample distortion noise at difficulty 1.0
    group_noise_scale: float = 1.7
    #: dirichlet concentration controlling class imbalance (larger = more uniform)
    class_balance_concentration: float = 6.0
    #: optional explicit class proportions (overrides the dirichlet draw)
    class_proportions: Optional[Sequence[float]] = None


@dataclass
class SyntheticBlueprint:
    """Frozen latent geometry shared by every sample of a dataset.

    Keeping the blueprint separate from the sampled dataset means train /
    validation / test splits and augmented copies all live in the *same*
    latent space, exactly like crops of the same underlying image corpus.
    """

    class_prototypes: np.ndarray
    group_shifts: Dict[str, np.ndarray] = field(default_factory=dict)
    class_proportions: np.ndarray = field(default_factory=lambda: np.zeros(0))


def _sample_class_proportions(
    num_classes: int, config: SyntheticConfig, rng: np.random.Generator
) -> np.ndarray:
    if config.class_proportions is not None:
        props = np.asarray(config.class_proportions, dtype=np.float64)
        if props.shape != (num_classes,):
            raise ValueError("class_proportions must have one entry per class")
        if (props <= 0).any():
            raise ValueError("class_proportions must be positive")
        return props / props.sum()
    concentration = np.full(num_classes, config.class_balance_concentration)
    # Mimic the long-tailed class distribution of dermatology datasets by
    # tilting the concentration towards the first few classes.
    concentration[: max(1, num_classes // 3)] *= 2.0
    return rng.dirichlet(concentration)


def build_blueprint(
    num_classes: int,
    attributes: AttributeSet,
    config: SyntheticConfig,
    rng: np.random.Generator,
) -> SyntheticBlueprint:
    """Draw the latent geometry: class prototypes and per-group shifts."""
    d = config.feature_dim
    prototypes = rng.normal(0.0, 1.0, size=(num_classes, d))
    # Normalise and scale so classes are separated by ``class_separation``.
    prototypes /= np.linalg.norm(prototypes, axis=1, keepdims=True)
    prototypes *= config.class_separation

    group_shifts: Dict[str, np.ndarray] = {}
    for spec in attributes:
        shifts = rng.normal(0.0, 1.0, size=(spec.num_groups, d))
        shifts /= np.linalg.norm(shifts, axis=1, keepdims=True)
        difficulty = spec.difficulty_vector()[:, None]
        group_shifts[spec.name] = shifts * difficulty * config.group_shift_scale

    proportions = _sample_class_proportions(num_classes, config, rng)
    return SyntheticBlueprint(
        class_prototypes=prototypes,
        group_shifts=group_shifts,
        class_proportions=proportions,
    )


def sample_dataset(
    name: str,
    num_classes: int,
    attributes: AttributeSet,
    config: Optional[SyntheticConfig] = None,
    seed: Optional[int] = None,
    class_names: Optional[Sequence[str]] = None,
    blueprint: Optional[SyntheticBlueprint] = None,
) -> FairnessDataset:
    """Generate a full :class:`FairnessDataset` from the synthetic model."""
    config = config or SyntheticConfig()
    rng = get_rng(seed)
    if blueprint is None:
        blueprint = build_blueprint(num_classes, attributes, config, rng)

    n, d = config.num_samples, config.feature_dim
    if n <= 0:
        raise ValueError("num_samples must be positive")

    labels = rng.choice(num_classes, size=n, p=blueprint.class_proportions)

    attribute_groups: Dict[str, np.ndarray] = {}
    for spec in attributes:
        attribute_groups[spec.name] = rng.choice(
            spec.num_groups, size=n, p=spec.proportion_vector()
        )

    signal = blueprint.class_prototypes[labels] + rng.normal(
        0.0, config.within_class_std, size=(n, d)
    )
    noise = rng.normal(0.0, config.noise_std, size=(n, d))

    components: Dict[str, np.ndarray] = {"signal": signal, "noise": noise}
    for spec in attributes:
        groups = attribute_groups[spec.name]
        difficulty = spec.difficulty_vector()[groups][:, None]
        systematic = blueprint.group_shifts[spec.name][groups]
        idiosyncratic = rng.normal(0.0, 1.0, size=(n, d)) * difficulty * config.group_noise_scale
        components[distortion_key(spec.name)] = systematic + idiosyncratic

    return FairnessDataset(
        name=name,
        num_classes=num_classes,
        labels=labels,
        attribute_groups=attribute_groups,
        attributes=attributes,
        components=components,
        class_names=class_names,
    )


def describe_difficulty(dataset: FairnessDataset) -> Dict[str, Dict[str, float]]:
    """Empirical distortion magnitude per group (diagnostic helper).

    Returns, per attribute and group, the mean L2 norm of the distortion
    component — a quick check that the generator honoured the difficulty
    profile of the attribute specs.
    """
    out: Dict[str, Dict[str, float]] = {}
    for spec in dataset.attributes:
        key = distortion_key(spec.name)
        if key not in dataset.components:
            continue
        magnitudes = np.linalg.norm(dataset.components[key], axis=1)
        ids = dataset.group_ids(spec.name)
        out[spec.name] = {
            group: float(magnitudes[ids == spec.group_index(group)].mean())
            if (ids == spec.group_index(group)).any()
            else 0.0
            for group in spec.groups
        }
    return out

"""Dataset containers for multi-attribute fairness experiments.

A :class:`FairnessDataset` stores, for every sample:

* the class label;
* one group id per sensitive attribute;
* the *decomposed* latent feature components produced by the synthetic
  generator (class signal, idiosyncratic noise, and one distortion component
  per attribute).

Keeping the components separate — instead of a single feature matrix — is
what lets the model zoo simulate architecture-specific robustness: each
simulated backbone mixes the components with its own sensitivity profile
(see :mod:`repro.zoo.backbone`), so different architectures are unfair on
different attributes exactly as observed in Figure 1 of the paper.
"""

from __future__ import annotations

import hashlib
import weakref
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..utils.rng import get_rng
from .attributes import AttributeSet

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .groups import GroupIndexBank


def distortion_key(attribute: str) -> str:
    """Key under which the distortion component of ``attribute`` is stored."""
    return f"distortion:{attribute}"


#: Memoised dataset fingerprints (datasets are treated as immutable
#: throughout the library); weak keys so caching never extends a dataset's
#: lifetime.
_DATASET_FINGERPRINTS: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def dataset_fingerprint(dataset: "FairnessDataset") -> str:
    """Stable content fingerprint of a dataset (name, labels and features).

    Two dataset objects with the same fingerprint produce identical model
    predictions, so it is a safe cache-key component — unlike a
    caller-supplied tag, which silently aliases different partitions.  The
    body-output cache and the per-dataset :class:`~repro.data.groups.GroupIndexBank`
    are both keyed on it.
    """
    try:
        return _DATASET_FINGERPRINTS[dataset]
    except KeyError:
        pass
    digest = hashlib.sha1()
    digest.update(dataset.name.encode("utf-8"))
    digest.update(np.int64(len(dataset)).tobytes())
    digest.update(np.int64(dataset.num_classes).tobytes())
    digest.update(np.ascontiguousarray(dataset.labels).tobytes())
    # The declared attribute set decides which distortion components enter
    # compose_features, so it is part of the prediction-relevant identity.
    for attribute in sorted(dataset.attributes.names):
        digest.update(attribute.encode("utf-8"))
    # Model features compose *every* component (signal, noise and the
    # per-attribute distortions), so all of them are part of the identity —
    # hashing only one would alias datasets differing in the others.
    for key in sorted(dataset.components):
        digest.update(key.encode("utf-8"))
        digest.update(np.ascontiguousarray(dataset.components[key]).tobytes())
    fingerprint = digest.hexdigest()[:16]
    _DATASET_FINGERPRINTS[dataset] = fingerprint
    return fingerprint


@dataclass
class Batch:
    """A mini-batch of composed features and labels."""

    features: np.ndarray
    labels: np.ndarray
    indices: np.ndarray


class FairnessDataset:
    """In-memory dataset with class labels, group labels and feature components."""

    def __init__(
        self,
        name: str,
        num_classes: int,
        labels: np.ndarray,
        attribute_groups: Mapping[str, np.ndarray],
        attributes: AttributeSet,
        components: Mapping[str, np.ndarray],
        class_names: Optional[Sequence[str]] = None,
    ) -> None:
        labels = np.asarray(labels, dtype=np.int64)
        if labels.ndim != 1:
            raise ValueError("labels must be a 1-D array")
        n = labels.shape[0]
        if num_classes <= 1:
            raise ValueError("num_classes must be at least 2")
        if labels.size and (labels.min() < 0 or labels.max() >= num_classes):
            raise ValueError("labels out of range for num_classes")

        self.name = name
        self.num_classes = num_classes
        self.labels = labels
        self.attributes = attributes
        self.class_names = (
            tuple(class_names)
            if class_names is not None
            else tuple(f"class_{i}" for i in range(num_classes))
        )
        if len(self.class_names) != num_classes:
            raise ValueError("class_names length must equal num_classes")

        self.attribute_groups: Dict[str, np.ndarray] = {}
        for attr in attributes:
            if attr.name not in attribute_groups:
                raise KeyError(f"missing group ids for attribute '{attr.name}'")
            groups = np.asarray(attribute_groups[attr.name], dtype=np.int64)
            if groups.shape != (n,):
                raise ValueError(f"group ids of '{attr.name}' must have shape ({n},)")
            if groups.size and (groups.min() < 0 or groups.max() >= attr.num_groups):
                raise ValueError(f"group ids of '{attr.name}' out of range")
            self.attribute_groups[attr.name] = groups

        self.components: Dict[str, np.ndarray] = {}
        feature_dim: Optional[int] = None
        for key, values in components.items():
            values = np.asarray(values, dtype=np.float64)
            if values.shape[0] != n or values.ndim != 2:
                raise ValueError(f"component '{key}' must have shape ({n}, d)")
            if feature_dim is None:
                feature_dim = values.shape[1]
            elif values.shape[1] != feature_dim:
                raise ValueError("all components must share the same feature dimension")
            self.components[key] = values
        if feature_dim is None:
            raise ValueError("at least one feature component is required")
        self.feature_dim = feature_dim
        if "signal" not in self.components:
            raise KeyError("components must include a 'signal' entry")

        #: lazily built group-index banks, keyed by (content fingerprint,
        #: attribute selection) — see :meth:`group_index_bank`
        self._group_banks: Dict[Tuple[str, Tuple[str, ...]], "GroupIndexBank"] = {}

    # ------------------------------------------------------------------
    # Basic container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.labels.shape[0]

    def __repr__(self) -> str:
        attrs = ", ".join(self.attributes.names)
        return (
            f"FairnessDataset(name='{self.name}', n={len(self)}, "
            f"classes={self.num_classes}, attributes=[{attrs}])"
        )

    # ------------------------------------------------------------------
    # Feature composition
    # ------------------------------------------------------------------
    def compose_features(
        self,
        sensitivity: Optional[Mapping[str, float]] = None,
        signal_gain: float = 1.0,
        noise_gain: float = 1.0,
        indices: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Mix the stored components into a feature matrix.

        ``sensitivity`` maps attribute name to how strongly that attribute's
        distortion component leaks into the features (1.0 = fully exposed,
        0.0 = perfectly robust).  The default exposes every distortion fully,
        which corresponds to an "ideal sensor" view of the raw data.
        """
        if indices is None:
            indices = np.arange(len(self))
        indices = np.asarray(indices, dtype=np.int64)
        features = signal_gain * self.components["signal"][indices]
        if "noise" in self.components:
            features = features + noise_gain * self.components["noise"][indices]
        for attr in self.attributes.names:
            key = distortion_key(attr)
            if key not in self.components:
                continue
            weight = 1.0 if sensitivity is None else float(sensitivity.get(attr, 1.0))
            if weight != 0.0:
                features = features + weight * self.components[key][indices]
        return features

    # ------------------------------------------------------------------
    # Group bookkeeping
    # ------------------------------------------------------------------
    def group_ids(self, attribute: str) -> np.ndarray:
        """Integer group ids of every sample for ``attribute``."""
        try:
            return self.attribute_groups[attribute]
        except KeyError as exc:
            raise KeyError(
                f"dataset '{self.name}' has no attribute '{attribute}'; "
                f"available: {list(self.attributes.names)}"
            ) from exc

    def group_mask(self, attribute: str, group: str) -> np.ndarray:
        """Boolean mask of samples in ``group`` of ``attribute``."""
        spec = self.attributes[attribute]
        return self.group_ids(attribute) == spec.group_index(group)

    def group_indices(self, attribute: str, group: str) -> np.ndarray:
        """Sample indices of ``group`` of ``attribute``."""
        return np.where(self.group_mask(attribute, group))[0]

    def unprivileged_mask(self, attribute: Optional[str] = None) -> np.ndarray:
        """Mask of samples in any unprivileged group of ``attribute``.

        With ``attribute=None`` the mask covers samples unprivileged under
        *any* of the dataset's attributes — this is the population the muffin
        proxy dataset is built from.
        """
        if attribute is not None:
            spec = self.attributes[attribute]
            ids = self.group_ids(attribute)
            return np.isin(ids, spec.unprivileged_indices())
        mask = np.zeros(len(self), dtype=bool)
        for name in self.attributes.names:
            mask |= self.unprivileged_mask(name)
        return mask

    def privileged_mask(self, attribute: Optional[str] = None) -> np.ndarray:
        """Complement of :meth:`unprivileged_mask`."""
        return ~self.unprivileged_mask(attribute)

    def group_sizes(self, attribute: str) -> Dict[str, int]:
        """Number of samples per group of ``attribute``."""
        spec = self.attributes[attribute]
        counts = self.group_index_bank().counts_for(attribute)
        return {g: int(counts[spec.group_index(g)]) for g in spec.groups}

    def group_index_bank(self, attributes: Optional[Sequence[str]] = None) -> "GroupIndexBank":
        """Cached :class:`~repro.data.groups.GroupIndexBank` of this dataset.

        The bank precomputes the per-attribute membership matrices the
        vectorized :class:`~repro.fairness.engine.EvaluationEngine` consumes.
        Datasets are treated as immutable throughout the library, so each
        bank is built exactly once per dataset object; the cache key also
        carries :func:`dataset_fingerprint` (itself memoised per object) so
        the entry is tied to the content identity the body-output cache
        uses, not just to the object.
        """
        from .groups import GroupIndexBank

        names = tuple(attributes) if attributes is not None else self.attributes.names
        key = (dataset_fingerprint(self), names)
        bank = self._group_banks.get(key)
        if bank is None:
            bank = GroupIndexBank.from_attribute_set(self.attribute_groups, self.attributes, names)
            self._group_banks[key] = bank
        return bank

    def class_counts(self) -> np.ndarray:
        """Number of samples per class."""
        return np.bincount(self.labels, minlength=self.num_classes)

    # ------------------------------------------------------------------
    # Subsetting / resampling
    # ------------------------------------------------------------------
    def subset(self, indices: np.ndarray, name: Optional[str] = None) -> "FairnessDataset":
        """Return a new dataset restricted to ``indices`` (copies arrays)."""
        indices = np.asarray(indices, dtype=np.int64)
        return FairnessDataset(
            name=name or f"{self.name}[subset:{len(indices)}]",
            num_classes=self.num_classes,
            labels=self.labels[indices],
            attribute_groups={k: v[indices] for k, v in self.attribute_groups.items()},
            attributes=self.attributes,
            components={k: v[indices] for k, v in self.components.items()},
            class_names=self.class_names,
        )

    def with_components(self, components: Mapping[str, np.ndarray], name: Optional[str] = None) -> "FairnessDataset":
        """Return a copy of this dataset with replaced feature components."""
        return FairnessDataset(
            name=name or self.name,
            num_classes=self.num_classes,
            labels=self.labels.copy(),
            attribute_groups={k: v.copy() for k, v in self.attribute_groups.items()},
            attributes=self.attributes,
            components=components,
            class_names=self.class_names,
        )

    # ------------------------------------------------------------------
    # Batch iteration
    # ------------------------------------------------------------------
    def iter_batches(
        self,
        batch_size: int,
        features: np.ndarray,
        shuffle: bool = True,
        rng: Optional[np.random.Generator] = None,
        sample_weights: Optional[np.ndarray] = None,
    ) -> Iterator[Tuple[Batch, Optional[np.ndarray]]]:
        """Yield mini-batches over a pre-composed feature matrix.

        The caller composes features once (per backbone) and iterates
        batches here; ``sample_weights`` (if given) are sliced in parallel,
        which is how the fairness-aware trainer feeds Equation 2.
        """
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        n = len(self)
        if features.shape[0] != n:
            raise ValueError("features must have one row per sample")
        order = np.arange(n)
        if shuffle:
            order = get_rng(rng).permutation(n)
        for start in range(0, n, batch_size):
            idx = order[start : start + batch_size]
            batch = Batch(features=features[idx], labels=self.labels[idx], indices=idx)
            weights = sample_weights[idx] if sample_weights is not None else None
            yield batch, weights

    # ------------------------------------------------------------------
    # Summaries
    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, object]:
        """Structured description used in experiment reports."""
        return {
            "name": self.name,
            "num_samples": len(self),
            "num_classes": self.num_classes,
            "feature_dim": self.feature_dim,
            "attributes": self.attributes.to_dict(),
            "group_sizes": {attr: self.group_sizes(attr) for attr in self.attributes.names},
            "class_counts": self.class_counts().tolist(),
        }

"""Dataset splitting utilities.

The paper splits every dataset into 64% training, 16% validation and 20%
test data.  Splits here are stratified by class label so small classes are
represented in every partition, and the random assignment is reproducible
from a seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..utils.rng import get_rng
from .dataset import FairnessDataset

#: The split fractions used throughout the paper's experiments.
PAPER_SPLIT = (0.64, 0.16, 0.20)


@dataclass
class DataSplit:
    """Train / validation / test partitions of one dataset."""

    train: FairnessDataset
    val: FairnessDataset
    test: FairnessDataset
    train_indices: np.ndarray
    val_indices: np.ndarray
    test_indices: np.ndarray

    def sizes(self) -> Dict[str, int]:
        return {"train": len(self.train), "val": len(self.val), "test": len(self.test)}


def stratified_split_indices(
    labels: np.ndarray,
    fractions: Tuple[float, float, float] = PAPER_SPLIT,
    seed: Optional[int] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Return (train, val, test) index arrays stratified by ``labels``."""
    train_frac, val_frac, test_frac = fractions
    total = train_frac + val_frac + test_frac
    if not np.isclose(total, 1.0):
        raise ValueError(f"split fractions must sum to 1, got {total}")
    if min(fractions) <= 0:
        raise ValueError("all split fractions must be positive")

    labels = np.asarray(labels, dtype=np.int64)
    rng = get_rng(seed)
    train_idx, val_idx, test_idx = [], [], []
    for cls in np.unique(labels):
        members = np.where(labels == cls)[0]
        members = rng.permutation(members)
        n = len(members)
        n_train = int(round(train_frac * n))
        n_val = int(round(val_frac * n))
        # Guarantee at least one sample per partition when the class allows it.
        if n >= 3:
            n_train = max(1, min(n_train, n - 2))
            n_val = max(1, min(n_val, n - n_train - 1))
        train_idx.append(members[:n_train])
        val_idx.append(members[n_train : n_train + n_val])
        test_idx.append(members[n_train + n_val :])

    train = np.sort(np.concatenate(train_idx))
    val = np.sort(np.concatenate(val_idx))
    test = np.sort(np.concatenate(test_idx))
    return train, val, test


def split_dataset(
    dataset: FairnessDataset,
    fractions: Tuple[float, float, float] = PAPER_SPLIT,
    seed: Optional[int] = None,
) -> DataSplit:
    """Split ``dataset`` into stratified train/val/test partitions."""
    train_idx, val_idx, test_idx = stratified_split_indices(dataset.labels, fractions, seed)
    return DataSplit(
        train=dataset.subset(train_idx, name=f"{dataset.name}[train]"),
        val=dataset.subset(val_idx, name=f"{dataset.name}[val]"),
        test=dataset.subset(test_idx, name=f"{dataset.name}[test]"),
        train_indices=train_idx,
        val_indices=val_idx,
        test_indices=test_idx,
    )

"""Synthetic stand-in for the Fitzpatrick17K dataset.

Fitzpatrick17K (Groh et al., 2021) contains clinical dermatology images
annotated with the Fitzpatrick skin-tone scale (six phototypes from light to
black).  The paper uses it as the validation dataset for Muffin with two
sensitive attributes: skin tone and lesion type, and a 9-way classification
task.  Section 4.5 shows Muffin pushing the Pareto frontier on
(unfairness of type, unfairness of skin tone) and Figure 8 breaks down the
per-skin-tone accuracy of Muffin-Balance versus ResNet-18.

The synthetic version keeps the 9 classes, the 6 skin-tone groups (with
darker tones unprivileged, consistent with the healthcare-disparity
motivation of the paper) and a 3-group lesion-type attribute.
"""

from __future__ import annotations

from typing import Optional

from .attributes import fitzpatrick_attribute_set
from .dataset import FairnessDataset
from .synthetic import SyntheticConfig, sample_dataset

#: Nine aggregated diagnosis categories used for the Fitzpatrick17K task.
FITZPATRICK_CLASS_NAMES = (
    "inflammatory",
    "malignant epidermal",
    "genodermatoses",
    "benign dermal",
    "benign epidermal",
    "malignant melanoma",
    "benign melanocyte",
    "malignant cutaneous lymphoma",
    "malignant dermal",
)


def default_fitzpatrick_config(num_samples: int = 5000) -> SyntheticConfig:
    """Synthetic-generator configuration calibrated for the Fitzpatrick17K stand-in.

    The real dataset is harder than ISIC2019 (nine fine-grained classes,
    overall accuracy around 60% in the paper's Figure 7), so the class
    separation is reduced relative to the ISIC configuration.
    """
    return SyntheticConfig(
        num_samples=num_samples,
        feature_dim=48,
        class_separation=2.2,
        within_class_std=0.95,
        noise_std=0.55,
        group_shift_scale=3.0,
        group_noise_scale=1.6,
        class_balance_concentration=5.0,
    )


class SyntheticFitzpatrick17K(FairnessDataset):
    """Drop-in synthetic replacement for Fitzpatrick17K (9 classes; skin tone/type)."""

    NUM_CLASSES = 9

    def __init__(
        self,
        num_samples: int = 5000,
        seed: int = 1717,
        config: Optional[SyntheticConfig] = None,
    ) -> None:
        config = config or default_fitzpatrick_config(num_samples)
        if config.num_samples != num_samples:
            config.num_samples = num_samples
        base = sample_dataset(
            name="synthetic-fitzpatrick17k",
            num_classes=self.NUM_CLASSES,
            attributes=fitzpatrick_attribute_set(),
            config=config,
            seed=seed,
            class_names=FITZPATRICK_CLASS_NAMES,
        )
        super().__init__(
            name=base.name,
            num_classes=base.num_classes,
            labels=base.labels,
            attribute_groups=base.attribute_groups,
            attributes=base.attributes,
            components=base.components,
            class_names=base.class_names,
        )


def load_fitzpatrick17k(
    num_samples: int = 5000,
    seed: int = 1717,
    config: Optional[SyntheticConfig] = None,
) -> SyntheticFitzpatrick17K:
    """Convenience loader mirroring a ``torchvision``-style dataset factory."""
    return SyntheticFitzpatrick17K(num_samples=num_samples, seed=seed, config=config)

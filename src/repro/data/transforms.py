"""Feature-space data augmentation.

The data-balancing baseline of the paper ("Method D", after Weiss et al.)
augments the unprivileged groups with flipped / rotated / scaled copies of
their images.  On the latent-feature substrate the equivalent operations are
small perturbations of the signal component:

* ``jitter``   — add isotropic Gaussian noise (analogue of photometric noise);
* ``scale``    — multiply the signal by a random factor near 1 (zoom);
* ``rotate``   — apply a small random rotation in a random 2-D latent plane
  (analogue of spatial rotation: norm-preserving, label-preserving);
* ``mixup``    — interpolate towards another sample of the same class and
  group (a stronger augmentation used when a group is extremely small).

All transforms are label- and group-preserving, which is the property the
baseline relies on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from ..utils.rng import get_rng
from .dataset import FairnessDataset


@dataclass
class AugmentationConfig:
    """Strength parameters of the feature-space augmentations."""

    jitter_std: float = 0.25
    scale_range: float = 0.15
    rotation_angle: float = 0.35
    mixup_alpha: float = 0.3


def jitter(features: np.ndarray, std: float, rng: np.random.Generator) -> np.ndarray:
    """Add isotropic Gaussian noise."""
    if std < 0:
        raise ValueError("jitter std must be non-negative")
    return features + rng.normal(0.0, std, size=features.shape)


def scale(features: np.ndarray, scale_range: float, rng: np.random.Generator) -> np.ndarray:
    """Multiply each sample by a random factor in ``[1 - r, 1 + r]``."""
    if not 0 <= scale_range < 1:
        raise ValueError("scale_range must be in [0, 1)")
    factors = rng.uniform(1.0 - scale_range, 1.0 + scale_range, size=(features.shape[0], 1))
    return features * factors


def rotate(features: np.ndarray, angle: float, rng: np.random.Generator) -> np.ndarray:
    """Rotate each sample by ``angle`` radians in a random 2-D latent plane."""
    n, d = features.shape
    if d < 2:
        raise ValueError("rotation needs at least two feature dimensions")
    i, j = rng.choice(d, size=2, replace=False)
    rotated = features.copy()
    cos_a, sin_a = np.cos(angle), np.sin(angle)
    xi, xj = features[:, i].copy(), features[:, j].copy()
    rotated[:, i] = cos_a * xi - sin_a * xj
    rotated[:, j] = sin_a * xi + cos_a * xj
    return rotated


def mixup_within_group(
    features: np.ndarray,
    labels: np.ndarray,
    group_ids: np.ndarray,
    alpha: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Interpolate each sample towards another sample with the same label and group."""
    if not 0 <= alpha <= 1:
        raise ValueError("mixup alpha must be in [0, 1]")
    mixed = features.copy()
    for label in np.unique(labels):
        for group in np.unique(group_ids):
            members = np.where((labels == label) & (group_ids == group))[0]
            if len(members) < 2:
                continue
            partners = rng.permutation(members)
            lam = rng.uniform(1.0 - alpha, 1.0, size=(len(members), 1))
            mixed[members] = lam * features[members] + (1.0 - lam) * features[partners]
    return mixed


def augment_subset(
    dataset: FairnessDataset,
    indices: np.ndarray,
    config: Optional[AugmentationConfig] = None,
    seed: Optional[int] = None,
    attribute: Optional[str] = None,
) -> FairnessDataset:
    """Create augmented copies of ``dataset`` rows given by ``indices``.

    Only the ``signal`` component is perturbed; distortion components are
    copied unchanged so the augmented samples remain members of their
    original unprivileged groups — exactly like flipping a photograph does
    not change the patient's age.
    """
    config = config or AugmentationConfig()
    rng = get_rng(seed)
    indices = np.asarray(indices, dtype=np.int64)
    if indices.size == 0:
        raise ValueError("augment_subset received an empty index list")

    copy = dataset.subset(indices, name=f"{dataset.name}[augmented:{len(indices)}]")
    signal = copy.components["signal"]
    signal = jitter(signal, config.jitter_std, rng)
    signal = scale(signal, config.scale_range, rng)
    signal = rotate(signal, rng.uniform(-config.rotation_angle, config.rotation_angle), rng)
    if attribute is not None and config.mixup_alpha > 0:
        signal = mixup_within_group(
            signal, copy.labels, copy.group_ids(attribute), config.mixup_alpha, rng
        )
    components = dict(copy.components)
    components["signal"] = signal
    return copy.with_components(components, name=copy.name)


def concatenate_datasets(datasets: Sequence[FairnessDataset], name: Optional[str] = None) -> FairnessDataset:
    """Concatenate datasets that share the same schema (attributes, classes)."""
    if not datasets:
        raise ValueError("need at least one dataset to concatenate")
    first = datasets[0]
    for other in datasets[1:]:
        if other.num_classes != first.num_classes:
            raise ValueError("datasets must share num_classes")
        if other.attributes.names != first.attributes.names:
            raise ValueError("datasets must share the same attributes")
        if set(other.components) != set(first.components):
            raise ValueError("datasets must share the same feature components")

    labels = np.concatenate([d.labels for d in datasets])
    attribute_groups: Dict[str, np.ndarray] = {
        attr: np.concatenate([d.attribute_groups[attr] for d in datasets])
        for attr in first.attributes.names
    }
    components: Dict[str, np.ndarray] = {
        key: np.concatenate([d.components[key] for d in datasets]) for key in first.components
    }
    return FairnessDataset(
        name=name or f"{first.name}[+{len(datasets) - 1}]",
        num_classes=first.num_classes,
        labels=labels,
        attribute_groups=attribute_groups,
        attributes=first.attributes,
        components=components,
        class_names=first.class_names,
    )

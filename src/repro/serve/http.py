"""Stdlib HTTP/JSON frontend over the micro-batching inference server.

No web framework — a :class:`http.server.ThreadingHTTPServer` whose handler
threads block on the in-process :class:`~repro.serve.server.ServeClient`,
so concurrent HTTP requests coalesce into the same micro-batches as
in-process callers.  Endpoints:

``POST /predict``
    ``{"features": [[...]], "groups": {"age": [...]}, "labels": [...]}`` →
    ``{"predictions": [...], "probabilities": [...], "consensus": [...]}``.
    ``features`` may be one sample (a flat list) or a matrix; ``groups`` and
    ``labels`` are optional and feed the live fairness monitor.

``GET /stats``
    Full server + windowed-fairness statistics.

``GET /metrics``
    Prometheus text exposition (version 0.0.4) of the process-wide
    :data:`repro.obs.METRICS` registry — request counters, latency and
    micro-batch-size histograms, queue-depth gauges.

``GET /healthz``
    Liveness probe with the model name, artifact spec hash and per-shard
    health states.

Typed serving failures map to distinct HTTP statuses so callers can tell
*retry later* apart from *give up*: ``ServerOverloaded`` → **429** with a
``Retry-After`` header, ``ServerClosed`` → **503**, ``DeadlineExceeded`` →
**504**, a failed forward pass (``InferenceFailed``) → **500** with the
underlying cause in the error detail.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Sequence, Tuple

from ..obs import METRICS
from .errors import DeadlineExceeded, ServerClosed, ServerOverloaded
from .server import InferenceServer, ServeClient

#: request body size guard (16 MiB) — a JSON feature matrix beyond this is
#: almost certainly a client bug, not a workload
MAX_BODY_BYTES = 16 * 1024 * 1024


class _Handler(BaseHTTPRequestHandler):
    server: "ServeHTTPServer"

    # ------------------------------------------------------------------
    def _send_json(
        self,
        payload: Dict[str, object],
        status: int = 200,
        headers: Sequence[Tuple[str, str]] = (),
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in headers:
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, text: str, content_type: str, status: int = 200) -> None:
        body = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args: object) -> None:
        if self.server.verbose:
            super().log_message(format, *args)

    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (stdlib handler naming)
        inference = self.server.inference
        if self.path in ("/healthz", "/health"):
            self._send_json(
                {
                    "status": "ok" if inference.is_running else "stopped",
                    "model": inference.model.name,
                    "spec_hash": inference.model.metadata.get("spec_hash"),
                    "shards": [
                        {"slot": s["slot"], "state": s["state"]}
                        for s in inference.pool.shard_stats()
                    ],
                }
            )
        elif self.path == "/stats":
            self._send_json(inference.stats())
        elif self.path == "/metrics":
            self._send_text(
                METRICS.render_prometheus(),
                "text/plain; version=0.0.4; charset=utf-8",
            )
        else:
            self._send_json({"error": f"unknown path '{self.path}'"}, status=404)

    def do_POST(self) -> None:  # noqa: N802 (stdlib handler naming)
        if self.path != "/predict":
            self._send_json({"error": f"unknown path '{self.path}'"}, status=404)
            return
        length = int(self.headers.get("Content-Length", 0))
        if length <= 0 or length > MAX_BODY_BYTES:
            self._send_json(
                {"error": f"request body must be 1..{MAX_BODY_BYTES} bytes"},
                status=400,
            )
            return
        try:
            payload = json.loads(self.rfile.read(length))
            if not isinstance(payload, dict) or "features" not in payload:
                raise ValueError("request body must be an object with 'features'")
            deadline_ms = payload.get("deadline_ms")
            if deadline_ms is not None and not isinstance(deadline_ms, (int, float)):
                raise ValueError("deadline_ms must be a number (milliseconds)")
            response = self.server.client.predict(
                payload["features"],
                groups=payload.get("groups"),
                labels=payload.get("labels"),
                timeout=self.server.request_timeout,
                deadline_ms=deadline_ms,
            )
        except (ValueError, KeyError, TypeError, json.JSONDecodeError) as exc:
            self._send_json({"error": str(exc)}, status=400)
            return
        except ServerOverloaded as exc:
            # Admission control shed the request before queuing: tell the
            # caller when capacity is expected back.
            self._send_json(
                {"error": str(exc), "retry_after_s": exc.retry_after},
                status=429,
                headers=(("Retry-After", f"{max(1, round(exc.retry_after))}"),),
            )
            return
        except ServerClosed as exc:
            self._send_json({"error": str(exc)}, status=503)
            return
        except DeadlineExceeded as exc:
            self._send_json({"error": str(exc)}, status=504)
            return
        except TimeoutError as exc:
            self._send_json({"error": str(exc)}, status=503)
            return
        except RuntimeError as exc:
            # A failed batch forward (ServeClient raises InferenceFailed
            # chaining it) must still produce a JSON error response, not a
            # dropped connection.
            cause = exc.__cause__
            detail = f"{exc}: {cause}" if cause is not None else str(exc)
            self._send_json({"error": detail}, status=500)
            return
        body = response.to_dict()
        body["model"] = self.server.inference.model.name
        self._send_json(body)


class ServeHTTPServer(ThreadingHTTPServer):
    """HTTP frontend bound to one :class:`InferenceServer`."""

    daemon_threads = True

    def __init__(
        self,
        inference: InferenceServer,
        host: str = "127.0.0.1",
        port: int = 8000,
        request_timeout: float = 30.0,
        verbose: bool = False,
    ) -> None:
        super().__init__((host, port), _Handler)
        self.inference = inference
        self.client = ServeClient(inference)
        self.request_timeout = request_timeout
        self.verbose = verbose
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        return self.server_address[0], self.server_address[1]

    # ------------------------------------------------------------------
    def start_background(self) -> "ServeHTTPServer":
        """Serve on a daemon thread (tests / embedding); returns self."""
        self.inference.start()
        self._thread = threading.Thread(
            target=self.serve_forever, name="muffin-serve-http", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self.shutdown()
        self.server_close()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        self.inference.stop()

    def __enter__(self) -> "ServeHTTPServer":
        return self.start_background()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


def serve_forever(
    inference: InferenceServer,
    host: str = "127.0.0.1",
    port: int = 8000,
    verbose: bool = True,
) -> None:
    """Blocking CLI entry: serve until interrupted, then shut down cleanly.

    The HTTP loop runs on a background thread while the main thread waits on
    a :class:`~repro.utils.signals.GracefulShutdown` event — calling
    ``httpd.shutdown()`` from inside a signal handler running on the serving
    thread would deadlock, so the handler only sets the event.  Open
    requests drain, the monitor's final window stays queryable until the
    server closes, and a second signal force-exits.
    """
    from ..utils.signals import GracefulShutdown

    httpd = ServeHTTPServer(inference, host=host, port=port, verbose=verbose)
    inference.start()
    bound_host, bound_port = httpd.address
    print(
        f"serving '{inference.model.name}' on http://{bound_host}:{bound_port} "
        f"(batch_window={inference.config.batch_window_ms}ms, "
        f"max_batch={inference.config.max_batch}) — Ctrl-C to stop"
    )
    thread = threading.Thread(
        target=httpd.serve_forever, name="muffin-serve-http", daemon=True
    )
    thread.start()
    try:
        with GracefulShutdown(note="finishing open requests") as shutdown:
            shutdown.stop_event.wait()
    except KeyboardInterrupt:
        pass  # signal handlers unavailable (embedded use): plain Ctrl-C
    finally:
        print("\nshutting down...")
        httpd.shutdown()
        thread.join(timeout=10.0)
        httpd.server_close()
        inference.stop()
